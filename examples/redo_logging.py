#!/usr/bin/env python
"""Redo logging with group commit — the paper's future-work sketch (VII).

Runs the same single-threaded queue workload under undo logging and under
redo logging with increasing group-commit batches, compares cycles on
StrandWeaver, and crash-tests the redo protocol (including the
retired-sequence watermark that keeps partial invalidations safe).
"""

import random

from repro.core.crash import materialise, random_cut
from repro.core.model import PersistDag
from repro.harness.report import render_table
from repro.lang.dialect import StrandDialect
from repro.lang.recovery import recover
from repro.lang.redo import RedoTxnModel
from repro.lang.runtime import DirectAccessor
from repro.lang.txn import TxnModel
from repro.sim.machine import run_design
from repro.workloads import WORKLOADS, WorkloadConfig, generate

CFG = WorkloadConfig(n_threads=1, ops_per_thread=48, log_entries=4096,
                     pm_size=1 << 22)


def main() -> None:
    rows = []
    runs = {}
    for label, model in [
        ("undo", TxnModel()),
        ("redo gc=1", RedoTxnModel(group_commit=1)),
        ("redo gc=4", RedoTxnModel(group_commit=4)),
        ("redo gc=8", RedoTxnModel(group_commit=8)),
    ]:
        run = generate(WORKLOADS["queue"], CFG, StrandDialect(), model)
        stats = run_design("strandweaver", run.program)
        runs[label] = run
        rows.append([label, int(stats.cycles), stats.clwbs,
                     int(stats.persist_stalls)])
    base = rows[0][1]
    for row in rows:
        row.append(base / row[1])
    print(render_table(
        "Queue (1 thread) on StrandWeaver: undo vs redo logging",
        ["model", "cycles", "CLWBs", "persist stalls", "vs undo"],
        rows,
    ))

    print("\nCrash-testing redo with group commit (25 random crash states)...")
    run = runs["redo gc=4"]
    dag = PersistDag(run.program)
    rng = random.Random(7)
    replayed = 0
    # Random cuts, plus targeted "crash right after a group's marker
    # persisted" cuts — the case recovery must repair by replaying.
    markers = [n.idx for n in dag.nodes
               if n.op is not None and n.op.label == "commit-marker"]
    cuts = [random_cut(dag, rng, 0.5) for _ in range(25)]
    cuts += [dag.downward_close({m}) for m in markers]
    for cut in cuts:
        image = materialise(dag, cut, run.space)
        report = recover(image, run.layout)
        replayed += report.n_replayed
        run.workload.check(DirectAccessor(image))
    print(f"all {len(cuts)} consistent; {replayed} redo entries replayed")
    print("\nTransactions crash-vanish atomically until their group commit —")
    print("the group commit (JoinStrand + marker + watermark) is the")
    print("durability point, exactly as the paper's sketch prescribes.")


if __name__ == "__main__":
    main()
