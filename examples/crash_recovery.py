#!/usr/bin/env python
"""Crash-and-recover demo (Figures 5 and 6 end to end).

Runs the persistent hashmap under StrandWeaver's strand dialect, then
simulates crashes by sampling consistent cuts of the formal persist DAG,
materialises each crash image, runs undo-log recovery on it, and verifies
every data-structure invariant.  Finally it repeats the experiment with
the NON-ATOMIC dialect (no ordering primitives) and shows recovery
breaking — which is exactly why persist ordering matters.
"""

import random

from repro.core.crash import frontier_cut, materialise, random_cut
from repro.core.model import PersistDag
from repro.lang.dialect import NonAtomicDialect, StrandDialect
from repro.lang.recovery import recover
from repro.lang.runtime import DirectAccessor
from repro.lang.txn import TxnModel
from repro.workloads import WORKLOADS, CheckFailure, WorkloadConfig, generate

CFG = WorkloadConfig(n_threads=4, ops_per_thread=12, log_entries=2048,
                     pm_size=1 << 21)
N_CRASHES = 25


def crash_campaign(dialect, label: str) -> None:
    run = generate(WORKLOADS["hashmap"], CFG, dialect, TxnModel(durable_commit=True))
    dag = PersistDag(run.program)
    rng = random.Random(2020)
    ok = bad = 0
    rolled = 0
    for i in range(N_CRASHES):
        cut = (random_cut(dag, rng, 0.5) if i % 2 else frontier_cut(dag, rng, 0.3))
        image = materialise(dag, cut, run.space)
        report = recover(image, run.layout)
        rolled += report.n_rolled_back
        try:
            run.workload.check(DirectAccessor(image))
            ok += 1
        except CheckFailure as exc:
            bad += 1
            if bad == 1:
                print(f"    first violation: {exc}")
    print(f"  {label}: {ok}/{N_CRASHES} crash states recovered consistently, "
          f"{bad} violations, {rolled} log entries rolled back in total")


def main() -> None:
    print(f"Simulating {N_CRASHES} crashes of the persistent hashmap...\n")
    print("With StrandWeaver ordering (log -> barrier -> update -> NewStrand):")
    crash_campaign(StrandDialect(), "strand persistency")
    print("\nWith NO ordering primitives (the NON-ATOMIC upper bound):")
    crash_campaign(NonAtomicDialect(), "non-atomic")
    print("\nThe non-atomic runtime is faster but unrecoverable — the pairwise")
    print("log-before-update ordering is the minimum StrandWeaver preserves.")


if __name__ == "__main__":
    main()
