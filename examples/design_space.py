#!/usr/bin/env python
"""Design-space exploration: strand-buffer sizing and region granularity.

Reproduces the two sensitivity studies of Section VI-C at a small scale:
Figure 9 (number of strand buffers x entries per buffer) and Figure 10
(operations per failure-atomic SFR), then prints a short ablation of the
persist queue (StrandWeaver vs NO-PERSIST-QUEUE vs Intel x86).
"""

from repro.harness import figure9, figure10, run_cell
from repro.harness.report import render_table

OPS = 16


def persist_queue_ablation() -> None:
    rows = []
    for bench in ("queue", "rbtree", "nstore-wr"):
        base = run_cell(bench, "intel-x86", "txn", ops_per_thread=OPS)
        row = [bench]
        for design in ("no-persist-queue", "strandweaver"):
            st = run_cell(bench, design, "txn", ops_per_thread=OPS)
            row.append(st.speedup_over(base))
        rows.append(row)
    print(render_table(
        "Persist-queue ablation (speedup over x86)",
        ["benchmark", "no-persist-queue", "strandweaver"],
        rows,
        col_width=18,
    ))


def main() -> None:
    print(figure9(ops_per_thread=OPS).render())
    print("\nThe paper configures 4 buffers x 4 entries: the knee of the curve.\n")
    print(figure10(ops_per_thread=OPS).render())
    print("\nLarger failure-atomic regions expose more independent log/update")
    print("pairs, so StrandWeaver's advantage grows with region size.\n")
    persist_queue_ablation()


if __name__ == "__main__":
    main()
