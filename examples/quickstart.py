#!/usr/bin/env python
"""Quickstart: run one benchmark on every hardware design.

Builds the persistent queue benchmark under the failure-atomic-transaction
model, generates its micro-op traces once per ISA dialect, replays each on
the matching hardware design, and prints a small Figure-7-style table.
"""

from repro import TABLE_I, WORKLOADS, WorkloadConfig, generate_for_design, run_design
from repro.harness.report import render_table
from repro.sim.machine import DESIGNS


def main() -> None:
    print(render_table(
        "Table I machine", ["component", "value"],
        [[k, v] for k, v in TABLE_I.table1().items()],
        col_width=90,
    ))
    print()

    cfg = WorkloadConfig(n_threads=8, ops_per_thread=24, log_entries=4096,
                         pm_size=1 << 23)
    rows = []
    baseline_cycles = None
    for design in ("intel-x86", "hops", "no-persist-queue", "strandweaver",
                   "non-atomic"):
        run = generate_for_design(WORKLOADS["queue"], cfg, design, "txn")
        stats = run_design(design, run.program)
        if baseline_cycles is None:
            baseline_cycles = stats.cycles
        rows.append([
            design,
            int(stats.cycles),
            stats.clwbs,
            int(stats.persist_stalls),
            round(baseline_cycles / stats.cycles, 2),
        ])
    print(render_table(
        "Persistent queue, TXN model, 8 threads",
        ["design", "cycles", "CLWBs", "persist stalls", "speedup vs x86"],
        rows,
        first_width=18,
    ))
    print("\nStrandWeaver relaxes persist ordering: same work, same CLWBs,")
    print("fewer ordering stalls, fewer cycles.")


if __name__ == "__main__":
    main()
