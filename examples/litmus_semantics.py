#!/usr/bin/env python
"""Strand persistency litmus tests (Figure 2, interactive version).

Encodes the paper's Figure 2 programs and enumerates *every* PM state a
crash could expose under the formal model, marking which of them the
paper forbids.
"""

from repro.core.crash import reachable_values
from repro.core.model import PersistDag
from repro.core.ops import Program, TraceCursor
from repro.pmem.space import PersistentMemory

A, B, C = 0, 64, 128
ONE = b"\x01" + b"\x00" * 7


def show(title: str, build, forbidden) -> None:
    prog = Program(1)
    build(TraceCursor(prog, 0))
    pm = PersistentMemory(1024)
    pm.mark_clean()
    dag = PersistDag(prog)
    out = sorted(reachable_values(
        dag, pm, lambda i: (i.read_u64(A), i.read_u64(B), i.read_u64(C))
    ))
    print(title)
    for state in out:
        print(f"    A={state[0]} B={state[1]} C={state[2]}")
    hit = [f for f in forbidden if f in out]
    verdict = "FORBIDDEN STATE LEAKED!" if hit else "all forbidden states unreachable"
    print(f"  -> {len(out)} reachable crash states; {verdict}\n")
    assert not hit


def main() -> None:
    show(
        "Fig 2(a): St A; PB; St B; NS; St C   (forbidden: B without A)",
        lambda c: (c.store(A, ONE), c.persist_barrier(), c.store(B, ONE),
                   c.new_strand(), c.store(C, ONE)),
        forbidden=[(0, 1, 0), (0, 1, 1)],
    )
    show(
        "Fig 2(c): St A; NS; St B; JS; St C   (forbidden: C before A,B)",
        lambda c: (c.store(A, ONE), c.new_strand(), c.store(B, ONE),
                   c.join_strand(), c.store(C, ONE)),
        forbidden=[(0, 0, 1), (1, 0, 1), (0, 1, 1)],
    )
    show(
        "Fig 2(e): St A; NS; St A; PB; St B   (SPA + transitivity)",
        lambda c: (c.store(A, ONE), c.new_strand(),
                   c.store(A, b"\x02" + b"\x00" * 7), c.persist_barrier(),
                   c.store(B, ONE)),
        forbidden=[(0, 1, 0), (1, 1, 0)],
    )
    show(
        "Fig 2(g): St A; NS; Ld A; PB; St B   (loads do NOT order persists)",
        lambda c: (c.store(A, ONE), c.new_strand(), c.load(A, 8),
                   c.persist_barrier(), c.store(B, ONE)),
        forbidden=[],  # (A=0, B=1) is explicitly ALLOWED by the paper
    )
    print("Compare with Intel's model, where one SFENCE orders everything:")
    show(
        "x86:      St A; CLWB A; SFENCE; St B  (forbidden: B without A)",
        lambda c: (c.store(A, ONE), c.clwb(A), c.sfence(), c.store(B, ONE)),
        forbidden=[(0, 1, 0)],
    )


if __name__ == "__main__":
    main()
