"""Figure 8: CPU persist-ordering stalls, normalised to Intel x86."""

from repro.harness import figure8


def test_figure8(benchmark, bench_ops):
    result = benchmark.pedantic(
        figure8, kwargs={"ops_per_thread": bench_ops}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Shape: StrandWeaver removes most of x86's persist-order stalls
    # (paper: 62.4% fewer).
    assert result.summary["strandweaver_stall_reduction_pct"] > 30.0
