"""Figure 10: StrandWeaver speedup vs operations per SFR."""

from repro.harness import figure10


def test_figure10(benchmark, bench_ops):
    result = benchmark.pedantic(
        figure10, kwargs={"ops_per_thread": max(16, bench_ops)},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    means = [result.summary[k] for k in sorted(result.summary,
                                               key=lambda k: int(k.split("_")[0]))]
    # Shape: speedup grows with the number of operations per region.
    assert means[-1] >= means[0]
