"""Ablations of the design choices documented in DESIGN.md.

Not a paper figure — these benches justify the reproduction's modelling
decisions and measure the Section VII future-work extension:

* undo vs redo logging under strand persistency (group-commit sweep),
* controller write-coalescing on/off,
* steady-state (warm L2) vs cold caches.
"""

from dataclasses import replace

import pytest

from repro.harness.report import render_table
from repro.sim.config import TABLE_I
from repro.sim.machine import Machine
from repro.workloads import WORKLOADS, WorkloadConfig, generate_for_design

CFG = WorkloadConfig(n_threads=8, ops_per_thread=16, log_entries=4096,
                     pm_size=1 << 23)


def run_once(bench, design, model, machine_cfg=TABLE_I, warm=True, **model_kwargs):
    run = generate_for_design(WORKLOADS[bench], CFG, design, model, **model_kwargs)
    return Machine(design, machine_cfg).run(run.program, warm=warm)


def test_undo_vs_redo_logging(benchmark):
    """Section VII sketch: redo logging with group commit on StrandWeaver.

    Group commits larger than one defer in-place updates past lock
    hand-off and are single-thread only, so the batch sweep runs on one
    thread while the multi-threaded column uses per-transaction commits.
    """
    single = replace(CFG, n_threads=1, ops_per_thread=48)

    def work():
        rows = []
        for bench in ("queue", "hashmap", "nstore-wr"):
            undo = run_once(bench, "strandweaver", "txn")
            redo1 = run_once(bench, "strandweaver", "redo-txn", group_commit=1)
            run_u1 = generate_for_design(WORKLOADS[bench], single, "strandweaver", "txn")
            u1 = Machine("strandweaver").run(run_u1.program)
            run_r4 = generate_for_design(
                WORKLOADS[bench], single, "strandweaver", "redo-txn", group_commit=4
            )
            r4 = Machine("strandweaver").run(run_r4.program)
            rows.append([
                bench,
                int(undo.cycles),
                int(redo1.cycles),
                int(u1.cycles),
                int(r4.cycles),
                u1.cycles / r4.cycles,
            ])
        return rows

    rows = benchmark.pedantic(work, rounds=1, iterations=1)
    print()
    print(render_table(
        "Undo vs redo logging on StrandWeaver (cycles)",
        ["benchmark", "undo 8t", "redo gc=1 8t", "undo 1t", "redo gc=4 1t",
         "gc=4 speedup"],
        rows,
        col_width=14,
    ))
    # Group commit must not be catastrophically slower than undo logging.
    assert all(row[5] > 0.5 for row in rows)


def test_write_coalescing_ablation(benchmark):
    def work():
        rows = []
        no_coalesce = replace(TABLE_I, pm=replace(TABLE_I.pm, coalesce_writes=False))
        for bench in ("queue", "nstore-wr"):
            on = run_once(bench, "strandweaver", "txn")
            off = run_once(bench, "strandweaver", "txn", machine_cfg=no_coalesce)
            rows.append([bench, int(on.cycles), int(off.cycles), off.cycles / on.cycles])
        return rows

    rows = benchmark.pedantic(work, rounds=1, iterations=1)
    print()
    print(render_table(
        "Controller write coalescing (StrandWeaver cycles)",
        ["benchmark", "coalescing on", "coalescing off", "slowdown off"],
        rows,
        col_width=16,
    ))
    # Without coalescing the repeated log-line flushes saturate the media.
    assert all(row[3] >= 1.0 for row in rows)


def test_steady_state_warmup_ablation(benchmark):
    def work():
        rows = []
        for bench in ("hashmap", "rbtree"):
            warm = run_once(bench, "intel-x86", "txn", warm=True)
            cold = run_once(bench, "intel-x86", "txn", warm=False)
            rows.append([bench, int(warm.cycles), int(cold.cycles),
                         cold.cycles / warm.cycles])
        return rows

    rows = benchmark.pedantic(work, rounds=1, iterations=1)
    print()
    print(render_table(
        "Steady-state warm L2 vs cold caches (Intel x86 cycles)",
        ["benchmark", "warm", "cold", "cold slowdown"],
        rows,
        col_width=14,
    ))
    assert all(row[3] >= 1.0 for row in rows)
