"""Table II: benchmark write intensity (CLWBs per thousand cycles)."""

from repro.harness import table2


def test_table2_ckc(benchmark, bench_ops):
    result = benchmark.pedantic(
        table2, kwargs={"ops_per_thread": bench_ops}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    ckc = {row[0]: row[2] for row in result.rows}
    # Shape: N-Store write-heavy is the most write-intensive benchmark.
    assert ckc["nstore-wr"] == max(ckc.values())
