"""Figure 9: sensitivity to the strand-buffer configuration."""

from repro.harness import figure9


def test_figure9(benchmark, bench_ops):
    result = benchmark.pedantic(
        figure9, kwargs={"ops_per_thread": bench_ops}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    s = result.summary
    # Shape: performance saturates around (4 buffers, 4 entries).
    assert s["(4,4)"] >= s["(1,1)"]
    assert s["(8,8)"] <= s["(4,4)"] * 1.1
