"""Figure 7: speedup of each hardware design over Intel x86."""

import pytest

from repro.harness import figure7, model_sensitivity


@pytest.mark.parametrize("model", ["txn", "atlas", "sfr"])
def test_figure7(benchmark, bench_ops, model):
    result = benchmark.pedantic(
        figure7, kwargs={"model": model, "ops_per_thread": bench_ops},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    geo = result.rows[-1]
    by = {result.columns[i]: geo[i] for i in range(1, len(result.columns))}
    assert by["strandweaver"] > 1.0
    assert by["non-atomic"] >= by["strandweaver"]


def test_model_sensitivity(benchmark, bench_ops):
    result = benchmark.pedantic(
        model_sensitivity, kwargs={"ops_per_thread": bench_ops},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    assert all(v > 1.0 for v in result.summary.values())
