"""Shared scale knob for the benchmark harness.

Set REPRO_BENCH_OPS to raise the per-thread operation count (default 16;
the paper uses ~6250 per thread).  Results are printed in the shape of
the corresponding paper table/figure.
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_ops() -> int:
    return int(os.environ.get("REPRO_BENCH_OPS", "16"))
