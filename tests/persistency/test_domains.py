"""Direct unit tests for the per-design persist domains."""

import pytest

from repro.core.ops import Op, OpKind
from repro.core.strandweaver import NoPersistQueueDomain, StrandWeaverDomain
from repro.persistency.base import OutstandingSet
from repro.persistency.hops import HopsDomain
from repro.persistency.intel_x86 import IntelX86Domain
from repro.persistency.nonatomic import NonAtomicDomain
from repro.sim.cache import CacheHierarchy
from repro.sim.config import MachineConfig
from repro.sim.engine import InOrderQueue
from repro.sim.memory import DRAMController, PMController
from repro.sim.stats import CoreStats


def make_domain(cls):
    cfg = MachineConfig(n_cores=1)
    pm = PMController(cfg.pm)
    hierarchy = CacheHierarchy(cfg, pm, DRAMController())
    stats = CoreStats()
    sq = InOrderQueue(cfg.core.store_queue_entries)
    return cls(0, cfg, hierarchy, pm, stats, sq), stats


def sfence():
    return Op(OpKind.SFENCE)


class TestOutstandingSet:
    def test_slot_waiting(self):
        s = OutstandingSet(2)
        s.add(100.0)
        s.add(200.0)
        assert s.wait_for_slot(0.0) == 100.0
        assert s.wait_for_slot(150.0) == 150.0

    def test_latest_and_clear(self):
        s = OutstandingSet(4)
        s.add(50.0)
        s.add(70.0)
        assert s.latest() == 70.0
        s.clear()
        assert s.latest() == 0.0


class TestIntelX86:
    def test_sfence_waits_for_clwb_ack(self):
        dom, stats = make_domain(IntelX86Domain)
        dom.clwb(0.0, 1)
        done = dom.fence(sfence(), 10.0)
        assert done >= 192.0
        assert stats.stall_fence > 0

    def test_sfence_with_nothing_outstanding_is_free(self):
        dom, stats = make_domain(IntelX86Domain)
        assert dom.fence(sfence(), 5.0) == 5.0
        assert stats.stall_fence == 0

    def test_rejects_strand_primitives(self):
        dom, _ = make_domain(IntelX86Domain)
        with pytest.raises(ValueError):
            dom.fence(Op(OpKind.PERSIST_BARRIER), 0.0)

    def test_clwb_window_backpressure(self):
        dom, stats = make_domain(IntelX86Domain)
        t = 0.0
        for _ in range(dom.CLWB_WINDOW + 4):
            t, _rob = dom.clwb(t, int(t) + 1)
        assert stats.stall_queue_full > 0


class TestHops:
    def test_ofence_does_not_stall(self):
        dom, stats = make_domain(HopsDomain)
        dom.clwb(0.0, 1)
        done = dom.fence(Op(OpKind.OFENCE), 5.0)
        assert done == 6.0  # one cycle, no wait
        assert stats.stall_fence == 0 and stats.stall_drain == 0

    def test_dfence_drains(self):
        dom, stats = make_domain(HopsDomain)
        dom.clwb(0.0, 1)
        done = dom.fence(Op(OpKind.DFENCE), 5.0)
        assert done >= 192.0
        assert stats.stall_drain > 0

    def test_epochs_chain_in_buffer(self):
        dom, _ = make_domain(HopsDomain)
        dom.clwb(0.0, 1)
        dom.fence(Op(OpKind.OFENCE), 1.0)
        dom.clwb(2.0, 2)
        # Draining both epochs takes at least two chained acks.
        assert dom.drain_all(3.0) >= 2 * 192.0


class TestStrandWeaver:
    def test_persist_barrier_gates_stores_on_issue_only(self):
        dom, stats = make_domain(StrandWeaverDomain)
        dom.clwb(0.0, 1)
        dom.fence(Op(OpKind.PERSIST_BARRIER), 1.0)
        # Issue was immediate (buffers empty), so stores are not gated to
        # the CLWB's *completion*.
        gated = dom.store_gate(2.0)
        assert gated < 100.0

    def test_join_strand_waits_for_completion(self):
        dom, stats = make_domain(StrandWeaverDomain)
        dom.clwb(0.0, 1)
        done = dom.fence(Op(OpKind.JOIN_STRAND), 2.0)
        assert done >= 192.0
        assert stats.stall_drain > 0

    def test_new_strand_rotates(self):
        dom, _ = make_domain(StrandWeaverDomain)
        assert dom.sbu.ongoing == 0
        dom.fence(Op(OpKind.NEW_STRAND), 0.0)
        assert dom.sbu.ongoing == 1

    def test_strands_overlap_chains(self):
        dom, _ = make_domain(StrandWeaverDomain)
        # chain on strand 0: clwb, PB, clwb
        dom.clwb(0.0, 1)
        dom.fence(Op(OpKind.PERSIST_BARRIER), 1.0)
        dom.clwb(2.0, 2)
        chained_drain = dom.sbu.buffers[0].drain_time(3.0)
        dom.fence(Op(OpKind.NEW_STRAND), 3.0)
        dom.clwb(4.0, 3)
        independent_drain = dom.sbu.buffers[1].drain_time(5.0)
        assert independent_drain < chained_drain

    def test_snoop_hook_registered(self):
        dom, _ = make_domain(StrandWeaverDomain)
        assert dom.hierarchy.drain_hooks[0] is not None

    def test_rejects_sfence(self):
        dom, _ = make_domain(StrandWeaverDomain)
        with pytest.raises(ValueError):
            dom.fence(sfence(), 0.0)


class TestNoPersistQueue:
    def test_clwb_occupies_store_queue(self):
        dom, _ = make_domain(NoPersistQueueDomain)
        dom.clwb(0.0, 1)
        # The store queue now holds the CLWB entry until it issues.
        assert dom.store_queue.drain_time(0.0) >= 0.0
        _, rob_done = dom.clwb(1.0, 2)
        assert rob_done >= 1.0


class TestNonAtomic:
    def test_fences_are_noops(self):
        dom, stats = make_domain(NonAtomicDomain)
        dom.clwb(0.0, 1)
        assert dom.fence(sfence(), 5.0) == 5.0
        assert stats.stall_fence == 0

    def test_drain_all_still_waits(self):
        dom, stats = make_domain(NonAtomicDomain)
        dom.clwb(0.0, 1)
        assert dom.drain_all(1.0) >= 192.0
