"""Cache-line atomicity validation of ``TraceCursor.store``."""

import pytest

from repro.core.ops import (
    CACHE_LINE,
    LineCrossError,
    OpKind,
    Program,
    TraceCursor,
    split_at_lines,
)


def _cursor():
    prog = Program(1)
    return prog, TraceCursor(prog, 0)


def test_split_at_lines_respects_boundaries():
    pieces = split_at_lines(CACHE_LINE - 8, b"\xab" * 24)
    assert [(a, len(d)) for a, d in pieces] == [(CACHE_LINE - 8, 8), (CACHE_LINE, 16)]
    assert b"".join(d for _, d in pieces) == b"\xab" * 24


def test_aligned_store_stays_single_op():
    prog, c = _cursor()
    op = c.store(0x1000, b"\x01" * CACHE_LINE)
    assert op.size == CACHE_LINE
    assert len(prog.threads[0].ops) == 1


def test_crossing_store_splits_by_default():
    prog, c = _cursor()
    first = c.store(0x1000 + CACHE_LINE - 4, b"\x22" * 12)
    ops = prog.threads[0].ops
    assert [op.kind for op in ops] == [OpKind.STORE, OpKind.STORE]
    assert first is ops[0]
    assert (ops[0].addr, ops[0].size) == (0x1000 + CACHE_LINE - 4, 4)
    assert (ops[1].addr, ops[1].size) == (0x1000 + CACHE_LINE, 8)
    assert ops[0].data + ops[1].data == b"\x22" * 12
    # every split piece is persist-atomic
    for op in ops:
        assert op.addr // CACHE_LINE == (op.addr + op.size - 1) // CACHE_LINE


def test_crossing_store_can_raise():
    _, c = _cursor()
    with pytest.raises(LineCrossError, match="spans 2 cache lines"):
        c.store(CACHE_LINE - 1, b"\x00\x01", on_line_cross="raise")


def test_crossing_store_can_be_allowed_for_torn_write_seeding():
    prog, c = _cursor()
    op = c.store(CACHE_LINE - 1, b"\x00\x01", on_line_cross="allow")
    assert op.size == 2
    assert len(prog.threads[0].ops) == 1


def test_bogus_policy_rejected():
    _, c = _cursor()
    with pytest.raises(ValueError, match="on_line_cross"):
        c.store(CACHE_LINE - 1, b"\x00\x01", on_line_cross="maybe")
    # non-crossing stores never consult the policy
    c.store(0, b"\x00", on_line_cross="maybe")
