"""Property-based tests over randomly generated strand programs.

Hypothesis drives random multi-threaded programs of stores and strand
primitives, and we check global invariants of the formal model:

* every sampled cut is consistent, and every visibility-order prefix too;
* materialised images respect strong persist atomicity — each location
  holds the value of some visibility-prefix of the writes to it;
* the persist DAG is acyclic by construction (edges point backwards);
* recovery is idempotent on crash images of real workloads.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.crash import frontier_cut, materialise, prefix_cut, random_cut
from repro.core.model import PersistDag
from repro.core.ops import Program, TraceCursor
from repro.lang.dialect import StrandDialect
from repro.lang.recovery import recover
from repro.lang.runtime import DirectAccessor
from repro.lang.txn import TxnModel
from repro.pmem.space import PersistentMemory
from repro.workloads import WORKLOADS, WorkloadConfig, generate

# One random "instruction" per element: (kind, slot) pairs.
_op = st.tuples(
    st.sampled_from(["store", "pb", "ns", "js", "lock", "unlock"]),
    st.integers(0, 3),
)


def build_program(per_thread_ops):
    """Materialise a random instruction list into a legal program."""
    prog = Program(len(per_thread_ops))
    value = 1
    for tid, ops in enumerate(per_thread_ops):
        cur = TraceCursor(prog, tid)
        held = []
        for kind, slot in ops:
            if kind == "store":
                cur.store(slot * 32, bytes([value % 255 + 1]) * 8)
                value += 1
            elif kind == "pb":
                cur.persist_barrier()
            elif kind == "ns":
                cur.new_strand()
            elif kind == "js":
                cur.join_strand()
            elif kind == "lock" and slot not in held:
                cur.lock(slot)
                held.append(slot)
            elif kind == "unlock" and held:
                cur.unlock(held.pop())
        for lock in reversed(held):
            cur.unlock(lock)
    return prog


@given(
    st.lists(st.lists(_op, max_size=12), min_size=1, max_size=3),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_random_cuts_of_random_programs_are_consistent(threads, seed):
    prog = build_program(threads)
    dag = PersistDag(prog)
    rng = random.Random(seed)
    assert dag.is_consistent_cut(random_cut(dag, rng, 0.5))
    assert dag.is_consistent_cut(frontier_cut(dag, rng, 0.3))
    for k in range(len(dag) + 1):
        assert dag.is_consistent_cut(prefix_cut(dag, k))


@given(
    st.lists(st.lists(_op, max_size=12), min_size=1, max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_edges_always_point_backwards(threads):
    dag = PersistDag(build_program(threads))
    for node in dag.nodes:
        assert all(pred < node.idx for pred in node.preds)


@given(
    st.lists(st.lists(_op, max_size=10), min_size=1, max_size=2),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_spa_prefix_per_location(threads, seed):
    """Each location's value in a crash image must be a visibility-prefix
    of the writes to it (strong persist atomicity)."""
    prog = build_program(threads)
    dag = PersistDag(prog)
    pm = PersistentMemory(1 << 12)
    pm.mark_clean()
    cut = random_cut(dag, random.Random(seed), 0.5)
    image = materialise(dag, cut, pm)
    # Group store nodes by address in visibility order.
    by_addr = {}
    for node in dag.nodes:
        if node.is_store:
            by_addr.setdefault(node.op.addr, []).append(node)
    for addr, writers in by_addr.items():
        observed = image.read(addr, 8)
        candidates = [b"\x00" * 8] + [w.op.data for w in writers]
        assert observed in candidates
        # The observed value must be the LAST included writer's value.
        included = [w for w in writers if w.idx in cut]
        expected = included[-1].op.data if included else b"\x00" * 8
        assert observed == expected


@pytest.mark.parametrize("workload_name", ["queue", "arrayswap"])
def test_recovery_is_idempotent(workload_name):
    cfg = WorkloadConfig(n_threads=2, ops_per_thread=8, log_entries=512,
                         pm_size=1 << 20)
    run = generate(WORKLOADS[workload_name], cfg, StrandDialect(),
                   TxnModel(durable_commit=True))
    dag = PersistDag(run.program)
    rng = random.Random(17)
    for _ in range(6):
        image = materialise(dag, random_cut(dag, rng, 0.5), run.space)
        recover(image, run.layout)
        once = image.snapshot()
        recover(image, run.layout)
        assert image.snapshot() == once
        run.workload.check(DirectAccessor(image))
