"""Timing-model tests for the strand buffer unit and persist queue."""

import pytest

from repro.core.persist_queue import PersistQueue
from repro.core.strand_buffer import StrandBuffer, StrandBufferUnit
from repro.sim.config import PMConfig
from repro.sim.memory import PMController


def make_pm():
    return PMController(PMConfig())


def no_flush(t, line):
    return t


def test_strand_buffer_concurrent_without_barrier():
    buf = StrandBuffer(4, make_pm(), no_flush)
    _, r1 = buf.insert_clwb(0.0, 1)
    _, r2 = buf.insert_clwb(0.0, 2)
    # Both complete roughly one controller latency after issue.
    assert r2 - r1 < 192


def test_strand_buffer_barrier_chains():
    buf = StrandBuffer(4, make_pm(), no_flush)
    _, r1 = buf.insert_clwb(0.0, 1)
    buf.insert_barrier(0.0)
    _, r2 = buf.insert_clwb(0.0, 2)
    assert r2 >= r1 + 192  # second waits for first's ack


def test_strand_buffer_capacity_delays_issue():
    buf = StrandBuffer(1, make_pm(), no_flush)
    issue1, r1 = buf.insert_clwb(0.0, 1)
    issue2, _ = buf.insert_clwb(0.0, 2)
    assert issue1 == 0.0
    assert issue2 >= r1  # waits for the single entry to retire


def test_strand_buffer_line_drain_time():
    buf = StrandBuffer(4, make_pm(), no_flush)
    _, retire = buf.insert_clwb(0.0, 7)
    assert buf.line_drain_time(7, 0.0) == retire
    assert buf.line_drain_time(99, 0.0) == 0.0
    # After the retire time has passed, no stall remains.
    assert buf.line_drain_time(7, retire + 1) == retire + 1


def test_unit_round_robin_rotation():
    unit = StrandBufferUnit(4, 4, make_pm(), no_flush)
    assert unit.ongoing == 0
    unit.new_strand(0.0)
    assert unit.ongoing == 1
    for _ in range(3):
        unit.new_strand(0.0)
    assert unit.ongoing == 0


def test_unit_strands_drain_concurrently():
    unit = StrandBufferUnit(2, 4, make_pm(), no_flush)
    unit.clwb(0.0, 1)
    unit.persist_barrier(0.0)
    _, chained = unit.clwb(0.0, 2)  # chained behind the barrier
    unit.new_strand(0.0)
    _, independent = unit.clwb(0.0, 3)
    assert independent < chained


def test_unit_drain_time_covers_all_buffers():
    unit = StrandBufferUnit(2, 4, make_pm(), no_flush)
    _, r1 = unit.clwb(0.0, 1)
    unit.new_strand(0.0)
    _, r2 = unit.clwb(0.0, 2)
    assert unit.drain_time(0.0) == max(r1, r2)


def test_unit_rejects_zero_buffers():
    with pytest.raises(ValueError):
        StrandBufferUnit(0, 4, make_pm(), no_flush)
    with pytest.raises(ValueError):
        StrandBuffer(0, make_pm(), no_flush)


def test_persist_queue_capacity():
    pq = PersistQueue(2)
    pq.push(0.0, 500.0)
    pq.push(0.0, 600.0)
    # Full until the earliest completion frees a slot.
    assert pq.earliest_slot(0.0) == 500.0
    assert pq.earliest_slot(550.0) == 550.0


def test_persist_queue_out_of_order_reclaim():
    pq = PersistQueue(2)
    pq.push(0.0, 1000.0)  # slow strand
    pq.push(0.0, 100.0)  # fast strand completes first
    # The fast completion frees a slot even though it was pushed later.
    assert pq.earliest_slot(0.0) == 100.0


def test_persist_queue_drain_time():
    pq = PersistQueue(4)
    pq.push(0.0, 300.0)
    pq.push(0.0, 200.0)
    assert pq.drain_time(0.0) == 300.0
    assert pq.drain_time(400.0) == 400.0


def test_persist_queue_rejects_bad_capacity():
    with pytest.raises(ValueError):
        PersistQueue(0)
