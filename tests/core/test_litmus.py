"""Figure 2 litmus tests: allowed and forbidden crash states.

Every sub-figure of Figure 2 is encoded as a program; we enumerate all
consistent cuts of its persist DAG and check that the paper's forbidden
PM state is unreachable while representative allowed states are reachable.
"""

import pytest

from repro.core.crash import reachable_values
from repro.core.model import PersistDag
from repro.core.ops import Program, TraceCursor
from repro.pmem.space import PersistentMemory

A, B, C = 0, 64, 128
ONE = b"\x01" + b"\x00" * 7
TWO = b"\x02" + b"\x00" * 7


def states(prog):
    pm = PersistentMemory(4096)
    pm.mark_clean()
    dag = PersistDag(prog)
    return reachable_values(
        dag,
        pm,
        lambda img: (img.read_u64(A), img.read_u64(B), img.read_u64(C)),
    )


def test_fig2ab_intra_strand_barrier():
    # St A; PB; St B; NS; St C — forbidden: B without A.
    prog = Program(1)
    c = TraceCursor(prog, 0)
    c.store(A, ONE)
    c.persist_barrier()
    c.store(B, ONE)
    c.new_strand()
    c.store(C, ONE)
    out = states(prog)
    assert all(not (a == 0 and b == 1) for a, b, _ in out)
    assert (0, 0, 1) in out  # C persists alone: strands are independent
    assert (1, 0, 0) in out
    assert (1, 1, 1) in out


def test_fig2cd_join_strand():
    # St A; NS; St B; JS; St C — forbidden: C without A and B.
    prog = Program(1)
    c = TraceCursor(prog, 0)
    c.store(A, ONE)
    c.new_strand()
    c.store(B, ONE)
    c.join_strand()
    c.store(C, ONE)
    out = states(prog)
    for a, b, cc in out:
        if cc == 1:
            assert a == 1 and b == 1
    assert (1, 0, 0) in out
    assert (0, 1, 0) in out
    assert (1, 1, 1) in out


def test_fig2ef_spa_with_transitivity():
    # St A; NS; St A(=2); PB; St B — forbidden: B persists without first A.
    prog = Program(1)
    c = TraceCursor(prog, 0)
    c.store(A, ONE)
    c.new_strand()
    c.store(A, TWO)
    c.persist_barrier()
    c.store(B, ONE)
    out = states(prog)
    for a, b, _ in out:
        if b == 1:
            assert a == 2  # both stores of A persisted before B
    assert (1, 0, 0) in out
    assert (2, 1, 0) in out


def test_fig2gh_loads_do_not_order():
    # St A; NS; Ld A; PB; St B — state (A=0, B=1) is ALLOWED.
    prog = Program(1)
    c = TraceCursor(prog, 0)
    c.store(A, ONE)
    c.new_strand()
    c.load(A, 8)
    c.persist_barrier()
    c.store(B, ONE)
    out = states(prog)
    assert (0, 1, 0) in out


def test_fig2ij_inter_thread_spa():
    # Thread 0: St A; NS; St B.  Thread 1 (later in VMO): St B(=2); PB; St C.
    # Forbidden: C persisted while thread 0's B did not.
    prog = Program(2)
    t0 = TraceCursor(prog, 0)
    t1 = TraceCursor(prog, 1)
    t0.store(A, ONE)
    t0.new_strand()
    t0.store(B, ONE)
    t1.store(B, TWO)
    t1.persist_barrier()
    t1.store(C, ONE)
    out = states(prog)
    for a, b, cc in out:
        if cc == 1:
            assert b == 2  # both B stores persisted (SPA + transitivity)
        assert not (b == 2 and a == 0 and cc == 1) or b == 2
    # A remains independent of thread 1 entirely:
    assert any(a == 0 and cc == 1 for a, b, cc in out)


def test_fig2ij_thread0_strands_concurrent():
    prog = Program(2)
    t0 = TraceCursor(prog, 0)
    t1 = TraceCursor(prog, 1)
    t0.store(A, ONE)
    t0.new_strand()
    t0.store(B, ONE)
    t1.store(B, TWO)
    t1.persist_barrier()
    t1.store(C, ONE)
    out = states(prog)
    assert (0, 1, 0) in out  # B without A on thread 0
    assert (1, 0, 0) in out  # A without B


def test_sfence_litmus_total_order():
    # Intel dialect: St A; CLWB; SFENCE; St B — forbidden: B without A.
    prog = Program(1)
    c = TraceCursor(prog, 0)
    c.store(A, ONE)
    c.clwb(A)
    c.sfence()
    c.store(B, ONE)
    out = states(prog)
    assert all(not (a == 0 and b == 1) for a, b, _ in out)


def test_hops_ofence_orders_dfence_drains():
    prog = Program(1)
    c = TraceCursor(prog, 0)
    c.store(A, ONE)
    c.ofence()
    c.store(B, ONE)
    c.dfence()
    c.store(C, ONE)
    out = states(prog)
    for a, b, cc in out:
        if b == 1:
            assert a == 1
        if cc == 1:
            assert a == 1 and b == 1


def test_nonatomic_everything_reachable():
    prog = Program(1)
    c = TraceCursor(prog, 0)
    c.store(A, ONE)
    c.store(B, ONE)
    c.store(C, ONE)
    out = states(prog)
    assert len(out) == 8  # every subset of {A, B, C}


def test_commit_marker_ordering_litmus():
    """The Figure 6 commit protocol shape: marker must never be exposed
    without the drained updates, and invalidations never without the
    marker."""
    prog = Program(1)
    c = TraceCursor(prog, 0)
    c.store(A, ONE, label="update")
    c.join_strand()
    c.store(B, ONE, label="marker")
    c.persist_barrier()
    c.store(C, ONE, label="invalidate")
    out = states(prog)
    for a, b, cc in out:
        if b == 1:  # marker persisted => update durable
            assert a == 1
        if cc == 1:  # invalidation persisted => marker durable
            assert b == 1
