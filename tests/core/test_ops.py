"""Unit tests for the micro-op IR."""

import pytest

from repro.core.ops import (
    CACHE_LINE,
    Op,
    OpKind,
    Program,
    TraceCursor,
    line_of,
    lines_of,
)


def test_line_of():
    assert line_of(0) == 0
    assert line_of(63) == 0
    assert line_of(64) == 1
    assert line_of(129) == 2


def test_lines_of_within_one_line():
    assert lines_of(0, 8) == (0,)
    assert lines_of(56, 8) == (0,)


def test_lines_of_spanning_lines():
    assert lines_of(60, 8) == (0, 1)
    assert lines_of(0, 129) == (0, 1, 2)


def test_lines_of_empty():
    assert lines_of(10, 0) == ()


def test_store_op_roundtrip():
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    op = cur.store(0x100, b"\x01\x02")
    assert op.kind is OpKind.STORE
    assert op.addr == 0x100
    assert op.size == 2
    assert op.data == b"\x01\x02"
    assert op.tid == 0
    assert op.seq == 0
    assert op.gseq == 0


def test_gseq_is_global_across_threads():
    prog = Program(2)
    a = TraceCursor(prog, 0)
    b = TraceCursor(prog, 1)
    op0 = a.store(0, b"\x00")
    op1 = b.store(64, b"\x00")
    op2 = a.load(0, 8)
    assert [op0.gseq, op1.gseq, op2.gseq] == [0, 1, 2]
    assert [op.gseq for op in prog.all_ops()] == [0, 1, 2]


def test_touches_overlap():
    s1 = Op(OpKind.STORE, addr=0, size=8)
    s2 = Op(OpKind.STORE, addr=4, size=8)
    s3 = Op(OpKind.STORE, addr=8, size=8)
    assert s1.touches(s2)
    assert not s1.touches(s3)
    assert s2.touches(s3)


def test_touches_requires_addressed_kinds():
    fence = Op(OpKind.SFENCE)
    store = Op(OpKind.STORE, addr=0, size=8)
    assert not fence.touches(store)
    assert not store.touches(fence)


def test_lock_order_recorded():
    prog = Program(2)
    a = TraceCursor(prog, 0)
    b = TraceCursor(prog, 1)
    a.lock(7)
    b.lock(7)
    a.lock(9)
    assert prog.lock_order == {7: [0, 1], 9: [0]}


def test_counts_histogram():
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    cur.store(0, b"\x00")
    cur.clwb(0)
    cur.clwb(64)
    cur.sfence()
    counts = prog.counts()
    assert counts == {"STORE": 1, "CLWB": 2, "SFENCE": 1}


def test_pm_stores_sorted_by_gseq():
    prog = Program(2)
    a = TraceCursor(prog, 0)
    b = TraceCursor(prog, 1)
    b.store(64, b"\x01")
    a.store(0, b"\x02")
    stores = prog.pm_stores()
    assert [s.tid for s in stores] == [1, 0]


def test_cursor_emits_all_strand_primitives():
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    assert cur.persist_barrier().kind is OpKind.PERSIST_BARRIER
    assert cur.new_strand().kind is OpKind.NEW_STRAND
    assert cur.join_strand().kind is OpKind.JOIN_STRAND
    assert cur.ofence().kind is OpKind.OFENCE
    assert cur.dfence().kind is OpKind.DFENCE
    assert cur.compute(10).cycles == 10


def test_region_tag_propagates():
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    cur.region = 5
    op = cur.store(0, b"\x00")
    assert op.region == 5
