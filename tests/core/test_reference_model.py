"""Cross-validation of the persist DAG against a brute-force reference.

The production model (:mod:`repro.core.model`) builds a *sparse*
generating set of PMO edges (nearest-non-empty sub-epoch groups, per-byte
last writers, virtual sync nodes).  This test implements Equations 1-4
literally and quadratically — for every pair of stores, decide order
straight from the definitions, then take the transitive closure — and
checks both models agree on ``ordered_before`` for every pair, on
randomly generated lock-free programs.
"""

import random
from typing import List

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import SYNC_DRAIN_KINDS, PersistDag, annotate_thread
from repro.core.ops import Op, OpKind, Program, TraceCursor


def reference_order(program: Program):
    """O(n^3) literal implementation of Eqs. 1-4 (no locks supported)."""
    stores = program.pm_stores()
    n = len(stores)
    # Label stores via the reference annotator.
    labels = {}
    for trace in program.threads:
        anns = annotate_thread(trace.ops)
        for op, ann in zip(trace.ops, anns):
            if op.kind is OpKind.STORE:
                labels[id(op)] = ann
    edge = [[False] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            a, b = stores[i], stores[j]
            if a.gseq >= b.gseq:
                continue
            la, lb = labels[id(a)], labels[id(b)]
            if a.tid == b.tid:
                # Eq. 1: same strand instance, barrier between them.
                if la.strand == lb.strand and la.sub_epoch < lb.sub_epoch:
                    edge[i][j] = True
                # Eq. 2: a JoinStrand between them.
                if la.js_epoch < lb.js_epoch:
                    edge[i][j] = True
            # Eq. 3: byte overlap, visibility order.
            if a.addr < b.addr + b.size and b.addr < a.addr + a.size:
                edge[i][j] = True
    # Eq. 4: transitive closure (Floyd-Warshall style).
    for k in range(n):
        for i in range(n):
            if edge[i][k]:
                for j in range(n):
                    if edge[k][j]:
                        edge[i][j] = True
    return stores, edge


def dag_matrix(program: Program, stores):
    dag = PersistDag(program)
    index = {}
    for node in dag.nodes:
        if node.is_store:
            index[id(node.op)] = node.idx
    n = len(stores)
    out = [[False] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            if i != j:
                out[i][j] = dag.ordered_before(
                    index[id(stores[i])], index[id(stores[j])]
                )
    return out


_op = st.tuples(
    st.sampled_from(["store", "store", "pb", "ns", "js"]),
    st.integers(0, 2),
)


def build(threads) -> Program:
    prog = Program(len(threads))
    val = 1
    for tid, ops in enumerate(threads):
        cur = TraceCursor(prog, tid)
        for kind, slot in ops:
            if kind == "store":
                cur.store(slot * 16, bytes([val % 255 + 1]) * 8)
                val += 1
            elif kind == "pb":
                cur.persist_barrier()
            elif kind == "ns":
                cur.new_strand()
            elif kind == "js":
                cur.join_strand()
    return prog


@given(st.lists(st.lists(_op, max_size=10), min_size=1, max_size=2))
@settings(max_examples=120, deadline=None)
def test_dag_matches_literal_eqs_1_to_4(threads):
    prog = build(threads)
    stores, ref = reference_order(prog)
    got = dag_matrix(prog, stores)
    for i in range(len(stores)):
        for j in range(len(stores)):
            if i == j:
                continue
            assert got[i][j] == ref[i][j], (
                f"disagreement on stores {i}->{j}: dag={got[i][j]} "
                f"reference={ref[i][j]}\n"
                f"i={stores[i]!r} j={stores[j]!r}"
            )


def test_reference_on_known_program():
    prog = Program(1)
    c = TraceCursor(prog, 0)
    c.store(0, b"\x01" * 8)
    c.persist_barrier()
    c.store(16, b"\x01" * 8)
    c.new_strand()
    c.store(32, b"\x01" * 8)
    stores, ref = reference_order(prog)
    assert ref[0][1] and not ref[0][2] and not ref[1][2]
