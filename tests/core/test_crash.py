"""Crash-state generation: cut enumeration, sampling, materialisation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.crash import (
    enumerate_cuts,
    frontier_cut,
    materialise,
    prefix_cut,
    random_cut,
)
from repro.core.model import PersistDag
from repro.core.ops import Program, TraceCursor
from repro.pmem.space import PersistentMemory


def chain_program(n=4, barrier=True):
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    for i in range(n):
        cur.store(i * 64, bytes([i + 1]) + b"\x00" * 7, label=f"S{i}")
        if barrier and i < n - 1:
            cur.persist_barrier()
    return prog


def test_enumerate_cuts_chain_count():
    # A fully ordered chain of n stores has exactly n+1 cuts.
    dag = PersistDag(chain_program(4, barrier=True))
    cuts = list(enumerate_cuts(dag))
    assert len(cuts) == 5


def test_enumerate_cuts_independent_count():
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    for i in range(3):
        cur.store(i * 64, bytes([1] * 8))
        cur.new_strand()
    dag = PersistDag(prog)
    assert len(list(enumerate_cuts(dag))) == 8


def test_enumerate_cuts_limit():
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    for i in range(20):
        cur.store(i * 64, b"\x01" * 8)
        cur.new_strand()
    dag = PersistDag(prog)
    with pytest.raises(ValueError):
        list(enumerate_cuts(dag, limit=100))


def test_prefix_cut_is_consistent():
    dag = PersistDag(chain_program(4))
    for k in range(len(dag) + 1):
        assert dag.is_consistent_cut(prefix_cut(dag, k))


@given(st.integers(min_value=0, max_value=2**32 - 1), st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None)
def test_random_cut_always_consistent(seed, density):
    dag = PersistDag(chain_program(5))
    cut = random_cut(dag, random.Random(seed), density)
    assert dag.is_consistent_cut(cut)


@given(st.integers(min_value=0, max_value=2**32 - 1), st.floats(0.0, 0.9))
@settings(max_examples=40, deadline=None)
def test_frontier_cut_always_consistent(seed, drop):
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    for i in range(6):
        cur.store((i % 3) * 64, bytes([i + 1]) + b"\x00" * 7)
        if i % 2:
            cur.persist_barrier()
        else:
            cur.new_strand()
    dag = PersistDag(prog)
    cut = frontier_cut(dag, random.Random(seed), drop)
    assert dag.is_consistent_cut(cut)


def test_materialise_applies_in_visibility_order():
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    cur.store(0, b"\x01" + b"\x00" * 7, label="first")
    cur.persist_barrier()
    cur.store(0, b"\x02" + b"\x00" * 7, label="second")
    dag = PersistDag(prog)
    pm = PersistentMemory(4096)
    pm.mark_clean()
    img = materialise(dag, {0, 1}, pm)
    assert img.read_u64(0) == 2
    img = materialise(dag, {0}, pm)
    assert img.read_u64(0) == 1


def test_materialise_ignores_virtual_nodes():
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    cur.store(0, b"\x01" + b"\x00" * 7)
    cur.join_strand()
    cur.store(64, b"\x01" + b"\x00" * 7)
    dag = PersistDag(prog)
    pm = PersistentMemory(4096)
    pm.mark_clean()
    full = materialise(dag, set(range(len(dag))), pm)
    assert full.read_u64(0) == 1 and full.read_u64(64) == 1


def test_materialise_does_not_mutate_source():
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    cur.store(0, b"\xff" * 8)
    dag = PersistDag(prog)
    pm = PersistentMemory(4096)
    pm.mark_clean()
    materialise(dag, {0}, pm)
    assert pm.read_u64(0) == 0
