"""Tests for the exhaustive/sampled crash-consistency verifier."""

import pytest

from repro.core.ops import Program, TraceCursor
from repro.core.verify import verify_exhaustive, verify_sampled
from repro.lang.dialect import NonAtomicDialect, StrandDialect
from repro.lang.logbuf import LogLayout
from repro.lang.runtime import PmRuntime
from repro.lang.txn import TxnModel
from repro.pmem.space import PersistentMemory


def paired_update_program(ordered: bool):
    """A two-word failure-atomic update with/without the pair barrier."""
    layout = LogLayout(base=64, capacity=16, n_threads=1)
    space = PersistentMemory(layout.end + 1024)
    dialect = StrandDialect() if ordered else NonAtomicDialect()
    rt = PmRuntime(space, layout, dialect, TxnModel(durable_commit=True), 1)
    addr = (layout.end + 63) & ~63
    space.mark_clean()
    rt.lock(0, 1)
    rt.txn_begin(0)
    rt.store(0, addr, b"\x01" * 8)
    rt.store(0, addr + 8, b"\x01" * 8)
    rt.txn_end(0)
    rt.unlock(0, 1)
    rt.finish(0)

    def invariant(image):
        a = image.read_u64(addr)
        b = image.read_u64(addr + 8)
        assert (a, b) in ((0, 0), (0x0101010101010101,) * 2), (
            f"torn update: a={a:#x} b={b:#x}"
        )

    return rt.program, space, layout, invariant


def test_exhaustive_passes_for_ordered_protocol():
    prog, space, layout, inv = paired_update_program(ordered=True)
    result = verify_exhaustive(prog, space, inv, layout)
    assert result.ok
    assert result.checked > 10
    result.raise_on_failure()  # no-op when ok


def test_exhaustive_catches_unordered_protocol():
    prog, space, layout, inv = paired_update_program(ordered=False)
    result = verify_exhaustive(prog, space, inv, layout)
    assert not result.ok
    with pytest.raises(AssertionError):
        result.raise_on_failure()


def test_sampled_mode():
    prog, space, layout, inv = paired_update_program(ordered=True)
    result = verify_sampled(prog, space, inv, layout, samples=30)
    assert result.ok
    assert result.checked == 30


def test_verify_without_recovery():
    # No layout: the invariant sees raw crash images (litmus-style use).
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    space = PersistentMemory(1024)
    space.mark_clean()
    cur.store(0, b"\x01" * 8, label="A")
    cur.persist_barrier()
    cur.store(64, b"\x01" * 8, label="B")

    def inv(image):
        assert not (image.read_u64(0) == 0 and image.read_u64(64) != 0)

    assert verify_exhaustive(prog, space, inv).ok
