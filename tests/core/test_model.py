"""Unit tests for the formal strand persistency model (Eqs. 1-4)."""

import pytest

from repro.core.model import PersistDag, annotate_thread
from repro.core.ops import Op, OpKind, Program, TraceCursor


def build(emit):
    prog = Program(1)
    emit(TraceCursor(prog, 0))
    return PersistDag(prog)


def test_annotate_thread_strands_and_epochs():
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    cur.store(0, b"\x00")  # strand 0, epoch 0
    cur.persist_barrier()
    cur.store(64, b"\x00")  # strand 0, epoch 1
    cur.new_strand()
    cur.store(128, b"\x00")  # strand 1, epoch 0
    labels = [l for l in annotate_thread(prog.threads[0].ops) if l is not None]
    assert (labels[0].strand, labels[0].sub_epoch) == (0, 0)
    assert (labels[1].strand, labels[1].sub_epoch) == (0, 1)
    assert (labels[2].strand, labels[2].sub_epoch) == (1, 0)


def test_annotate_join_strand_bumps_js_epoch():
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    cur.store(0, b"\x00")
    cur.join_strand()
    cur.store(64, b"\x00")
    labels = [l for l in annotate_thread(prog.threads[0].ops) if l is not None]
    assert labels[0].js_epoch == 0
    assert labels[1].js_epoch == 1


def test_sfence_acts_as_barrier_and_drain():
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    cur.store(0, b"\x00")
    cur.sfence()
    cur.store(64, b"\x00")
    labels = [l for l in annotate_thread(prog.threads[0].ops) if l is not None]
    assert labels[1].sub_epoch == labels[0].sub_epoch + 1
    assert labels[1].js_epoch == labels[0].js_epoch + 1


def test_persist_barrier_orders_within_strand():
    dag = build(lambda c: (c.store(0, b"\x01", label="A"),
                           c.persist_barrier(),
                           c.store(64, b"\x01", label="B")))
    a, b = dag.find("A"), dag.find("B")
    assert dag.ordered_before(a.idx, b.idx)
    assert not dag.ordered_before(b.idx, a.idx)


def test_new_strand_clears_ordering():
    dag = build(lambda c: (c.store(0, b"\x01", label="A"),
                           c.persist_barrier(),
                           c.new_strand(),
                           c.store(64, b"\x01", label="B")))
    assert not dag.ordered_before(dag.find("A").idx, dag.find("B").idx)


def test_no_barrier_no_order():
    dag = build(lambda c: (c.store(0, b"\x01", label="A"),
                           c.store(64, b"\x01", label="B")))
    assert not dag.ordered_before(dag.find("A").idx, dag.find("B").idx)


def test_barrier_does_not_order_across_strands():
    # A ; NS ; B ; PB ; C  — the barrier orders B before C, not A before C.
    dag = build(lambda c: (c.store(0, b"\x01", label="A"),
                           c.new_strand(),
                           c.store(64, b"\x01", label="B"),
                           c.persist_barrier(),
                           c.store(128, b"\x01", label="C")))
    assert dag.ordered_before(dag.find("B").idx, dag.find("C").idx)
    assert not dag.ordered_before(dag.find("A").idx, dag.find("C").idx)


def test_join_strand_orders_across_strands():
    dag = build(lambda c: (c.store(0, b"\x01", label="A"),
                           c.new_strand(),
                           c.store(64, b"\x01", label="B"),
                           c.join_strand(),
                           c.store(128, b"\x01", label="C")))
    assert dag.ordered_before(dag.find("A").idx, dag.find("C").idx)
    assert dag.ordered_before(dag.find("B").idx, dag.find("C").idx)
    assert not dag.ordered_before(dag.find("A").idx, dag.find("B").idx)


def test_spa_orders_same_location(pm=None):
    dag = build(lambda c: (c.store(0, b"\x01", label="A1"),
                           c.new_strand(),
                           c.store(0, b"\x02", label="A2")))
    assert dag.ordered_before(dag.find("A1").idx, dag.find("A2").idx)


def test_spa_partial_overlap():
    dag = build(lambda c: (c.store(0, b"\x01" * 8, label="A"),
                           c.new_strand(),
                           c.store(4, b"\x02" * 8, label="B")))
    assert dag.ordered_before(dag.find("A").idx, dag.find("B").idx)


def test_spa_no_overlap_no_order():
    dag = build(lambda c: (c.store(0, b"\x01" * 4, label="A"),
                           c.new_strand(),
                           c.store(4, b"\x02" * 4, label="B")))
    assert not dag.ordered_before(dag.find("A").idx, dag.find("B").idx)


def test_transitivity_through_spa_and_barrier():
    # Fig. 2(e): St A (strand 0); NS; St A; PB; St B  =>  A0 <=p B.
    dag = build(lambda c: (c.store(0, b"\x01", label="A0"),
                           c.new_strand(),
                           c.store(0, b"\x02", label="A1"),
                           c.persist_barrier(),
                           c.store(64, b"\x01", label="B")))
    assert dag.ordered_before(dag.find("A0").idx, dag.find("B").idx)


def test_loads_do_not_create_spa_order():
    # Fig. 2(g): a load of A on strand 1 does not order B after A.
    dag = build(lambda c: (c.store(0, b"\x01", label="A"),
                           c.new_strand(),
                           c.load(0, 8),
                           c.persist_barrier(),
                           c.store(64, b"\x01", label="B")))
    assert not dag.ordered_before(dag.find("A").idx, dag.find("B").idx)


def test_inter_thread_spa():
    # Fig. 2(i): conflicting stores to B across threads, visibility order
    # thread0 first, then thread1's PB orders C after it.
    prog = Program(2)
    t0 = TraceCursor(prog, 0)
    t1 = TraceCursor(prog, 1)
    t0.store(0, b"\x01", label="A")
    t0.new_strand()
    t0.store(64, b"\x01", label="B0")
    t1.store(64, b"\x02", label="B1")
    t1.persist_barrier()
    t1.store(128, b"\x01", label="C")
    dag = PersistDag(prog)
    assert dag.ordered_before(dag.find("B0").idx, dag.find("B1").idx)
    assert dag.ordered_before(dag.find("B0").idx, dag.find("C").idx)
    assert not dag.ordered_before(dag.find("A").idx, dag.find("C").idx)


def test_durability_transfer_through_lock_handoff():
    # Thread 0 drains (JS) then releases; thread 1 acquires and stores.
    # Thread 1's store in a cut forces thread 0's pre-drain store in.
    prog = Program(2)
    t0 = TraceCursor(prog, 0)
    t1 = TraceCursor(prog, 1)
    t0.lock(1)
    t0.store(0, b"\x01", label="A")
    t0.join_strand()
    t0.unlock(1)
    t1.lock(1)
    t1.store(64, b"\x01", label="B")
    t1.unlock(1)
    dag = PersistDag(prog)
    assert dag.ordered_before(dag.find("A").idx, dag.find("B").idx)


def test_no_durability_transfer_without_drain():
    prog = Program(2)
    t0 = TraceCursor(prog, 0)
    t1 = TraceCursor(prog, 1)
    t0.lock(1)
    t0.store(0, b"\x01", label="A")
    t0.unlock(1)  # no JoinStrand before release
    t1.lock(1)
    t1.store(64, b"\x01", label="B")
    t1.unlock(1)
    dag = PersistDag(prog)
    assert not dag.ordered_before(dag.find("A").idx, dag.find("B").idx)


def test_undrained_tail_not_transferred():
    # Only persists before the *last* drain are durable at hand-off.
    prog = Program(2)
    t0 = TraceCursor(prog, 0)
    t1 = TraceCursor(prog, 1)
    t0.lock(1)
    t0.store(0, b"\x01", label="A")
    t0.join_strand()
    t0.store(64, b"\x01", label="T")  # after the drain
    t0.unlock(1)
    t1.lock(1)
    t1.store(128, b"\x01", label="B")
    t1.unlock(1)
    dag = PersistDag(prog)
    assert dag.ordered_before(dag.find("A").idx, dag.find("B").idx)
    assert not dag.ordered_before(dag.find("T").idx, dag.find("B").idx)


def test_consistent_cut_checks_predecessors():
    dag = build(lambda c: (c.store(0, b"\x01", label="A"),
                           c.persist_barrier(),
                           c.store(64, b"\x01", label="B")))
    a, b = dag.find("A").idx, dag.find("B").idx
    assert dag.is_consistent_cut({a})
    assert dag.is_consistent_cut({a, b})
    assert not dag.is_consistent_cut({b})


def test_downward_close():
    dag = build(lambda c: (c.store(0, b"\x01", label="A"),
                           c.persist_barrier(),
                           c.store(64, b"\x01", label="B"),
                           c.persist_barrier(),
                           c.store(128, b"\x01", label="C")))
    cut = dag.downward_close({dag.find("C").idx})
    assert dag.find("A").idx in cut
    assert dag.find("B").idx in cut
    assert dag.is_consistent_cut(cut)


def test_find_raises_on_missing_label():
    dag = build(lambda c: c.store(0, b"\x01", label="A"))
    with pytest.raises(KeyError):
        dag.find("missing")


def test_edges_point_to_lower_indices():
    prog = Program(2)
    t0 = TraceCursor(prog, 0)
    t1 = TraceCursor(prog, 1)
    for i in range(6):
        (t0 if i % 2 else t1).store(i * 64, bytes([i]))
        (t0 if i % 2 else t1).persist_barrier()
    dag = PersistDag(prog)
    for node in dag.nodes:
        assert all(p < node.idx for p in node.preds)
