"""Recovery must be idempotent: a crash *during* recovery is survivable.

Real systems can lose power again while recovering, so ``recover`` must
be safe to re-run on its own output: the second pass must find a clean
log (empty report) and leave the image bytes untouched.  We check this
over sampled crash cuts for every benchmark, and over machine-state
crash images from the chaos harness.
"""

import random

import pytest

from repro.core.crash import frontier_cut, materialise, prefix_cut, random_cut
from repro.core.model import PersistDag
from repro.lang.dialect import StrandDialect
from repro.lang.recovery import recover
from repro.lang.txn import TxnModel
from repro.workloads import WORKLOADS, WorkloadConfig, generate

CFG = WorkloadConfig(
    n_threads=3, ops_per_thread=8, log_entries=1024, pm_size=1 << 20
)


def assert_second_recovery_is_noop(image, layout):
    first = recover(image, layout)
    after_first = image.snapshot()
    second = recover(image, layout)
    assert image.snapshot() == after_first, (
        "second recovery changed the image"
    )
    # Empty report = no actions.  (committed_upto may echo stale commit
    # markers left in invalidated entries; that is observational only —
    # pass 2 ignores invalid entries, so nothing replays.)
    assert second.n_rolled_back == 0, second.rolled_back
    assert second.n_replayed == 0, second.replayed
    assert not second.skipped_committed, second.skipped_committed
    return first


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_recover_twice_on_sampled_cuts(workload_name):
    run = generate(
        WORKLOADS[workload_name],
        CFG,
        StrandDialect(),
        TxnModel(durable_commit=True),
    )
    dag = PersistDag(run.program)
    rng = random.Random(2024)
    cuts = [random_cut(dag, rng, density=0.5) for _ in range(4)]
    cuts += [frontier_cut(dag, rng, drop=0.25) for _ in range(4)]
    cuts += [prefix_cut(dag, k) for k in (0, len(dag) // 2, len(dag))]
    did_work = 0
    for cut in cuts:
        image = materialise(dag, cut, run.space)
        first = assert_second_recovery_is_noop(image, run.layout)
        did_work += first.n_rolled_back + first.n_replayed
    assert did_work > 0, "no cut exercised rollback or replay"


def test_recover_twice_on_machine_crash_images():
    from repro.chaos import CrashHarness, CrashTrigger, FaultPlan
    from repro.chaos.image import build_crash_image

    harness = CrashHarness("queue", "strandweaver", cfg=CFG)
    for frac in (0.2, 0.5, 0.8):
        plan = FaultPlan(
            trigger=CrashTrigger("cycle", harness.horizon * frac), seed=11
        )
        sample = harness.crash_once(plan)
        assert sample.ok, sample.violation
        # Rebuild the image: crash_once already recovered its own copy.
        image, _ = build_crash_image(
            harness.run,
            _crash_state(harness, plan),
            plan,
            harness.dag,
        )
        assert_second_recovery_is_noop(image, harness.run.layout)


def _crash_state(harness, plan):
    from repro.sim.machine import Machine

    stats = Machine(harness.design, harness.machine_cfg).run(
        harness.run.program, fault_plan=plan
    )
    assert stats.crash is not None
    return stats.crash
