"""Recovery tests: the Figure 6 walkthrough and edge cases."""

import pytest

from repro.lang import logbuf
from repro.lang.dialect import StrandDialect
from repro.lang.logbuf import LogLayout, encode_entry
from repro.lang.recovery import recover
from repro.lang.runtime import PmRuntime
from repro.lang.txn import TxnModel
from repro.pmem.space import PersistentMemory


def fresh(capacity=16):
    layout = LogLayout(base=0, capacity=capacity, n_threads=1)
    pm = PersistentMemory(layout.end + 1024)
    layout.init_region(pm, 0)
    return pm, layout


def put_entry(pm, layout, slot, *, type_=logbuf.STORE, addr=0, value=b"",
              seq=1, commit=False, valid=True):
    raw = bytearray(encode_entry(type_, 0, addr, value, seq, commit=commit))
    if not valid:
        raw[1] = 0
    pm.write(layout.entry_addr(0, slot), bytes(raw))


def test_rollback_of_uncommitted_store():
    pm, layout = fresh()
    data_addr = layout.end
    pm.write(data_addr, b"\x02" * 8)  # the (partial) new value
    put_entry(pm, layout, 0, addr=data_addr, value=b"\x01" * 8, seq=5)
    report = recover(pm, layout)
    assert pm.read(data_addr, 8) == b"\x01" * 8
    assert report.n_rolled_back == 1


def test_reverse_order_rollback():
    pm, layout = fresh()
    addr = layout.end
    pm.write(addr, b"\x03")  # latest value
    put_entry(pm, layout, 0, addr=addr, value=b"\x01", seq=1)
    put_entry(pm, layout, 1, addr=addr, value=b"\x02", seq=2)
    recover(pm, layout)
    # seq 2 rolls back first (-> 0x02), then seq 1 (-> 0x01).
    assert pm.read(addr, 1) == b"\x01"


def test_committed_entries_not_rolled_back():
    pm, layout = fresh()
    addr = layout.end
    pm.write(addr, b"\x02")
    put_entry(pm, layout, 0, addr=addr, value=b"\x01", seq=1)
    put_entry(pm, layout, 1, type_=logbuf.TX_END, seq=2, commit=True)
    report = recover(pm, layout)
    assert pm.read(addr, 1) == b"\x02"  # the region was committed
    assert report.n_rolled_back == 0
    assert report.committed_upto[0] == 2
    assert len(report.skipped_committed) == 2


def test_interrupted_commit_repair_fig6b():
    """Crash between the marker flush and the invalidations (Fig. 6b):
    entries at or below the marker sequence survive valid but must not be
    rolled back."""
    pm, layout = fresh()
    addr = layout.end
    pm.write(addr, b"\x02")
    put_entry(pm, layout, 0, addr=addr, value=b"\x01", seq=1, valid=False)  # invalidated
    put_entry(pm, layout, 1, addr=addr + 8, value=b"\x09", seq=2)  # still valid
    put_entry(pm, layout, 2, type_=logbuf.TX_END, seq=3, commit=True)
    report = recover(pm, layout)
    assert report.n_rolled_back == 0
    assert pm.read(addr + 8, 1) == b"\x00"  # untouched


def test_mixed_committed_and_uncommitted():
    pm, layout = fresh()
    a, b = layout.end, layout.end + 8
    pm.write(a, b"\x02")
    pm.write(b, b"\x04")
    put_entry(pm, layout, 0, addr=a, value=b"\x01", seq=1)
    put_entry(pm, layout, 1, type_=logbuf.TX_END, seq=2, commit=True)
    put_entry(pm, layout, 2, addr=b, value=b"\x03", seq=3)  # next region, uncommitted
    recover(pm, layout)
    assert pm.read(a, 1) == b"\x02"  # committed region preserved
    assert pm.read(b, 1) == b"\x03"  # uncommitted region rolled back


def test_sync_entries_never_written_back():
    pm, layout = fresh()
    put_entry(pm, layout, 0, type_=logbuf.ACQUIRE, addr=123, seq=1)
    report = recover(pm, layout)
    assert report.n_rolled_back == 0


def test_recovery_resets_log():
    pm, layout = fresh()
    put_entry(pm, layout, 0, addr=layout.end, value=b"\x01", seq=1)
    recover(pm, layout)
    assert all(not e.valid for e in layout.scan(pm, 0))
    assert layout.read_head(pm, 0) == 0


def test_recovery_idempotent_on_clean_image():
    pm, layout = fresh()
    before = pm.snapshot()
    report = recover(pm, layout)
    assert report.n_rolled_back == 0
    assert pm.snapshot() == before


def test_end_to_end_runtime_then_recover():
    layout = LogLayout(base=0, capacity=64, n_threads=1)
    pm = PersistentMemory(layout.end + 4096)
    rt = PmRuntime(pm, layout, StrandDialect(), TxnModel(), 1)
    addr = layout.end
    rt.lock(0, 1)
    rt.txn_begin(0)
    rt.store(0, addr, b"\x55" * 8)
    rt.txn_end(0)
    rt.unlock(0, 1)
    # Simulate a crash where everything persisted: recovery is a no-op on
    # the data.
    report = recover(pm, layout)
    assert report.n_rolled_back == 0
    assert pm.read(addr, 8) == b"\x55" * 8
