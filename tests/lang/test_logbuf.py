"""Log entry codec and layout tests."""

import pytest

from repro.lang import logbuf
from repro.lang.logbuf import LogError, LogLayout, decode_entry, encode_entry
from repro.pmem.space import PersistentMemory


def test_entry_roundtrip():
    raw = encode_entry(logbuf.STORE, tid=3, addr=0x1234, value=b"\xab" * 8, seq=77)
    assert len(raw) == logbuf.ENTRY_SIZE
    e = decode_entry(raw, slot=5)
    assert e.type == logbuf.STORE
    assert e.valid and not e.commit
    assert e.tid == 3
    assert e.addr == 0x1234
    assert e.value == b"\xab" * 8
    assert e.seq == 77
    assert e.slot == 5
    assert e.type_name == "store"


def test_entry_commit_flag():
    raw = encode_entry(logbuf.TX_END, 0, 0, b"", 1, commit=True)
    assert decode_entry(raw, 0).commit


def test_oversized_value_rejected():
    with pytest.raises(LogError):
        encode_entry(logbuf.STORE, 0, 0, b"\x00" * 41, 1)


def test_layout_addresses():
    layout = LogLayout(base=64, capacity=8, n_threads=2)
    assert layout.header_addr(0) == 64
    assert layout.entry_addr(0, 0) == 64 + 64
    assert layout.entry_addr(0, 7) == 64 + 64 + 7 * 64
    assert layout.region_base(1) == 64 + layout.region_size
    assert layout.end == 64 + 2 * layout.region_size


def test_layout_slot_bounds():
    layout = LogLayout(base=0, capacity=4, n_threads=1)
    with pytest.raises(LogError):
        layout.entry_addr(0, 4)


def test_init_and_head():
    layout = LogLayout(base=0, capacity=4, n_threads=1)
    pm = PersistentMemory(layout.end)
    layout.init_region(pm, 0)
    assert layout.read_head(pm, 0) == 0
    pm.write(layout.header_addr(0), layout.encode_head(3))
    assert layout.read_head(pm, 0) == 3


def test_scan_skips_untouched_slots():
    layout = LogLayout(base=0, capacity=4, n_threads=1)
    pm = PersistentMemory(layout.end)
    layout.init_region(pm, 0)
    pm.write(layout.entry_addr(0, 2), encode_entry(logbuf.STORE, 0, 8, b"\x01", 9))
    entries = layout.scan(pm, 0)
    assert len(entries) == 1
    assert entries[0].slot == 2
