"""Crash-consistency property tests.

For every benchmark and every *correct* dialect we sample consistent cuts
of the persist DAG (random, frontier-biased, and prefix cuts), materialise
the crash image, run recovery, and assert the workload's invariants hold.
The NON-ATOMIC dialect must *fail* on some cut — proving the checker has
teeth.

Crash tests use the conservative language-model variants whose commits
are durable before lock hand-off (``durable_commit=True`` /
``safe_handoff=True``); see DESIGN.md, "Correctness story".
"""

import random

import pytest

from repro.core.crash import frontier_cut, materialise, prefix_cut, random_cut
from repro.core.model import PersistDag
from repro.lang.dialect import (
    HopsDialect,
    NonAtomicDialect,
    StrandDialect,
    X86Dialect,
)
from repro.lang.recovery import recover
from repro.lang.runtime import DirectAccessor
from repro.lang.sfr import SfrModel
from repro.lang.txn import TxnModel
from repro.workloads import WORKLOADS, CheckFailure, WorkloadConfig, generate

CRASH_CFG = WorkloadConfig(
    n_threads=3, ops_per_thread=10, log_entries=1024, pm_size=1 << 20
)

N_CUTS = 12


def crash_and_recover(run, dag, cut):
    image = materialise(dag, cut, run.space)
    recover(image, run.layout)
    run.workload.check(DirectAccessor(image))


def exercise(workload_name, dialect, model, seed=1234):
    run = generate(WORKLOADS[workload_name], CRASH_CFG, dialect, model)
    dag = PersistDag(run.program)
    rng = random.Random(seed)
    for i in range(N_CUTS):
        crash_and_recover(run, dag, random_cut(dag, rng, density=0.4 + 0.05 * (i % 5)))
        crash_and_recover(run, dag, frontier_cut(dag, rng, drop=0.25))
    for k in (0, len(dag) // 3, len(dag) // 2, len(dag)):
        crash_and_recover(run, dag, prefix_cut(dag, k))


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_strand_dialect_crash_consistent(workload_name):
    exercise(workload_name, StrandDialect(), TxnModel(durable_commit=True))


@pytest.mark.parametrize("workload_name", ["queue", "hashmap", "tpcc", "nstore-bal"])
def test_x86_dialect_crash_consistent(workload_name):
    exercise(workload_name, X86Dialect(), TxnModel(durable_commit=True))


@pytest.mark.parametrize("workload_name", ["queue", "arrayswap", "rbtree"])
def test_hops_dialect_crash_consistent(workload_name):
    exercise(workload_name, HopsDialect(), TxnModel(durable_commit=True))


@pytest.mark.parametrize("workload_name", ["queue", "hashmap", "rbtree"])
def test_sfr_safe_handoff_crash_consistent(workload_name):
    exercise(
        workload_name,
        StrandDialect(),
        SfrModel(commit_batch=3, safe_handoff=True),
    )


def test_sfr_single_thread_batching_crash_consistent():
    cfg = WorkloadConfig(n_threads=1, ops_per_thread=16, log_entries=1024, pm_size=1 << 20)
    run = generate(WORKLOADS["queue"], cfg, StrandDialect(), SfrModel(commit_batch=4))
    dag = PersistDag(run.program)
    rng = random.Random(7)
    for _ in range(15):
        crash_and_recover(run, dag, random_cut(dag, rng, 0.5))


def test_nonatomic_dialect_breaks_recovery():
    """The unordered upper bound must be crash-inconsistent on some cut —
    otherwise the whole checking apparatus proves nothing."""
    run = generate(
        WORKLOADS["arrayswap"], CRASH_CFG, NonAtomicDialect(), TxnModel()
    )
    dag = PersistDag(run.program)
    rng = random.Random(99)
    failures = 0
    for _ in range(60):
        try:
            crash_and_recover(run, dag, random_cut(dag, rng, 0.5))
        except CheckFailure:
            failures += 1
    assert failures > 0, "non-atomic traces never broke an invariant"


def test_full_cut_recovers_to_final_state():
    """If everything persisted, recovery must leave the final state."""
    run = generate(WORKLOADS["hashmap"], CRASH_CFG, StrandDialect(),
                   TxnModel(durable_commit=True))
    dag = PersistDag(run.program)
    image = materialise(dag, set(range(len(dag))), run.space)
    report = recover(image, run.layout)
    assert report.n_rolled_back == 0
    run.workload.check(DirectAccessor(image))


def test_empty_cut_recovers_to_baseline():
    run = generate(WORKLOADS["rbtree"], CRASH_CFG, StrandDialect(),
                   TxnModel(durable_commit=True))
    dag = PersistDag(run.program)
    image = materialise(dag, set(), run.space)
    recover(image, run.layout)
    run.workload.check(DirectAccessor(image))
