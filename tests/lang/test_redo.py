"""Redo logging under strand persistency (Section VII sketch)."""

import random

import pytest

from repro.core.crash import frontier_cut, materialise, random_cut
from repro.core.model import PersistDag
from repro.core.ops import OpKind
from repro.lang import logbuf
from repro.lang.dialect import StrandDialect
from repro.lang.logbuf import LogLayout
from repro.lang.recovery import recover
from repro.lang.redo import RedoTxnModel
from repro.lang.runtime import DirectAccessor, PmRuntime
from repro.pmem.space import PersistentMemory
from repro.workloads import WORKLOADS, WorkloadConfig, generate

CFG = WorkloadConfig(n_threads=3, ops_per_thread=8, log_entries=1024, pm_size=1 << 20)


def make_runtime(group_commit=1):
    layout = LogLayout(base=64, capacity=64, n_threads=1)
    space = PersistentMemory(layout.end + 4096)
    model = RedoTxnModel(group_commit=group_commit)
    rt = PmRuntime(space, layout, StrandDialect(), model, 1)
    return rt, space, layout


def heap(layout):
    return (layout.end + 63) & ~63


def test_redo_defers_inplace_update_to_commit():
    rt, space, layout = make_runtime()
    addr = heap(layout)
    rt.lock(0, 1)
    rt.txn_begin(0)
    rt.store(0, addr, b"\x07" * 8)
    # The functional image already shows the write (thread-local reads)...
    assert space.read(addr, 8) == b"\x07" * 8
    # ...but no in-place STORE op was emitted yet, only the redo entry.
    data_stores = [
        op for op in rt.program.threads[0].ops
        if op.kind is OpKind.STORE and op.addr == addr
    ]
    assert data_stores == []
    rt.txn_end(0)
    rt.unlock(0, 1)
    data_stores = [
        op for op in rt.program.threads[0].ops
        if op.kind is OpKind.STORE and op.addr == addr
    ]
    assert len(data_stores) == 1


def test_redo_entries_hold_new_values():
    rt, space, layout = make_runtime(group_commit=10)  # keep logs valid
    addr = heap(layout)
    rt.lock(0, 1)
    rt.txn_begin(0)
    rt.store(0, addr, b"\x09" * 8)
    rt.txn_end(0)
    rt.unlock(0, 1)
    redo = [e for e in layout.scan(space, 0) if e.type == logbuf.REDO]
    assert len(redo) == 1
    assert redo[0].value == b"\x09" * 8
    # No marker before the group commit — the group commit IS the
    # durability point.
    assert not any(e.commit for e in layout.scan(space, 0))
    rt.finish(0)
    assert any(e.commit for e in layout.scan(space, 0))


def test_group_commit_batches_invalidation():
    rt, space, layout = make_runtime(group_commit=3)
    addr = heap(layout)
    for i in range(2):
        rt.lock(0, 1)
        rt.txn_begin(0)
        rt.store(0, addr + 64 * i, b"\x01" * 8)
        rt.txn_end(0)
        rt.unlock(0, 1)
    assert rt.committed_regions(0) == []  # batch not reached
    rt.lock(0, 1)
    rt.txn_begin(0)
    rt.store(0, addr + 128, b"\x01" * 8)
    rt.txn_end(0)
    rt.unlock(0, 1)
    assert len(rt.committed_regions(0)) == 3


def test_recovery_replays_committed_redo():
    rt, space, layout = make_runtime(group_commit=1)
    addr = heap(layout)
    rt.lock(0, 1)
    rt.txn_begin(0)
    rt.store(0, addr, b"\x0a" * 8)
    rt.txn_end(0)
    rt.unlock(0, 1)
    # Crash image where logs and marker persisted but the deferred
    # in-place update (and everything after it) did not.
    dag = PersistDag(rt.program)
    marker = dag.find("commit-marker")
    cut = dag.downward_close({marker.idx})
    img = materialise(dag, cut, space)
    assert img.read(addr, 8) == b"\x00" * 8  # update genuinely missing
    report = recover(img, layout)
    assert report.n_replayed == 1
    assert img.read(addr, 8) == b"\x0a" * 8


def test_recovery_discards_uncommitted_redo():
    layout = LogLayout(base=0, capacity=16, n_threads=1)
    img = PersistentMemory(layout.end + 1024)
    layout.init_region(img, 0)
    raw = logbuf.encode_entry(logbuf.REDO, 0, layout.end, b"\x0b" * 8, seq=5)
    img.write(layout.entry_addr(0, 0), raw)  # redo entry, no marker anywhere
    report = recover(img, layout)
    assert report.n_replayed == 0
    assert img.read(layout.end, 8) == b"\x00" * 8


@pytest.mark.parametrize("workload_name", ["arrayswap", "hashmap", "tpcc"])
def test_redo_crash_consistency(workload_name):
    run = generate(
        WORKLOADS[workload_name], CFG, StrandDialect(),
        RedoTxnModel(group_commit=1, durable_commit=True),
    )
    dag = PersistDag(run.program)
    rng = random.Random(11)
    for i in range(14):
        cut = random_cut(dag, rng, 0.5) if i % 2 else frontier_cut(dag, rng, 0.3)
        image = materialise(dag, cut, run.space)
        recover(image, run.layout)
        run.workload.check(DirectAccessor(image))


def test_redo_group_commit_single_thread_crash_consistency():
    cfg = WorkloadConfig(n_threads=1, ops_per_thread=12, log_entries=1024,
                         pm_size=1 << 20)
    run = generate(WORKLOADS["queue"], cfg, StrandDialect(),
                   RedoTxnModel(group_commit=4))
    dag = PersistDag(run.program)
    rng = random.Random(3)
    for _ in range(15):
        image = materialise(dag, random_cut(dag, rng, 0.5), run.space)
        recover(image, run.layout)
        run.workload.check(DirectAccessor(image))


def test_redo_rejects_bad_group_commit():
    with pytest.raises(ValueError):
        RedoTxnModel(group_commit=0)
