"""Language-model region semantics: ATLAS nesting, SFR boundaries."""

import pytest

from repro.core.ops import OpKind
from repro.lang import logbuf
from repro.lang.atlas import AtlasModel
from repro.lang.dialect import StrandDialect
from repro.lang.logbuf import LogLayout
from repro.lang.runtime import PmRuntime
from repro.lang.sfr import SfrModel
from repro.pmem.space import PersistentMemory


def make_runtime(model):
    layout = LogLayout(base=64, capacity=128, n_threads=1)
    space = PersistentMemory(layout.end + 4096)
    return PmRuntime(space, layout, StrandDialect(), model, 1), space, layout


def heap(layout):
    return (layout.end + 63) & ~63


def entry_types(space, layout):
    return [e.type_name for e in layout.scan(space, 0)]


class TestAtlas:
    def test_outermost_critical_section_is_one_region(self):
        rt, space, layout = make_runtime(AtlasModel(durable_commit=True))
        addr = heap(layout)
        rt.lock(0, 1)
        rt.lock(0, 2)  # nested: same region
        rt.store(0, addr, b"\x01" * 8)
        rt.unlock(0, 2)
        rt.store(0, addr + 8, b"\x01" * 8)
        rt.unlock(0, 1)  # outermost release commits
        assert len(rt.committed_regions(0)) == 1

    def test_nested_sync_ops_are_logged(self):
        rt, space, layout = make_runtime(AtlasModel())
        addr = heap(layout)
        rt.lock(0, 1)
        rt.lock(0, 2)
        rt.store(0, addr, b"\x01" * 8)
        rt.unlock(0, 2)
        rt.unlock(0, 1)
        types = entry_types(space, layout)
        assert types.count("acquire") >= 2  # outermost + nested
        assert types.count("release") >= 2

    def test_atlas_adds_sync_compute(self):
        rt, _, layout = make_runtime(AtlasModel())
        rt.lock(0, 1)
        rt.unlock(0, 1)
        computes = [
            op for op in rt.program.threads[0].ops if op.kind is OpKind.COMPUTE
        ]
        assert sum(op.cycles for op in computes) >= 2 * AtlasModel.SYNC_COMPUTE


class TestSfr:
    def test_nested_lock_splits_sfrs(self):
        rt, space, layout = make_runtime(SfrModel(commit_batch=100))
        addr = heap(layout)
        rt.lock(0, 1)
        rt.store(0, addr, b"\x01" * 8)
        rt.lock(0, 2)  # sync op: ends the first SFR, begins another
        rt.store(0, addr + 8, b"\x01" * 8)
        rt.unlock(0, 2)
        rt.unlock(0, 1)
        rt.finish(0)
        # Two SFRs (plus log entries) committed.
        assert len(rt.committed_regions(0)) >= 2

    def test_sfr_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            SfrModel(commit_batch=0)
