"""Runtime instrumentation tests: Figure 5/6 op patterns per dialect."""

import pytest

from repro.core.ops import OpKind
from repro.lang.dialect import (
    DIALECTS,
    HopsDialect,
    NonAtomicDialect,
    StrandDialect,
    X86Dialect,
    dialect_for_design,
)
from repro.lang.logbuf import LogError, LogLayout
from repro.lang.runtime import PmRuntime
from repro.lang.sfr import SfrModel
from repro.lang.txn import TxnModel
from repro.pmem.space import PersistentMemory


def make_runtime(dialect=None, model=None, capacity=64):
    layout = LogLayout(base=64, capacity=capacity, n_threads=2)
    space = PersistentMemory(layout.end + 4096)
    rt = PmRuntime(
        space, layout, dialect or StrandDialect(), model or TxnModel(), 2
    )
    return rt, space, layout


def kinds(rt, tid=0):
    return [op.kind for op in rt.program.threads[tid].ops]


def heap_addr(layout):
    return (layout.end + 63) & ~63


def test_store_outside_region_rejected():
    rt, _, layout = make_runtime()
    with pytest.raises(LogError):
        rt.store(0, heap_addr(layout), b"\x01")


def test_fig5_pattern_strand_dialect():
    rt, _, layout = make_runtime()
    addr = heap_addr(layout)
    rt.lock(0, 1)
    rt.txn_begin(0)
    rt.store(0, addr, b"\x01" * 8)
    seq = kinds(rt)
    # ... log store, clwb, PB, data store, clwb, NS ...
    i = seq.index(OpKind.PERSIST_BARRIER)
    assert seq[i - 2] is OpKind.STORE  # log entry
    assert seq[i - 1] is OpKind.CLWB
    assert seq[i + 1] is OpKind.STORE  # in-place update
    assert seq[i + 2] is OpKind.CLWB
    assert seq[i + 3] is OpKind.NEW_STRAND


def test_fig5_pattern_x86_dialect():
    rt, _, layout = make_runtime(dialect=X86Dialect())
    addr = heap_addr(layout)
    rt.lock(0, 1)
    rt.txn_begin(0)
    rt.store(0, addr, b"\x01" * 8)
    seq = kinds(rt)
    assert OpKind.SFENCE in seq
    assert OpKind.PERSIST_BARRIER not in seq
    assert OpKind.NEW_STRAND not in seq


def test_hops_dialect_uses_ofence_dfence():
    rt, _, layout = make_runtime(dialect=HopsDialect())
    addr = heap_addr(layout)
    rt.lock(0, 1)
    rt.txn_begin(0)
    rt.store(0, addr, b"\x01" * 8)
    rt.txn_end(0)
    rt.unlock(0, 1)
    seq = kinds(rt)
    assert OpKind.OFENCE in seq
    assert OpKind.DFENCE in seq
    assert OpKind.SFENCE not in seq


def test_nonatomic_dialect_emits_no_fences():
    rt, _, layout = make_runtime(dialect=NonAtomicDialect())
    addr = heap_addr(layout)
    rt.lock(0, 1)
    rt.txn_begin(0)
    rt.store(0, addr, b"\x01" * 8)
    rt.txn_end(0)
    rt.unlock(0, 1)
    seq = kinds(rt)
    assert not any(
        k in seq
        for k in (OpKind.SFENCE, OpKind.PERSIST_BARRIER, OpKind.JOIN_STRAND,
                  OpKind.OFENCE, OpKind.DFENCE)
    )


def test_functional_update_applied():
    rt, space, layout = make_runtime()
    addr = heap_addr(layout)
    rt.lock(0, 1)
    rt.txn_begin(0)
    rt.store(0, addr, b"\x42" * 8)
    rt.txn_end(0)
    rt.unlock(0, 1)
    assert space.read(addr, 8) == b"\x42" * 8


def test_commit_invalidates_entries_and_advances_head():
    rt, space, layout = make_runtime()
    addr = heap_addr(layout)
    rt.lock(0, 1)
    rt.txn_begin(0)
    rt.store(0, addr, b"\x01" * 8)
    rt.txn_end(0)
    rt.unlock(0, 1)
    entries = layout.scan(space, 0)
    assert entries, "entries must exist"
    assert all(not e.valid for e in entries)
    assert any(e.commit for e in entries)  # the TX_END carries the marker
    assert layout.read_head(space, 0) != 0


def test_nested_region_rejected():
    rt, _, _ = make_runtime()
    rt.txn_begin(0)
    with pytest.raises(LogError):
        rt.txn_begin(0)


def test_unlock_without_lock_rejected():
    rt, _, _ = make_runtime()
    with pytest.raises(LogError):
        rt.unlock(0, 1)


def test_log_exhaustion_raises():
    rt, _, layout = make_runtime(capacity=4)
    addr = heap_addr(layout)
    rt.lock(0, 1)
    rt.txn_begin(0)
    with pytest.raises(LogError):
        for i in range(10):
            rt.store(0, addr + i * 8, b"\x01" * 8)


def test_sfr_batched_commit():
    model = SfrModel(commit_batch=2)
    rt, space, layout = make_runtime(model=model)
    addr = heap_addr(layout)
    # First SFR: no commit yet.
    rt.lock(0, 1)
    rt.store(0, addr, b"\x01" * 8)
    rt.unlock(0, 1)
    assert rt.committed_regions(0) == []
    # Second SFR reaches the batch threshold.
    rt.lock(0, 1)
    rt.store(0, addr + 8, b"\x02" * 8)
    rt.unlock(0, 1)
    assert len(rt.committed_regions(0)) == 2


def test_sfr_safe_handoff_commits_every_release():
    model = SfrModel(commit_batch=8, safe_handoff=True)
    rt, _, layout = make_runtime(model=model)
    addr = heap_addr(layout)
    rt.lock(0, 1)
    rt.store(0, addr, b"\x01" * 8)
    rt.unlock(0, 1)
    assert len(rt.committed_regions(0)) == 1


def test_finish_commits_pending():
    model = SfrModel(commit_batch=100)
    rt, _, layout = make_runtime(model=model)
    addr = heap_addr(layout)
    rt.lock(0, 1)
    rt.store(0, addr, b"\x01" * 8)
    rt.unlock(0, 1)
    rt.finish(0)
    assert len(rt.committed_regions(0)) == 1


def test_dialect_registry_and_lookup():
    assert set(DIALECTS) == {"strand", "x86", "hops", "non-atomic"}
    assert isinstance(dialect_for_design("strandweaver"), StrandDialect)
    assert isinstance(dialect_for_design("no-persist-queue"), StrandDialect)
    assert isinstance(dialect_for_design("intel-x86"), X86Dialect)
    with pytest.raises(ValueError):
        dialect_for_design("riscv")


def test_multithread_seq_numbers_unique():
    rt, space, layout = make_runtime()
    addr = heap_addr(layout)
    for tid in (0, 1):
        rt.lock(tid, 1)
        rt.txn_begin(tid)
        rt.store(tid, addr + 64 * tid + 0, b"\x01" * 8)
        rt.txn_end(tid)
        rt.unlock(tid, 1)
    seqs = [e.seq for t in (0, 1) for e in layout.scan(space, t)]
    assert len(seqs) == len(set(seqs))


def test_circular_log_wraps_and_reuses_slots():
    """Far more entries than capacity: the tail wraps, reusing committed
    slots, and the functional state stays correct."""
    rt, space, layout = make_runtime(capacity=16)
    addr = heap_addr(layout)
    for i in range(30):  # ~3 entries/region x 30 >> 16 slots
        rt.lock(0, 1)
        rt.txn_begin(0)
        rt.store(0, addr, (i + 1).to_bytes(8, "little"))
        rt.txn_end(0)
        rt.unlock(0, 1)
    assert space.read_u64(addr) == 30
    assert len(rt.committed_regions(0)) == 30


def test_wrapped_log_crash_consistency():
    import random

    from repro.core.crash import materialise, random_cut
    from repro.core.model import PersistDag
    from repro.lang.recovery import recover

    rt, space, layout = make_runtime(model=TxnModel(durable_commit=True),
                                     capacity=16)
    addr = heap_addr(layout)
    space.mark_clean()
    for i in range(20):
        rt.lock(0, 1)
        rt.txn_begin(0)
        rt.store(0, addr, (i + 1).to_bytes(8, "little"))
        rt.store(0, addr + 8, (i + 1).to_bytes(8, "little"))
        rt.txn_end(0)
        rt.unlock(0, 1)
    dag = PersistDag(rt.program)
    rng = random.Random(13)
    for _ in range(20):
        image = materialise(dag, random_cut(dag, rng, 0.5), space)
        recover(image, layout)
        # Atomicity across the wrap: both words always agree.
        assert image.read_u64(addr) == image.read_u64(addr + 8)
