"""CrashingRecoveryWriter: fenced epochs survive, unfenced tails tear."""

import pytest

from repro.faults import CrashingRecoveryWriter, DirectWriter, RecoveryCrashed
from repro.pmem.space import PersistentMemory


def _image(size=1024):
    return PersistentMemory(size)


def test_direct_writer_is_transparent():
    image = _image()
    w = DirectWriter(image)
    w.write(0, b"\x11" * 8)
    w.fence()
    w.write(64, b"\x22" * 8)
    assert image.read(0, 8) == b"\x11" * 8
    assert image.read(64, 8) == b"\x22" * 8
    assert w.writes == 2


def test_budget_exhaustion_raises():
    image = _image()
    w = CrashingRecoveryWriter(image, after_writes=2)
    w.write(0, b"a")
    w.write(1, b"b")
    with pytest.raises(RecoveryCrashed):
        w.write(2, b"c")
    assert w.crashed


def test_zero_budget_crashes_on_first_write():
    w = CrashingRecoveryWriter(_image(), after_writes=0)
    with pytest.raises(RecoveryCrashed):
        w.write(0, b"x")


def test_fenced_epochs_always_survive():
    image = _image()
    w = CrashingRecoveryWriter(image, after_writes=3, drop_prob=1.0)
    w.write(0, b"\xaa" * 8)
    w.write(8, b"\xbb" * 8)
    w.fence()
    w.write(16, b"\xcc" * 8)
    with pytest.raises(RecoveryCrashed):
        w.write(24, b"\xdd" * 8)
    survived = w.materialise_crash()
    # drop_prob=1: the whole unfenced tail vanished, the fence held.
    assert survived == 0
    assert image.read(0, 8) == b"\xaa" * 8
    assert image.read(8, 8) == b"\xbb" * 8
    assert image.read(16, 8) == b"\x00" * 8


def test_zero_drop_prob_keeps_unfenced_tail():
    image = _image()
    w = CrashingRecoveryWriter(image, after_writes=1, drop_prob=0.0)
    w.write(16, b"\xcc" * 8)
    with pytest.raises(RecoveryCrashed):
        w.write(24, b"\xdd" * 8)
    assert w.materialise_crash() == 1
    assert image.read(16, 8) == b"\xcc" * 8


def test_unfenced_subset_is_seed_deterministic():
    def torn_bytes(seed):
        image = _image()
        w = CrashingRecoveryWriter(image, after_writes=6, seed=seed, drop_prob=0.5)
        for i in range(6):
            w.write(i * 8, bytes([i + 1]) * 8)
        with pytest.raises(RecoveryCrashed):
            w.write(64, b"x")
        w.materialise_crash()
        return image.snapshot()

    assert torn_bytes(7) == torn_bytes(7)
    # A different seed should eventually differ (6 coin flips at p=0.5;
    # seeds 7 and 8 were checked to diverge).
    assert torn_bytes(7) != torn_bytes(8)


def test_materialise_before_crash_is_an_error():
    w = CrashingRecoveryWriter(_image(), after_writes=5)
    with pytest.raises(RuntimeError):
        w.materialise_crash()


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        CrashingRecoveryWriter(_image(), after_writes=-1)
