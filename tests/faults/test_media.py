"""Media fault model: determinism, null-model identity, policy visibility."""

import dataclasses
import json

from repro.faults import MediaFaultConfig, MediaFaultModel
from repro.faults.model import DEGRADED_NONE, DEGRADED_REMAP, DEGRADED_WORN
from repro.sim.config import TABLE_I
from repro.sim.machine import Machine
from repro.workloads import WORKLOADS, WorkloadConfig, generate_for_design

CFG = WorkloadConfig(n_threads=2, ops_per_thread=8, log_entries=512, pm_size=1 << 20)

FAULTY = MediaFaultConfig(
    seed=42, write_fail_prob=0.2, ecc_correctable_prob=0.1,
    ecc_uncorrectable_prob=0.01,
)


def _run(design="strandweaver", media=None, machine_cfg=TABLE_I):
    run = generate_for_design(WORKLOADS["queue"], CFG, design, "txn")
    faults = MediaFaultModel(media) if media is not None else None
    return Machine(design, machine_cfg).run(run.program, media_faults=faults)


def _dump(stats):
    return json.dumps(stats.summary(), sort_keys=True)


# -- determinism ---------------------------------------------------------


def test_same_seed_bit_identical():
    """One (workload, design, seed) triple -> byte-identical stats."""
    a = _run(media=FAULTY)
    b = _run(media=FAULTY)
    assert a.faults is not None and a.faults["retries"] >= 0
    assert _dump(a) == _dump(b)


def test_different_seed_different_fault_sequence():
    a = _run(media=FAULTY)
    b = _run(media=dataclasses.replace(FAULTY, seed=43))
    assert a.faults != b.faults


# -- the null model is invisible -----------------------------------------


def test_zero_prob_config_identical_to_no_model():
    """An attached all-zeros fault model must not perturb anything.

    Neither the timing nor the stats document may change: the controller
    discards a disabled model entirely, so the summary has no ``faults``
    key and every counter is bit-identical to a build without the fault
    layer.
    """
    plain = _run(media=None)
    nulled = _run(media=MediaFaultConfig())
    assert nulled.faults is None
    assert "faults" not in nulled.summary()
    assert _dump(plain) == _dump(nulled)


def test_disabled_model_draws_no_randomness():
    model = MediaFaultModel(MediaFaultConfig())
    state = model._rng.getstate()
    assert not model.write_fails(7)
    assert not model.write_uncorrectable(7)
    assert not model.read_correctable(7)
    assert model._rng.getstate() == state


def test_remapped_line_is_fault_free_without_consuming_randomness():
    model = MediaFaultModel(
        MediaFaultConfig(seed=1, write_fail_prob=1.0, ecc_correctable_prob=1.0)
    )
    assert model.remap(5, spare_lines=4)
    state = model._rng.getstate()
    assert not model.write_fails(5)
    assert not model.read_correctable(5)
    assert model._rng.getstate() == state
    assert model.write_fails(6)  # other lines still fault


# -- controller policy is timing-visible ---------------------------------


def test_write_retries_cost_cycles():
    """Retries occupy media slots longer; under a small write queue the
    extra occupancy back-pressures acceptance and slows the whole run."""
    tight_queue = dataclasses.replace(
        TABLE_I,
        pm=dataclasses.replace(
            TABLE_I.pm, write_queue_entries=4, media_banks=2
        ),
    )
    media = dataclasses.replace(
        FAULTY, write_fail_prob=0.6, ecc_correctable_prob=0.0,
        ecc_uncorrectable_prob=0.0,
    )
    clean = _run(media=None, machine_cfg=tight_queue)
    faulty = _run(media=media, machine_cfg=tight_queue)
    assert faulty.faults["write_faults"] > 0
    assert faulty.faults["retries"] > 0
    assert faulty.faults["backoff_cycles"] > 0
    assert faulty.cycles > clean.cycles


def test_uncorrectable_wearout_remaps_to_spares():
    media = MediaFaultConfig(seed=9, ecc_uncorrectable_prob=0.3)
    stats = _run(media=media)
    assert stats.faults["remaps"] > 0
    assert stats.faults["remap_denied"] == 0


def test_spare_exhaustion_degrades_instead_of_hanging():
    """With zero spare lines every wear-out is denied, not retried forever."""
    no_spares = dataclasses.replace(
        TABLE_I, pm=dataclasses.replace(TABLE_I.pm, spare_lines=0)
    )
    media = MediaFaultConfig(seed=9, ecc_uncorrectable_prob=0.3)
    stats = _run(media=media, machine_cfg=no_spares)
    assert stats.faults["remaps"] == 0
    assert stats.faults["remap_denied"] > 0


def test_health_states():
    model = MediaFaultModel(MediaFaultConfig(seed=0, write_fail_prob=0.1))
    assert model.health() == DEGRADED_NONE
    assert model.remap(3, spare_lines=1)
    assert model.health() == DEGRADED_REMAP
    assert not model.remap(4, spare_lines=1)
    assert model.health() == DEGRADED_WORN


def test_faults_summary_lands_in_stats_json():
    from repro.obs.export import stats_to_json

    stats = _run(media=FAULTY)
    doc = stats_to_json(stats)
    assert doc["summary"]["faults"]["seed"] == FAULTY.seed
    json.dumps(doc, allow_nan=False)  # JSON-safe end to end
