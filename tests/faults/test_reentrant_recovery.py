"""Recovery must converge under repeated power failures mid-recovery.

The oracle: for any crash image, recovery interrupted by one, two or
three further power failures — each tearing the interrupted pass's
unfenced writes down to a seeded subset — followed by re-recovery must
produce *byte-identical* PM contents to one uninterrupted pass.  Checked
for every hardware design, and for the explicit mid-sweep resume path
(the ``RECOVERY_SWEEPING`` state word).
"""

import dataclasses

import pytest

from repro.chaos import CrashHarness, CrashTrigger, FaultPlan, RecoveryCrash
from repro.chaos.image import build_crash_image
from repro.faults import CrashingRecoveryWriter, RecoveryCrashed
from repro.lang import logbuf
from repro.lang.recovery import recover
from repro.sim.machine import DESIGNS, Machine
from repro.workloads import WorkloadConfig

CFG = WorkloadConfig(
    n_threads=3, ops_per_thread=8, log_entries=1024, pm_size=1 << 20
)

#: write-budget tuples: single / double / triple crash-during-recovery,
#: spanning kill-immediately, mid-repair and mid-sweep points.
CRASH_SCHEDULES = [
    (RecoveryCrash(0, drop_prob=1.0),),
    (RecoveryCrash(3, drop_prob=0.5),),
    (RecoveryCrash(2, drop_prob=0.7), RecoveryCrash(9, drop_prob=0.3)),
    (
        RecoveryCrash(1, drop_prob=0.5),
        RecoveryCrash(5, drop_prob=0.5),
        RecoveryCrash(14, drop_prob=0.5),
    ),
]


def _crash_image(harness, frac=0.55, seed=5):
    plan = FaultPlan(
        trigger=CrashTrigger("cycle", max(1.0, harness.horizon * frac)),
        seed=seed,
    )
    stats = Machine(harness.design, harness.machine_cfg).run(
        harness.run.program, fault_plan=plan
    )
    assert stats.crash is not None
    image, _ = build_crash_image(harness.run, stats.crash, plan, harness.dag)
    return image, plan


@pytest.mark.parametrize("design", sorted(DESIGNS))
def test_interrupted_recovery_converges_on_every_design(design):
    harness = CrashHarness("queue", design, cfg=CFG)
    image, plan = _crash_image(harness)
    pristine = image.snapshot()
    reference_report = recover(image, harness.run.layout)
    reference = image.snapshot()
    assert reference != pristine, "crash image needed no recovery (vacuous)"

    for crashes in CRASH_SCHEDULES:
        image.restore(pristine)
        crash_plan = dataclasses.replace(plan, recovery_crashes=crashes)
        report, passes = harness._recover_with_crashes(image, crash_plan)
        assert image.snapshot() == reference, (
            f"{design}: image diverged after {len(crashes)} "
            f"crash(es)-during-recovery [{crash_plan.describe()}]"
        )
        assert 1 <= passes <= len(crashes) + 1
    assert reference_report.n_rolled_back + reference_report.n_replayed > 0


@pytest.mark.parametrize("design", sorted(DESIGNS))
def test_mid_sweep_crash_resumes_as_sweep_only(design):
    """Kill recovery right after the SWEEPING mark becomes durable.

    The resumed pass must detect the durable state word, skip every
    re-apply, and still converge to the uninterrupted result.
    """
    harness = CrashHarness("queue", design, cfg=CFG)
    image, _ = _crash_image(harness)
    pristine = image.snapshot()
    reference_report = recover(image, harness.run.layout)
    reference = image.snapshot()
    repairs = (
        reference_report.n_rolled_back + reference_report.n_replayed
    )

    # Budget = repairs + mark + one sweep write: the crash lands inside
    # the sweep, after the fenced mark epoch, so the torn image carries
    # a durable RECOVERY_SWEEPING word.
    image.restore(pristine)
    writer = CrashingRecoveryWriter(
        image, after_writes=repairs + 2, seed=3, drop_prob=1.0
    )
    with pytest.raises(RecoveryCrashed):
        recover(image, harness.run.layout, writer=writer)
    writer.materialise_crash()
    assert (
        harness.run.layout.read_recovery_state(image)
        == logbuf.RECOVERY_SWEEPING
    )

    resumed = recover(image, harness.run.layout)
    assert resumed.resumed_sweep
    assert resumed.n_rolled_back == 0 and resumed.n_replayed == 0
    assert image.snapshot() == reference
    assert (
        harness.run.layout.read_recovery_state(image) == logbuf.RECOVERY_IDLE
    )


def test_recovered_image_passes_invariants_after_triple_crash():
    """End to end through the harness: crash, thrice-interrupted recovery,
    invariant check — for a correct design this must always pass."""
    harness = CrashHarness("queue", "strandweaver", cfg=CFG)
    plan = FaultPlan(
        trigger=CrashTrigger("cycle", max(1.0, harness.horizon * 0.55)),
        seed=5,
        recovery_crashes=(
            RecoveryCrash(1, drop_prob=0.5),
            RecoveryCrash(5, drop_prob=0.5),
            RecoveryCrash(14, drop_prob=0.5),
        ),
    )
    sample = harness.crash_once(plan)
    assert sample.ok, sample.violation
    assert sample.recovery_passes > 1
