"""Bit-identity pins for the engine rewrite (ROADMAP item 1).

``tests/sim/data/pinned_figures_ops16.json`` was captured from the
pre-fastpath engine (commit 1181c85) at ops=16: every figure the bench
times, rendered to its ``repro.figure/1`` JSON form.  The compiled fast
engine — and any future engine change — must reproduce these documents
byte-for-byte; a deliberate semantic change must re-capture the fixture
and say so in the commit.

``pinned_crashtest_queue_sw.json`` pins six seeded crash samples of the
queue/strandweaver cell — crash cycle, persist-structure occupancy
snapshots (the ``SlottedQueue.occupancy_at`` class of bug corrupts
exactly these), rollback/replay counts.
"""

import json
import os

import pytest

from repro.chaos.harness import run_crashtest
from repro.harness import figure7, figure8, figure9, figure10, table2
from repro.harness.experiment import clear_cache

DATA = os.path.join(os.path.dirname(__file__), "data")

FIGURES = {
    "table2": table2,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
}


def _load(name):
    with open(os.path.join(DATA, name), "r", encoding="utf-8") as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def pinned_figures():
    return _load("pinned_figures_ops16.json")


@pytest.mark.parametrize("name", sorted(FIGURES))
def test_figure_bit_identical_to_prefastpath_engine(name, pinned_figures):
    clear_cache()
    try:
        doc = FIGURES[name](ops_per_thread=16).to_json()
    finally:
        clear_cache()
    # Compare via canonical JSON so float formatting differences surface
    # as a diff, not silently.
    assert json.dumps(doc, sort_keys=True) == json.dumps(
        pinned_figures[name], sort_keys=True
    ), f"{name} diverged from the pinned pre-fastpath output"


def test_crashtest_occupancy_pinned():
    """Crash-image snapshots (cycle, occupancy, rollback counts) must
    match the pre-fastpath engine: the crash path runs on the reference
    engine and its occupancy queries must stay monotone-safe."""
    pinned = _load("pinned_crashtest_queue_sw.json")
    res = run_crashtest("queue", "strandweaver", crashes=6, seed=7)
    got = [
        {
            "index": s.index,
            "cycle": s.cycle,
            "occupancy": s.occupancy,
            "ok": s.ok,
            "n_rolled_back": s.n_rolled_back,
            "n_replayed": s.n_replayed,
        }
        for s in res.samples
    ]
    assert json.dumps(got, sort_keys=True) == json.dumps(pinned, sort_keys=True)
