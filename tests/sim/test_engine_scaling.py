"""Resource-scaling regressions: the engine must survive long runs.

Three paper-scale failure modes are pinned here:

* ``BandwidthResource._windows`` grew one entry per time window for the
  whole run (unbounded memory at paper-length traces) — fixed by
  :meth:`BandwidthResource.prune`, driven periodically by the machine.
* ``BandwidthResource.reserve`` walked every full window linearly under
  saturation (O(windows) per reserve, quadratic per run) — fixed by
  path-compressed skip pointers.
* ``SlottedQueue.occupancy_at`` undercounted for query times earlier
  than the last internal drain (crash-image occupancy snapshots ask
  about the crash cycle, which precedes later admissions) — fixed by
  opt-in departure-history retention.

Every fix must be *timing-neutral*: the grant sequence of the skip-jump
reserve is checked against a reference linear scan, and a pruned
machine run must be bit-identical to an unpruned one.
"""

import random

import pytest

import repro.sim.machine as machine_mod
from repro.harness.experiment import default_config
from repro.sim.engine import BandwidthResource, SlottedQueue
from repro.sim.machine import Machine
from repro.sim.memory import PMController
from repro.workloads import WORKLOADS, generate_for_design


def _linear_scan_reserve(windows, interval, capacity, t):
    """The pre-fix reserve semantics, as a reference oracle."""
    window = int(max(t, 0.0) / interval)
    while windows.get(window, 0) >= capacity:
        window += 1
    windows[window] = windows.get(window, 0) + 1
    return max(t, window * interval)


class TestSaturatedReserve:
    @pytest.mark.parametrize("capacity", [1, 3])
    def test_grants_identical_to_linear_scan(self, capacity):
        """Skip-pointer jumps must grant exactly what the linear scan
        granted, including under heavy same-window saturation and
        out-of-order arrival times."""
        rng = random.Random(20260808)
        bw = BandwidthResource(8.0, capacity=capacity)
        oracle = {}
        for _ in range(5000):
            # Cluster arrivals so windows saturate and chains form.
            t = float(rng.choice([0, 0, 0, 8, 16, rng.randrange(0, 400)]))
            got = bw.reserve(t)
            want = _linear_scan_reserve(oracle, 8.0, capacity, t)
            assert got == want
        assert bw._windows == oracle

    def test_saturated_reserve_is_amortized_constant(self):
        """After n saturated reserves at t=0 the skip chain from window 0
        must be compressed to a short hop count, not an n-link walk."""
        bw = BandwidthResource(1.0, capacity=1)
        n = 10_000
        for _ in range(n):
            bw.reserve(0.0)
        hops = 0
        w = 0
        while w in bw._skip:
            w = bw._skip[w]
            hops += 1
        assert hops <= 3, f"skip chain from window 0 is {hops} links long"
        # And the grants were the same arithmetic series the scan gives.
        assert bw.reserve(0.0) == float(n)


class TestWindowPruning:
    def test_prune_bounds_window_map(self):
        """A long synthetic run with a trailing low-water mark keeps the
        window map bounded instead of one entry per window forever."""
        bw = BandwidthResource(4.0)
        peak = 0
        for i in range(50_000):
            t = float(i * 4)
            bw.reserve(t)
            if i % 256 == 0:
                bw.prune(t - 64.0)
            peak = max(peak, bw.n_windows)
        assert peak <= 512, f"window map peaked at {peak} entries"
        bw.prune(float(50_000 * 4))
        assert bw.n_windows == 0

    def test_prune_never_changes_grants(self):
        """Pruning below the low-water mark must not perturb any grant
        at or after the mark."""
        rng = random.Random(7)
        base = BandwidthResource(8.0, capacity=2)
        pruned = BandwidthResource(8.0, capacity=2)
        t = 0.0
        for i in range(2000):
            t += rng.random() * 4.0
            jitter = rng.random() * 64.0  # out-of-order future arrivals
            assert base.reserve(t + jitter) == pruned.reserve(t + jitter)
            if i % 100 == 0:
                pruned.prune(t)  # low water: no future arrival precedes t
        assert pruned.n_windows < base.n_windows

    def test_machine_prunes_and_stays_bit_identical(self, monkeypatch):
        """Drive a real cell with an aggressive prune period: the stats
        must match the unpruned replay bit-for-bit, and the controller's
        window maps must end small."""
        # This exercises the *Python* fast path's pruning (the native
        # core owns its own resource maps; its prune neutrality is
        # covered by the cross-engine identity suite).
        monkeypatch.setenv("REPRO_SIM_NO_C", "1")
        cfg = default_config(ops_per_thread=48)
        run = generate_for_design(WORKLOADS["queue"], cfg, "strandweaver", "txn")

        captured = {}

        class SpyPM(PMController):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                captured["pm"] = self

        monkeypatch.setattr(machine_mod, "PMController", SpyPM)
        monkeypatch.setattr(machine_mod, "PRUNE_PERIOD", 64)
        pruned = Machine("strandweaver").run(run.program)
        pm = captured["pm"]
        assert pm._accept.n_windows < 200
        assert pm._media.n_windows < 200

        monkeypatch.setattr(machine_mod, "PRUNE_PERIOD", 1 << 30)
        baseline = Machine("strandweaver").run(run.program)
        assert pruned.summary() == baseline.summary()
        assert [c.__dict__ for c in pruned.per_core] == [
            c.__dict__ for c in baseline.per_core
        ]


class TestOccupancyHistory:
    def test_occupancy_exact_before_last_drain(self):
        """The pre-fix bug: entries admitted, drained by a later
        admission, then queried at an earlier time — the live heap has
        forgotten them, history has not."""
        live = SlottedQueue(capacity=4)
        hist = SlottedQueue(capacity=4, retain_history=True)
        for q in (live, hist):
            q.admit(0.0, 10.0)
            q.admit(1.0, 12.0)
            q.admit(20.0, 30.0)  # drains the first two departures
        # At t=5 both early entries were resident.
        assert hist.occupancy_at(5.0) == 2
        assert live.occupancy_at(5.0) < 2  # documents the undercount
        # At/after the last drain both agree.
        assert hist.occupancy_at(25.0) == live.occupancy_at(25.0) == 1

    def test_history_tracks_entry_time(self):
        q = SlottedQueue(capacity=2, retain_history=True)
        q.admit(0.0, 100.0)
        q.admit(0.0, 100.0)
        entry = q.admit(0.0, 200.0)  # delayed until a slot frees at 100
        assert entry == 100.0
        assert q.occupancy_at(50.0) == 2  # third entry not yet resident
        assert q.occupancy_at(150.0) == 1
        assert q.occupancy_at(250.0) == 0

    def test_admission_timing_unchanged_by_history(self):
        rng = random.Random(3)
        live = SlottedQueue(capacity=3)
        hist = SlottedQueue(capacity=3, retain_history=True)
        t = 0.0
        for _ in range(500):
            t += rng.random() * 5.0
            dep = t + rng.random() * 20.0
            assert live.admit(t, dep) == hist.admit(t, dep)
