"""Cache hierarchy tests: tags, LRU, write-backs, coherence hooks."""

import pytest

from repro.sim.cache import CacheHierarchy, TagCache
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.memory import DRAMController, PMController


def small_cache(assoc=2, sets=4):
    return TagCache(
        CacheConfig(
            size_bytes=assoc * sets * 64, assoc=assoc, line_bytes=64,
            hit_latency=4, mshrs=4,
        )
    )


def make_hierarchy(n_cores=2):
    cfg = MachineConfig(n_cores=n_cores)
    pm = PMController(cfg.pm)
    dram = DRAMController()
    return cfg, CacheHierarchy(cfg, pm, dram)


class TestTagCache:
    def test_miss_then_hit(self):
        c = small_cache()
        assert c.lookup(1) is None
        c.fill(1, dirty=False)
        assert c.lookup(1) is False

    def test_dirty_tracking(self):
        c = small_cache()
        c.fill(1, dirty=True)
        assert c.lookup(1) is True
        assert c.clean(1) is True
        assert c.lookup(1) is False

    def test_lru_eviction(self):
        c = small_cache(assoc=2, sets=1)
        c.fill(0, False)
        c.fill(1, False)
        c.lookup(0)  # refresh 0; victim should be 1
        victim = c.fill(2, False)
        assert victim == (1, False)

    def test_dirty_victim_reported(self):
        c = small_cache(assoc=1, sets=1)
        c.fill(0, dirty=True)
        victim = c.fill(1, dirty=False)
        assert victim == (0, True)

    def test_invalidate(self):
        c = small_cache()
        c.fill(3, dirty=True)
        assert c.invalidate(3) is True
        assert c.lookup(3) is None
        assert c.invalidate(3) is False


class TestHierarchy:
    def test_l1_hit_after_fill(self):
        _, h = make_hierarchy()
        done1, served1 = h.access(0, 10, False, 0.0, persistent=True)
        assert served1 == "pm"
        done2, served2 = h.access(0, 10, False, done1, persistent=True)
        assert served2 == "l1"

    def test_warm_serves_from_l2(self):
        _, h = make_hierarchy()
        h.warm([10])
        _, served = h.access(0, 10, False, 0.0, persistent=True)
        assert served == "l2"

    def test_volatile_miss_goes_to_dram(self):
        _, h = make_hierarchy()
        _, served = h.access(0, 999, False, 0.0, persistent=False)
        assert served == "dram"

    def test_cross_core_dirty_transfer(self):
        cfg, h = make_hierarchy()
        h.access(0, 10, True, 0.0, persistent=True)  # core 0 dirties line
        t, _ = h.access(1, 10, True, 1000.0, persistent=True)
        assert h.coherence_transfers == 1
        assert t >= 1000.0 + cfg.coherence_transfer

    def test_drain_hook_invoked_on_steal(self):
        calls = []

        def hook(owner, line, t):
            calls.append((owner, line))
            return t + 500.0

        cfg, h = make_hierarchy()
        h.drain_hooks[0] = hook
        h.access(0, 10, True, 0.0, persistent=True)
        t, _ = h.access(1, 10, True, 100.0, persistent=True)
        assert calls == [(0, 10)]
        assert t >= 600.0

    def test_flush_cleans_line(self):
        _, h = make_hierarchy()
        h.access(0, 10, True, 0.0, persistent=True)
        assert h.l1[0].lookup(10, touch=False) is True
        h.flush(0, 10, 50.0)
        assert h.l1[0].lookup(10, touch=False) is False

    def test_flush_of_absent_line_is_cheap(self):
        cfg, h = make_hierarchy()
        depart = h.flush(0, 123, 10.0)
        assert depart == 10.0 + cfg.l1d.hit_latency
