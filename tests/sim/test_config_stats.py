"""Configuration and statistics tests."""

import pytest

from repro.sim.config import TABLE_I, MachineConfig
from repro.sim.stats import CoreStats, MachineStats, geomean


def test_table_i_defaults_match_paper():
    cfg = TABLE_I
    assert cfg.n_cores == 8
    assert cfg.core.clock_ghz == 2.0
    assert cfg.core.rob_entries == 224
    assert cfg.core.store_queue_entries == 64
    assert cfg.l1d.size_bytes == 32 * 1024 and cfg.l1d.assoc == 2
    assert cfg.l2.size_bytes == 28 * 1024 * 1024 and cfg.l2.assoc == 16
    assert cfg.pm.read_latency == 692  # 346 ns at 2 GHz
    assert cfg.pm.write_to_controller == 192  # 96 ns
    assert cfg.pm.write_to_media == 1000  # 500 ns
    assert cfg.strand.persist_queue_entries == 16
    assert cfg.strand.n_strand_buffers == 4
    assert cfg.strand.strand_buffer_entries == 4


def test_cache_set_count():
    assert TABLE_I.l1d.n_sets == 32 * 1024 // (2 * 64)


def test_with_strand_override():
    cfg = TABLE_I.with_strand(8, 2)
    assert cfg.strand.n_strand_buffers == 8
    assert cfg.strand.strand_buffer_entries == 2
    assert TABLE_I.strand.n_strand_buffers == 4  # original untouched


def test_table1_rendering_mentions_key_values():
    text = " ".join(TABLE_I.table1().values())
    assert "346ns read" in text
    assert "224-entry ROB" in text
    assert "4 strand buffers" in text


def test_core_stats_persist_stalls():
    st = CoreStats(stall_fence=10, stall_queue_full=5, stall_drain=7, stall_lock=100)
    assert st.persist_stalls == 22  # lock waits are not persist stalls


def test_machine_stats_aggregation():
    ms = MachineStats(design="x")
    a = CoreStats(cycles=100, clwbs=4, stall_fence=10)
    b = CoreStats(cycles=150, clwbs=6, stall_fence=20)
    ms.per_core = [a, b]
    assert ms.cycles == 150
    assert ms.clwbs == 10
    assert ms.persist_stalls == 30
    assert ms.ckc == pytest.approx(1000 * 10 / 150)


def test_speedup_and_stall_ratio():
    fast = MachineStats(design="fast", per_core=[CoreStats(cycles=100, stall_fence=10)])
    slow = MachineStats(design="slow", per_core=[CoreStats(cycles=200, stall_fence=40)])
    assert fast.speedup_over(slow) == 2.0
    assert fast.stall_ratio_vs(slow) == 0.25


def test_stall_ratio_vs_zero_baseline_stays_finite():
    """A stall-free baseline must not leak ``inf`` into figure JSON."""
    import math

    stalled = MachineStats(design="a", per_core=[CoreStats(cycles=100, stall_fence=7)])
    clean = MachineStats(design="b", per_core=[CoreStats(cycles=100)])
    assert clean.stall_ratio_vs(clean) == 0.0
    ratio = stalled.stall_ratio_vs(clean)
    assert math.isfinite(ratio)
    assert ratio == 7.0  # absolute stall count as the finite proxy


def test_summary_reports_pm_traffic():
    core = CoreStats(cycles=10, pm_reads=3, pm_writes=5)
    summary = MachineStats(design="x", per_core=[core, CoreStats(pm_writes=2)]).summary()
    assert summary["pm_reads"] == 3
    assert summary["pm_writes"] == 7


def test_geomean():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([]) == 0.0
    assert geomean([2.0]) == pytest.approx(2.0)


def test_geomean_rejects_non_positive_values():
    with pytest.raises(ValueError, match="non-positive"):
        geomean([1.0, 0.0, 4.0])
    with pytest.raises(ValueError, match="non-positive"):
        geomean([-2.0])
