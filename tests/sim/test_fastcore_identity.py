"""Cross-engine and cross-path identity properties.

The simulator has three engine tiers (reference per-op, compiled Python
fast path, native C replay core) and two trace-production paths
(direct per-dialect generation, generate-once + specialize).  Every
pair must be bit-identical:

* a specialized program is op-for-op identical — every field of every
  op, the lock order, the numbering — to one generated directly with
  the concrete dialect;
* the specialized program's derived compiled arrays (what the native
  core replays) equal a fresh compile of its materialized ops;
* the fast engines reproduce the reference engine's ``MachineStats``
  exactly, per core and per field, across all five designs.

Engine selection pins: ``REPRO_SIM_REFERENCE=1`` forces the reference
engine, ``REPRO_SIM_NO_C=1`` forces the Python fast path; unset, the
native core runs when a C compiler is available and silently falls
back otherwise — all three must agree, so these tests pass with or
without a toolchain.
"""

import pytest

from repro.harness.experiment import default_config
from repro.sim import cnative
from repro.sim.fastcore import compile_trace
from repro.sim.machine import DESIGNS, Machine
from repro.workloads import WORKLOADS
from repro.workloads.base import (
    generate_canonical,
    generate_for_design,
    specialize_run,
)

#: small but structurally rich: queue exercises locks + logs, rbtree
#: recursion-heavy updates, nstore-wr write back-pressure.
BENCHMARKS = ("queue", "rbtree", "nstore-wr")

CFG = default_config(ops_per_thread=12)


def _stats_fields(stats):
    return [dict(c.__dict__) for c in stats.per_core]


@pytest.fixture(scope="module")
def canonical():
    return {b: generate_canonical(WORKLOADS[b], CFG, "txn") for b in BENCHMARKS}


@pytest.mark.parametrize("workload", BENCHMARKS)
@pytest.mark.parametrize("design", sorted(DESIGNS))
def test_specialized_equals_direct_generation(canonical, workload, design):
    """Specialize-from-canonical must reproduce direct generation
    op-for-op: all fields, all numbering, the lock order."""
    spec = specialize_run(canonical[workload], design)
    direct = generate_for_design(WORKLOADS[workload], CFG, design, "txn")
    sp, dp = spec.program, direct.program
    assert sp.n_threads == dp.n_threads
    assert sp.lock_order == dp.lock_order
    assert sp._next_gseq == dp._next_gseq
    for st, dt in zip(sp.threads, dp.threads):
        assert len(st.ops) == len(dt.ops)
        for so, do in zip(st.ops, dt.ops):
            assert so == do, f"{workload}/{design}: {so!r} != {do!r}"


@pytest.mark.parametrize("workload", BENCHMARKS)
@pytest.mark.parametrize("design", sorted(DESIGNS))
def test_derived_arrays_equal_fresh_compile(canonical, workload, design):
    """The compiled arrays attached by specialization (patched/sliced
    from the canonical arrays) must equal compiling the materialized
    specialized ops from scratch."""
    spec = specialize_run(canonical[workload], design)
    for trace in spec.program.threads:
        ka, la, ca, lka, static = trace._c_arrays
        kinds, lines, cycles, lock_ids, fresh_static = compile_trace(
            type("T", (), {"ops": trace.ops, "_compiled": None})()
        )
        assert list(ka) == kinds
        assert list(la) == lines
        assert list(ca) == cycles
        assert list(lka) == lock_ids
        assert static == fresh_static


@pytest.mark.parametrize("workload", BENCHMARKS)
@pytest.mark.parametrize("design", sorted(DESIGNS))
def test_fast_engines_match_reference(monkeypatch, canonical, workload, design):
    """Reference vs Python-fast vs default (native when available):
    identical summary and identical per-core stats, field for field."""
    program = specialize_run(canonical[workload], design).program

    monkeypatch.setenv("REPRO_SIM_REFERENCE", "1")
    ref = Machine(design).run(program)
    monkeypatch.delenv("REPRO_SIM_REFERENCE")

    monkeypatch.setenv("REPRO_SIM_NO_C", "1")
    pyfast = Machine(design).run(program)
    monkeypatch.delenv("REPRO_SIM_NO_C")

    native = Machine(design).run(program)

    assert pyfast.summary() == ref.summary()
    assert _stats_fields(pyfast) == _stats_fields(ref)
    assert native.summary() == ref.summary()
    assert _stats_fields(native) == _stats_fields(ref)


def test_native_core_declines_cleanly(monkeypatch):
    """REPRO_SIM_NO_C must disable the native core even after it has
    been loaded, and run_native must return None (not raise)."""
    program = specialize_run(
        generate_canonical(WORKLOADS["queue"], CFG, "txn"), "strandweaver"
    ).program
    monkeypatch.setenv("REPRO_SIM_NO_C", "1")
    assert (
        cnative.run_native("strandweaver", program, None, True, 4096) is None
    )


def test_native_prune_period_is_result_neutral():
    """The native core's periodic resource pruning must not perturb
    stats: an aggressive prune period replays bit-identically to an
    effectively-unpruned one."""
    if not cnative.available():
        pytest.skip("no C compiler in this environment")
    from repro.sim.config import TABLE_I

    program = specialize_run(
        generate_canonical(WORKLOADS["queue"], CFG, "txn"), "strandweaver"
    ).program
    aggressive = cnative.run_native("strandweaver", program, TABLE_I, True, 64)
    unpruned = cnative.run_native(
        "strandweaver", program, TABLE_I, True, 1 << 30
    )
    assert aggressive is not None and unpruned is not None
    assert [c.__dict__ for c in aggressive] == [c.__dict__ for c in unpruned]


def test_wrong_fence_exception_identical_across_engines(monkeypatch):
    """A trace carrying a fence foreign to the design must raise the
    same ValueError (message included) from every engine tier."""
    program = specialize_run(
        generate_canonical(WORKLOADS["queue"], CFG, "txn"), "intel-x86"
    ).program  # SFENCE traces are foreign to strandweaver

    monkeypatch.setenv("REPRO_SIM_REFERENCE", "1")
    with pytest.raises(ValueError) as ref_err:
        Machine("strandweaver").run(program)
    monkeypatch.delenv("REPRO_SIM_REFERENCE")

    with pytest.raises(ValueError) as fast_err:
        Machine("strandweaver").run(program)
    assert str(fast_err.value) == str(ref_err.value)
