"""Unit tests for the shared-resource timing primitives."""

import pytest

from repro.sim.engine import BandwidthResource, InOrderQueue, SlottedQueue


class TestBandwidthResource:
    def test_immediate_grant_when_idle(self):
        bw = BandwidthResource(8)
        assert bw.reserve(100.0) == 100.0

    def test_back_to_back_requests_spaced(self):
        bw = BandwidthResource(8)
        g1 = bw.reserve(0.0)
        g2 = bw.reserve(0.0)
        assert g2 >= g1 + 8 - 1e-9 or int(g2 / 8) != int(g1 / 8)

    def test_out_of_order_reservation_does_not_block_past(self):
        bw = BandwidthResource(8)
        future = bw.reserve(10_000.0)
        early = bw.reserve(16.0)
        assert early < future  # the earlier slot was still available

    def test_capacity_windows(self):
        bw = BandwidthResource(10, capacity=2)
        grants = sorted(bw.reserve(0.0) for _ in range(4))
        # Two fit in the first window, the rest spill into later windows.
        assert grants[0] < 10 and grants[1] < 10
        assert grants[2] >= 10

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            BandwidthResource(0)
        with pytest.raises(ValueError):
            BandwidthResource(8, capacity=0)


class TestInOrderQueue:
    def test_retire_in_order(self):
        q = InOrderQueue(8)
        r1 = q.push(0.0, 100.0)
        r2 = q.push(0.0, 50.0)  # ready earlier, retires later
        assert r1 == 100.0
        assert r2 == 100.0

    def test_earliest_slot_when_full(self):
        q = InOrderQueue(2)
        q.push(0.0, 100.0)
        q.push(0.0, 200.0)
        assert q.earliest_slot(0.0) == 100.0
        assert q.earliest_slot(150.0) == 150.0

    def test_drain_time(self):
        q = InOrderQueue(4)
        q.push(0.0, 70.0)
        q.push(0.0, 30.0)
        assert q.drain_time(0.0) == 70.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            InOrderQueue(0)


class TestSlottedQueue:
    def test_admission_immediate_with_space(self):
        q = SlottedQueue(2)
        assert q.admit(5.0, 100.0) == 5.0

    def test_admission_delayed_when_full(self):
        q = SlottedQueue(1)
        q.admit(0.0, 100.0)
        assert q.admit(0.0, 200.0) == 100.0

    def test_occupancy(self):
        q = SlottedQueue(4)
        q.admit(0.0, 100.0)
        q.admit(0.0, 50.0)
        assert q.occupancy_at(10.0) == 2
        assert q.occupancy_at(60.0) == 1
        assert q.occupancy_at(150.0) == 0
