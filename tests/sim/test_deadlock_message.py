"""Deadlock reports must be diagnosable without a debugger."""

import pytest

from repro.core.ops import Op, OpKind, Program
from repro.sim.machine import Machine, SimulationDeadlock


def test_deadlock_message_names_every_parked_core():
    # Two threads both queue behind lock 0, whose recorded acquisition
    # order names a thread that never runs — so both park forever.
    program = Program(2)
    for tid in (0, 1):
        program.emit(tid, Op(OpKind.COMPUTE, cycles=10))
        program.emit(tid, Op(OpKind.LOCK_ACQ, lock_id=0))
        program.emit(tid, Op(OpKind.STORE, addr=0x100, size=8, data=b"\x01" * 8))
        program.emit(tid, Op(OpKind.LOCK_REL, lock_id=0))
    program.lock_order[0] = [5]  # a tid that does not exist

    with pytest.raises(SimulationDeadlock) as excinfo:
        Machine("strandweaver").run(program)
    msg = str(excinfo.value)
    assert "[strandweaver]" in msg
    # Per-core blocked state: op index, the op itself, local clock, and
    # the blocking resource with the thread it is waiting for.
    assert "core 0: op 1/4" in msg
    assert "core 1: op 1/4" in msg
    assert "LOCK_ACQ(lock=0)" in msg
    assert "local clock" in msg
    assert "waiting on lock 0" in msg
    assert "next holder by recorded order: core 5" in msg
