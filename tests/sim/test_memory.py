"""PM controller and DRAM timing tests."""

from repro.sim.config import PMConfig
from repro.sim.memory import DRAMController, PMController


def test_write_ack_latency():
    pm = PMController(PMConfig())
    ticket = pm.write(0.0, line=1)
    assert ticket.accepted >= 0.0
    assert ticket.acked == ticket.accepted + 192
    assert ticket.media_done >= ticket.accepted + 1000


def test_write_coalescing_same_line():
    cfg = PMConfig()
    pm = PMController(cfg)
    # Back up the media so that queued entries linger in the write queue.
    for i in range(100, 150):
        pm.write(0.0, line=i)
    queued = pm.write(0.0, line=5)
    assert queued.media_done > cfg.write_to_media  # it waited in the queue
    before = pm.coalesced
    again = pm.write(1.0, line=5)
    assert pm.coalesced == before + 1
    # The coalesced write acknowledges without a new media reservation.
    assert again.acked <= queued.media_done
    pm.write(1.0, line=999)
    assert pm.coalesced == before + 1  # different line is not coalesced


def test_no_coalescing_after_media_start():
    cfg = PMConfig()
    pm = PMController(cfg)
    first = pm.write(0.0, line=5)
    # Arrive long after the media write started: fresh write, no coalesce.
    pm.write(first.media_done + 10_000, line=5)
    assert pm.coalesced == 0


def test_media_bandwidth_limits_distinct_lines():
    cfg = PMConfig()
    pm = PMController(cfg)
    interval = cfg.write_to_media / cfg.media_banks
    tickets = [pm.write(0.0, line=i) for i in range(40)]
    spread = max(t.media_done for t in tickets) - min(t.media_done for t in tickets)
    assert spread >= (40 - cfg.media_banks) * interval * 0.5


def test_write_queue_backpressure_delays_ack():
    cfg = PMConfig(write_queue_entries=4, media_banks=1)
    pm = PMController(cfg)
    tickets = [pm.write(0.0, line=i) for i in range(20)]
    assert tickets[-1].accepted > tickets[0].accepted + 1000


def test_read_latency():
    pm = PMController(PMConfig())
    assert pm.read(0.0) >= 692


def test_dram_access():
    dram = DRAMController(latency=120.0)
    assert dram.access(0.0) == 120.0
    assert dram.accesses == 1
