"""CoreEngine-level tests: ROB pressure, store gating, CLWB-after-store."""

import pytest

from repro.core.ops import Program, TraceCursor
from repro.sim.machine import Machine, run_design
from repro.sim.config import MachineConfig
from dataclasses import replace


def test_rob_pressure_throttles_dispatch():
    """With a tiny ROB, a long-latency op holds dispatch back."""
    small_rob = replace(
        MachineConfig(n_cores=1),
        core=replace(MachineConfig().core, rob_entries=4),
    )
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    for i in range(40):
        cur.store(i * 64, b"\x01" * 8)
        cur.clwb(i * 64)
    small = Machine("no-persist-queue", small_rob).run(prog)

    prog2 = Program(1)
    cur = TraceCursor(prog2, 0)
    for i in range(40):
        cur.store(i * 64, b"\x01" * 8)
        cur.clwb(i * 64)
    big = Machine("no-persist-queue", MachineConfig(n_cores=1)).run(prog2)
    assert small.cycles >= big.cycles


def test_clwb_waits_for_store_retirement():
    """A CLWB of a line may not depart before its store reached the L1."""
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    cur.store(0, b"\x01" * 8)
    cur.clwb(0)
    stats = run_design("strandweaver", prog)
    # Ack latency (192) must be fully serialised after the store.
    assert stats.cycles >= 192


def test_store_gate_after_persist_barrier():
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    cur.store(0, b"\x01" * 8)
    cur.clwb(0)
    cur.persist_barrier()
    cur.store(64, b"\x01" * 8)  # gated on the CLWB's *issue*, not its ack
    cur.clwb(64)
    cur.join_strand()
    stats = run_design("strandweaver", prog)
    # The chain is two acks deep (log then data), not more.
    assert 2 * 192 <= stats.cycles < 4 * 192


def test_compute_advances_clock_exactly():
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    cur.compute(5000)
    stats = run_design("non-atomic", prog)
    assert 5000 <= stats.cycles < 5100


def test_volatile_ops_do_not_touch_pm():
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    cur.vstore(0, 8)
    cur.vload(64, 8)
    stats = run_design("non-atomic", prog)
    assert stats.total.pm_writes == 0
    assert stats.total.stores == 1
    assert stats.total.loads == 1
