"""Machine/CPU tests: lock arbitration, replay, design registry."""

import pytest

from repro.core.ops import Program, TraceCursor
from repro.sim.cpu import LockTable
from repro.sim.machine import DESIGNS, Machine, run_design
from repro.sim.config import MachineConfig


def test_design_registry_complete():
    assert set(DESIGNS) == {
        "intel-x86", "hops", "no-persist-queue", "strandweaver", "non-atomic",
    }


def test_unknown_design_rejected():
    with pytest.raises(ValueError):
        Machine("tso")


def test_too_many_threads_rejected():
    prog = Program(9)
    with pytest.raises(ValueError):
        Machine("intel-x86", MachineConfig(n_cores=8)).run(prog)


class TestLockTable:
    def test_fifo_turn(self):
        lt = LockTable({1: [0, 1]})
        assert lt.try_acquire(1, 1, 0.0) is None  # not thread 1's turn
        assert lt.try_acquire(1, 0, 0.0) == 0.0

    def test_mutual_exclusion(self):
        lt = LockTable({1: [0, 1]})
        lt.try_acquire(1, 0, 0.0)
        # Thread 1 is next in FIFO but the lock is still held.
        assert lt.try_acquire(1, 1, 5.0) is None
        lt.release(1, 50.0)
        assert lt.try_acquire(1, 1, 5.0) == 50.0

    def test_grant_at_later_request_time(self):
        lt = LockTable({1: [0, 1]})
        lt.try_acquire(1, 0, 0.0)
        lt.release(1, 10.0)
        assert lt.try_acquire(1, 1, 100.0) == 100.0


def simple_program(design_fences: str) -> Program:
    prog = Program(2)
    for tid in range(2):
        cur = TraceCursor(prog, tid)
        cur.lock(1)
        cur.store(tid * 64, b"\x01" * 8)
        cur.clwb(tid * 64)
        if design_fences == "sfence":
            cur.sfence()
        elif design_fences == "strand":
            cur.join_strand()
        cur.unlock(1)
        cur.compute(100)
    return prog


def test_run_design_produces_stats():
    stats = run_design("intel-x86", simple_program("sfence"))
    total = stats.total
    assert stats.cycles > 0
    assert total.stores == 2
    assert total.clwbs == 2
    assert total.fences == 2


def test_locks_serialise_critical_sections():
    prog = simple_program("sfence")
    stats = run_design("intel-x86", prog)
    # The second thread must have waited for the first thread's fence.
    assert stats.total.stall_lock > 0


def test_all_designs_replay_matching_dialect():
    for design, fences in [
        ("intel-x86", "sfence"),
        ("strandweaver", "strand"),
        ("no-persist-queue", "strand"),
        ("non-atomic", "none"),
    ]:
        stats = run_design(design, simple_program(fences))
        assert stats.cycles > 0, design


def test_wrong_fence_kind_raises():
    prog = simple_program("sfence")
    with pytest.raises(ValueError):
        run_design("strandweaver", prog)


def test_final_drain_applies_to_all_cores():
    # Even with no fences, CLWBs must be durable before the run ends, so
    # the run is longer than the bare dispatch time.
    prog = Program(1)
    cur = TraceCursor(prog, 0)
    cur.store(0, b"\x01" * 8)
    cur.clwb(0)
    stats = run_design("non-atomic", prog)
    assert stats.cycles >= 192


def test_warm_disables(monkeypatch):
    prog = simple_program("none")
    warm = Machine("non-atomic").run(prog, warm=True)
    cold = Machine("non-atomic").run(prog, warm=False)
    assert cold.cycles >= warm.cycles
