"""PersistentMemory functional tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ops import Op, OpKind
from repro.pmem.space import PersistentMemory, PmError


def test_read_write_roundtrip():
    pm = PersistentMemory(1024)
    pm.write(10, b"hello")
    assert pm.read(10, 5) == b"hello"


def test_u64_roundtrip():
    pm = PersistentMemory(1024)
    pm.write_u64(8, 0xDEADBEEF)
    assert pm.read_u64(8) == 0xDEADBEEF


def test_u32_roundtrip():
    pm = PersistentMemory(1024)
    pm.write_u32(4, 0x12345678)
    assert pm.read_u32(4) == 0x12345678


def test_out_of_range_rejected():
    pm = PersistentMemory(64)
    with pytest.raises(PmError):
        pm.read(60, 8)
    with pytest.raises(PmError):
        pm.write(-1, b"x")


def test_zero_size_rejected():
    with pytest.raises(PmError):
        PersistentMemory(0)


def test_mark_clean_and_baseline():
    pm = PersistentMemory(128)
    pm.write(0, b"\x11" * 8)
    pm.mark_clean()
    pm.write(0, b"\x22" * 8)
    base = pm.baseline_image()
    assert bytes(base[:8]) == b"\x11" * 8


def test_crash_image_applies_persists_in_gseq_order():
    pm = PersistentMemory(128)
    pm.mark_clean()
    older = Op(OpKind.STORE, addr=0, size=1, data=b"\x01", gseq=1)
    newer = Op(OpKind.STORE, addr=0, size=1, data=b"\x02", gseq=2)
    img = pm.crash_image([newer, older])
    assert img.read(0, 1) == b"\x02"


def test_crash_image_rejects_non_stores():
    pm = PersistentMemory(128)
    pm.mark_clean()
    with pytest.raises(PmError):
        pm.crash_image([Op(OpKind.CLWB, addr=0, size=64)])


def test_snapshot_restore():
    pm = PersistentMemory(64)
    pm.write(0, b"abc")
    snap = pm.snapshot()
    pm.write(0, b"xyz")
    pm.restore(snap)
    assert pm.read(0, 3) == b"abc"


def test_diff_lines():
    a = PersistentMemory(256)
    b = PersistentMemory(256)
    b.write(130, b"\x01")
    assert a.diff_lines(b) == [2]


@given(st.integers(0, 1000), st.binary(min_size=1, max_size=24))
@settings(max_examples=50, deadline=None)
def test_write_read_property(addr, data):
    pm = PersistentMemory(2048)
    pm.write(addr, data)
    assert pm.read(addr, len(data)) == data
