"""Allocator tests."""

import pytest

from repro.pmem.alloc import PmAllocator, align_up
from repro.pmem.space import PersistentMemory, PmError


def make():
    space = PersistentMemory(4096)
    return PmAllocator(space, 64, 4096 - 64)


def test_align_up():
    assert align_up(0, 8) == 0
    assert align_up(1, 8) == 8
    assert align_up(64, 64) == 64
    assert align_up(65, 64) == 128


def test_align_up_rejects_non_power_of_two():
    with pytest.raises(PmError):
        align_up(10, 6)


def test_alloc_alignment():
    alloc = make()
    a = alloc.alloc(3)
    b = alloc.alloc(8, align=64)
    assert a % 8 == 0
    assert b % 64 == 0
    assert b >= a + 3


def test_alloc_lines():
    alloc = make()
    addr = alloc.alloc_lines(2)
    assert addr % 64 == 0
    assert alloc.used >= 128


def test_exhaustion():
    alloc = make()
    with pytest.raises(PmError):
        alloc.alloc(1 << 20)


def test_free_reuse():
    alloc = make()
    a = alloc.alloc(64, align=64)
    alloc.free(a, 64)
    b = alloc.alloc(64, align=64)
    assert b == a


def test_free_of_foreign_range_rejected():
    alloc = make()
    with pytest.raises(PmError):
        alloc.free(0, 8)


def test_range_validation():
    space = PersistentMemory(128)
    with pytest.raises(PmError):
        PmAllocator(space, 64, 1024)


def test_zero_alloc_rejected():
    alloc = make()
    with pytest.raises(PmError):
        alloc.alloc(0)
