"""Experiment-driver unit tests."""

import dataclasses

import pytest

from repro.harness.experiment import (
    ALL_DESIGNS,
    ALL_MODELS,
    clear_cache,
    default_config,
    run_cell,
)
from repro.sim.config import TABLE_I


def test_design_and_model_lists():
    assert ALL_DESIGNS[0] == "intel-x86"
    assert ALL_DESIGNS[-1] == "non-atomic"
    assert set(ALL_MODELS) == {"txn", "atlas", "sfr"}


def test_default_config_scales():
    cfg = default_config(ops_per_thread=10, ops_per_region=2)
    assert cfg.ops_per_thread == 10
    assert cfg.ops_per_region == 2
    assert cfg.n_threads == 8


def test_cache_distinguishes_machine_configs():
    clear_cache()
    a = run_cell("queue", "strandweaver", "txn", ops_per_thread=4)
    b = run_cell(
        "queue", "strandweaver", "txn", ops_per_thread=4,
        machine_cfg=TABLE_I.with_strand(1, 1),
    )
    assert a is not b
    assert a.cycles != b.cycles  # (1,1) strand buffers are much slower


def test_cache_distinguishes_models():
    clear_cache()
    a = run_cell("queue", "strandweaver", "txn", ops_per_thread=4)
    b = run_cell("queue", "strandweaver", "sfr", ops_per_thread=4)
    assert a is not b


def test_cache_distinguishes_pm_timing():
    """Regression: the memo key must cover the *full* MachineConfig.

    A previous RunKey fingerprinted only the strand-buffer fields, so two
    configs differing in PM timing silently shared one cached result.
    """
    clear_cache()
    slow_pm = dataclasses.replace(
        TABLE_I, pm=dataclasses.replace(TABLE_I.pm, write_to_controller=768)
    )
    a = run_cell("queue", "strandweaver", "txn", ops_per_thread=4)
    b = run_cell(
        "queue", "strandweaver", "txn", ops_per_thread=4, machine_cfg=slow_pm
    )
    assert a is not b
    assert a.cycles != b.cycles  # a 4x CLWB-ack latency must show up


def test_cache_distinguishes_cache_timing():
    clear_cache()
    slow_l1 = dataclasses.replace(
        TABLE_I, l1d=dataclasses.replace(TABLE_I.l1d, hit_latency=40)
    )
    a = run_cell("queue", "strandweaver", "txn", ops_per_thread=4)
    b = run_cell(
        "queue", "strandweaver", "txn", ops_per_thread=4, machine_cfg=slow_l1
    )
    assert a is not b
    assert a.cycles != b.cycles
