"""Rendering helper tests."""

from repro.harness.report import render_series, render_table


def test_render_table_basic():
    text = render_table("T", ["name", "x", "y"], [["a", 1.5, 2], ["b", 3.25, 4]])
    assert "T" in text
    assert "a" in text and "1.50" in text
    assert text.count("\n") >= 4


def test_render_table_string_cells():
    text = render_table("T", ["k", "v"], [["key", "value"]])
    assert "value" in text


def test_render_series():
    text = render_series("S", {"one": [1.0, 2.0]}, ["p1", "p2"])
    assert "one" in text and "p1" in text and "2.00" in text
