"""Parallel sweep engine: determinism, caching, collision-proofing."""

import dataclasses
import json

import pytest

from repro.harness.cachedir import CACHE_SCHEMA, CellCache, fingerprint_key
from repro.harness.experiment import clear_cache
from repro.harness.sweep import SweepCell, expand_cells, run_sweep
from repro.sim.config import TABLE_I

OPS = 4  # tiny but representative scale


def small_matrix():
    return expand_cells(
        ["queue", "hashmap"], ["intel-x86", "strandweaver"], ops_per_thread=OPS
    )


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_cache()
    yield
    clear_cache()


# -- determinism ---------------------------------------------------------


def test_parallel_matches_serial_byte_identical():
    """`-j 1` and `-j 4` produce byte-identical repro.sweep/1 JSON."""
    serial = run_sweep(small_matrix(), jobs=1, use_memo=False)
    parallel = run_sweep(small_matrix(), jobs=4, use_memo=False)
    a = json.dumps(serial.to_json(deterministic=True), sort_keys=True)
    b = json.dumps(parallel.to_json(deterministic=True), sort_keys=True)
    assert a == b


def test_results_in_input_order():
    cells = small_matrix()
    result = run_sweep(cells, jobs=4, use_memo=False)
    assert [res.cell for res in result.cells] == cells


def test_duplicate_cells_simulated_once():
    cell = SweepCell("queue", "strandweaver", ops_per_thread=OPS)
    result = run_sweep([cell, cell, cell], jobs=2, use_memo=False)
    assert len(result.cells) == 3
    assert result.cells[0].stats is result.cells[2].stats


# -- error capture -------------------------------------------------------


def test_failed_cell_reports_without_killing_sweep():
    cells = [
        SweepCell("queue", "strandweaver", ops_per_thread=OPS),
        SweepCell("no-such-benchmark", "strandweaver", ops_per_thread=OPS),
        SweepCell("hashmap", "intel-x86", ops_per_thread=OPS),
    ]
    result = run_sweep(cells, jobs=2, use_memo=False)
    assert result.errors == 1
    ok, bad, ok2 = result.cells
    assert ok.ok and ok2.ok
    assert not bad.ok
    assert "no-such-benchmark" in bad.error
    with pytest.raises(RuntimeError, match="failed"):
        result.stats_for(cells[1])
    assert result.stats_for(cells[0]).cycles > 0


def test_stats_for_unknown_cell_raises():
    result = run_sweep([SweepCell("queue", "intel-x86", ops_per_thread=OPS)])
    with pytest.raises(KeyError):
        result.stats_for(SweepCell("rbtree", "hops", ops_per_thread=OPS))


# -- on-disk cache -------------------------------------------------------


def test_cache_cold_then_warm(tmp_path):
    cache = CellCache(str(tmp_path))
    cells = small_matrix()
    cold = run_sweep(cells, jobs=1, cache=cache, use_memo=False)
    assert cold.cache_hits == 0 and cold.cache_misses == len(cells)
    warm = run_sweep(cells, jobs=1, cache=cache, use_memo=False)
    assert warm.cache_hits == len(cells) and warm.cache_misses == 0
    for a, b in zip(cold.cells, warm.cells):
        assert a.stats.summary() == b.stats.summary()
    a = json.dumps(cold.to_json(deterministic=True), sort_keys=True)
    b = json.dumps(warm.to_json(deterministic=True), sort_keys=True)
    assert a == b


def test_parallel_cold_warm_round_trip(tmp_path):
    cache = CellCache(str(tmp_path))
    cells = small_matrix()
    cold = run_sweep(cells, jobs=4, cache=cache, use_memo=False)
    warm = run_sweep(cells, jobs=4, cache=cache, use_memo=False)
    assert cold.cache_misses == len(cells)
    assert warm.cache_hits == len(cells)


def test_poisoned_cache_entry_ignored(tmp_path):
    """A stale schema version is recomputed, never served."""
    cache = CellCache(str(tmp_path))
    cell = SweepCell("queue", "strandweaver", ops_per_thread=OPS)
    run_sweep([cell], cache=cache, use_memo=False)
    path = cache.path_for(cell.key())
    doc = json.loads(open(path).read())

    poisoned = dict(doc, schema="repro.cell/0")
    with open(path, "w") as fh:
        json.dump(poisoned, fh)
    again = run_sweep([cell], cache=cache, use_memo=False)
    assert again.cache_hits == 0 and again.cache_misses == 1

    # A tampered fingerprint (content no longer matches the address) is
    # also a miss: entries are verified field-for-field on read.
    tampered = dict(doc)
    tampered["fingerprint"] = dict(doc["fingerprint"], model="atlas")
    with open(path, "w") as fh:
        json.dump(tampered, fh)
    assert cache.lookup(cell.fingerprint()) is None

    # Corrupt JSON is a miss, not a crash.
    with open(path, "w") as fh:
        fh.write("{not json")
    assert cache.lookup(cell.fingerprint()) is None


def test_memo_shared_with_run_cell(tmp_path):
    from repro.harness.experiment import run_cell

    stats = run_cell("queue", "strandweaver", ops_per_thread=OPS)
    result = run_sweep(
        [SweepCell("queue", "strandweaver", ops_per_thread=OPS)],
        cache=CellCache(str(tmp_path)),
    )
    assert result.memo_hits == 1
    assert result.cells[0].stats is stats


# -- collision-proofing --------------------------------------------------


def test_full_config_fingerprint_distinguishes_pm_timing(tmp_path):
    """Two MachineConfigs differing only in PM timing never share a key."""
    slow_pm = dataclasses.replace(
        TABLE_I, pm=dataclasses.replace(TABLE_I.pm, write_to_controller=768)
    )
    a = SweepCell("queue", "strandweaver", ops_per_thread=OPS)
    b = SweepCell("queue", "strandweaver", ops_per_thread=OPS, machine_cfg=slow_pm)
    assert a.key() != b.key()

    cache = CellCache(str(tmp_path))
    result = run_sweep([a, b], jobs=1, cache=cache, use_memo=False)
    sa, sb = result.cells
    assert sa.stats.cycles != sb.stats.cycles
    # Each cell round-trips to its own entry with full-config keys.
    warm = run_sweep([a, b], jobs=1, cache=cache, use_memo=False)
    assert warm.cache_hits == 2
    assert warm.cells[0].stats.cycles == sa.stats.cycles
    assert warm.cells[1].stats.cycles == sb.stats.cycles


def test_fingerprint_covers_every_machine_config_field():
    """Any single-field change anywhere in the config tree changes the key."""
    base = SweepCell("queue", "strandweaver", ops_per_thread=OPS)
    variants = [
        dataclasses.replace(TABLE_I, n_cores=4),
        dataclasses.replace(TABLE_I, coherence_transfer=80),
        dataclasses.replace(TABLE_I, core=dataclasses.replace(TABLE_I.core, rob_entries=128)),
        dataclasses.replace(TABLE_I, pm=dataclasses.replace(TABLE_I.pm, read_latency=100)),
        dataclasses.replace(TABLE_I, pm=dataclasses.replace(TABLE_I.pm, media_banks=1)),
        dataclasses.replace(
            TABLE_I, strand=dataclasses.replace(TABLE_I.strand, persist_queue_entries=4)
        ),
        dataclasses.replace(
            TABLE_I, hops=dataclasses.replace(TABLE_I.hops, persist_buffer_entries=4)
        ),
    ]
    keys = {base.key()}
    for cfg in variants:
        keys.add(dataclasses.replace(base, machine_cfg=cfg).key())
    assert len(keys) == len(variants) + 1


def test_fingerprint_key_is_canonical():
    cell = SweepCell("queue", "strandweaver", ops_per_thread=OPS)
    assert cell.key() == fingerprint_key(cell.fingerprint())
    assert cell.fingerprint()["schema"] == CACHE_SCHEMA
