"""Sweep resilience: dead workers, hung cells, retries, failure provenance."""

import json
import os

import pytest

from repro.harness.cachedir import CellCache
from repro.harness.experiment import clear_cache
from repro.harness.sweep import (
    TEST_HANG_ENV,
    TEST_KILL_ENV,
    CellFailure,
    SweepCell,
    run_sweep,
)

OPS = 4


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_cache()
    yield
    clear_cache()


def _cells():
    return [
        SweepCell("queue", "strandweaver", ops_per_thread=OPS),
        SweepCell("hashmap", "strandweaver", ops_per_thread=OPS),
        SweepCell("queue", "intel-x86", ops_per_thread=OPS),
        SweepCell("hashmap", "intel-x86", ops_per_thread=OPS),
    ]


# -- worker death isolation ----------------------------------------------


def test_killed_worker_fails_exactly_one_cell(monkeypatch):
    """SIGKILL mid-cell (OOM-killer stand-in): the poisoned cell reports
    worker-lost, every other cell — including pool-mates that were in
    flight when the pool broke — completes."""
    cells = _cells()
    monkeypatch.setenv(TEST_KILL_ENV, cells[1].label())
    result = run_sweep(cells, jobs=2, use_memo=False)
    assert result.errors == 1
    for res in result.cells:
        if res.cell == cells[1]:
            assert res.failure is not None
            assert res.failure.kind == "worker-lost"
            assert res.failure.attempts == 1
            assert "died" in res.error
        else:
            assert res.ok, res.error


def test_killed_worker_retries_then_fails(monkeypatch):
    cells = _cells()[:2]
    monkeypatch.setenv(TEST_KILL_ENV, cells[0].label())
    result = run_sweep(cells, jobs=2, use_memo=False, retries=1)
    bad = result.result_for(cells[0])
    assert bad.failure is not None
    assert bad.failure.kind == "worker-lost"
    assert bad.failure.attempts == 2
    assert result.result_for(cells[1]).ok


# -- per-cell timeout ----------------------------------------------------


def test_hung_cell_times_out_alone(monkeypatch):
    cells = _cells()[:3]
    monkeypatch.setenv(TEST_HANG_ENV, cells[0].label())
    result = run_sweep(cells, jobs=2, use_memo=False, timeout=2.0)
    bad = result.result_for(cells[0])
    assert bad.failure is not None
    assert bad.failure.kind == "timeout"
    assert "2" in bad.failure.message
    for cell in cells[1:]:
        assert result.result_for(cell).ok


def test_timeout_applies_even_at_jobs_1(monkeypatch):
    cell = SweepCell("queue", "strandweaver", ops_per_thread=OPS)
    monkeypatch.setenv(TEST_HANG_ENV, cell.label())
    result = run_sweep([cell], jobs=1, use_memo=False, timeout=1.5)
    assert result.cells[0].failure is not None
    assert result.cells[0].failure.kind == "timeout"


# -- bounded retries and typed provenance --------------------------------


def test_exception_failure_is_typed_and_retried():
    cells = [
        SweepCell("queue", "strandweaver", ops_per_thread=OPS),
        SweepCell("no-such-benchmark", "strandweaver", ops_per_thread=OPS),
    ]
    result = run_sweep(cells, jobs=1, use_memo=False, retries=2)
    bad = result.result_for(cells[1])
    assert not bad.ok
    failure = bad.failure
    assert failure is not None
    assert failure.kind == "exception"
    assert failure.attempts == 3  # 1 + 2 retries, all deterministic fails
    assert failure.exception  # the exception class name is captured
    assert "no-such-benchmark" in failure.traceback
    # Back-compat: .error remains the human-readable traceback string.
    assert "no-such-benchmark" in bad.error
    assert result.result_for(cells[0]).ok


def test_retried_exception_same_result_in_pool_mode():
    cells = [SweepCell("no-such-benchmark", "strandweaver", ops_per_thread=OPS),
             SweepCell("queue", "strandweaver", ops_per_thread=OPS)]
    result = run_sweep(cells, jobs=2, use_memo=False, retries=1)
    bad = result.result_for(cells[0])
    assert bad.failure is not None
    assert bad.failure.kind == "exception"
    assert bad.failure.attempts == 2


def test_failure_provenance_in_sweep_json():
    from repro.obs.export import sweep_to_json

    cells = [SweepCell("no-such-benchmark", "strandweaver", ops_per_thread=OPS)]
    result = run_sweep(cells, jobs=1, use_memo=False)
    doc = sweep_to_json(result)
    (bad,) = doc["cells"]
    assert bad["ok"] is False
    assert bad["failure"]["kind"] == "exception"
    assert bad["failure"]["attempts"] == 1
    assert "no-such-benchmark" in bad["failure"]["traceback"]
    json.dumps(doc, allow_nan=False)


def test_cell_failure_str_roundtrip():
    failure = CellFailure(
        kind="timeout", exception="TimeoutError", message="cell exceeded 5s"
    )
    assert str(failure) == "TimeoutError: cell exceeded 5s"
    with_tb = CellFailure(
        kind="exception", exception="ValueError", message="boom",
        traceback="Traceback ...\nValueError: boom",
    )
    assert str(with_tb) == with_tb.traceback


# -- cache survives torn writes ------------------------------------------


def test_truncated_cache_entry_is_recomputed_not_served(tmp_path):
    """A partially-written entry (power loss before the data hit disk,
    rename survived) must read as a miss and be transparently repaired."""
    cache = CellCache(str(tmp_path))
    cell = SweepCell("queue", "strandweaver", ops_per_thread=OPS)
    first = run_sweep([cell], cache=cache, use_memo=False)
    assert first.cells[0].ok
    path = cache.path_for(cell.key())

    whole = open(path, "rb").read()
    with open(path, "wb") as fh:  # torn mid-file
        fh.write(whole[: len(whole) // 2])
    assert cache.lookup(cell.fingerprint()) is None

    clear_cache()
    again = run_sweep([cell], cache=cache, use_memo=False)
    assert again.cache_hits == 0 and again.cache_misses == 1
    assert again.cells[0].ok
    assert again.cells[0].stats.summary() == first.cells[0].stats.summary()

    # The recompute rewrote a complete entry: next lookup hits.
    assert cache.lookup(cell.fingerprint()) is not None

    # Zero-length entry (rename raced an empty temp file) is also a miss.
    with open(path, "wb"):
        pass
    assert cache.lookup(cell.fingerprint()) is None
    assert os.path.getsize(path) == 0
