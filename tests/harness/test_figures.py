"""Harness smoke tests: figures regenerate with the paper's shape."""

import pytest

from repro.harness import figure7, figure8, figure9, figure10, run_cell, speedup, table1, table2
from repro.harness.experiment import clear_cache

OPS = 8  # tiny but representative scale for CI-speed shape checks


@pytest.fixture(autouse=True, scope="module")
def _warm_cache():
    clear_cache()
    yield


def test_table1_renders():
    result = table1()
    text = result.render()
    assert "346ns read" in text


def test_table2_reports_all_benchmarks():
    result = table2(ops_per_thread=OPS)
    names = [row[0] for row in result.rows]
    assert names[0] == "queue" and names[-1] == "nstore-wr"
    assert all(row[2] > 0 for row in result.rows)


def test_table2_nstore_wr_most_write_intensive():
    result = table2(ops_per_thread=OPS)
    ckc = {row[0]: row[2] for row in result.rows}
    assert ckc["nstore-wr"] >= ckc["tpcc"]
    assert ckc["nstore-wr"] >= ckc["queue"]
    assert ckc["nstore-wr"] >= ckc["rbtree"]


def test_figure7_strandweaver_beats_x86_everywhere():
    result = figure7(ops_per_thread=OPS)
    designs = result.columns[1:]
    sw = designs.index("strandweaver") + 1
    for row in result.rows[:-1]:  # skip the geomean row
        assert row[sw] > 1.0, f"{row[0]} regressed under StrandWeaver"


def test_figure7_design_ordering():
    result = figure7(ops_per_thread=OPS)
    geo = result.rows[-1]
    cols = result.columns
    by = {cols[i]: geo[i] for i in range(1, len(cols))}
    assert by["intel-x86"] == pytest.approx(1.0)
    assert by["strandweaver"] > by["intel-x86"]
    assert by["non-atomic"] >= by["strandweaver"]
    assert by["no-persist-queue"] > 1.0
    assert by["hops"] > 1.0


def test_figure7_speedup_in_paper_band():
    result = figure7(ops_per_thread=OPS)
    avg = result.summary["strandweaver_avg"]
    assert 1.1 < avg < 2.0  # paper: 1.45x average
    assert result.summary["strandweaver_max"] < 2.5  # paper: 1.97x max


def test_figure8_strandweaver_reduces_stalls():
    result = figure8(ops_per_thread=OPS)
    reduction = result.summary["strandweaver_stall_reduction_pct"]
    assert reduction > 30.0  # paper: 62.4% fewer stalls


def test_speedup_helper_consistent_with_figure():
    s = speedup("queue", "strandweaver", "txn", ops_per_thread=OPS)
    assert s > 1.0


def test_run_cell_cached():
    a = run_cell("queue", "intel-x86", "txn", ops_per_thread=OPS)
    b = run_cell("queue", "intel-x86", "txn", ops_per_thread=OPS)
    assert a is b


def test_run_cell_unknown_benchmark():
    with pytest.raises(ValueError):
        run_cell("btree", "intel-x86")


def test_figure_parallel_matches_serial():
    """A figure regenerated at -j 2 is identical to the serial run."""
    serial = table2(ops_per_thread=OPS)
    parallel = table2(ops_per_thread=OPS, jobs=2)
    assert serial.to_json() == parallel.to_json()


def test_figure_renders_from_disk_cache(tmp_path):
    from repro.harness.cachedir import CellCache

    cache = CellCache(str(tmp_path))
    clear_cache()
    cold = table2(ops_per_thread=OPS, cache=cache)
    clear_cache()  # drop the memo so the warm pass must read from disk
    warm = table2(ops_per_thread=OPS, cache=cache)
    assert cold.to_json() == warm.to_json()
