"""Stale-lock detection: a dead writer must never wedge the cache."""

import os
import subprocess
import sys
import time

from repro.harness.cachedir import (
    CacheLock,
    CellCache,
    _pid_alive,
    cell_fingerprint,
)
from repro.harness.experiment import default_config
from repro.sim.config import TABLE_I
from repro.sim.machine import Machine
from repro.workloads import WORKLOADS, generate_for_design


def _lock(tmp_path, **kw) -> CacheLock:
    return CacheLock(str(tmp_path / "entry.json.lock"), **kw)


def _write_lock_file(path: str, pid: int) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{pid} {time.time():.6f}\n")


def _dead_pid() -> int:
    """A PID that provably belonged to an exited process."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestPidProbe:
    def test_own_pid_is_alive(self):
        assert _pid_alive(os.getpid())

    def test_nonsense_pids_are_dead(self):
        assert not _pid_alive(0)
        assert not _pid_alive(-5)

    def test_exited_child_is_dead(self):
        assert not _pid_alive(_dead_pid())


class TestStaleness:
    def test_fresh_lock_with_live_owner_is_not_stale(self, tmp_path):
        lock = _lock(tmp_path)
        assert lock.acquire()
        rival = _lock(tmp_path)
        assert not rival.is_stale()
        lock.release()

    def test_dead_owner_makes_the_lock_stale(self, tmp_path):
        lock = _lock(tmp_path)
        _write_lock_file(lock.path, _dead_pid())
        assert lock.is_stale()

    def test_old_mtime_makes_the_lock_stale_even_with_live_owner(self, tmp_path):
        lock = _lock(tmp_path, stale_s=0.05)
        _write_lock_file(lock.path, os.getpid())
        time.sleep(0.1)
        assert lock.is_stale()

    def test_unreadable_pid_on_young_lock_is_not_stale(self, tmp_path):
        lock = _lock(tmp_path)
        with open(lock.path, "w", encoding="utf-8") as fh:
            fh.write("")  # writer mid-create
        assert not lock.is_stale()


class TestAcquire:
    def test_acquire_breaks_a_dead_owners_lock_without_waiting(self, tmp_path):
        lock = _lock(tmp_path, timeout_s=5.0)
        _write_lock_file(lock.path, _dead_pid())
        t0 = time.monotonic()
        assert lock.acquire()
        assert time.monotonic() - t0 < 1.0, "should break, not wait out the timeout"
        assert int(open(lock.path).read().split()[0]) == os.getpid()
        lock.release()

    def test_acquire_respects_a_live_owner_until_timeout(self, tmp_path):
        holder = _lock(tmp_path)
        assert holder.acquire()
        rival = _lock(tmp_path, timeout_s=0.2)
        t0 = time.monotonic()
        assert not rival.acquire()
        assert time.monotonic() - t0 >= 0.2
        holder.release()

    def test_release_is_idempotent_and_only_for_held_locks(self, tmp_path):
        lock = _lock(tmp_path)
        lock.release()  # never acquired: must not unlink anything
        assert lock.acquire()
        lock.release()
        lock.release()
        assert not os.path.exists(lock.path)

    def test_context_manager_releases_on_exit(self, tmp_path):
        with _lock(tmp_path) as lock:
            assert os.path.exists(lock.path)
        assert not os.path.exists(lock.path)


class TestCacheStoreUnderLocks:
    def _stats_and_fingerprint(self):
        cfg = default_config(4)
        run = generate_for_design(WORKLOADS["queue"], cfg, "strandweaver", "txn")
        stats = Machine("strandweaver").run(run.program)
        fp = cell_fingerprint("queue", "strandweaver", "txn", cfg, TABLE_I)
        return stats, fp

    def test_store_after_dead_writer_crash_recovers(self, tmp_path):
        """Regression: a kill -9'd writer's lock must not wedge store()."""
        cache = CellCache(str(tmp_path), lock_timeout_s=5.0)
        stats, fp = self._stats_and_fingerprint()
        from repro.harness.cachedir import fingerprint_key

        lock = cache.lock_for(fingerprint_key(fp))
        os.makedirs(os.path.dirname(lock.path), exist_ok=True)
        _write_lock_file(lock.path, _dead_pid())

        t0 = time.monotonic()
        cache.store(fp, stats)
        assert time.monotonic() - t0 < 2.0
        assert cache.lookup(fp) is not None
        assert not os.path.exists(lock.path), "lock released after store"

    def test_store_skips_write_while_live_rival_holds_the_lock(self, tmp_path):
        cache = CellCache(str(tmp_path), lock_timeout_s=0.2)
        stats, fp = self._stats_and_fingerprint()
        from repro.harness.cachedir import fingerprint_key

        key = fingerprint_key(fp)
        holder = cache.lock_for(key)
        assert holder.acquire()
        try:
            path = cache.store(fp, stats)  # bounded wait, then skip
            assert not os.path.exists(path), "rival must not have written"
            assert cache.lookup(fp) is None
        finally:
            holder.release()
        # With the lock free the write goes through.
        cache.store(fp, stats)
        assert cache.lookup(fp) is not None
