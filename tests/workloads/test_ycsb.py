"""YCSB key-generator tests."""

import random
from collections import Counter

import pytest

from repro.workloads.ycsb import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
)


def test_uniform_in_range():
    gen = UniformGenerator(100, random.Random(1))
    assert all(0 <= gen.next() < 100 for _ in range(500))


def test_zipfian_in_range():
    gen = ZipfianGenerator(100, random.Random(1))
    assert all(0 <= gen.next() < 100 for _ in range(500))


def test_zipfian_is_skewed():
    gen = ZipfianGenerator(1000, random.Random(2))
    counts = Counter(gen.next() for _ in range(5000))
    top = counts.most_common(10)
    assert sum(c for _, c in top) > 5000 * 0.3  # heavy head


def test_scrambled_zipfian_spreads_hot_keys():
    gen = ScrambledZipfianGenerator(1000, random.Random(3))
    counts = Counter(gen.next() for _ in range(5000))
    hottest = counts.most_common(5)
    keys = [k for k, _ in hottest]
    assert max(keys) - min(keys) > 50  # not clustered at 0..4


def test_fnv_hash_deterministic():
    assert fnv1a_64(42) == fnv1a_64(42)
    assert fnv1a_64(42) != fnv1a_64(43)


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        ZipfianGenerator(0, random.Random(0))
    with pytest.raises(ValueError):
        ZipfianGenerator(10, random.Random(0), theta=1.5)
    with pytest.raises(ValueError):
        UniformGenerator(0, random.Random(0))
