"""Functional tests for every Table II benchmark."""

import pytest

from repro.lang.runtime import DirectAccessor
from repro.sim.machine import run_design
from repro.workloads import (
    MICROBENCHMARKS,
    WORKLOADS,
    WorkloadConfig,
    generate_for_design,
    make_model,
)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_functional_invariants_after_run(name, small_cfg):
    run = generate_for_design(WORKLOADS[name], small_cfg, "strandweaver", "txn")
    run.workload.check(DirectAccessor(run.space))  # also done inside generate


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_trace_replays_on_strandweaver(name, small_cfg):
    run = generate_for_design(WORKLOADS[name], small_cfg, "strandweaver", "txn")
    stats = run_design("strandweaver", run.program)
    assert stats.cycles > 0
    assert stats.clwbs > 0


@pytest.mark.parametrize("model", ["txn", "atlas", "sfr"])
def test_all_language_models_generate(model, small_cfg):
    run = generate_for_design(WORKLOADS["queue"], small_cfg, "strandweaver", model)
    assert len(run.program.all_ops()) > 0


def test_generation_deterministic(small_cfg):
    r1 = generate_for_design(WORKLOADS["hashmap"], small_cfg, "strandweaver", "txn")
    r2 = generate_for_design(WORKLOADS["hashmap"], small_cfg, "strandweaver", "txn")
    assert r1.space.snapshot() == r2.space.snapshot()
    k1 = [op.kind for op in r1.program.all_ops()]
    k2 = [op.kind for op in r2.program.all_ops()]
    assert k1 == k2


def test_dialects_share_functional_outcome(small_cfg):
    """The same workload generated for different designs must produce the
    same final PM data (only the ordering primitives differ)."""
    runs = {
        d: generate_for_design(WORKLOADS["arrayswap"], small_cfg, d, "txn")
        for d in ("strandweaver", "intel-x86", "hops", "non-atomic")
    }
    base = runs["strandweaver"]
    heap_start = base.layout.end  # log regions may legitimately differ
    for run in runs.values():
        assert run.space.read(heap_start, 1 << 14) == base.space.read(heap_start, 1 << 14)


def test_ops_per_region_groups_work(small_cfg):
    from dataclasses import replace

    grouped = replace(small_cfg, ops_per_region=4)
    run1 = generate_for_design(WORKLOADS["queue"], small_cfg, "strandweaver", "txn")
    run4 = generate_for_design(WORKLOADS["queue"], grouped, "strandweaver", "txn")
    js1 = run1.program.counts().get("JOIN_STRAND", 0)
    js4 = run4.program.counts().get("JOIN_STRAND", 0)
    assert js4 < js1  # fewer regions => fewer drains


def test_queue_plan_has_pushes_and_pops(small_cfg):
    wl = WORKLOADS["queue"](small_cfg)
    kinds = {k for plan in wl.plan for k in plan}
    assert kinds == {"push", "pop"}


def test_rbtree_shadow_tracks_tree(small_cfg):
    run = generate_for_design(WORKLOADS["rbtree"], small_cfg, "strandweaver", "txn")
    wl = run.workload
    acc = DirectAccessor(run.space)
    count = run.space.read_u64(wl.meta + 8)
    assert count == len(wl._shadow)


def test_tpcc_orders_recorded(small_cfg):
    run = generate_for_design(WORKLOADS["tpcc"], small_cfg, "strandweaver", "txn")
    wl = run.workload
    total_orders = sum(
        run.space.read_u64(wl._district(d)) for d in range(8)
    )
    assert total_orders == small_cfg.n_threads * small_cfg.ops_per_thread


def test_nstore_mixes_differ(small_cfg):
    rd = WORKLOADS["nstore-rd"](small_cfg)
    wr = WORKLOADS["nstore-wr"](small_cfg)
    frac = lambda wl: sum(
        1 for plan in wl.plan for kind, _ in plan if kind == "write"
    ) / (small_cfg.n_threads * small_cfg.ops_per_thread)
    assert frac(rd) < 0.25
    assert frac(wr) > 0.75


def test_microbenchmark_registry():
    assert set(MICROBENCHMARKS) <= set(WORKLOADS)
    assert "nstore-bal" not in MICROBENCHMARKS


def test_make_model_rejects_unknown():
    with pytest.raises(ValueError):
        make_model("epoch")
