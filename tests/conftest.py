"""Shared fixtures for the StrandWeaver reproduction test suite."""

import random

import pytest

from repro.core.ops import Program, TraceCursor
from repro.pmem.space import PersistentMemory
from repro.workloads import WorkloadConfig


@pytest.fixture
def pm() -> PersistentMemory:
    space = PersistentMemory(1 << 16)
    space.mark_clean()
    return space


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_cfg() -> WorkloadConfig:
    """A fast workload configuration for functional tests."""
    return WorkloadConfig(
        n_threads=4, ops_per_thread=12, log_entries=1024, pm_size=1 << 21
    )


def single_thread_program() -> tuple:
    prog = Program(1)
    return prog, TraceCursor(prog, 0)
