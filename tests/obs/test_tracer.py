"""Tracer modes, event typing, and the disabled-tracer contract."""

import pytest

from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, core_track


def test_core_track_naming():
    assert core_track(0) == "core0"
    assert core_track(7) == "core7"


def test_unbounded_mode_keeps_everything():
    tr = Tracer()
    for i in range(100):
        tr.instant("tick", "core0", float(i))
    assert len(tr) == 100
    assert tr.dropped == 0
    assert [e.ts for e in tr.events()] == [float(i) for i in range(100)]


def test_ring_mode_keeps_most_recent_and_counts_drops():
    tr = Tracer(mode="ring", capacity=8)
    for i in range(20):
        tr.instant("tick", "core0", float(i))
    assert len(tr) == 8
    assert tr.dropped == 12
    # Oldest-first unwrap of the ring: the last 8 timestamps in order.
    assert [e.ts for e in tr.events()] == [float(i) for i in range(12, 20)]


def test_invalid_mode_and_capacity_rejected():
    with pytest.raises(ValueError):
        Tracer(mode="bounded")
    with pytest.raises(ValueError):
        Tracer(mode="ring", capacity=0)


def test_span_with_zero_duration_becomes_instant():
    tr = Tracer()
    tr.span("x", "core0", 5.0, 0.0)
    tr.span("y", "core0", 6.0, -1.0)
    assert [e.ph for e in tr.events()] == ["i", "i"]


def test_stall_strips_taxonomy_prefix_and_records_cause():
    tr = Tracer()
    tr.stall("stall_queue_full", "core0", 10.0, 4.0, queue="rob")
    (ev,) = tr.events()
    assert ev.name == "stall:queue_full"
    assert ev.ph == "X"
    assert ev.dur == 4.0
    assert ev.args["cause"] == "queue_full"
    assert ev.args["queue"] == "rob"


def test_counter_event_carries_value():
    tr = Tracer()
    tr.counter("occupancy", "pm/write-queue", 3.0, 17)
    (ev,) = tr.events()
    assert ev.ph == "C"
    assert ev.args == {"value": 17}


def test_null_tracer_is_disabled_and_inert():
    assert NULL_TRACER.enabled is False
    NULL_TRACER.instant("x", "core0", 0.0)
    NULL_TRACER.span("x", "core0", 0.0, 1.0)
    NULL_TRACER.counter("x", "core0", 0.0, 1)
    NULL_TRACER.stall("stall_fence", "core0", 0.0, 1.0)
    assert NULL_TRACER.events() == []
    assert len(NULL_TRACER) == 0
    assert isinstance(NULL_TRACER, NullTracer)
