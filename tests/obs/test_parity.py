"""Tracing must be observation-only: enabled or disabled, every design
reports bit-identical cycle counts (the ISSUE acceptance criterion)."""

import pytest

from repro.harness.experiment import ALL_DESIGNS, default_config
from repro.obs import Tracer
from repro.sim.machine import Machine
from repro.workloads import WORKLOADS, generate_for_design


def replay(benchmark: str, design: str, tracer=None):
    run = generate_for_design(
        WORKLOADS[benchmark], default_config(ops_per_thread=6), design, "txn"
    )
    if tracer is None:
        return Machine(design).run(run.program)
    return Machine(design, tracer=tracer).run(run.program)


@pytest.mark.parametrize("design", ALL_DESIGNS)
def test_cycles_identical_with_tracer_all_designs(design):
    base = replay("queue", design)
    traced_stats = replay("queue", design, tracer=Tracer())
    assert traced_stats.cycles == base.cycles
    for a, b in zip(base.per_core, traced_stats.per_core):
        assert a.cycles == b.cycles
        assert a.persist_stalls == b.persist_stalls


@pytest.mark.parametrize("bench", ["hashmap", "nstore-wr"])
def test_cycles_identical_with_tracer_across_workloads(bench):
    base = replay(bench, "strandweaver")
    traced = replay(bench, "strandweaver", tracer=Tracer())
    assert traced.cycles == base.cycles


def test_traced_run_collects_events_and_metrics():
    tracer = Tracer()
    stats = replay("queue", "strandweaver", tracer=tracer)
    assert len(tracer) > 0
    names = {ev.name for ev in tracer.events()}
    # Dispatch, CLWB lifetime, persist-queue and PM events all present.
    assert any(name.startswith("op:") for name in names)
    assert "clwb" in names
    assert "pq.push" in names
    assert "pm.admit" in names or "pm.coalesce" in names
    # Metrics are attached to the stats objects.
    assert stats.metrics is tracer.metrics
    assert stats.per_core[0].metrics is not None
    assert tracer.metrics.get("core0/rob/occupancy") is not None
    assert tracer.metrics.get("pm/ack_latency") is not None


def test_stall_events_carry_figure8_causes():
    tracer = Tracer()
    replay("queue", "intel-x86", tracer=tracer)
    causes = {
        ev.args["cause"]
        for ev in tracer.events()
        if ev.name.startswith("stall:") and ev.args
    }
    # The x86 baseline must exhibit fence stalls (Figure 8's dominant bar).
    assert "fence" in causes


def test_untraced_run_attaches_no_metrics():
    stats = replay("queue", "strandweaver")
    assert stats.metrics is None
    assert all(core.metrics is None for core in stats.per_core)
