"""Counter/Gauge/Histogram behaviour, especially percentile math."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, merge_buckets


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c.to_json() == {"type": "counter", "value": 6}


class TestGauge:
    def test_tracks_last_min_max(self):
        g = Gauge()
        for v in (3.0, -1.0, 7.0):
            g.set(v)
        assert g.last == 7.0
        assert g.min == -1.0
        assert g.max == 7.0
        assert g.n == 3

    def test_empty_gauge_exports_zeros(self):
        assert Gauge().to_json() == {
            "type": "gauge", "last": 0.0, "min": 0.0, "max": 0.0, "n": 0,
        }


class TestHistogramPercentiles:
    def test_nearest_rank_on_1_to_100(self):
        h = Histogram()
        for v in range(100, 0, -1):  # reversed insert exercises the sort
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 50.0
        assert h.percentile(90) == 90.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0

    def test_single_value(self):
        h = Histogram()
        h.observe(42.0)
        for p in (0, 50, 99, 100):
            assert h.percentile(p) == 42.0

    def test_small_sample_rounds_up_rank(self):
        h = Histogram()
        for v in (10.0, 20.0, 30.0, 40.0):
            h.observe(v)
        # ceil(0.5 * 4) = 2nd value; ceil(0.51 * 4) = 3rd value.
        assert h.percentile(50) == 20.0
        assert h.percentile(51) == 30.0

    def test_empty_histogram_is_all_zero(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0
        assert h.to_json()["p99"] == 0.0

    def test_out_of_range_percentile_rejected(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_stats_summary(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == pytest.approx(2.0)
        assert h.min == 1.0
        assert h.max == 3.0

    def test_observe_after_percentile_keeps_order(self):
        h = Histogram()
        h.observe(5.0)
        h.observe(1.0)
        assert h.percentile(100) == 5.0
        h.observe(0.5)  # arrives below the sorted tail
        assert h.percentile(0) == 0.5
        assert h.percentile(100) == 5.0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_scope_prefixes_names(self):
        reg = MetricsRegistry()
        scoped = reg.scope("core3")
        scoped.histogram("rob/occupancy").observe(1.0)
        assert reg.get("core3/rob/occupancy") is not None

    def test_to_json_is_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(2.0)
        doc = reg.to_json()
        assert list(doc) == ["a", "b"]
        assert doc["a"]["type"] == "gauge"
        assert doc["b"]["type"] == "counter"


class TestHistogramBuckets:
    def test_fixed_log2_boundaries(self):
        h = Histogram()
        for v in (0, -3, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0):
            h.observe(v)
        buckets = h.export_buckets()
        # (0,1] -> 2^0, (1,2] -> 2^1, (2,4] -> 2^2, (64,128] -> 2^7
        assert buckets == {"0": 2, "2^0": 2, "2^1": 2, "2^2": 2, "2^7": 1}
        assert sum(buckets.values()) == h.count

    def test_export_is_observation_only(self):
        """Exporting buckets must not perturb summary statistics —
        the same regression guarantee the tracer makes."""
        h = Histogram()
        for v in (5.0, 1.0, 9.0, 3.0, 7.0):
            h.observe(v)
        before = (h.mean, h.percentile(50), h.percentile(90), h.total)
        h.export_buckets()
        after = (h.mean, h.percentile(50), h.percentile(90), h.total)
        assert before == after

    def test_buckets_merge_across_histograms(self):
        a, b = Histogram(), Histogram()
        merged_direct = Histogram()
        for i, v in enumerate((0.5, 2.0, 8.0, 3.0, 100.0, 0.0)):
            (a if i % 2 == 0 else b).observe(v)
            merged_direct.observe(v)
        merged = merge_buckets(a.export_buckets(), b.export_buckets())
        assert merged == merged_direct.export_buckets()

    def test_empty_histogram_exports_empty(self):
        assert Histogram().export_buckets() == {}
        assert merge_buckets() == {}
