"""JSON stats schema, bench summary, and CLI surface."""

import json

import pytest

from repro.__main__ import main
from repro.harness.experiment import default_config
from repro.obs import BENCH_SCHEMA, STATS_SCHEMA, Tracer, bench_summary, stats_to_json
from repro.sim.machine import Machine
from repro.sim.stats import CoreStats, MachineStats, geomean
from repro.workloads import WORKLOADS, generate_for_design


def run_queue(tracer=None):
    run = generate_for_design(
        WORKLOADS["queue"], default_config(ops_per_thread=6), "strandweaver", "txn"
    )
    machine = Machine("strandweaver") if tracer is None else Machine(
        "strandweaver", tracer=tracer
    )
    return machine.run(run.program)


def test_stats_document_schema():
    stats = run_queue(tracer=Tracer())
    doc = stats_to_json(stats)
    assert doc["schema"] == STATS_SCHEMA
    summary = doc["summary"]
    for key in ("design", "cycles", "stall_fence", "stall_queue_full",
                "stall_drain", "stall_lock", "l1_hits", "l1_misses", "ckc"):
        assert key in summary
    assert summary["design"] == "strandweaver"
    assert len(doc["per_core"]) == len(stats.per_core)
    assert doc["per_core"][0]["persist_stalls"] == stats.per_core[0].persist_stalls
    assert "metrics" in doc
    json.dumps(doc)  # must be serialisable


def test_stats_document_omits_metrics_when_untraced():
    doc = stats_to_json(run_queue())
    assert "metrics" not in doc


def test_summary_values_are_scalars():
    summary = run_queue().summary()
    assert isinstance(summary["design"], str)
    for key, value in summary.items():
        if key != "design":
            assert isinstance(value, (int, float)), key


def test_bench_summary_is_deterministic_and_diffable():
    a = bench_summary(ops_per_thread=3, benchmarks=["queue"],
                      designs=["intel-x86", "strandweaver"])
    b = bench_summary(ops_per_thread=3, benchmarks=["queue"],
                      designs=["intel-x86", "strandweaver"])
    assert a["schema"] == BENCH_SCHEMA
    assert a == b
    assert len(a["cells"]) == 2
    assert {c["design"] for c in a["cells"]} == {"intel-x86", "strandweaver"}


def test_cli_trace_writes_perfetto_and_stats(tmp_path):
    trace_path = tmp_path / "trace.json"
    stats_path = tmp_path / "stats.json"
    rc = main([
        "trace", "queue", "--design", "strandweaver", "--ops", "4",
        "--out", str(trace_path), "--stats-out", str(stats_path),
    ])
    assert rc == 0
    doc = json.loads(trace_path.read_text())
    assert doc["traceEvents"]
    for ev in doc["traceEvents"]:
        for key in ("ph", "ts", "pid", "tid", "name"):
            assert key in ev
    stats_doc = json.loads(stats_path.read_text())
    assert stats_doc["schema"] == STATS_SCHEMA


def test_cli_trace_ring_mode_bounds_events(tmp_path):
    trace_path = tmp_path / "trace.json"
    rc = main([
        "trace", "queue", "--ops", "4", "--ring", "64", "--out", str(trace_path),
    ])
    assert rc == 0
    doc = json.loads(trace_path.read_text())
    # 64 events plus per-track metadata records.
    assert len([e for e in doc["traceEvents"] if e["ph"] != "M"]) == 64
    assert doc["otherData"]["dropped_events"] > 0


def test_cli_trace_rejects_unknown_inputs(capsys):
    assert main(["trace"]) == 2
    assert main(["trace", "nope"]) == 2
    assert main(["trace", "queue", "--design", "nope"]) == 2
    assert main(["trace", "queue", "--model", "nope"]) == 2
    assert main(["trace", "queue", "--ring", "-1"]) == 2
    capsys.readouterr()


def test_cli_json_figure_output(capsys):
    rc = main(["table1", "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.figure/1"
    assert doc["columns"] == ["component", "value"]
    assert doc["rows"]


def test_cli_bench_writes_summary(tmp_path, capsys):
    out = tmp_path / "BENCH_trace.json"
    rc = main(["bench", "--ops", "2", "--out", str(out), "--json"])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == BENCH_SCHEMA
    assert len(doc["cells"]) == len(doc["benchmarks"]) * len(doc["designs"])
    printed = json.loads(capsys.readouterr().out)
    assert printed == doc


# -- geomean / merge edge cases (satellite) ------------------------------


def test_geomean_edge_cases():
    assert geomean([]) == 0.0
    assert geomean([5.0]) == pytest.approx(5.0)
    # Non-positive values used to be silently dropped, quietly skewing
    # figure summaries; they are now rejected loudly.
    with pytest.raises(ValueError):
        geomean([0.0, 0.0])
    with pytest.raises(ValueError):
        geomean([0.0, 2.0, 8.0])


def test_core_stats_merge_edge_cases():
    empty = CoreStats()
    empty.merge(CoreStats())
    assert empty.cycles == 0 and empty.ops == 0

    a = CoreStats(cycles=100, ops=10, stall_lock=5, l1_hits=7)
    a.merge(CoreStats(cycles=50, ops=3, stall_lock=2, l1_misses=4))
    assert a.cycles == 100  # makespan: max, not sum
    assert a.ops == 13
    assert a.stall_lock == 7
    assert a.l1_hits == 7 and a.l1_misses == 4


def test_machine_stats_total_ignores_metrics_field():
    ms = MachineStats(design="x", per_core=[CoreStats(cycles=10, ops=1)])
    total = ms.total
    assert total.ops == 1
    assert total.metrics is None


# -- non-finite rejection + cache payload round-trip (satellite) ---------


def test_exporters_reject_non_finite_values(tmp_path):
    from repro.obs.export import dump_json

    for bad in (float("inf"), float("-inf"), float("nan")):
        with pytest.raises(ValueError):
            dump_json(str(tmp_path / "bad.json"), {"value": bad})
    dump_json(str(tmp_path / "ok.json"), {"value": 1.5})
    assert json.loads((tmp_path / "ok.json").read_text()) == {"value": 1.5}


def test_summary_includes_pm_traffic_counters():
    summary = run_queue().summary()
    assert "pm_reads" in summary and "pm_writes" in summary
    assert summary["pm_writes"] > 0  # persists really reach the controller


def test_machine_stats_doc_round_trip():
    from repro.obs.export import machine_stats_from_doc, machine_stats_to_doc

    stats = run_queue()
    doc = json.loads(json.dumps(machine_stats_to_doc(stats)))
    back = machine_stats_from_doc(doc)
    assert back.design == stats.design
    assert back.cycles == stats.cycles
    assert back.summary() == stats.summary()
    assert [c for c in back.per_core] == [c for c in stats.per_core]


def test_sweep_json_schema(tmp_path):
    from repro.harness.sweep import SweepCell, run_sweep
    from repro.obs.export import SWEEP_SCHEMA, write_sweep_json

    result = run_sweep([SweepCell("queue", "strandweaver", ops_per_thread=4)])
    out = tmp_path / "sweep.json"
    doc = write_sweep_json(str(out), result)
    assert doc["schema"] == SWEEP_SCHEMA
    assert doc["n_cells"] == 1 and doc["errors"] == 0
    cell = doc["cells"][0]
    assert cell["ok"] and cell["summary"]["design"] == "strandweaver"
    assert "wall_time_s" in cell and "source" in cell
    det = result.to_json(deterministic=True)
    assert "wall_time_s" not in det and "jobs" not in det
    assert all("wall_time_s" not in c and "source" not in c for c in det["cells"])
    assert json.loads(out.read_text()) == doc


def test_load_sweep_json_normalises_deterministic_docs(tmp_path):
    """A --deterministic export omits wall-clock fields; the loader
    restores them with neutral values so both forms round-trip through
    the same tooling (e.g. the campaign telemetry consumers)."""
    from repro.harness.sweep import SweepCell, run_sweep
    from repro.obs.export import load_sweep_json, write_sweep_json

    result = run_sweep([SweepCell("queue", "strandweaver", ops_per_thread=4)])
    live = tmp_path / "live.json"
    det = tmp_path / "det.json"
    write_sweep_json(str(live), result)
    write_sweep_json(str(det), result, deterministic=True)

    live_doc = load_sweep_json(str(live))
    det_doc = load_sweep_json(str(det))
    for doc in (live_doc, det_doc):
        for cell in doc["cells"]:
            assert "source" in cell and "wall_time_s" in cell
        for key in ("jobs", "wall_time_s", "cache_hits", "cache_misses", "memo_hits"):
            assert key in doc
    assert det_doc["cells"][0]["source"] == "unknown"
    assert det_doc["cells"][0]["wall_time_s"] == 0.0
    # the simulated payload is identical across the two forms
    assert det_doc["cells"][0]["summary"] == live_doc["cells"][0]["summary"]


def test_load_sweep_json_rejects_wrong_schema(tmp_path):
    from repro.obs.export import load_sweep_json

    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "repro.stats/1", "cells": []}')
    with pytest.raises(ValueError, match="repro.sweep/1"):
        load_sweep_json(str(bad))
