"""Perfetto trace-event JSON: schema validity and track layout."""

import json

from repro.obs.perfetto import to_perfetto, write_trace
from repro.obs.tracer import Tracer

REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")


def make_tracer() -> Tracer:
    tr = Tracer()
    tr.span("op:STORE", "core0", 10.0, 2.0)
    tr.stall("stall_fence", "core0", 12.0, 5.0)
    tr.span("clwb", "core0/clwb", 11.0, 300.0, line=42)
    tr.span("op:LOAD", "core1", 3.0, 1.0)
    tr.instant("pm.admit", "pm/write-queue", 20.0, line=42)
    tr.counter("pm.wq_depth", "pm/write-queue", 20.0, 3)
    tr.span("pm.drain", "pm/media", 25.0, 1000.0)
    return tr


def test_every_record_has_required_keys():
    doc = to_perfetto(make_tracer())
    assert doc["traceEvents"]
    for ev in doc["traceEvents"]:
        for key in REQUIRED_KEYS:
            assert key in ev, f"{ev} missing {key}"


def test_timestamps_monotonic_per_track():
    doc = to_perfetto(make_tracer())
    last = {}
    for ev in doc["traceEvents"]:
        key = (ev["pid"], ev["tid"])
        assert ev["ts"] >= last.get(key, 0), f"ts regressed on track {key}"
        last[key] = ev["ts"]


def test_track_grouping_cores_then_shared():
    doc = to_perfetto(make_tracer())
    names = {}
    threads = {}
    for ev in doc["traceEvents"]:
        if ev["ph"] != "M":
            continue
        if ev["name"] == "process_name":
            names[ev["pid"]] = ev["args"]["name"]
        elif ev["name"] == "thread_name":
            threads[ev["args"]["name"]] = (ev["pid"], ev["tid"])
    # Core groups come first, then shared resources, each its own process.
    assert names[1] == "core0"
    assert names[2] == "core1"
    assert names[3] == "pm"
    # Sub-tracks share the core's process.
    assert threads["core0"][0] == threads["core0/clwb"][0] == 1
    assert threads["pm/write-queue"][0] == threads["pm/media"][0] == 3


def test_phase_specific_fields():
    doc = to_perfetto(make_tracer())
    by_ph = {}
    for ev in doc["traceEvents"]:
        by_ph.setdefault(ev["ph"], []).append(ev)
    for ev in by_ph["X"]:
        assert "dur" in ev and ev["dur"] > 0
    for ev in by_ph["i"]:
        assert ev["s"] == "t"
    for ev in by_ph["C"]:
        assert "value" in ev["args"]


def test_write_trace_round_trips_through_json(tmp_path):
    path = tmp_path / "trace.json"
    written = write_trace(str(path), make_tracer())
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(written))
    assert loaded["otherData"]["dropped_events"] == 0


def test_empty_tracer_exports_valid_document():
    doc = to_perfetto(Tracer())
    assert doc["traceEvents"] == []
