"""The examples must run end to end (they are documentation)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script", ["litmus_semantics.py", "crash_recovery.py", "redo_logging.py"]
)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


def test_cli_table1():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "table1"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "simulator specification" in proc.stdout
