"""SARIF 2.1.0 export: schema shape, level mapping, exact round trip."""

import json

from repro.analysis import analyze
from repro.analysis.litmus import LITMUS
from repro.analysis.modelcheck import check_litmus
from repro.analysis.sarif import (
    SARIF_VERSION,
    diagnostics_from_sarif,
    lint_to_sarif,
    modelcheck_to_sarif,
    report_from_sarif,
)


def _lint(name):
    case = LITMUS[name]
    return analyze(case.build(), design=case.design)


class TestLintExport:
    def test_document_shape(self):
        doc = lint_to_sarif(_lint("unflushed-no-clwb"), target="unflushed-no-clwb")
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert run["results"], "the buggy case must export findings"

    def test_levels_follow_severity(self):
        report = _lint("unflushed-no-clwb")
        doc = lint_to_sarif(report, target="t")
        levels = {r["level"] for r in doc["runs"][0]["results"]}
        assert levels <= {"error", "warning", "note"}
        assert "error" in levels  # unflushed-persist is an ERROR

    def test_rules_are_deduplicated_and_sorted(self):
        doc = lint_to_sarif(_lint("overser-double-clwb"), target="t")
        rules = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
        assert rules == sorted(set(rules))

    def test_locations_use_virtual_trace_uris(self):
        doc = lint_to_sarif(_lint("unflushed-no-clwb"), target="case")
        loc = doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].startswith("trace://case/t")
        assert loc["region"]["startLine"] >= 1

    def test_document_is_json_serialisable(self):
        doc = lint_to_sarif(_lint("race-unlocked"), target="t")
        json.dumps(doc)  # no sets, enums, or other non-JSON types


class TestRoundTrip:
    def test_diagnostics_survive_exactly(self):
        report = _lint("unflushed-no-clwb")
        doc = lint_to_sarif(report, target="t")
        assert diagnostics_from_sarif(doc) == report.diagnostics

    def test_round_trip_over_every_litmus_case(self):
        for name in sorted(LITMUS):
            report = _lint(name)
            back = report_from_sarif(lint_to_sarif(report, target=name))
            assert back.diagnostics == report.diagnostics, name
            assert back.design == report.design
            assert back.n_ops == report.n_ops
            assert back.n_stores == report.n_stores

    def test_empty_document_yields_no_report(self):
        assert report_from_sarif({"runs": []}) is None
        assert diagnostics_from_sarif({"runs": []}) == []


class TestModelcheckExport:
    def test_agreeing_reports_export_zero_results(self):
        reports = check_litmus("unflushed-clean", oracle_samples=0)
        doc = modelcheck_to_sarif(reports)
        assert doc["version"] == SARIF_VERSION
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-modelcheck"
        assert run["results"] == []

    def test_divergences_export_as_error_results(self):
        reports = check_litmus(
            "unflushed-clean",
            designs=["strandweaver"],
            mutate="drop-barrier",
            oracle_samples=0,
        )
        doc = modelcheck_to_sarif(reports)
        results = doc["runs"][0]["results"]
        assert results
        for res in results:
            assert res["ruleId"].startswith("modelcheck/")
            assert res["level"] == "error"
            assert res["properties"]["mutation"] == "drop-barrier"
        json.dumps(doc)
