"""Litmus corpus: every seeded bug is found, every clean twin is quiet.

The corpus (:mod:`repro.analysis.litmus`) plants exactly one bug per
buggy case; the analyzer must report it with the right diagnostic class,
rule, severity and ``(tid, seq)`` anchor — and must not report anything
of WARNING severity or above from any *other* class.  Clean twins must
produce no findings at all.
"""

import pytest

from repro.analysis import LITMUS, Severity, analyze

BUGGY = sorted(name for name, case in LITMUS.items() if case.expect)
CLEAN = sorted(name for name, case in LITMUS.items() if not case.expect)


def test_corpus_covers_every_diagnostic_class():
    from repro.analysis import ALL_CHECKS

    covered = {case.expect for case in LITMUS.values() if case.expect}
    assert covered == set(ALL_CHECKS)


def test_every_class_has_a_clean_twin():
    # Clean twins exercise the same code shapes with the bug fixed.
    assert len(CLEAN) >= 5


@pytest.mark.parametrize("name", BUGGY)
def test_buggy_case_reports_its_class_at_the_bug_site(name):
    case = LITMUS[name]
    report = analyze(case.build(), design=case.design)
    hits = [
        d
        for d in report.diagnostics
        if d.check == case.expect and d.rule == case.expect_rule
    ]
    assert hits, (
        f"{name}: expected a {case.expect}/{case.expect_rule} finding, "
        f"got {[(d.check, d.rule) for d in report.diagnostics]}"
    )
    assert len(hits) == 1, f"{name}: duplicate findings {hits}"
    diag = hits[0]
    assert (diag.tid, diag.seq) == case.bug_site
    assert diag.severity is case.expect_severity
    assert diag.gseq >= 0 and diag.op


@pytest.mark.parametrize("name", BUGGY)
def test_buggy_case_triggers_no_other_class(name):
    # Advisories from other classes are tolerated (they are hints, and a
    # deliberately broken program may legitimately also be wasteful);
    # anything WARNING or above must come from the planted bug only.
    case = LITMUS[name]
    report = analyze(case.build(), design=case.design)
    for diag in report.diagnostics:
        if diag.severity >= Severity.WARNING:
            assert diag.check == case.expect, (
                f"{name}: unexpected {diag.check}/{diag.rule} "
                f"({diag.severity.name}) at t{diag.tid}:{diag.seq}"
            )


@pytest.mark.parametrize("name", CLEAN)
def test_clean_twin_is_quiet(name):
    case = LITMUS[name]
    report = analyze(case.build(), design=case.design)
    assert report.clean, (
        f"{name}: expected no findings, got "
        f"{[(d.check, d.rule, d.severity.name) for d in report.diagnostics]}"
    )


def test_report_json_shape():
    case = LITMUS["unflushed-no-clwb"]
    doc = analyze(case.build(), design=case.design).to_json()
    assert doc["schema"] == "repro.lint/1"
    assert doc["design"] == "strandweaver"
    assert doc["errors"] == 1 and doc["ok"] is False
    finding = doc["findings"][0]
    assert finding["check"] == "unflushed-persist"
    assert finding["severity"] == "ERROR"
    assert (finding["tid"], finding["seq"]) == (0, 0)


def test_diagnostics_sorted_by_op_index():
    # A program with an ERROR and an ADVICE: order follows the anchoring
    # op's (tid, seq), not severity, so JSON output is byte-stable.
    from repro.core.ops import Program, TraceCursor

    prog = Program(1)
    c = TraceCursor(prog, 0)
    c.store(0x1000, b"\x01" * 8, label="log:store")
    c.clwb(0x1000)
    c.store(0x1040, b"\x02" * 8, label="update")  # unordered pair: ERROR
    c.clwb(0x1040)
    c.clwb(0x1040)  # redundant flush: ADVICE
    report = analyze(prog, design="strandweaver")
    keys = [(d.tid, d.seq) for d in report.diagnostics]
    assert keys == sorted(keys)
    assert report.errors and report.advisories
    # The ERROR anchors on the earlier op, so it still leads here.
    assert report.diagnostics[0].severity is Severity.ERROR


def test_unknown_design_rejected():
    case = LITMUS["unflushed-clean"]
    with pytest.raises(ValueError, match="unknown design"):
        analyze(case.build(), design="tso")


def test_report_json_is_byte_stable():
    # Two independent analyses of the same trace serialise identically:
    # the dedup + (tid, seq) sort in finalize() leaves no ordering slack.
    import json

    for name in sorted(LITMUS):
        case = LITMUS[name]
        one = json.dumps(analyze(case.build(), design=case.design).to_json(),
                         sort_keys=True)
        two = json.dumps(analyze(case.build(), design=case.design).to_json(),
                         sort_keys=True)
        assert one == two, name
