"""CLI surface of ``repro modelcheck`` and ``repro repair``."""

import json
import os

from repro.__main__ import main


def _json_out(capsys):
    return json.loads(capsys.readouterr().out)


class TestModelcheckCommand:
    def test_single_litmus_case_passes(self, capsys):
        rc = main(["modelcheck", "unflushed-clean", "--json", "--samples", "1"])
        doc = _json_out(capsys)
        assert rc == 0
        assert doc["schema"] == "repro.modelcheck/1"
        assert doc["agree"] is True
        # default design for a litmus target is the full design matrix
        assert doc["designs"] == sorted(
            ["intel-x86", "hops", "strandweaver", "no-persist-queue", "non-atomic"]
        )
        assert all(r["agree"] for r in doc["reports"])

    def test_single_design_restriction(self, capsys):
        rc = main(
            ["modelcheck", "unflushed-clean", "--design", "strandweaver",
             "--json", "--samples", "0"]
        )
        doc = _json_out(capsys)
        assert rc == 0
        assert doc["designs"] == ["strandweaver"]
        assert len(doc["reports"]) == 1

    def test_seeded_mutation_fails_the_gate(self, capsys):
        rc = main(
            ["modelcheck", "unflushed-clean", "--design", "strandweaver",
             "--mutate", "drop-barrier", "--json", "--samples", "0"]
        )
        doc = _json_out(capsys)
        assert rc == 1
        assert doc["agree"] is False
        assert doc["mutation"] == "drop-barrier"
        assert doc["reports"][0]["divergences"]

    def test_sarif_output(self, capsys):
        rc = main(
            ["modelcheck", "unflushed-clean", "--design", "strandweaver",
             "--format", "sarif", "--samples", "0"]
        )
        doc = _json_out(capsys)
        assert rc == 0
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-modelcheck"

    def test_text_output_summarises(self, capsys):
        rc = main(
            ["modelcheck", "unflushed-clean", "--design", "strandweaver",
             "--samples", "0"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "modelcheck OK" in out

    def test_workload_target_is_accepted(self, capsys):
        rc = main(
            ["modelcheck", "queue", "--design", "strandweaver",
             "--ops", "2", "--json", "--samples", "0"]
        )
        doc = _json_out(capsys)
        assert rc == 0
        assert doc["reports"][0]["n_stores"] > 0

    def test_unknown_target_is_a_usage_error(self, capsys):
        rc = main(["modelcheck", "no-such-case", "--json"])
        assert rc == 2
        assert "unknown target" in capsys.readouterr().err

    def test_unknown_mutation_is_a_usage_error(self, capsys):
        rc = main(["modelcheck", "unflushed-clean", "--mutate", "bogus"])
        assert rc == 2
        assert "unknown mutation" in capsys.readouterr().err

    def test_unknown_design_is_a_usage_error(self, capsys):
        rc = main(["modelcheck", "unflushed-clean", "--design", "tso"])
        assert rc == 2
        assert "unknown design" in capsys.readouterr().err

    def test_missing_target_is_a_usage_error(self, capsys):
        rc = main(["modelcheck"])
        assert rc == 2
        assert "requires a target" in capsys.readouterr().err


class TestRepairCommand:
    def test_verified_repair_exits_zero(self, capsys):
        rc = main(["repair", "overser-double-clwb", "--json"])
        doc = _json_out(capsys)
        assert rc == 0
        assert doc["schema"] == "repro.repair/1"
        assert doc["verified"] is True
        assert doc["cycles_saved"] is not None and doc["cycles_saved"] > 0

    def test_design_defaults_to_the_cases_native_design(self, capsys):
        rc = main(["repair", "overser-b2b-sfence", "--json"])
        doc = _json_out(capsys)
        assert rc == 0
        assert doc["design"] == "intel-x86"

    def test_unrepairable_case_exits_nonzero(self, capsys):
        rc = main(["repair", "race-unlocked", "--json"])
        doc = _json_out(capsys)
        assert rc == 1
        assert doc["verified"] is False
        assert doc["unrepaired"]

    def test_apply_writes_the_repaired_trace(self, capsys, tmp_path):
        out = os.path.join(str(tmp_path), "fixed.json")
        rc = main(["repair", "unflushed-no-clwb", "--apply", "--out", out,
                   "--json"])
        assert rc == 0
        _json_out(capsys)  # drain stdout
        doc = json.load(open(out, encoding="utf-8"))
        assert doc["schema"] == "repro.repair/1-trace"
        assert doc["edits"]
        kinds = [op["kind"] for t in doc["threads"] for op in t]
        assert "CLWB" in kinds

    def test_corpus_is_not_a_repair_target(self, capsys):
        rc = main(["repair", "corpus", "--json"])
        assert rc == 2
        assert "unknown repair target" in capsys.readouterr().err

    def test_missing_target_is_a_usage_error(self, capsys):
        rc = main(["repair"])
        assert rc == 2
        assert "requires a target" in capsys.readouterr().err


class TestLintSarif:
    def test_lint_exports_one_sarif_run_per_design(self, capsys):
        rc = main(["lint", "queue", "--design", "all", "--ops", "4",
                   "--format", "sarif"])
        doc = _json_out(capsys)
        assert rc == 0  # non-atomic is supposed to error; policy holds
        assert doc["version"] == "2.1.0"
        assert len(doc["runs"]) == 5  # one run per design
        assert all(
            r["tool"]["driver"]["name"] == "repro-lint" for r in doc["runs"]
        )
        # the deliberately unsafe design must surface findings
        assert any(r["results"] for r in doc["runs"])
