"""Repair engine: one verified end-to-end repair per diagnostic class."""

import pytest

from repro.analysis import analyze
from repro.analysis.litmus import LITMUS
from repro.analysis.repair import Edit, apply_edits, repair
from repro.core.ops import Op, OpKind, Program


def _repair(name, **kw):
    case = LITMUS[name]
    kw.setdefault("oracle_samples", 2)
    return repair(case.build(), case.design, target=name, **kw)


class TestUnflushedRepairs:
    def test_never_flushed_gets_a_covering_clwb(self):
        result = _repair("unflushed-no-clwb")
        assert result.verified
        assert result.lint_quiet
        inserted = [e for e in result.edits if e.action == "insert"]
        assert any(e.kind is OpKind.CLWB for e in inserted)
        # the CLWB covers the orphaned store's footprint
        clwb = next(e for e in inserted if e.kind is OpKind.CLWB)
        assert clwb.size > 0

    def test_unordered_commit_gets_an_ordering_primitive(self):
        result = _repair("unflushed-unordered-commit")
        assert result.verified
        inserted = {e.kind for e in result.edits if e.action == "insert"}
        assert inserted & {OpKind.PERSIST_BARRIER, OpKind.JOIN_STRAND}


class TestStrandMisuseRepairs:
    def test_discarded_barrier_drops_the_new_strand(self):
        result = _repair("strand-discarded-barrier")
        assert result.verified
        assert any(e.action == "delete" for e in result.edits)

    def test_join_nothing_drops_the_join(self):
        result = _repair("strand-join-nothing")
        assert result.verified
        assert any(e.action == "delete" for e in result.edits)

    def test_unordered_pair_gets_an_ordering_primitive(self):
        result = _repair("strand-unordered-pair")
        assert result.verified
        inserted = {e.kind for e in result.edits if e.action == "insert"}
        assert inserted & {OpKind.PERSIST_BARRIER, OpKind.JOIN_STRAND}


class TestOverSerializationRepairs:
    """Performance repairs are priced in measured simulator cycles."""

    def test_redundant_flush_deletion_saves_measured_cycles(self):
        result = _repair("overser-double-clwb")
        assert result.verified
        assert all(e.action == "delete" for e in result.edits)
        assert result.cycles_saved is not None
        assert result.cycles_saved > 0

    def test_empty_barrier_deletion_saves_measured_cycles(self):
        result = _repair("overser-empty-pb")
        assert result.verified
        assert result.cycles_saved is not None
        assert result.cycles_saved > 0

    def test_back_to_back_fence_deletion_never_regresses(self):
        result = _repair("overser-b2b-sfence")
        assert result.verified
        assert result.cycles_saved is not None
        assert result.cycles_saved >= 0


class TestUnrepairableClasses:
    def test_persist_race_is_reported_not_guessed_at(self):
        result = _repair("race-unlocked")
        assert not result.verified
        assert result.unrepaired
        assert any("locks" in u["reason"] for u in result.unrepaired)

    def test_torn_write_is_reported_not_guessed_at(self):
        result = _repair("torn-store")
        assert not result.verified
        assert any(u["check"] == "torn-write" for u in result.unrepaired)


class TestCleanTraceIsAFixpoint:
    def test_no_edits_on_a_clean_trace(self):
        result = _repair("unflushed-clean")
        assert result.verified
        assert result.edits == []
        assert result.iterations == 0
        assert result.cycles_saved is None  # nothing changed, nothing measured


class TestApplyEdits:
    def _base(self):
        p = Program(1)
        p.emit(0, Op(OpKind.STORE, addr=0x1000, size=8, label="a"))
        p.emit(0, Op(OpKind.STORE, addr=0x1040, size=8, label="b"))
        return p

    def test_insert_goes_before_the_index(self):
        out = apply_edits(
            self._base(), [Edit("insert", 0, 1, kind=OpKind.PERSIST_BARRIER)]
        )
        kinds = [op.kind for op in out.threads[0].ops]
        assert kinds == [OpKind.STORE, OpKind.PERSIST_BARRIER, OpKind.STORE]
        # sequences are renumbered contiguously
        assert [op.seq for op in out.threads[0].ops] == [0, 1, 2]

    def test_index_past_the_end_appends(self):
        out = apply_edits(
            self._base(), [Edit("insert", 0, 2, kind=OpKind.JOIN_STRAND)]
        )
        assert out.threads[0].ops[-1].kind is OpKind.JOIN_STRAND

    def test_delete_removes_exactly_that_op(self):
        out = apply_edits(self._base(), [Edit("delete", 0, 0)])
        labels = [op.label for op in out.threads[0].ops]
        assert labels == ["b"]

    def test_clwb_insert_carries_addr_and_size(self):
        out = apply_edits(
            self._base(),
            [Edit("insert", 0, 1, kind=OpKind.CLWB, addr=0x1000, size=8)],
        )
        clwb = out.threads[0].ops[1]
        assert clwb.kind is OpKind.CLWB
        assert (clwb.addr, clwb.size) == (0x1000, 8)

    def test_op_payloads_survive_the_rebuild(self):
        base = self._base()
        out = apply_edits(base, [])
        src, dst = base.threads[0].ops[0], out.threads[0].ops[0]
        assert (src.addr, src.size, src.label) == (dst.addr, dst.size, dst.label)
        assert src.data == dst.data

    def test_unknown_action_is_rejected(self):
        with pytest.raises(ValueError, match="unknown edit action"):
            apply_edits(self._base(), [Edit("swap", 0, 0)])


class TestRepairedTraceIsCrashSafe:
    """The acceptance bar: lint-clean, model-check-clean, oracle-clean."""

    @pytest.mark.parametrize(
        "name",
        [
            "unflushed-no-clwb",
            "strand-unordered-pair",
            "overser-double-clwb",
        ],
    )
    def test_repaired_program_passes_every_gate(self, name):
        result = _repair(name)
        assert result.verified
        report = analyze(result.program, design=LITMUS[name].design)
        assert report.ok
        # modelcheck_clean above already includes the machine-crash oracle
        # (oracle_samples=2 frontier cross-checks via durable_cut)
        assert result.modelcheck_clean
