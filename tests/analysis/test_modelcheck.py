"""Model checker: corpus agreement, mutation teeth, budget degradation."""

import pytest

from repro.analysis.litmus import LITMUS
from repro.analysis.modelcheck import (
    MUTATIONS,
    check_corpus,
    check_litmus,
    check_program,
)
from repro.core.ops import Op, OpKind, Program
from repro.sim.machine import DESIGNS


class TestCorpusAgreement:
    """The CI gate: every litmus case, every design, zero divergences."""

    @pytest.fixture(scope="class")
    def reports(self):
        return list(check_corpus(sorted(DESIGNS), oracle_samples=2))

    def test_every_report_agrees(self, reports):
        bad = [r for r in reports if not r.agree]
        assert not bad, "\n".join(r.render() for r in bad)

    def test_covers_the_full_matrix(self, reports):
        assert len(reports) == len(LITMUS) * len(DESIGNS)

    def test_states_fully_enumerated_on_litmus_sizes(self, reports):
        assert all(r.exhaustive for r in reports)
        assert all(
            r.declarative_states == r.operational_states for r in reports
        )

    def test_oracle_runs_on_clean_programs_and_skips_on_buggy(self, reports):
        ran = [r for r in reports if r.oracle_samples > 0]
        skipped = [r for r in reports if r.oracle_skipped is not None]
        assert ran, "no machine frontier was ever cross-checked"
        assert skipped, "buggy cases should skip the oracle with a reason"
        for r in skipped:
            assert r.oracle_samples == 0
            assert "lint" in r.oracle_skipped


class TestMutationsAreCaught:
    """A deliberately seeded semantics bug must surface as a divergence."""

    CATCHES = {
        # dropped persist barriers lose Eq. 1 edges operationally
        "drop-barrier": ("unflushed-clean", "strandweaver"),
        # dropped joins lose Eq. 2 edges operationally
        "drop-join": ("recovery-rollback-flushed", "strandweaver"),
        # ignored NewStrand keeps stores on one strand: the operational
        # model gains edges the axioms do not impose
        "ignore-newstrand": ("strand-discarded-barrier", "strandweaver"),
    }

    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_each_mutation_diverges_on_a_witness_case(self, mutation):
        case, design = self.CATCHES[mutation]
        (report,) = check_litmus(
            case, designs=[design], mutate=mutation, oracle_samples=0
        )
        assert not report.agree
        kinds = {d.kind for d in report.divergences}
        assert kinds <= {"order-pair", "state-family"}
        assert report.mutation == mutation

    def test_unknown_mutation_is_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation"):
            check_program(
                LITMUS["unflushed-clean"].build(),
                "strandweaver",
                mutate="drop-everything",
            )


class TestBudget:
    def test_tiny_budget_degrades_to_pairwise_checking(self):
        p = Program(1)
        for i in range(10):
            p.emit(0, Op(OpKind.STORE, addr=0x1000 + 64 * i, size=8))
        report = check_program(p, "strandweaver", budget=4, oracle_samples=0)
        assert not report.exhaustive
        assert report.declarative_states is None
        assert report.agree  # pairwise comparison still ran and agreed

    def test_roomy_budget_enumerates(self):
        report = check_program(
            LITMUS["unflushed-clean"].build(),
            "strandweaver",
            oracle_samples=0,
        )
        assert report.exhaustive
        assert report.declarative_states is not None
        assert report.declarative_states >= 1  # the empty state at least


class TestReportShape:
    def test_json_document_carries_the_schema_and_verdict(self):
        (report,) = check_litmus("unflushed-clean", oracle_samples=1)
        doc = report.to_json()
        assert doc["schema"] == "repro.modelcheck/1"
        assert doc["agree"] is True
        assert doc["design"] == "strandweaver"
        assert doc["divergences"] == []
        assert doc["n_stores"] == report.n_stores

    def test_divergences_serialise_with_kind_and_detail(self):
        (report,) = check_litmus(
            "unflushed-clean",
            designs=["strandweaver"],
            mutate="drop-barrier",
            oracle_samples=0,
        )
        doc = report.to_json()
        assert doc["agree"] is False
        assert doc["mutation"] == "drop-barrier"
        for div in doc["divergences"]:
            assert div["kind"] in ("order-pair", "state-family")
            assert div["design"] == "strandweaver"
            assert div["message"]
            assert isinstance(div["detail"], dict)
