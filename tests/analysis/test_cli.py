"""CLI surface of ``python -m repro lint``."""

import json

import pytest

from repro.__main__ import main


def test_lint_single_design_json(capsys):
    rc = main(["lint", "queue", "--design", "strandweaver", "--ops", "4", "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["schema"] == "repro.lint/1"
    assert doc["workload"] == "queue"
    assert doc["ok"] is True
    report = doc["designs"]["strandweaver"]
    assert report["errors"] == 0
    assert report["n_stores"] > 0


def test_lint_non_atomic_expects_errors(capsys):
    # NON-ATOMIC erroring is the *correct* outcome, so the exit code is 0;
    # a clean NON-ATOMIC lint would mean the analyzer lost its teeth.
    rc = main(["lint", "queue", "--design", "non-atomic", "--ops", "4", "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["ok"] is True
    assert doc["designs"]["non-atomic"]["errors"] > 0


def test_lint_all_designs(capsys):
    rc = main(["lint", "queue", "--design", "all", "--ops", "4", "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert set(doc["designs"]) == {
        "hops",
        "intel-x86",
        "no-persist-queue",
        "non-atomic",
        "strandweaver",
    }
    for design, report in doc["designs"].items():
        if design == "non-atomic":
            assert report["errors"] > 0
        else:
            assert report["errors"] == 0


def test_lint_renders_human_output(capsys):
    rc = main(["lint", "queue", "--design", "strandweaver", "--ops", "4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "lint [strandweaver]" in out
    assert "lint OK" in out


def test_lint_rejects_unknown_workload(capsys):
    assert main(["lint", "nope", "--json"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_lint_rejects_unknown_design(capsys):
    assert main(["lint", "queue", "--design", "tso"]) == 2
    assert "unknown design" in capsys.readouterr().err


def test_lint_requires_workload(capsys):
    assert main(["lint"]) == 2
    assert "requires a workload" in capsys.readouterr().err


@pytest.mark.parametrize("design", ["strandweaver", "intel-x86"])
def test_lint_findings_carry_op_coordinates(capsys, design):
    rc = main(["lint", "hashmap", "--design", design, "--ops", "4", "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    for finding in doc["designs"][design]["findings"]:
        assert finding["tid"] >= 0
        assert finding["seq"] >= 0
        assert finding["severity"] in ("ADVICE", "WARNING", "ERROR")
