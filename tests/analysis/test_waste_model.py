"""Satellite: estimated_waste vs cycles the simulator actually measures.

The linter's ``estimated_waste`` counts redundant primitives, not cycles.
The repair engine deletes exactly those primitives and re-measures the
trace on the cycle-accurate simulator, so the two models can be held
against each other: every wasted primitive must cost a bounded,
non-negative number of real cycles, and the waste model must not cry
wolf on traces whose removal saves nothing *negative* (a deletion may be
latency-hidden — cost 0 — but must never slow the trace down).
"""

import pytest

from repro.analysis import analyze
from repro.analysis.litmus import LITMUS
from repro.analysis.repair import repair

#: litmus twins whose only defect is redundant ordering/flush primitives.
WASTEFUL = [
    "overser-double-clwb",
    "overser-empty-pb",
    "overser-b2b-sfence",
    "retry-double-flush",
]

#: ceiling on cycles one redundant primitive can cost on the simulator
#: (a full flush round-trip is ~100 cycles; retry-double-flush's
#: redundant CLWB re-drains a deep queue and tops out under 200).
CYCLES_PER_WASTE_UNIT = 200


def _measured(name):
    case = LITMUS[name]
    report = analyze(case.build(), design=case.design)
    result = repair(case.build(), case.design, target=name, oracle_samples=0)
    return report, result


class TestWasteModelAgainstTheSimulator:
    @pytest.mark.parametrize("name", WASTEFUL)
    def test_repair_removes_exactly_the_estimated_waste(self, name):
        report, result = _measured(name)
        assert report.estimated_waste > 0
        deletions = [e for e in result.edits if e.action == "delete"]
        assert len(deletions) == report.estimated_waste

    @pytest.mark.parametrize("name", WASTEFUL)
    def test_measured_savings_fall_in_the_tolerance_band(self, name):
        report, result = _measured(name)
        assert result.cycles_saved is not None
        assert 0 <= result.cycles_saved
        assert result.cycles_saved <= report.estimated_waste * CYCLES_PER_WASTE_UNIT

    def test_the_waste_model_finds_real_cycles_somewhere(self):
        """At least part of the corpus converts waste units into cycles."""
        total = 0
        for name in WASTEFUL:
            _, result = _measured(name)
            total += result.cycles_saved or 0
        assert total > 0

    @pytest.mark.parametrize(
        "dirty,clean",
        [("retry-double-flush", "retry-reflush-clean")],
    )
    def test_clean_twin_reports_zero_waste(self, dirty, clean):
        dirty_report = analyze(LITMUS[dirty].build(), design=LITMUS[dirty].design)
        clean_report = analyze(LITMUS[clean].build(), design=LITMUS[clean].design)
        assert dirty_report.estimated_waste > 0
        assert clean_report.estimated_waste == 0
