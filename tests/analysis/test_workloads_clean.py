"""Zero-findings matrix: bundled workloads x all five hardware designs.

Every bundled workload compiled with the dialect matching a *correct*
design must lint without errors or warnings — the runtimes emit exactly
the ordering the paper prescribes, so any ERROR here is an analyzer
false positive (or a real runtime bug, which the crash tests would also
catch).  The deliberately broken NON-ATOMIC design must produce ERROR
findings, and only in the classes whose bugs are ordering-related:
``unflushed-persist`` and ``strand-misuse``.
"""

import pytest

from repro.analysis import STRAND_MISUSE, UNFLUSHED, Severity, analyze
from repro.sim.machine import DESIGNS
from repro.workloads import WORKLOADS, WorkloadConfig, generate_for_design

#: small but multi-threaded: enough for cross-thread lock hand-offs.
CFG = WorkloadConfig(n_threads=4, ops_per_thread=6, log_entries=2048, pm_size=1 << 20)

CORRECT_DESIGNS = sorted(d for d in DESIGNS if d != "non-atomic")


def _lint(workload: str, design: str):
    run = generate_for_design(
        WORKLOADS[workload], CFG, design, "txn", durable_commit=True
    )
    return analyze(run.program, design=design)


@pytest.mark.parametrize("design", CORRECT_DESIGNS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_bundled_workloads_lint_clean_on_correct_designs(workload, design):
    report = _lint(workload, design)
    noisy = [d for d in report.diagnostics if d.severity >= Severity.WARNING]
    assert not noisy, (
        f"{workload}/{design}: "
        f"{[(d.check, d.rule, f't{d.tid}:{d.seq}') for d in noisy[:5]]}"
    )
    # Advisories are perf hints, not correctness findings; the only one
    # the bundled workloads legitimately trigger is persistent false
    # sharing in the hashmap's packed bucket layout.
    for diag in report.advisories:
        assert (workload, diag.rule) == ("hashmap", "false-sharing"), (
            f"{workload}/{design}: unexpected advisory {diag.rule} "
            f"at t{diag.tid}:{diag.seq}"
        )


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_non_atomic_lints_dirty_in_the_reproducible_classes(workload):
    report = _lint(workload, "non-atomic")
    assert report.errors, f"{workload}/non-atomic: linter lost its teeth"
    for diag in report.errors:
        assert diag.check in (UNFLUSHED, STRAND_MISUSE), (
            f"{workload}/non-atomic: unexpected ERROR class {diag.check}"
        )
    # No WARNING-level noise either: everything the projection breaks is
    # a hard ordering error the differential oracle can reproduce.
    assert not report.warnings
