"""Static lint x dynamic oracle cross-check.

The linter's ERROR findings must be *reproducible*: on NON-ATOMIC-style
designs the differential crash oracle has to turn at least one of them
into a real invariant violation, and on correct designs a clean lint has
to coincide with clean recovery.  ``CrashTestResult.ok`` folds this
agreement in, so a disagreement fails the whole crashtest cell.
"""

from repro.analysis import STRAND_MISUSE, UNFLUSHED
from repro.chaos import run_crashtest


def test_non_atomic_lint_errors_confirmed_by_crash_oracle():
    result = run_crashtest("queue", "non-atomic", crashes=8, seed=7, shrink=False)
    # Static: the linter predicts crash-inconsistency...
    assert result.lint_errors > 0
    # ...dynamic: the differential oracle reproduces it end-to-end...
    assert result.violations
    # ...and the two agree, so the cell passes.
    assert result.lint_consistent
    assert result.ok


def test_correct_design_lints_clean_and_recovers():
    result = run_crashtest("queue", "strandweaver", crashes=8, seed=7, shrink=False)
    assert result.lint_errors == 0
    assert not result.violations
    assert result.lint_consistent
    assert result.ok


def test_lint_error_classes_match_what_the_oracle_can_reproduce():
    from repro.chaos.harness import CrashHarness

    harness = CrashHarness("queue", "non-atomic")
    classes = {d.check for d in harness.lint.errors}
    assert classes <= {UNFLUSHED, STRAND_MISUSE}
    assert classes


def test_crashtest_summary_reports_lint_agreement():
    result = run_crashtest("queue", "strandweaver", crashes=4, seed=7, shrink=False)
    doc = result.summary()
    assert doc["lint_errors"] == 0
    assert doc["lint_consistent"] is True
    assert "static lint: 0 error(s); agrees" in result.render()
