"""Declarative PMO axioms (Eqs. 1-4): labels, relations, crash states."""

import pytest

from repro.analysis.pmo import DeclarativePmo, StateSpaceExceeded
from repro.core.ops import Op, OpKind, Program

A, B, C = 0x1000, 0x1040, 0x1080


def _prog(*kinds_and_addrs):
    """One-thread program from (kind, addr) shorthand tuples."""
    p = Program(1)
    for kind, addr in kinds_and_addrs:
        p.emit(0, Op(kind, addr=addr, size=8))
    return p


class TestEq1PersistBarrier:
    def test_barrier_orders_same_strand_stores(self):
        p = _prog((OpKind.STORE, A), (OpKind.PERSIST_BARRIER, 0), (OpKind.STORE, B))
        pmo = DeclarativePmo(p, "strandweaver")
        assert pmo.ordered_before(0, 1)
        assert ((0, 0), (0, 2)) in pmo.order_pairs()
        # exactly the three down-closed sets of a 2-chain
        assert pmo.count_states() == 3

    def test_unseparated_stores_are_unordered(self):
        p = _prog((OpKind.STORE, A), (OpKind.STORE, B))
        pmo = DeclarativePmo(p, "strandweaver")
        assert not pmo.ordered_before(0, 1)
        assert pmo.count_states() == 4

    def test_new_strand_discards_the_barrier_edge(self):
        p = _prog(
            (OpKind.STORE, A),
            (OpKind.PERSIST_BARRIER, 0),
            (OpKind.NEW_STRAND, 0),
            (OpKind.STORE, B),
        )
        pmo = DeclarativePmo(p, "strandweaver")
        assert not pmo.ordered_before(0, 1)
        assert pmo.count_states() == 4


class TestEq2JoinStrand:
    def test_join_orders_across_strands(self):
        p = _prog(
            (OpKind.STORE, A),
            (OpKind.NEW_STRAND, 0),
            (OpKind.JOIN_STRAND, 0),
            (OpKind.STORE, B),
        )
        pmo = DeclarativePmo(p, "strandweaver")
        assert pmo.ordered_before(0, 1)
        assert (0, 1) in pmo.edges["eq2"]
        assert pmo.count_states() == 3


class TestEq3Atomicity:
    def test_byte_conflicting_stores_order_by_visibility(self):
        p = Program(2)
        p.emit(0, Op(OpKind.STORE, addr=A, size=8))
        p.emit(1, Op(OpKind.STORE, addr=A, size=8))
        pmo = DeclarativePmo(p, "non-atomic")
        # even the weakest design keeps strong persist atomicity
        assert pmo.ordered_before(0, 1)
        assert pmo.count_states() == 3

    def test_disjoint_addresses_stay_concurrent(self):
        p = Program(2)
        p.emit(0, Op(OpKind.STORE, addr=A, size=8))
        p.emit(1, Op(OpKind.STORE, addr=B, size=8))
        pmo = DeclarativePmo(p, "strandweaver")
        assert not pmo.ordered_before(0, 1)
        assert not pmo.ordered_before(1, 0)

    def test_partial_overlap_counts_as_conflict(self):
        p = Program(2)
        p.emit(0, Op(OpKind.STORE, addr=A, size=8))
        p.emit(1, Op(OpKind.STORE, addr=A + 4, size=8))
        pmo = DeclarativePmo(p, "strandweaver")
        assert pmo.ordered_before(0, 1)


class TestDesignProjection:
    def test_x86_never_sees_a_persist_barrier(self):
        p = _prog((OpKind.STORE, A), (OpKind.PERSIST_BARRIER, 0), (OpKind.STORE, B))
        pmo = DeclarativePmo(p, "intel-x86")
        assert not pmo.ordered_before(0, 1)

    def test_x86_sfence_orders(self):
        p = _prog((OpKind.STORE, A), (OpKind.SFENCE, 0), (OpKind.STORE, B))
        pmo = DeclarativePmo(p, "intel-x86")
        assert pmo.ordered_before(0, 1)

    def test_strandweaver_never_sees_an_sfence(self):
        p = _prog((OpKind.STORE, A), (OpKind.SFENCE, 0), (OpKind.STORE, B))
        pmo = DeclarativePmo(p, "strandweaver")
        assert not pmo.ordered_before(0, 1)


class TestSyncLockTransfer:
    def test_drained_stores_precede_the_acquirers_stores(self):
        p = Program(2)
        p.emit(0, Op(OpKind.STORE, addr=A, size=8))
        p.emit(0, Op(OpKind.JOIN_STRAND))
        p.emit(0, Op(OpKind.LOCK_REL, lock_id=1))
        p.emit(1, Op(OpKind.LOCK_ACQ, lock_id=1))
        p.emit(1, Op(OpKind.STORE, addr=B, size=8))
        pmo = DeclarativePmo(p, "strandweaver")
        assert pmo.ordered_before(0, 1)
        assert ((0, 0), (1, 1)) in pmo.order_pairs()

    def test_undrained_release_transfers_nothing(self):
        p = Program(2)
        p.emit(0, Op(OpKind.STORE, addr=A, size=8))
        p.emit(0, Op(OpKind.LOCK_REL, lock_id=1))  # no drain before release
        p.emit(1, Op(OpKind.LOCK_ACQ, lock_id=1))
        p.emit(1, Op(OpKind.STORE, addr=B, size=8))
        pmo = DeclarativePmo(p, "strandweaver")
        assert not pmo.ordered_before(0, 1)


class TestReachability:
    def _chain(self):
        return DeclarativePmo(
            _prog((OpKind.STORE, A), (OpKind.PERSIST_BARRIER, 0), (OpKind.STORE, B)),
            "strandweaver",
        )

    def test_down_closed_sets_are_reachable(self):
        pmo = self._chain()
        assert pmo.is_reachable([])
        assert pmo.is_reachable([(0, 0)])
        assert pmo.is_reachable([(0, 0), (0, 2)])

    def test_missing_ancestor_is_unreachable(self):
        pmo = self._chain()
        assert not pmo.is_reachable([(0, 2)])  # B without A

    def test_unknown_key_is_unreachable(self):
        pmo = self._chain()
        assert not pmo.is_reachable([(0, 1)])  # the barrier is not a store
        assert not pmo.is_reachable([(7, 7)])

    def test_states_are_exactly_the_down_sets(self):
        pmo = self._chain()
        states = set(pmo.reachable_states())
        assert states == {
            frozenset(),
            frozenset({(0, 0)}),
            frozenset({(0, 0), (0, 2)}),
        }

    def test_budget_overflow_raises(self):
        # 12 independent stores: 2^12 = 4096 down-sets
        p = _prog(*[(OpKind.STORE, A + 64 * i) for i in range(12)])
        pmo = DeclarativePmo(p, "strandweaver")
        with pytest.raises(StateSpaceExceeded):
            pmo.count_states(limit=100)
        assert pmo.count_states(limit=5000) == 4096
