"""Public API surface tests."""

import repro


def test_version():
    assert repro.__version__


def test_public_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_end_to_end_one_liner():
    run = repro.generate_for_design(
        repro.WORKLOADS["queue"],
        repro.WorkloadConfig(n_threads=2, ops_per_thread=4, log_entries=256,
                             pm_size=1 << 20),
        "strandweaver",
        "txn",
    )
    stats = repro.run_design("strandweaver", run.program)
    assert stats.cycles > 0
