"""Wall-clock hot-path profiler: attribution quality and round-trip."""

import json

import pytest

from repro.__main__ import main
from repro.prof import PROF_SCHEMA
from repro.prof.wallclock import (
    SUBSYSTEM_ORDER,
    compare_profiles,
    load_profile_doc,
    profile_cell,
    render_profile,
    subsystem_of,
    write_profile_doc,
)


@pytest.fixture(scope="module")
def queue_profile():
    return profile_cell("queue", "strandweaver", ops_per_thread=8, top=5)


def test_profile_doc_shape(queue_profile):
    doc = queue_profile
    assert doc["schema"] == PROF_SCHEMA
    assert doc["benchmark"] == "queue" and doc["design"] == "strandweaver"
    wall = doc["wallclock"]
    assert wall["total_s"] > 0
    assert len(wall["hot_functions"]) <= 5
    assert doc["simulated"]["total_cycles"] > 0


def test_attribution_at_least_95_pct(queue_profile):
    """The acceptance bar: >= 95% of wall time lands in a named
    subsystem (``other`` is reserved for genuinely unmapped code)."""
    assert queue_profile["wallclock"]["attributed_pct"] >= 95.0


def test_subsystems_are_known(queue_profile):
    for name in queue_profile["wallclock"]["subsystems"]:
        assert name in SUBSYSTEM_ORDER


def test_round_trip(tmp_path, queue_profile):
    path = str(tmp_path / "prof.json")
    write_profile_doc(path, queue_profile)
    loaded = load_profile_doc(path)
    # dump_json round-trips through JSON, so compare via a JSON dump
    assert json.dumps(loaded, sort_keys=True) == json.dumps(
        queue_profile, sort_keys=True
    )


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"schema": "repro.stats/1"}')
    with pytest.raises(ValueError, match="repro.prof/1"):
        load_profile_doc(str(path))


def test_subsystem_of_mapping():
    assert subsystem_of("~") == "builtins"
    assert subsystem_of("<string>") == "builtins"
    assert subsystem_of("/usr/lib/python3.11/json/encoder.py") == "stdlib"
    assert subsystem_of("/x/src/repro/sim/cache.py") == "cache-model"
    assert subsystem_of("/x/src/repro/sim/memory.py") == "pm-model"
    assert subsystem_of("/x/src/repro/sim/cpu.py") == "sim-core"
    assert subsystem_of("/x/src/repro/core/strandweaver.py") == "persist-model"
    assert subsystem_of("/x/src/repro/lang/runtime.py") == "lang-runtime"
    assert subsystem_of("/x/src/repro/pmem/space.py") == "pmem-alloc"
    assert subsystem_of("/x/src/repro/prof/phases.py") == "profiler"
    assert subsystem_of("/x/src/repro/mystery/new.py") == "other"


def test_render_and_compare(queue_profile):
    text = render_profile(queue_profile)
    assert "subsystem" in text and "hot functions" in text
    report, delta = compare_profiles(queue_profile, queue_profile)
    assert delta == 0.0
    assert "+0.0%" in report


def test_profile_cli_json(tmp_path, capsys):
    out = str(tmp_path / "cli_prof.json")
    rc = main([
        "profile", "queue", "--design", "strandweaver", "--ops", "6",
        "--json", "--out", out,
    ])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == PROF_SCHEMA
    assert load_profile_doc(out)["schema"] == PROF_SCHEMA


def test_profile_cli_rejects_unknowns():
    assert main(["profile", "nope"]) == 2
    assert main(["profile", "queue", "--design", "nope"]) == 2
