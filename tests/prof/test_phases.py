"""Simulated-cycle phase attribution: exactness and bit-invisibility."""

import pytest

from repro.harness.experiment import ALL_DESIGNS, clear_cache, default_config
from repro.harness.figures import figure7
from repro.prof.phases import (
    NULL_PROF,
    PHASES,
    PROF_PHASES_ENV,
    PhaseProfiler,
    active_profiler,
)
from repro.sim.machine import Machine
from repro.workloads import WORKLOADS, generate_for_design


def _run_profiled(design, benchmark="queue", ops=6):
    cfg = default_config(ops)
    run = generate_for_design(WORKLOADS[benchmark], cfg, design, "txn")
    prof = PhaseProfiler()
    stats = Machine(design, profiler=prof).run(run.program)
    return prof, stats


@pytest.mark.parametrize("design", ALL_DESIGNS)
def test_phase_sum_matches_core_clock(design):
    """Every simulated cycle lands in exactly one phase bucket: the
    per-core phase sum equals the core's cycle count (mod int rounding
    of the stats field)."""
    prof, stats = _run_profiled(design)
    for tid, core in enumerate(stats.per_core):
        total = prof.core_total(tid)
        assert abs(total - core.cycles) <= 1, (
            f"{design} core {tid}: phases sum to {total}, core ran {core.cycles}"
        )


def test_phase_taxonomy_is_closed():
    prof, _ = _run_profiled("strandweaver")
    doc = prof.to_json()
    assert set(doc["phases"]) == set(PHASES)
    assert doc["total_cycles"] == sum(doc["phases"].values())
    assert abs(sum(doc["phase_pct"].values()) - 100.0) < 0.01
    for core in doc["per_core"]:
        assert set(core) == set(PHASES)


@pytest.mark.parametrize("design", ALL_DESIGNS)
def test_profiler_is_bit_invisible_per_design(design):
    """Identical stats with and without a live profiler attached."""
    cfg = default_config(6)
    run = generate_for_design(WORKLOADS["hashmap"], cfg, design, "txn")
    plain = Machine(design).run(run.program)
    profiled = Machine(design, profiler=PhaseProfiler()).run(run.program)
    assert [vars(c) for c in plain.per_core] == [vars(c) for c in profiled.per_core]


def test_figure7_identical_with_env_profiler(monkeypatch):
    """Figure 7 — the tier-1 artefact — is byte-identical whether or not
    REPRO_PROF_PHASES attaches a profiler to every machine."""
    monkeypatch.delenv(PROF_PHASES_ENV, raising=False)
    clear_cache()
    baseline = figure7(ops_per_thread=4).to_json()
    monkeypatch.setenv(PROF_PHASES_ENV, "1")
    clear_cache()
    profiled = figure7(ops_per_thread=4).to_json()
    clear_cache()
    assert baseline == profiled


def test_active_profiler_resolution(monkeypatch):
    monkeypatch.delenv(PROF_PHASES_ENV, raising=False)
    assert active_profiler(None) is NULL_PROF
    explicit = PhaseProfiler()
    assert active_profiler(explicit) is explicit
    monkeypatch.setenv(PROF_PHASES_ENV, "1")
    attached = active_profiler(None)
    assert attached is not NULL_PROF and attached.enabled
    # an explicit profiler still wins over the environment
    assert active_profiler(explicit) is explicit


def test_null_profiler_is_inert():
    assert not NULL_PROF.enabled
    NULL_PROF.charge(0, "idle", 5)
    NULL_PROF.begin_op(0)
    NULL_PROF.end_op(0, 3)
    NULL_PROF.abort_op(0)
    NULL_PROF.charge_resource("pm/writes")
    assert NULL_PROF.to_json() == {}
    assert NULL_PROF.core_phases == {} and NULL_PROF.resources == {}


def test_abort_op_rolls_back_bracket():
    prof = PhaseProfiler()
    prof.begin_op(0)
    prof.charge(0, "persist-hw", 10)
    prof.abort_op(0)
    assert prof.core_total(0) == 0
    prof.begin_op(0)
    prof.charge(0, "cache", 4)
    prof.end_op(0, 10)
    assert prof.core_total(0) == 10
    assert prof.phase_totals()["core-issue"] == 6
