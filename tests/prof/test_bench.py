"""Bench trajectory store and regression gate."""

import pytest

from repro.prof.bench import (
    BENCH_FIGURES,
    BENCH_OPS_ENV,
    BENCH_TRAJECTORY_SCHEMA,
    append_run,
    check_regression,
    load_trajectory,
    record_run,
    resolve_ops,
)


def _entry(total=1.0, ops=16, fingerprint="cfg-a", sha="abc123"):
    return {
        "ts": "2026-08-08T00:00:00Z",
        "git_sha": sha,
        "python": "3.11.0",
        "ops_per_thread": ops,
        "config_fingerprint": fingerprint,
        "figures": {
            name: {"wall_s": total / len(BENCH_FIGURES), "cells": 10,
                   "cells_per_s": 1.0}
            for name in BENCH_FIGURES
        },
        "total_wall_s": total,
        "total_cells": 10 * len(BENCH_FIGURES),
        "cells_per_s": 1.0,
    }


def test_resolve_ops(monkeypatch):
    monkeypatch.delenv(BENCH_OPS_ENV, raising=False)
    assert resolve_ops(16) == 16
    assert resolve_ops(32) == 32
    monkeypatch.setenv(BENCH_OPS_ENV, "64")
    assert resolve_ops(16) == 64  # env fills the default
    assert resolve_ops(32) == 32  # explicit flag still wins
    monkeypatch.setenv(BENCH_OPS_ENV, "banana")
    with pytest.raises(SystemExit):
        resolve_ops(16)


def test_trajectory_append_and_load(tmp_path):
    path = str(tmp_path / "BENCH_test.json")
    empty = load_trajectory(path)
    assert empty == {"schema": BENCH_TRAJECTORY_SCHEMA, "runs": []}
    append_run(path, _entry(total=1.0))
    doc = append_run(path, _entry(total=1.2))
    assert len(doc["runs"]) == 2
    assert load_trajectory(path)["runs"][1]["total_wall_s"] == 1.2


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"schema": "repro.bench/1", "runs": []}')
    with pytest.raises(ValueError, match=BENCH_TRAJECTORY_SCHEMA):
        load_trajectory(str(path))


def test_gate_passes_within_threshold(tmp_path):
    path = str(tmp_path / "BENCH_test.json")
    append_run(path, _entry(total=1.0))
    ok, report = check_regression(path, _entry(total=1.5), max_regress_pct=100.0)
    assert ok and "bench gate OK" in report


def test_gate_fails_past_threshold(tmp_path):
    path = str(tmp_path / "BENCH_test.json")
    append_run(path, _entry(total=1.0))
    ok, report = check_regression(path, _entry(total=2.5), max_regress_pct=100.0)
    assert not ok and "bench gate FAILED" in report


def test_gate_prefers_same_fingerprint(tmp_path):
    path = str(tmp_path / "BENCH_test.json")
    append_run(path, _entry(total=10.0, fingerprint="cfg-other"))
    append_run(path, _entry(total=1.0, fingerprint="cfg-a"))
    append_run(path, _entry(total=10.0, fingerprint="cfg-other"))
    # gates against the cfg-a run (1.0s), not the later cfg-other one
    ok, _ = check_regression(path, _entry(total=2.5, fingerprint="cfg-a"),
                             max_regress_pct=100.0)
    assert not ok


def test_gate_fails_without_comparable_baseline(tmp_path):
    path = str(tmp_path / "BENCH_test.json")
    append_run(path, _entry(total=1.0, ops=16))
    ok, report = check_regression(path, _entry(total=1.0, ops=64),
                                  max_regress_pct=100.0)
    assert not ok and "no baseline run" in report


def test_record_run_smoke():
    entry = record_run(ops_per_thread=2)
    assert set(entry["figures"]) == set(BENCH_FIGURES)
    assert entry["total_cells"] == sum(
        f["cells"] for f in entry["figures"].values()
    )
    assert entry["total_wall_s"] > 0
    assert len(entry["config_fingerprint"]) > 8
    assert entry["ops_per_thread"] == 2
