"""Campaign run log: JSONL round-trip, torn tails, deterministic guard."""

import json

import pytest

from repro.__main__ import main
from repro.harness.sweep import SweepCell, run_sweep
from repro.prof.runlog import RUNLOG_SCHEMA, Progress, RunLog, read_runlog


def test_runlog_round_trip(tmp_path):
    path = str(tmp_path / "run.jsonl")
    log = RunLog(path, kind="sweep", total=2, meta={"jobs": 2})
    log.cell_start("queue/strandweaver/txn", 0)
    log.cell_finish("queue/strandweaver/txn", 0, ok=True, wall_time_s=0.5,
                    source="run", worker=123)
    log.finish(done=1, errors=0, busy_time_s=0.5)
    events = read_runlog(path)
    assert [e["event"] for e in events] == [
        "start", "cell-start", "cell-finish", "finish"
    ]
    assert all(e["schema"] == RUNLOG_SCHEMA for e in events)
    assert events[0]["meta"] == {"jobs": 2}
    assert events[2]["wall_time_s"] == 0.5 and events[2]["worker"] == 123
    assert events[3]["busy_time_s"] == 0.5


def test_closed_runlog_drops_silently(tmp_path):
    path = str(tmp_path / "run.jsonl")
    log = RunLog(path, kind="soak", total=1)
    log.close()
    log.cell_start("x", 0)  # must not raise or write
    assert len(read_runlog(path)) == 1


def test_torn_tail_tolerated(tmp_path):
    path = str(tmp_path / "run.jsonl")
    log = RunLog(path, kind="sweep", total=3)
    log.cell_finish("a", 0, ok=True, wall_time_s=0.1)
    log.close()
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"schema": "repro.runlog/1", "event": "cell-fin')
    events = read_runlog(path)
    assert [e["event"] for e in events] == ["start", "cell-finish"]


def test_malformed_interior_line_rejected(tmp_path):
    path = str(tmp_path / "run.jsonl")
    log = RunLog(path, kind="sweep", total=1)
    log.close()
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("not json\n")
        fh.write(json.dumps({"schema": RUNLOG_SCHEMA, "event": "finish"}) + "\n")
    with pytest.raises(ValueError, match="malformed"):
        read_runlog(path)


def test_wrong_schema_rejected(tmp_path):
    path = tmp_path / "run.jsonl"
    path.write_text('{"schema": "repro.sweep/1", "event": "start"}\n')
    with pytest.raises(ValueError, match="repro.runlog/1"):
        read_runlog(str(path))


def test_progress_writes_line(tmp_path):
    out = []

    class Sink:
        def write(self, s):
            out.append(s)

        def flush(self):
            pass

    progress = Progress(4, label="sweep", stream=Sink())
    progress.update(2)
    progress.close()
    line = "".join(out)
    assert "2/4" in line and "50.0%" in line


def test_deterministic_guard_excludes_telemetry(tmp_path, capsys):
    """--deterministic promises byte-identical artefacts; wall-clock
    telemetry flags must be rejected before any work runs."""
    runlog = tmp_path / "run.jsonl"
    rc = main([
        "sweep", "--workloads", "queue", "--designs", "strandweaver",
        "--ops", "2", "--deterministic", "--runlog", str(runlog),
    ])
    assert rc == 2
    assert not runlog.exists()
    assert "deterministic" in capsys.readouterr().err
    rc = main([
        "sweep", "--workloads", "queue", "--designs", "strandweaver",
        "--ops", "2", "--deterministic", "--progress",
    ])
    assert rc == 2


def test_sweep_parallel_runlog_accounting(tmp_path):
    """A -j2 sweep's run log covers every cell, and the per-cell wall
    times it records sum to the campaign's reported busy time."""
    cells = [
        SweepCell(bench, design, "txn", 2)
        for bench in ("queue", "hashmap")
        for design in ("strandweaver", "intel-x86")
    ]
    path = str(tmp_path / "run.jsonl")
    log = RunLog(path, kind="sweep", total=len(cells), meta={"jobs": 2})
    result = run_sweep(cells, jobs=2, runlog=log)
    log.close()
    events = read_runlog(path)
    finishes = [e for e in events if e["event"] == "cell-finish"]
    fin = [e for e in events if e["event"] == "finish"][0]
    assert len(finishes) == len(cells)
    assert fin["done"] == len(cells) and fin["errors"] == 0
    summed = sum(e["wall_time_s"] for e in finishes)
    busy = fin["busy_time_s"]
    assert busy == pytest.approx(summed, rel=0.2, abs=0.05)
    assert busy == pytest.approx(
        sum(res.wall_time for res in result.cells), rel=1e-6, abs=1e-6
    )


def test_soak_runlog(tmp_path):
    path = str(tmp_path / "soak.jsonl")
    rc = main([
        "soak", "queue", "--seeds", "3", "--runlog", path, "--no-shrink",
    ])
    assert rc == 0
    events = read_runlog(path)
    assert [e["event"] for e in events].count("cell-finish") == 3
    assert events[0]["kind"] == "soak"
