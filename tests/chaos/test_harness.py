"""End-to-end crash-injection harness tests.

Small crash counts keep this suite fast; the CI smoke job and the CLI
acceptance run exercise the full 50-crash cells.
"""

import pytest

from repro.chaos import (
    CrashHarness,
    CrashTrigger,
    FaultPlan,
    run_crashtest,
    run_differential,
    shrink_crash_point,
)
from repro.sim.machine import DESIGNS, Machine
from repro.workloads import WORKLOADS, WorkloadConfig, generate_for_design

FAST_CFG = WorkloadConfig(
    n_threads=3, ops_per_thread=8, log_entries=1024, pm_size=1 << 20
)


def test_strandweaver_recovers_every_crash():
    result = run_crashtest(
        "queue", "strandweaver", crashes=10, seed=7, cfg=FAST_CFG
    )
    assert result.ok
    assert not result.violations
    assert len(result.samples) == 10


def test_nonatomic_violates_and_is_expected_to():
    result = run_crashtest(
        "queue", "non-atomic", crashes=10, seed=7, cfg=FAST_CFG, shrink=False
    )
    assert result.expect_failures
    assert result.violations, "NON-ATOMIC produced no violations: checker is blind"
    assert result.ok  # failures are the expected outcome
    msg = result.violations[0]
    assert "seed=" in msg and "non-atomic" in msg


def test_differential_oracle_all_designs():
    diff = run_differential("queue", crashes=4, seed=11, cfg=FAST_CFG)
    assert set(diff.results) == set(DESIGNS)
    for design, result in diff.results.items():
        if design == "non-atomic":
            assert result.expect_failures and result.violations
        else:
            assert not result.expect_failures and not result.violations
    assert diff.ok
    rendered = diff.render()
    assert "PASS" in rendered and "non-atomic" in rendered


def test_shrink_finds_smaller_failing_crash_point():
    harness = CrashHarness("queue", "non-atomic", cfg=FAST_CFG)
    result = run_crashtest(
        "queue", "non-atomic", crashes=10, seed=7, cfg=FAST_CFG, shrink=False
    )
    failing = next(s for s in result.samples if s.violation)
    shrunk = shrink_crash_point(harness, failing.plan)
    assert shrunk is not None, "failure did not reproduce: determinism lost"
    assert shrunk.minimal_at <= failing.plan.trigger.at
    assert shrunk.violation
    assert "minimal failing crash point" in shrunk.describe()


def test_crash_state_reports_hardware_occupancy():
    harness = CrashHarness("queue", "strandweaver", cfg=FAST_CFG)
    plan = FaultPlan(trigger=CrashTrigger("cycle", harness.horizon * 0.5))
    stats = Machine("strandweaver", harness.machine_cfg).run(
        harness.run.program, fault_plan=plan
    )
    crash = stats.crash
    assert crash is not None
    assert crash.cycle == plan.trigger.at
    assert "pm_write_queue" in crash.occupancy
    per_core = crash.occupancy["cores"]
    assert set(per_core) == {0, 1, 2}
    for occ in per_core.values():
        assert set(occ) == {"persist_queue", "strand_buffers"}
    summary = crash.summary()
    assert summary["design"] == "strandweaver"
    assert summary["durable_stores"] == len(crash.durable)


def test_ops_trigger_crashes_mid_program():
    harness = CrashHarness("queue", "strandweaver", cfg=FAST_CFG)
    plan = FaultPlan(trigger=CrashTrigger("ops", harness.total_ops // 2))
    stats = Machine("strandweaver", harness.machine_cfg).run(
        harness.run.program, fault_plan=plan
    )
    assert stats.crash is not None
    n_stores = len(harness.run.program.pm_stores())
    assert len(stats.crash.durable) < n_stores


def test_cycles_identical_with_and_without_tracking():
    """The durability tracker must be timing-neutral: a fault plan whose
    trigger never fires yields bit-identical cycle counts."""
    run = generate_for_design(
        WORKLOADS["queue"], FAST_CFG, "strandweaver", "txn", durable_commit=True
    )
    clean = Machine("strandweaver").run(run.program)
    never = FaultPlan(trigger=CrashTrigger("cycle", 1e18))
    tracked = Machine("strandweaver").run(run.program, fault_plan=never)
    assert tracked.cycles == clean.cycles
    assert [c.cycles for c in tracked.per_core] == [
        c.cycles for c in clean.per_core
    ]
    assert tracked.crash is not None  # outran trigger: full-recovery image


def test_harness_rejects_unknown_names():
    with pytest.raises(ValueError):
        CrashHarness("queue", "sparc")
    with pytest.raises(ValueError):
        CrashHarness("no-such-workload", "strandweaver")
