"""Unit tests for the machine-state durability tracker."""

from repro.core.ops import Op, OpKind
from repro.sim.durability import (
    INF,
    NULL_DURABILITY,
    SOURCE_CLWB,
    SOURCE_WRITEBACK,
    DurabilityTracker,
)


def store(addr, size, gseq):
    return Op(OpKind.STORE, addr=addr, size=size, data=b"\xab" * size, gseq=gseq)


def test_store_durable_once_line_accepted():
    tracker = DurabilityTracker()
    tracker.note_store(store(0x100, 8, gseq=1), retire=10.0)
    assert tracker.frontier(1e9) == []
    assert [r.op.gseq for r in tracker.in_flight(10.0)] == [1]

    tracker.line_persisted(0x100 // 64, content_time=20.0, durable_time=35.0)
    (rec,) = tracker.frontier(35.0)
    assert rec.durable == 35.0
    assert rec.source == SOURCE_CLWB
    assert tracker.frontier(34.9) == []
    assert tracker.in_flight(35.0) == []


def test_flush_before_retire_does_not_cover():
    tracker = DurabilityTracker()
    tracker.note_store(store(0x100, 8, gseq=1), retire=50.0)
    # Line content was read out at t=40 — before the store retired, so
    # the written-back bytes predate this store.
    tracker.line_persisted(0x100 // 64, content_time=40.0, durable_time=60.0)
    assert tracker.records[0].durable == INF
    tracker.line_persisted(0x100 // 64, content_time=55.0, durable_time=70.0)
    assert tracker.records[0].durable == 70.0


def test_multi_line_store_needs_every_line():
    tracker = DurabilityTracker()
    tracker.note_store(store(60, 16, gseq=1), retire=5.0)  # spans lines 0, 1
    tracker.line_persisted(0, content_time=10.0, durable_time=12.0)
    assert tracker.records[0].durable == INF
    tracker.line_persisted(1, content_time=11.0, durable_time=30.0)
    assert tracker.records[0].durable == 30.0


def test_writeback_source_is_sticky():
    tracker = DurabilityTracker()
    tracker.note_store(store(60, 16, gseq=1), retire=5.0)
    tracker.line_persisted(0, 10.0, 12.0, source=SOURCE_CLWB)
    tracker.line_persisted(1, 10.0, 14.0, source=SOURCE_WRITEBACK)
    assert tracker.records[0].source == SOURCE_WRITEBACK


def test_frontier_sorted_by_visibility_order():
    tracker = DurabilityTracker()
    tracker.note_store(store(0x200, 8, gseq=9), retire=1.0)
    tracker.note_store(store(0x100, 8, gseq=2), retire=2.0)
    tracker.line_persisted(0x200 // 64, 5.0, 6.0)
    tracker.line_persisted(0x100 // 64, 5.0, 7.0)
    assert [r.op.gseq for r in tracker.frontier(10.0)] == [2, 9]


def test_null_durability_is_inert():
    assert NULL_DURABILITY.enabled is False
    NULL_DURABILITY.note_store(store(0, 8, gseq=0), retire=0.0)
    NULL_DURABILITY.line_persisted(0, 0.0, 0.0)
    assert not hasattr(NULL_DURABILITY, "records")
