"""Fault-plan and schedule determinism tests."""

import pytest

from repro.chaos import CrashSchedule, CrashTrigger, FaultPlan, sample_schedules


def test_sample_schedules_deterministic():
    a = sample_schedules(20, seed=42)
    b = sample_schedules(20, seed=42)
    assert a == b
    assert sample_schedules(20, seed=43) != a


def test_sample_schedules_alternate_trigger_kinds():
    schedules = sample_schedules(10, seed=1)
    assert [s.kind for s in schedules] == ["cycle", "ops"] * 5


def test_sample_schedules_fractions_span_run():
    schedules = sample_schedules(100, seed=9)
    assert all(0.05 <= s.frac <= 0.95 for s in schedules)
    # Per-schedule fault seeds must differ (independent injections).
    assert len({s.seed for s in schedules}) > 90


def test_concretise_cycle_schedule():
    sched = CrashSchedule(kind="cycle", frac=0.5, seed=3)
    plan = sched.concretise(horizon=10_000.0, total_ops=500)
    assert plan.trigger == CrashTrigger("cycle", 5000.0)
    assert plan.seed == 3


def test_concretise_ops_schedule():
    sched = CrashSchedule(kind="ops", frac=0.25, seed=3)
    plan = sched.concretise(horizon=10_000.0, total_ops=500)
    assert plan.trigger == CrashTrigger("ops", 125)


def test_concretise_never_zero():
    assert CrashSchedule("cycle", 0.05, 0).concretise(1.0, 1).trigger.at >= 1
    assert CrashSchedule("ops", 0.05, 0).concretise(1.0, 1).trigger.at >= 1


def test_fault_plan_describe_echoes_replay_inputs():
    plan = FaultPlan(trigger=CrashTrigger("cycle", 1234.5), seed=99)
    desc = plan.describe()
    assert "cycle=1234.5" in desc
    assert "seed=99" in desc
    assert "writeback-faults" in desc
    assert "drop-faults" in desc
    assert "torn" not in desc
    torn = FaultPlan(trigger=CrashTrigger("ops", 7), seed=0, torn=True)
    assert "torn-writes" in torn.describe()


def test_trigger_validation():
    with pytest.raises(ValueError):
        CrashTrigger("instructions", 5)
    with pytest.raises(ValueError):
        CrashTrigger("cycle", -1)
