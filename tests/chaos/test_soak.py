"""Soak campaign: determinism, isolated replay, shrinker hand-off."""

import json

from repro.chaos import CrashHarness, run_soak
from repro.chaos.harness import CHAOS_CFG
from repro.chaos.shrink import not_reproducible, shrink_crash_point
from repro.chaos.soak import pick_design, sample_case_schedule


def _summary_blob(result):
    return json.dumps(result.summary(), sort_keys=True)


def test_soak_is_deterministic_run_to_run():
    """Same master seed -> byte-identical repro.soak/1 document."""
    a = run_soak("queue", seeds=6, seed=3)
    b = run_soak("queue", seeds=6, seed=3)
    assert _summary_blob(a) == _summary_blob(b)
    assert a.summary()["schema"] == "repro.soak/1"


def test_soak_correct_designs_survive_the_campaign():
    result = run_soak("queue", seeds=8, seed=3)
    assert result.ok, result.render()
    # The campaign must actually exercise the fault machinery.
    assert result.summary()["recovery_passes"] >= len(result.cases)
    assert any(c.media_faults for c in result.cases), (
        "no case drew a media fault model"
    )
    assert any(c.recovery_passes > 1 for c in result.cases), (
        "no case crashed during recovery"
    )


def test_failing_case_replays_in_isolation():
    """A case replayed via its private seed reproduces the same plan."""
    campaign = run_soak("queue", seeds=5, seed=11)
    for case in campaign.cases:
        solo = run_soak(
            "queue", seeds=1, seed=case.seed, designs=[case.design]
        )
        assert solo.cases[0].plan_desc == case.plan_desc
        assert solo.cases[0].violation == case.violation


def test_case_generation_is_independent_of_design_rotation():
    schedule = sample_case_schedule(1234)
    assert schedule == sample_case_schedule(1234)
    all_designs = ["intel-x86", "hops", "strandweaver"]
    chosen = pick_design(1234, all_designs)
    assert pick_design(1234, [chosen]) == chosen


def test_non_atomic_violations_are_expected_not_failures():
    result = run_soak("queue", seeds=8, seed=11, designs=["non-atomic"])
    assert result.ok
    assert result.expected_violations > 0, (
        "8 seeded crashes on NON-ATOMIC produced no violation; the "
        "campaign lost its teeth"
    )
    assert not result.failures


def test_unexpected_failure_is_shrunk_and_replayable(monkeypatch):
    """A violation on a correct design lands in ``failing`` with a shrink
    verdict and a replay command.  The fabricated violation does not
    reproduce, so the shrinker must return its canonical
    not-reproducible result instead of a bogus minimum."""
    real = CrashHarness.crash_schedule

    def fabricate(self, schedule, index=0):
        sample = real(self, schedule, index)
        sample.violation = "synthetic violation (test-only)"
        return sample

    monkeypatch.setattr(CrashHarness, "crash_schedule", fabricate)
    result = run_soak("queue", seeds=1, seed=3, designs=["strandweaver"])
    assert not result.ok
    case = result.cases[0]
    assert case.shrunk is not None
    assert case.shrunk.reproducible is False
    failing = result.summary()["failing"][0]
    assert "soak queue --design strandweaver" in failing["replay"]
    assert "not reproducible" in failing["shrunk"]


# -- shrinker guard rails ------------------------------------------------


def test_shrink_guard_non_reproducible_plan():
    """A plan that recovers cleanly yields the canonical result, not a
    search (one probe) and not None."""
    harness = CrashHarness("queue", "strandweaver", cfg=CHAOS_CFG)
    from repro.chaos import CrashTrigger, FaultPlan

    plan = FaultPlan(
        trigger=CrashTrigger("cycle", max(1.0, harness.horizon * 0.5)),
        seed=5,
    )
    assert harness.crash_once(plan).ok  # precondition: plan passes
    result = shrink_crash_point(harness, plan)
    assert result is not None
    assert result.reproducible is False
    assert result.minimal_at == plan.trigger.at
    assert result.probes == 1
    assert "not reproducible" in result.describe()
    # The canonical constructor used by other callers agrees.
    canon = not_reproducible(plan)
    assert canon.reproducible is False and canon.kind == plan.trigger.kind
