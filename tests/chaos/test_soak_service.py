"""Soak campaign plumbing: replay flags, seed sharding, case purity."""

import pytest

from repro.chaos.shrink import ShrinkResult
from repro.chaos.soak import (
    SoakCase,
    SoakResult,
    design_pool_for,
    run_soak,
    run_soak_case,
    shard_seed_ranges,
)
from repro.sim.machine import DESIGNS


def _case(**over) -> SoakCase:
    doc = dict(index=3, seed=10, design="strandweaver", plan_desc="crash@5")
    doc.update(over)
    return SoakCase(**doc)


class TestReplayCommandFlags:
    """Replay one-liners must echo every campaign flag that shapes a case.

    A campaign run with ``--no-media`` draws a *different* plan for the
    same seed, so a replay without the flag chases a different failure
    than the one reported.  Pinned here so the flags can never silently
    drop out of the command again.
    """

    def _result(self, media: bool, shrink: bool) -> SoakResult:
        return SoakResult(
            workload="queue", seed=7, n_seeds=1, media=media,
            designs=["strandweaver"], shrink=shrink,
        )

    def test_default_flags_produce_the_bare_command(self):
        cmd = self._result(media=True, shrink=True).replay_command(_case())
        assert cmd == (
            "python -m repro soak queue --design strandweaver --seeds 1 --seed 10"
        )

    def test_no_media_campaign_echoes_no_media(self):
        cmd = self._result(media=False, shrink=True).replay_command(_case())
        assert "--no-media" in cmd

    def test_no_shrink_campaign_echoes_no_shrink(self):
        cmd = self._result(media=True, shrink=False).replay_command(_case())
        assert "--no-shrink" in cmd

    def test_both_flags_echo_together(self):
        cmd = self._result(media=False, shrink=False).replay_command(_case())
        assert "--no-media" in cmd and "--no-shrink" in cmd

    def test_summary_embeds_the_flagged_replay_for_failures(self):
        result = self._result(media=False, shrink=False)
        result.cases = [_case(violation="queue lost an element", expected=False)]
        (failing,) = result.summary()["failing"]
        assert "--no-media" in failing["replay"]
        assert "--no-shrink" in failing["replay"]


class TestSeedSharding:
    def test_ranges_cover_exactly_once_in_order(self):
        ranges = shard_seed_ranges(10, 3)
        covered = [
            i for first, count in ranges for i in range(first, first + count)
        ]
        assert covered == list(range(10))

    def test_sizes_differ_by_at_most_one(self):
        sizes = [count for _, count in shard_seed_ranges(11, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_cases_collapses(self):
        assert shard_seed_ranges(2, 8) == [(0, 1), (1, 1)]

    def test_empty_and_offset(self):
        assert shard_seed_ranges(0, 4) == []
        assert shard_seed_ranges(4, 2, start=10) == [(10, 2), (12, 2)]


class TestCasePurity:
    def test_run_soak_case_matches_the_serial_campaign(self):
        pool = design_pool_for(None)
        serial = run_soak("queue", seeds=3, seed=7)
        for case in serial.cases:
            alone = run_soak_case("queue", case.seed, case.index, pool)
            assert alone == case

    def test_sharded_out_of_order_reassembly_is_identical(self):
        pool = design_pool_for(None)
        serial = run_soak("queue", seeds=4, seed=7)
        # run the second half first: order must not matter
        out = {}
        for first, count in reversed(shard_seed_ranges(4, 2)):
            for idx in range(first, first + count):
                out[idx] = run_soak_case("queue", 7 + idx, idx, pool)
        assert [out[i] for i in sorted(out)] == serial.cases

    def test_design_pool_for_defaults_to_all_designs_sorted(self):
        assert design_pool_for(None) == sorted(DESIGNS)
        assert design_pool_for(["strandweaver"]) == ["strandweaver"]


class TestCaseJSONRoundTrip:
    def test_plain_case_round_trips(self):
        case = _case()
        assert SoakCase.from_json(case.to_json()) == case

    def test_failing_shrunk_case_round_trips(self):
        case = _case(
            violation="lost element",
            expected=False,
            recovery_passes=2,
            media_faults={"retries": 3, "uncorrectable": 0},
            shrunk=ShrinkResult(
                kind="crash-point", original_at=0.9, minimal_at=0.2,
                probes=6, violation="lost element", reproducible=True,
            ),
        )
        assert SoakCase.from_json(case.to_json()) == case

    def test_round_trip_survives_json_serialization(self):
        import json

        case = _case(violation="x", expected=True)
        wire = json.loads(json.dumps(case.to_json()))
        assert SoakCase.from_json(wire) == case
