"""Admission control: token buckets, per-client limiting, worker budget."""

import threading

import pytest

from repro.service.ratelimit import (
    ClientRateLimiter,
    ResourceTracker,
    TokenBucket,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestTokenBucket:
    def test_burst_up_to_capacity_then_denied(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_acquire()[0] for _ in range(3)] == [True] * 3
        granted, retry_after = bucket.try_acquire()
        assert not granted
        assert retry_after == pytest.approx(1.0)

    def test_recovers_after_the_window(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        assert not bucket.try_acquire()[0]
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token back
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]

    def test_refill_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(1000.0)
        assert [bucket.try_acquire()[0] for _ in range(3)] == [True, True, False]

    def test_rejects_nonsense_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(burst=0)


class TestClientRateLimiter:
    def test_clients_have_independent_buckets(self):
        clock = FakeClock()
        limiter = ClientRateLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.check("10.0.0.1")[0]
        assert not limiter.check("10.0.0.1")[0]
        assert limiter.check("10.0.0.2")[0]  # a different client is fresh

    def test_denied_client_recovers(self):
        clock = FakeClock()
        limiter = ClientRateLimiter(rate=1.0, burst=2, clock=clock)
        limiter.check("c")
        limiter.check("c")
        granted, retry_after = limiter.check("c")
        assert not granted and retry_after > 0
        clock.advance(retry_after)
        assert limiter.check("c")[0]

    def test_idle_buckets_are_dropped_but_active_ones_kept(self):
        clock = FakeClock()
        limiter = ClientRateLimiter(rate=1.0, burst=1, clock=clock)
        for i in range(80):
            limiter.check(f"client-{i}")
        clock.advance(ClientRateLimiter.IDLE_S + 1)
        limiter.check("fresh")
        assert len(limiter._buckets) < 80


class TestResourceTracker:
    def test_budget_is_enforced_and_released(self):
        tracker = ResourceTracker(worker_budget=4)
        assert tracker.acquire(3, timeout_s=0.1)
        assert not tracker.acquire(2, timeout_s=0.1)  # 3 + 2 > 4
        tracker.release(3)
        assert tracker.acquire(4, timeout_s=0.1)

    def test_clamp_bounds_a_single_campaign(self):
        tracker = ResourceTracker(worker_budget=4)
        assert tracker.clamp(100) == 4
        assert tracker.clamp(0) == 1

    def test_oversized_request_is_clamped_not_deadlocked(self):
        tracker = ResourceTracker(worker_budget=2)
        assert tracker.acquire(100, timeout_s=0.5)
        assert tracker.snapshot()["workers_in_use"] == 2

    def test_blocked_acquire_wakes_on_release(self):
        tracker = ResourceTracker(worker_budget=2)
        assert tracker.acquire(2)
        got = []

        def _wait():
            got.append(tracker.acquire(1, timeout_s=5.0))

        thread = threading.Thread(target=_wait)
        thread.start()
        tracker.release(2)
        thread.join(timeout=5.0)
        assert got == [True]

    def test_cancel_aborts_a_blocked_acquire(self):
        tracker = ResourceTracker(worker_budget=1)
        assert tracker.acquire(1)
        cancel = threading.Event()
        got = []

        def _wait():
            got.append(tracker.acquire(1, cancel=cancel, timeout_s=10.0))

        thread = threading.Thread(target=_wait)
        thread.start()
        cancel.set()
        thread.join(timeout=5.0)
        assert got == [False]

    def test_snapshot_reports_budget_and_memory(self):
        tracker = ResourceTracker(worker_budget=3)
        tracker.acquire(2, timeout_s=0.1)
        snap = tracker.snapshot()
        assert snap["worker_budget"] == 3
        assert snap["workers_in_use"] == 2
        assert snap["workers_free"] == 1
        assert snap["mem_in_use_bytes"] > 0
