"""The tentpole guarantee: kill -9 anything, resume, lose nothing.

A campaign is pre-created on disk (spec + ``created`` journal record),
then driven by ``repro serve --drain`` in a subprocess.  Mid-campaign
the test SIGKILLs the *coordinator process itself* (its supervised
workers notice the orphaning via their parent-PID watch and exit too);
a second ``--drain`` life must replay the journal and finish with

* **exactly-once accounting** — every index settled once, journal
  duplicates folded first-wins, and the cells settled before the kill
  re-read from the journal rather than re-executed;
* **byte-identical artefacts** — the deterministic result document
  equals the one from an uninterrupted control campaign.

A second scenario kills one *worker* (via the one-shot
``REPRO_SERVICE_TEST_KILL_ONCE`` hook) and expects the supervisor to
respawn it and finish the campaign in a single life.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service.coordinator import SPEC_NAME, write_json_atomic
from repro.service.jobs import CampaignSpec
from repro.service.journal import JOURNAL_NAME, CampaignJournal, replay_journal

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

SPEC_DOC = {
    "kind": "sweep",
    "workloads": ["queue", "hashmap"],
    "designs": ["intel-x86", "strandweaver"],
    "workers": 2,
    "deterministic": True,
    "ops_per_thread": 4,
}


def _prepare_campaign(root: str, campaign_id: str) -> str:
    """Lay out <root>/campaigns/<id>/ with spec + created record."""
    spec = CampaignSpec.from_json(SPEC_DOC)
    directory = os.path.join(root, "campaigns", campaign_id)
    os.makedirs(directory, exist_ok=True)
    write_json_atomic(os.path.join(directory, SPEC_NAME), spec.to_json())
    with CampaignJournal(os.path.join(directory, JOURNAL_NAME), campaign_id) as j:
        j.append("created", spec=spec.to_json())
    return directory


def _drain(root: str, extra_env=None, **popen_kw) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=SRC)
    # Fresh interpreters: the in-process memo must not leak between lives.
    env.update(extra_env or {})
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--drain",
         "--dir", root, "--no-cache"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        **popen_kw,
    )


def _wait_for_cell_dones(journal: str, want: int, timeout_s: float = 120.0) -> int:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            n = len(replay_journal(journal).done)
        except ValueError:
            n = 0  # mid-append torn tail
        if n >= want:
            return n
        time.sleep(0.05)
    pytest.fail(f"journal never reached {want} settled cells")


def test_kill9_coordinator_then_resume_is_exactly_once_and_byte_identical(tmp_path):
    root = str(tmp_path / "svc")
    control_root = str(tmp_path / "control")

    # Control: the same campaign, uninterrupted.
    control_dir = _prepare_campaign(control_root, "c-control")
    proc = _drain(control_root, extra_env={"REPRO_SERVICE_TEST_TASK_SLEEP_S": "0"})
    out, err = proc.communicate(timeout=300)
    assert proc.returncode == 0, err.decode()
    control_bytes = open(os.path.join(control_dir, "result.json"), "rb").read()

    # Life 1: paced workers so the SIGKILL lands mid-campaign.
    directory = _prepare_campaign(root, "c-crash")
    journal = os.path.join(directory, JOURNAL_NAME)
    proc = _drain(root, extra_env={"REPRO_SERVICE_TEST_TASK_SLEEP_S": "1.0"})
    try:
        _wait_for_cell_dones(journal, want=1)
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=30)
    assert proc.returncode == -signal.SIGKILL

    state = replay_journal(journal)
    survived = len(state.done)
    assert 1 <= survived < 4, "the kill should land mid-campaign"
    assert not state.terminal

    # The orphaned workers must notice the dead coordinator and exit.
    time.sleep(2.0)

    # Life 2: resume. Journaled cells are re-read, the rest re-run.
    proc = _drain(root)
    out, err = proc.communicate(timeout=300)
    assert proc.returncode == 0, err.decode()
    assert "c-crash: finished (4/4, 0 errors)" in out.decode()

    final = replay_journal(journal)
    assert sorted(final.done) == [0, 1, 2, 3]
    assert final.duplicates == 0, "an index was journaled twice"
    assert final.finished
    assert final.coordinator_starts == 2
    # Cells settled before the kill were re-read, not re-executed: their
    # journal records still carry life 1's coordinator run.
    resumed_bytes = open(os.path.join(directory, "result.json"), "rb").read()
    assert resumed_bytes == control_bytes


def test_kill9_worker_midcampaign_respawns_and_finishes(tmp_path):
    root = str(tmp_path / "svc")
    directory = _prepare_campaign(root, "c-worker")
    proc = _drain(
        root,
        extra_env={"REPRO_SERVICE_TEST_KILL_ONCE": "queue/strandweaver/txn"},
    )
    out, err = proc.communicate(timeout=300)
    assert proc.returncode == 0, err.decode()
    assert "c-worker: finished (4/4, 0 errors)" in out.decode()

    state = replay_journal(os.path.join(directory, JOURNAL_NAME))
    assert sorted(state.done) == [0, 1, 2, 3]
    # The killed cell settled on a retry after the respawn.
    victim = [
        r for r in state.done.values() if r.get("cell") == "queue/strandweaver/txn"
    ][0]
    assert victim["status"] == "ok"
    result = json.load(
        open(os.path.join(directory, "result.json"), encoding="utf-8")
    )
    assert all(cell["ok"] for cell in result["cells"])
