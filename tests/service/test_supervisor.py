"""Worker supervisor: dispatch, retry budget, kill/respawn, timeouts."""

import os

import pytest

from repro.harness.sweep import expand_cells
from repro.service.supervisor import (
    TEST_KILL_ONCE_ENV,
    SupervisorConfig,
    Task,
    WorkerSupervisor,
)


def _cells(designs):
    return expand_cells(["queue"], designs, ["txn"], ops_per_thread=4)


def _tasks(designs):
    return [
        Task(task_id=i, kind="sweep-cell", payload=cell, label=cell.label())
        for i, cell in enumerate(_cells(designs))
    ]


class TestHappyPath:
    def test_sweep_cells_run_to_ok(self):
        tasks = _tasks(["strandweaver", "intel-x86"])
        outcomes = WorkerSupervisor(SupervisorConfig(workers=2)).run(tasks)
        assert sorted(outcomes) == [0, 1]
        assert all(o.status == "ok" for o in outcomes.values())
        assert all(o.attempts == 1 for o in outcomes.values())

    def test_results_stream_through_on_result(self):
        seen = []
        tasks = _tasks(["strandweaver"])
        WorkerSupervisor(SupervisorConfig(workers=1)).run(
            tasks, on_result=lambda o: seen.append(o.task_id)
        )
        assert seen == [0]

    def test_unknown_task_kind_is_a_typed_error(self):
        tasks = [Task(task_id=0, kind="no-such-kind", payload=None, label="x")]
        outcomes = WorkerSupervisor(
            SupervisorConfig(workers=1, retries=0)
        ).run(tasks)
        assert outcomes[0].status == "error"
        assert "unknown task kind" in str(outcomes[0].payload)


class TestFailureHandling:
    def test_exception_in_task_exhausts_retries_then_settles(self):
        # A sweep payload of the wrong type raises inside the worker.
        tasks = [Task(task_id=0, kind="sweep-cell", payload="bogus", label="b")]
        cfg = SupervisorConfig(workers=1, retries=1, backoff_base_s=0.0)
        outcomes = WorkerSupervisor(cfg).run(tasks)
        assert outcomes[0].status == "error"
        assert outcomes[0].attempts == 2  # 1 try + 1 retry

    def test_killed_worker_is_respawned_and_task_retried(self, tmp_path, monkeypatch):
        tasks = _tasks(["strandweaver"])
        monkeypatch.setenv(TEST_KILL_ONCE_ENV, tasks[0].label)
        cfg = SupervisorConfig(
            workers=1, retries=1, backoff_base_s=0.0,
            scratch_dir=str(tmp_path),
            heartbeat_interval_s=0.1, heartbeat_grace_s=5.0,
        )
        outcomes = WorkerSupervisor(cfg).run(tasks)
        assert outcomes[0].status == "ok"
        assert outcomes[0].attempts == 2  # died once, succeeded on respawn
        assert any(name.startswith("killed-") for name in os.listdir(tmp_path))

    def test_kill_without_retry_budget_degrades_to_worker_lost(
        self, tmp_path, monkeypatch
    ):
        tasks = _tasks(["strandweaver"])
        monkeypatch.setenv(TEST_KILL_ONCE_ENV, tasks[0].label)
        cfg = SupervisorConfig(
            workers=1, retries=0, backoff_base_s=0.0, scratch_dir=str(tmp_path),
            heartbeat_interval_s=0.1, heartbeat_grace_s=5.0,
        )
        outcomes = WorkerSupervisor(cfg).run(tasks)
        assert outcomes[0].status == "worker-lost"

    def test_hung_task_times_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_TEST_TASK_SLEEP_S", "30")
        tasks = _tasks(["strandweaver"])
        cfg = SupervisorConfig(
            workers=1, retries=0, timeout_s=1.0, backoff_base_s=0.0,
            heartbeat_interval_s=0.1, heartbeat_grace_s=30.0,
        )
        outcomes = WorkerSupervisor(cfg).run(tasks)
        assert outcomes[0].status == "timeout"


class TestBackoff:
    def test_backoff_is_exponential_and_capped(self):
        sup = WorkerSupervisor(
            SupervisorConfig(backoff_base_s=0.25, backoff_cap_s=1.0)
        )
        assert sup._backoff(1) == 0.25
        assert sup._backoff(2) == 0.5
        assert sup._backoff(3) == 1.0
        assert sup._backoff(10) == 1.0  # capped

    def test_zero_base_disables_backoff(self):
        sup = WorkerSupervisor(SupervisorConfig(backoff_base_s=0.0))
        assert sup._backoff(5) == 0.0


class TestEmptyAndCancelled:
    def test_no_tasks_is_a_no_op(self):
        assert WorkerSupervisor().run([]) == {}

    def test_preset_cancel_settles_everything_cancelled(self):
        import threading

        cancel = threading.Event()
        cancel.set()
        tasks = _tasks(["strandweaver", "intel-x86"])
        outcomes = WorkerSupervisor(SupervisorConfig(workers=2)).run(
            tasks, cancel=cancel
        )
        assert {o.status for o in outcomes.values()} == {"cancelled"}
