"""Campaign journal: durable appends, torn tails, exactly-once replay."""

import json
import os

import pytest

from repro.obs.export import CAMPAIGN_SCHEMA
from repro.service.journal import (
    CampaignJournal,
    read_journal,
    replay_journal,
)


def _path(tmp_path) -> str:
    return os.path.join(str(tmp_path), "journal.jsonl")


class TestAppend:
    def test_records_carry_schema_campaign_and_monotonic_seq(self, tmp_path):
        path = _path(tmp_path)
        with CampaignJournal(path, "c-1") as journal:
            journal.append("created", spec={"kind": "sweep"})
            journal.append("coordinator-start", attempt=1)
        records = read_journal(path)
        assert [r["event"] for r in records] == ["created", "coordinator-start"]
        assert all(r["schema"] == CAMPAIGN_SCHEMA for r in records)
        assert all(r["campaign"] == "c-1" for r in records)
        assert [r["seq"] for r in records] == [0, 1]

    def test_reopened_journal_continues_the_sequence(self, tmp_path):
        path = _path(tmp_path)
        with CampaignJournal(path, "c-1") as journal:
            journal.append("created", spec={})
        with CampaignJournal(path, "c-1") as journal:
            journal.append("coordinator-start", attempt=2)
        assert [r["seq"] for r in read_journal(path)] == [0, 1]

    def test_append_is_one_line_of_json(self, tmp_path):
        path = _path(tmp_path)
        with CampaignJournal(path, "c-1") as journal:
            journal.append("cell-done", indices=[0, 3], payload={"a": 1})
        (line,) = open(path, encoding="utf-8").read().splitlines()
        assert json.loads(line)["indices"] == [0, 3]


class TestTornTail:
    def test_torn_final_line_is_dropped(self, tmp_path):
        path = _path(tmp_path)
        with CampaignJournal(path, "c-1") as journal:
            journal.append("created", spec={"kind": "soak"})
            journal.append("cell-done", indices=[0])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "' + CAMPAIGN_SCHEMA + '", "event": "cell-do')
        records = read_journal(path)
        assert [r["event"] for r in records] == ["created", "cell-done"]

    def test_interior_corruption_raises(self, tmp_path):
        path = _path(tmp_path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"schema": CAMPAIGN_SCHEMA, "event": "x"}) + "\n")
        with pytest.raises(ValueError, match="malformed"):
            read_journal(path)

    def test_resume_after_torn_tail_overwrites_nothing(self, tmp_path):
        """A new life appends after the torn line; replay still works."""
        path = _path(tmp_path)
        with CampaignJournal(path, "c-1") as journal:
            journal.append("created", spec={"kind": "soak"})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"torn')
        with CampaignJournal(path, "c-1") as journal:
            journal.append("coordinator-start", attempt=2)
        state = replay_journal(path)
        assert state.spec_doc == {"kind": "soak"}
        assert state.coordinator_starts == 1


class TestReplay:
    def test_missing_journal_is_an_empty_campaign(self, tmp_path):
        state = replay_journal(_path(tmp_path))
        assert state.spec_doc is None
        assert not state.resumable and not state.terminal

    def test_exactly_once_folding_is_first_wins(self, tmp_path):
        path = _path(tmp_path)
        with CampaignJournal(path, "c-1") as journal:
            journal.append("created", spec={"kind": "sweep"})
            journal.append("cell-done", indices=[0, 2], payload="first")
            journal.append("cell-done", indices=[2, 3], payload="second")
        state = replay_journal(path)
        assert sorted(state.done) == [0, 2, 3]
        assert state.done[2]["payload"] == "first"
        assert state.duplicates == 1

    def test_terminal_records_end_resumability(self, tmp_path):
        path = _path(tmp_path)
        with CampaignJournal(path, "c-1") as journal:
            journal.append("created", spec={"kind": "sweep"})
        assert replay_journal(path).resumable
        with CampaignJournal(path, "c-1") as journal:
            journal.append("finished", done=4)
        state = replay_journal(path)
        assert state.terminal and not state.resumable
