"""Job API over HTTP: submit, status, events, cancel, 429s, budgets."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.api import CampaignHTTPServer, CampaignService
from repro.service.client import CampaignClient, ServiceError
from repro.service.ratelimit import ClientRateLimiter, ResourceTracker

SPEC = {
    "kind": "sweep",
    "workloads": ["queue"],
    "designs": ["strandweaver"],
    "workers": 1,
    "deterministic": True,
    "ops_per_thread": 4,
}


@pytest.fixture
def server(tmp_path):
    """An in-process service with a generous default rate limit."""
    service = CampaignService(
        str(tmp_path / "svc"),
        tracker=ResourceTracker(worker_budget=4),
        limiter=ClientRateLimiter(rate=200.0, burst=500),
    )
    httpd = CampaignHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[0], httpd.server_address[1]
    yield f"http://{host}:{port}", service
    httpd.shutdown()
    httpd.server_close()
    service.shutdown()
    thread.join(timeout=5.0)


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, json.loads(resp.read().decode())


def _post(url, doc):
    req = urllib.request.Request(
        url, json.dumps(doc).encode(), {"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read().decode())


class TestSubmitAndStatus:
    def test_submit_runs_campaign_to_finished(self, server):
        url, _service = server
        code, doc = _post(url + "/campaigns", SPEC)
        assert code == 202
        client = CampaignClient(url)
        status = client.wait(doc["id"], timeout_s=240)
        assert status["status"] == "finished"
        assert status["done"] == status["total"] == 1
        assert status["errors"] == 0
        assert status["schema"] == "repro.campaign-status/1"

    def test_result_endpoint_serves_the_artefact(self, server):
        url, _service = server
        client = CampaignClient(url)
        cid = client.submit(SPEC)
        client.wait(cid, timeout_s=240)
        result = client.result(cid)
        assert result["schema"] == "repro.sweep/1"

    def test_bad_spec_is_a_400_with_the_validators_message(self, server):
        url, _ = server
        bad = dict(SPEC, designs=["warp-drive"])
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(url + "/campaigns", bad)
        assert err.value.code == 400
        body = json.loads(err.value.read().decode())
        assert "warp-drive" in body["error"]

    def test_non_json_body_is_a_400(self, server):
        url, _ = server
        req = urllib.request.Request(
            url + "/campaigns", b"not json", {"Content-Type": "application/json"}
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400

    def test_unknown_campaign_is_a_404(self, server):
        url, _ = server
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(url + "/campaigns/nope")
        assert err.value.code == 404

    def test_listing_shows_submitted_campaigns(self, server):
        url, _ = server
        client = CampaignClient(url)
        cid = client.submit(SPEC)
        client.wait(cid, timeout_s=240)
        _, doc = _get(url + "/campaigns")
        assert cid in [c["id"] for c in doc["campaigns"]]


class TestEvents:
    def test_event_stream_replays_the_journal_to_terminal(self, server):
        url, _ = server
        client = CampaignClient(url)
        cid = client.submit(SPEC)
        events = [r["event"] for r in client.events(cid, follow=True)]
        assert events[0] == "created"
        assert events[-1] == "finished"
        assert "cell-done" in events

    def test_since_filter_skips_old_records(self, server):
        url, _ = server
        client = CampaignClient(url)
        cid = client.submit(SPEC)
        client.wait(cid, timeout_s=240)
        all_records = list(client.events(cid, follow=False))
        later = list(client.events(cid, follow=False, since=all_records[0]["seq"]))
        assert len(later) == len(all_records) - 1


class TestCancel:
    def test_cancel_unknown_campaign_is_a_404(self, server):
        url, _ = server
        client = CampaignClient(url)
        with pytest.raises(ServiceError) as err:
            client.cancel("nope")
        assert err.value.status == 404

    def test_cancel_is_acknowledged(self, server):
        url, _ = server
        client = CampaignClient(url)
        cid = client.submit(SPEC)
        client.cancel(cid)  # may land before or after completion
        status = client.wait(cid, timeout_s=240)
        assert status["status"] in ("finished", "cancelled")


class TestRateLimit:
    @pytest.fixture
    def tight_server(self, tmp_path):
        service = CampaignService(
            str(tmp_path / "svc"),
            limiter=ClientRateLimiter(rate=1.0, burst=3),
        )
        httpd = CampaignHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[0], httpd.server_address[1]
        yield f"http://{host}:{port}"
        httpd.shutdown()
        httpd.server_close()
        service.shutdown()
        thread.join(timeout=5.0)

    def test_burst_gets_429_with_retry_after(self, tight_server):
        codes = []
        retry_after = None
        for _ in range(5):
            try:
                code, _ = _get(tight_server + "/healthz")
                codes.append(code)
            except urllib.error.HTTPError as exc:
                codes.append(exc.code)
                retry_after = exc.headers.get("Retry-After")
        assert codes[:3] == [200, 200, 200]
        assert 429 in codes
        assert retry_after is not None and float(retry_after) >= 1

    def test_client_recovers_after_the_window(self, tight_server):
        import time

        for _ in range(4):
            try:
                _get(tight_server + "/healthz")
            except urllib.error.HTTPError:
                pass
        time.sleep(1.2)  # one token refills at 1 req/s
        code, _ = _get(tight_server + "/healthz")
        assert code == 200


class TestResources:
    def test_healthz_reports_the_worker_budget(self, server):
        url, service = server
        _, doc = _get(url + "/healthz")
        assert doc["ok"] is True
        assert doc["resources"]["worker_budget"] == 4

    def test_campaign_workers_are_clamped_to_the_budget(self, server):
        url, service = server
        client = CampaignClient(url)
        # Spec asks for 64 workers; the tracker must clamp to its budget.
        cid = client.submit(dict(SPEC, workers=64))
        client.wait(cid, timeout_s=240)
        snap = service.tracker.snapshot()
        assert snap["workers_in_use"] == 0  # everything released
