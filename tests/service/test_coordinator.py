"""Coordinator: campaign execution, journal replay, engine parity."""

import json
import os
import threading

import pytest

from repro.chaos.soak import run_soak
from repro.harness.cachedir import CellCache
from repro.harness.sweep import expand_cells, run_sweep
from repro.obs.export import sweep_to_json
from repro.service.coordinator import Coordinator
from repro.service.jobs import CampaignSpec
from repro.service.journal import read_journal, replay_journal


def _sweep_spec(**over):
    doc = {
        "kind": "sweep",
        "workloads": ["queue"],
        "designs": ["intel-x86", "strandweaver"],
        "workers": 2,
        "deterministic": True,
        "ops_per_thread": 4,
    }
    doc.update(over)
    return CampaignSpec.from_json(doc)


def _soak_spec(**over):
    doc = {"kind": "soak", "workload": "queue", "seeds": 4, "seed": 7, "workers": 2}
    doc.update(over)
    return CampaignSpec.from_json(doc)


def _run(tmp_path, spec, name="c-1", **kw):
    d = os.path.join(str(tmp_path), name)
    return Coordinator(d, name, spec, **kw).run(), d


class TestSweepCampaign:
    def test_finishes_and_writes_the_sweep_artefact(self, tmp_path):
        spec = _sweep_spec()
        outcome, d = _run(tmp_path, spec)
        assert outcome.status == "finished"
        assert outcome.done == 2 and outcome.errors == 0
        doc = json.load(open(outcome.result_path, encoding="utf-8"))
        assert doc["schema"] == "repro.sweep/1"
        assert len(doc["cells"]) == 2

    def test_artefact_matches_the_cli_sweep_engine_bit_for_bit(self, tmp_path):
        spec = _sweep_spec()
        outcome, _ = _run(tmp_path, spec)
        cells = expand_cells(["queue"], ["intel-x86", "strandweaver"],
                             ["txn"], ops_per_thread=4)
        direct = sweep_to_json(run_sweep(cells, jobs=1), deterministic=True)
        assert outcome.result_doc == direct

    def test_journal_has_one_cell_done_per_cell_and_a_terminal(self, tmp_path):
        spec = _sweep_spec()
        _, d = _run(tmp_path, spec)
        events = [r["event"] for r in read_journal(os.path.join(d, "journal.jsonl"))]
        assert events.count("cell-done") == 2
        assert events[-1] == "finished"

    def test_rerun_of_finished_dir_replays_instead_of_rerunning(self, tmp_path):
        spec = _sweep_spec()
        outcome1, d = _run(tmp_path, spec)
        bytes1 = open(outcome1.result_path, "rb").read()
        outcome2 = Coordinator(d, "c-1", spec).run()
        assert outcome2.replayed == 2  # every index came from the journal
        assert open(outcome2.result_path, "rb").read() == bytes1

    def test_failed_cells_degrade_to_typed_failures_not_lost_campaigns(
        self, tmp_path, monkeypatch
    ):
        from repro.harness.experiment import clear_cache
        from repro.harness.sweep import TEST_KILL_ENV

        clear_cache()  # the cell must actually run (and die), not memo-hit
        spec = _sweep_spec(retries=0)
        monkeypatch.setenv(TEST_KILL_ENV, "queue/intel-x86/txn")
        outcome, d = _run(tmp_path, spec)
        assert outcome.status == "finished"
        assert outcome.errors == 1
        doc = json.load(open(outcome.result_path, encoding="utf-8"))
        failed = [c for c in doc["cells"] if not c["ok"]]
        assert len(failed) == 1
        assert failed[0]["failure"]["kind"] == "worker-lost"

    def test_shares_the_content_addressed_cache(self, tmp_path):
        cache = CellCache(os.path.join(str(tmp_path), "cache"))
        spec = _sweep_spec()
        outcome1, _ = _run(tmp_path, spec, name="c-1", cache=cache)
        # Second campaign over the same matrix: all cells from cache/memo.
        outcome2, d2 = _run(tmp_path, spec, name="c-2", cache=cache)
        assert outcome2.status == "finished"
        records = read_journal(os.path.join(d2, "journal.jsonl"))
        sources = {r.get("source") for r in records if r["event"] == "cell-done"}
        assert sources <= {"memo", "cache"}
        assert outcome1.result_doc == outcome2.result_doc

    def test_cancel_before_start_settles_as_cancelled(self, tmp_path):
        from repro.harness.experiment import clear_cache

        clear_cache()  # with a warm memo there is nothing left to cancel
        cancel = threading.Event()
        cancel.set()
        spec = _sweep_spec()
        d = os.path.join(str(tmp_path), "c-x")
        outcome = Coordinator(d, "c-x", spec, cancel=cancel).run()
        assert outcome.status == "cancelled"
        state = replay_journal(os.path.join(d, "journal.jsonl"))
        assert state.cancelled and not state.done  # nothing journaled done


class TestSoakCampaign:
    def test_matches_the_serial_soak_engine_bit_for_bit(self, tmp_path):
        spec = _soak_spec()
        outcome, _ = _run(tmp_path, spec)
        assert outcome.status == "finished"
        serial = run_soak("queue", seeds=4, seed=7).summary()
        assert outcome.result_doc == serial

    def test_resume_of_finished_soak_is_byte_identical(self, tmp_path):
        spec = _soak_spec()
        outcome1, d = _run(tmp_path, spec)
        bytes1 = open(outcome1.result_path, "rb").read()
        outcome2 = Coordinator(d, "c-1", spec).run()
        assert outcome2.replayed == 4
        assert open(outcome2.result_path, "rb").read() == bytes1

    def test_soak_respects_design_pool_and_flags(self, tmp_path):
        spec = _soak_spec(designs=["strandweaver"], media=False, shrink=False)
        outcome, _ = _run(tmp_path, spec)
        serial = run_soak(
            "queue", seeds=4, seed=7, designs=["strandweaver"],
            media=False, shrink=False,
        ).summary()
        assert outcome.result_doc == serial


class TestLintPreflight:
    def test_sweep_journals_one_lint_record_per_cell_combo(self, tmp_path):
        spec = _sweep_spec()
        _, d = _run(tmp_path, spec)
        lints = [
            r for r in read_journal(os.path.join(d, "journal.jsonl"))
            if r["event"] == "lint"
        ]
        # queue x {intel-x86, strandweaver} x txn = 2 distinct combos
        assert len(lints) == 2
        assert sorted(r["cell"] for r in lints) == [
            "queue/intel-x86/txn",
            "queue/strandweaver/txn",
        ]
        for r in lints:
            assert r["consistent"] is True  # correct designs lint clean
            assert r["errors"] == 0

    def test_soak_preflight_covers_the_design_pool(self, tmp_path):
        spec = _soak_spec(designs=["strandweaver", "non-atomic"])
        _, d = _run(tmp_path, spec)
        lints = [
            r for r in read_journal(os.path.join(d, "journal.jsonl"))
            if r["event"] == "lint"
        ]
        by_design = {r["design"]: r for r in lints}
        assert set(by_design) == {"strandweaver", "non-atomic"}
        # non-atomic is *supposed* to error; silence there is the anomaly
        assert by_design["non-atomic"]["errors"] > 0
        assert all(r["consistent"] for r in lints)

    def test_preflight_runs_in_the_first_life_only(self, tmp_path):
        spec = _sweep_spec()
        outcome, d = _run(tmp_path, spec)
        journal = os.path.join(d, "journal.jsonl")
        before = sum(
            1 for r in read_journal(journal) if r["event"] == "lint"
        )
        Coordinator(d, "c-1", spec).run()  # resume of a finished campaign
        after = sum(
            1 for r in read_journal(journal) if r["event"] == "lint"
        )
        assert before == 2
        assert after == before  # no duplicate pre-flight on resume


class TestResumeMidway:
    def test_partially_journaled_sweep_resumes_exactly_once(self, tmp_path):
        """Simulate a crash by truncating the journal after one cell-done."""
        spec = _sweep_spec()
        outcome, d = _run(tmp_path, spec)
        journal = os.path.join(d, "journal.jsonl")
        bytes_full = open(outcome.result_path, "rb").read()
        lines = open(journal, encoding="utf-8").read().splitlines(keepends=True)
        # keep everything up to and including the first cell-done (the
        # preamble also holds created/coordinator-start/lint pre-flight
        # records); drop the rest
        first_done = next(
            i for i, ln in enumerate(lines) if '"cell-done"' in ln
        )
        with open(journal, "w", encoding="utf-8") as fh:
            fh.writelines(lines[: first_done + 1])
        os.unlink(outcome.result_path)

        outcome2 = Coordinator(d, "c-1", spec).run()
        assert outcome2.status == "finished"
        assert outcome2.replayed == 1  # exactly the surviving cell-done
        assert open(outcome2.result_path, "rb").read() == bytes_full
        state = replay_journal(journal)
        assert sorted(state.done) == [0, 1]
        assert state.duplicates == 0
