"""Language-level persistency models and undo/redo logging runtimes."""

from repro.lang.atlas import AtlasModel
from repro.lang.dialect import (
    DIALECTS,
    HopsDialect,
    IsaDialect,
    NonAtomicDialect,
    StrandDialect,
    X86Dialect,
    dialect_for_design,
)
from repro.lang.logbuf import LogEntry, LogError, LogLayout
from repro.lang.recovery import RecoveryReport, recover
from repro.lang.redo import RedoTxnModel
from repro.lang.runtime import (
    Accessor,
    DirectAccessor,
    PersistencyModel,
    PmRuntime,
    RuntimeAccessor,
)
from repro.lang.sfr import SfrModel
from repro.lang.txn import TxnModel

__all__ = [
    "Accessor",
    "AtlasModel",
    "DIALECTS",
    "DirectAccessor",
    "HopsDialect",
    "IsaDialect",
    "LogEntry",
    "LogError",
    "LogLayout",
    "NonAtomicDialect",
    "PersistencyModel",
    "PmRuntime",
    "RecoveryReport",
    "RedoTxnModel",
    "RuntimeAccessor",
    "SfrModel",
    "StrandDialect",
    "TxnModel",
    "X86Dialect",
    "dialect_for_design",
    "recover",
]
