"""Per-thread circular undo log in persistent memory (Section V).

Log layout in PM, per thread::

    +0    header line (64 B): head index (u64), capacity (u64),
          retired sequence watermark (u64)
    +64   entry 0 (64 B)
    +128  entry 1 (64 B)
    ...

Entry layout (64 bytes, cache-line aligned, written as one persist)::

    +0   u8   type        (FREE/STORE/ACQUIRE/RELEASE/TX_BEGIN/TX_END)
    +1   u8   valid
    +2   u8   commit      (commit-intent marker, Fig. 6)
    +3   u8   size        (bytes of old value, <= 40)
    +4   u32  tid
    +8   u64  addr        (address of the update for STORE entries)
    +16  40B  value       (old value / happens-before metadata)
    +56  u64  seq         (global creation sequence — our stand-in for the
                           happens-before metadata of ATLAS/SFR logs)

The paper stores happens-before relations for synchronization entries; we
record a single global creation sequence number in every entry, which
gives recovery the same reverse-creation-order rollback the paper's
metadata enables (see DESIGN.md deviations).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

from repro.pmem.space import PersistentMemory

ENTRY_SIZE = 64
HEADER_SIZE = 64
MAX_VALUE = 40

# Entry types.
FREE = 0
STORE = 1
ACQUIRE = 2
RELEASE = 3
TX_BEGIN = 4
TX_END = 5
REDO = 6  #: redo-log entry: ``value`` holds the NEW data to replay

TYPE_NAMES = {
    FREE: "free",
    STORE: "store",
    ACQUIRE: "acquire",
    RELEASE: "release",
    TX_BEGIN: "tx_begin",
    TX_END: "tx_end",
    REDO: "redo",
}

_HEAD = struct.Struct("<QQQ")
_META = struct.Struct("<BBBBIQ")  # type, valid, commit, size, tid, addr
_STATE = struct.Struct("<Q")

#: recovery-progress phases persisted in the recovery-state word (bytes
#: 24..32 of thread 0's header line — spare space, so the layout
#: geometry and every entry address are unchanged).
RECOVERY_IDLE = 0  #: no recovery in flight (the all-zero initial state)
#: data repairs (redo replay + undo rollback) are durable; the log sweep
#: (entry invalidation + head reset) may be anywhere between untouched
#: and complete, so the surviving entries are garbage and must only be
#: swept, never re-applied.  ASCII "SWEP" with a high tag byte.
RECOVERY_SWEEPING = 0x52_53574550


class LogError(Exception):
    """Raised on log-space exhaustion or malformed log regions."""


@dataclass
class LogEntry:
    """Decoded view of one log entry."""

    slot: int
    type: int
    valid: bool
    commit: bool
    size: int
    tid: int
    addr: int
    value: bytes
    seq: int

    @property
    def type_name(self) -> str:
        return TYPE_NAMES.get(self.type, f"?{self.type}")


def encode_entry(
    type_: int, tid: int, addr: int, value: bytes, seq: int, commit: bool = False
) -> bytes:
    """Serialise an entry to its 64-byte PM representation."""
    if len(value) > MAX_VALUE:
        raise LogError(f"old value of {len(value)} bytes exceeds {MAX_VALUE}-byte field")
    meta = _META.pack(type_, 1, 1 if commit else 0, len(value), tid, addr)
    payload = value.ljust(MAX_VALUE, b"\x00")
    return meta + payload + struct.pack("<Q", seq)


def decode_entry(raw: bytes, slot: int) -> LogEntry:
    type_, valid, commit, size, tid, addr = _META.unpack_from(raw, 0)
    value = raw[16 : 16 + min(size, MAX_VALUE)]
    (seq,) = struct.unpack_from("<Q", raw, 56)
    return LogEntry(
        slot=slot,
        type=type_,
        valid=bool(valid),
        commit=bool(commit),
        size=size,
        tid=tid,
        addr=addr,
        value=value,
        seq=seq,
    )


@dataclass(frozen=True)
class LogLayout:
    """Placement of all per-thread log regions inside the PM space."""

    base: int
    capacity: int  #: entries per thread
    n_threads: int

    @property
    def region_size(self) -> int:
        return HEADER_SIZE + self.capacity * ENTRY_SIZE

    def region_base(self, tid: int) -> int:
        return self.base + tid * self.region_size

    def header_addr(self, tid: int) -> int:
        return self.region_base(tid)

    def entry_addr(self, tid: int, slot: int) -> int:
        if not 0 <= slot < self.capacity:
            raise LogError(f"slot {slot} outside capacity {self.capacity}")
        return self.region_base(tid) + HEADER_SIZE + slot * ENTRY_SIZE

    @property
    def end(self) -> int:
        return self.base + self.n_threads * self.region_size

    # -- functional access (used by setup and recovery) -------------------

    def init_region(self, space: PersistentMemory, tid: int) -> None:
        """Zero the region and write an initial header (head = 0)."""
        base = self.region_base(tid)
        space.write(base, b"\x00" * self.region_size)
        space.write(self.header_addr(tid), _HEAD.pack(0, self.capacity, 0))

    def read_head(self, space: PersistentMemory, tid: int) -> int:
        head, _cap, _ret = _HEAD.unpack(space.read(self.header_addr(tid), 24))
        return head

    def read_retired(self, space: PersistentMemory, tid: int) -> int:
        """Retired-sequence watermark: entries at or below it are already
        durably applied in place and must never be replayed."""
        _head, _cap, retired = _HEAD.unpack(space.read(self.header_addr(tid), 24))
        return retired

    def encode_head(self, head: int, retired: int = 0) -> bytes:
        return _HEAD.pack(head, self.capacity, retired)

    # -- recovery-state word (crash-safe re-entrant recovery) -------------

    @property
    def recovery_state_addr(self) -> int:
        """Address of the 8-byte recovery-progress word.

        It lives in the spare bytes after thread 0's ``(head, capacity,
        retired)`` header triple: a single aligned word the recovery
        protocol can flip atomically, without moving any existing log
        address.  ``init_region(space, 0)`` zeroes it (= RECOVERY_IDLE).
        """
        return self.header_addr(0) + _HEAD.size

    def read_recovery_state(self, space: PersistentMemory) -> int:
        return _STATE.unpack(space.read(self.recovery_state_addr, 8))[0]

    @staticmethod
    def encode_recovery_state(state: int) -> bytes:
        return _STATE.pack(state)

    def read_entry(self, space: PersistentMemory, tid: int, slot: int) -> LogEntry:
        raw = space.read(self.entry_addr(tid, slot), ENTRY_SIZE)
        return decode_entry(raw, slot)

    def scan(self, space: PersistentMemory, tid: int) -> List[LogEntry]:
        """Decode every written slot of a thread's log region."""
        out = []
        for slot in range(self.capacity):
            entry = self.read_entry(space, tid, slot)
            if entry.type != FREE or entry.valid or entry.seq:
                out.append(entry)
        return out
