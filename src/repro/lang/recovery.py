"""Crash recovery from undo logs (Section V, Figure 6) — re-entrant.

``recover`` takes a crashed PM image and repairs it in place:

1. **Commit repair** — for each thread, find the highest-sequence log
   entry whose commit-intent marker persisted.  Everything up to and
   including that sequence was committed; any still-valid entries at or
   below it are survivors of an interrupted commit (Figure 6b step 1)
   and are invalidated rather than rolled back.
2. **Redo replay** — valid ``REDO`` entries at or below the commit
   frontier hold committed new values whose in-place updates may not have
   persisted; they are replayed in creation order (lowest sequence
   first).  Uncommitted redo entries are simply discarded — their
   in-place updates were deferred, so nothing leaked.
3. **Rollback** — the remaining valid ``STORE`` (undo) entries belong to
   uncommitted regions.  Their old values are written back in reverse
   order of creation (highest sequence first) across all threads, which
   unwinds interleaved regions consistently.
4. **Log reset** — recovered entries are invalidated and the head
   pointers advanced, leaving a clean log for the restarted program.

The creation sequence stored in every entry is the reproduction's
stand-in for the paper's happens-before metadata (see DESIGN.md).

**Crash safety.**  Recovery itself can lose power, and its own repairs
are persists that land in arbitrary order unless explicitly fenced.  All
image writes therefore go through a writer object (``write``/``fence``,
see :mod:`repro.faults.recovery`) and follow a three-phase protocol
anchored on the 8-byte recovery-state word in the log header
(:attr:`~repro.lang.logbuf.LogLayout.recovery_state_addr`):

* **repair** — all redo/rollback data writes, then a fence.  A crash in
  here leaves the log intact, so the next pass simply recomputes and
  rewrites every repair; partially-persisted repairs are overwritten.
* **mark** — one atomic write flips the state word to
  ``RECOVERY_SWEEPING``, then a fence.  From this point the data
  repairs are durable and the log is garbage.
* **sweep** — entries are invalidated and heads reset (any order), a
  fence, then the state word clears back to ``RECOVERY_IDLE``.  A crash
  in here is resumed by sweeping *everything* again: surviving entries
  must never be re-applied, because rolling back a partially-invalidated
  log would resurrect undone stores (e.g. re-applying an older entry's
  old value over a newer one that was already swept).

Re-running ``recover`` on any crash prefix of itself — any number of
times — converges to the same image as one uninterrupted pass, which is
what ``tests/faults`` and the chaos soak campaign verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faults.recovery import DirectWriter
from repro.lang import logbuf
from repro.lang.logbuf import LogEntry, LogLayout
from repro.pmem.space import PersistentMemory


@dataclass
class RecoveryReport:
    """What recovery observed and did (for tests and examples)."""

    committed_upto: Dict[int, int] = field(default_factory=dict)
    rolled_back: List[LogEntry] = field(default_factory=list)
    replayed: List[LogEntry] = field(default_factory=list)
    skipped_committed: List[LogEntry] = field(default_factory=list)
    #: this pass found a prior pass's durable repairs (state word was
    #: ``RECOVERY_SWEEPING``) and only swept the remaining log garbage.
    resumed_sweep: bool = False

    @property
    def n_rolled_back(self) -> int:
        return len(self.rolled_back)

    @property
    def n_replayed(self) -> int:
        return len(self.replayed)


def recover(
    image: PersistentMemory, layout: LogLayout, writer: Optional[object] = None
) -> RecoveryReport:
    """Repair ``image`` in place; returns a report of the actions taken.

    ``writer`` orders recovery's own persists (default: direct writes
    with free fences — the fault-free path).  The chaos harness passes a
    :class:`repro.faults.CrashingRecoveryWriter` to kill the pass
    mid-flight; re-invoking ``recover`` on the torn image converges.
    """
    w = writer if writer is not None else DirectWriter(image)
    report = RecoveryReport()

    entries_by_tid: Dict[int, List[LogEntry]] = {
        tid: layout.scan(image, tid) for tid in range(layout.n_threads)
    }

    if layout.read_recovery_state(image) == logbuf.RECOVERY_SWEEPING:
        # A previous pass crashed after its repairs became durable: the
        # surviving entries are garbage in an unknowable invalidation
        # state.  Re-applying any of them could undo a durable repair,
        # so this pass only finishes the sweep.
        report.resumed_sweep = True
        _sweep(layout, entries_by_tid, w)
        return report

    # Pass 1: find the commit frontier of every thread.
    for tid, entries in entries_by_tid.items():
        committed = 0
        for entry in entries:
            if entry.commit:
                committed = max(committed, entry.seq)
        report.committed_upto[tid] = committed

    # Pass 2: split valid entries into committed redo entries (to
    # replay), interrupted-commit survivors, and uncommitted undo entries
    # (to roll back).
    to_rollback: List[LogEntry] = []
    to_replay: List[LogEntry] = []
    any_valid = False
    for tid, entries in entries_by_tid.items():
        frontier = report.committed_upto[tid]
        retired = layout.read_retired(image, tid)
        for entry in entries:
            if not entry.valid:
                continue
            any_valid = True
            if entry.seq <= frontier:
                if entry.type == logbuf.REDO and entry.seq > retired:
                    to_replay.append(entry)
                else:
                    report.skipped_committed.append(entry)
            elif entry.type == logbuf.STORE:
                to_rollback.append(entry)

    # Nothing logged, nothing to reset: a clean image (e.g. a second
    # recovery pass over recovered state) must be a pure no-op — no
    # writes, bit-identical bytes.
    if not any_valid and not any(
        layout.read_head(image, tid) or layout.read_retired(image, tid)
        for tid in range(layout.n_threads)
    ):
        return report

    # Phase "repair" — pass 3a: replay committed redo entries in
    # creation order.
    to_replay.sort(key=lambda e: e.seq)
    for entry in to_replay:
        w.write(entry.addr, entry.value)
        report.replayed.append(entry)

    # Pass 3b: roll back uncommitted undo stores in reverse creation order.
    to_rollback.sort(key=lambda e: e.seq, reverse=True)
    for entry in to_rollback:
        w.write(entry.addr, entry.value)
        report.rolled_back.append(entry)
    w.fence()

    # Phase "mark": repairs are durable — flip the state word so a crash
    # from here on resumes as sweep-only.
    w.write(
        layout.recovery_state_addr,
        layout.encode_recovery_state(logbuf.RECOVERY_SWEEPING),
    )
    w.fence()

    # Phase "sweep" — pass 4: reset the logs (invalidate everything,
    # rewind heads) and clear the state word.
    _sweep(layout, entries_by_tid, w)
    return report


def _sweep(layout: LogLayout, entries_by_tid, w) -> None:
    """Invalidate every surviving entry, rewind heads, go idle."""
    for tid, entries in entries_by_tid.items():
        for entry in entries:
            if entry.valid:
                w.write(layout.entry_addr(tid, entry.slot) + 1, b"\x00")
        w.write(layout.header_addr(tid), layout.encode_head(0))
    w.fence()
    w.write(
        layout.recovery_state_addr,
        layout.encode_recovery_state(logbuf.RECOVERY_IDLE),
    )
    w.fence()
