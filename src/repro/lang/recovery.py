"""Crash recovery from undo logs (Section V, Figure 6).

``recover`` takes a crashed PM image and repairs it in place:

1. **Commit repair** — for each thread, find the highest-sequence log
   entry whose commit-intent marker persisted.  Everything up to and
   including that sequence was committed; any still-valid entries at or
   below it are survivors of an interrupted commit (Figure 6b step 1)
   and are invalidated rather than rolled back.
2. **Redo replay** — valid ``REDO`` entries at or below the commit
   frontier hold committed new values whose in-place updates may not have
   persisted; they are replayed in creation order (lowest sequence
   first).  Uncommitted redo entries are simply discarded — their
   in-place updates were deferred, so nothing leaked.
3. **Rollback** — the remaining valid ``STORE`` (undo) entries belong to
   uncommitted regions.  Their old values are written back in reverse
   order of creation (highest sequence first) across all threads, which
   unwinds interleaved regions consistently.
4. **Log reset** — recovered entries are invalidated and the head
   pointers advanced, leaving a clean log for the restarted program.

The creation sequence stored in every entry is the reproduction's
stand-in for the paper's happens-before metadata (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.lang import logbuf
from repro.lang.logbuf import LogEntry, LogLayout
from repro.pmem.space import PersistentMemory


@dataclass
class RecoveryReport:
    """What recovery observed and did (for tests and examples)."""

    committed_upto: Dict[int, int] = field(default_factory=dict)
    rolled_back: List[LogEntry] = field(default_factory=list)
    replayed: List[LogEntry] = field(default_factory=list)
    skipped_committed: List[LogEntry] = field(default_factory=list)

    @property
    def n_rolled_back(self) -> int:
        return len(self.rolled_back)

    @property
    def n_replayed(self) -> int:
        return len(self.replayed)


def recover(image: PersistentMemory, layout: LogLayout) -> RecoveryReport:
    """Repair ``image`` in place; returns a report of the actions taken."""
    report = RecoveryReport()

    # Pass 1: find the commit frontier of every thread.
    entries_by_tid: Dict[int, List[LogEntry]] = {}
    for tid in range(layout.n_threads):
        entries = layout.scan(image, tid)
        entries_by_tid[tid] = entries
        committed = 0
        for entry in entries:
            if entry.commit:
                committed = max(committed, entry.seq)
        report.committed_upto[tid] = committed

    # Pass 2: split valid entries into committed redo entries (to
    # replay), interrupted-commit survivors, and uncommitted undo entries
    # (to roll back).
    to_rollback: List[LogEntry] = []
    to_replay: List[LogEntry] = []
    for tid, entries in entries_by_tid.items():
        frontier = report.committed_upto[tid]
        retired = layout.read_retired(image, tid)
        for entry in entries:
            if not entry.valid:
                continue
            if entry.seq <= frontier:
                if entry.type == logbuf.REDO and entry.seq > retired:
                    to_replay.append(entry)
                else:
                    report.skipped_committed.append(entry)
            elif entry.type == logbuf.STORE:
                to_rollback.append(entry)

    # Pass 3a: replay committed redo entries in creation order.
    to_replay.sort(key=lambda e: e.seq)
    for entry in to_replay:
        image.write(entry.addr, entry.value)
        report.replayed.append(entry)

    # Pass 3b: roll back uncommitted undo stores in reverse creation order.
    to_rollback.sort(key=lambda e: e.seq, reverse=True)
    for entry in to_rollback:
        image.write(entry.addr, entry.value)
        report.rolled_back.append(entry)

    # Pass 4: reset the logs (invalidate everything, rewind heads).
    for tid, entries in entries_by_tid.items():
        for entry in entries:
            if entry.valid:
                image.write(layout.entry_addr(tid, entry.slot) + 1, b"\x00")
        image.write(layout.header_addr(tid), layout.encode_head(0))

    return report
