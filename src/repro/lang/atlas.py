"""ATLAS: failure-atomic outermost critical sections ([11], Section V).

A region spans from the acquisition of the first lock (depth 0 -> 1) to
the release of the last (depth 1 -> 0).  ATLAS logs every synchronization
operation with happens-before metadata; the paper notes its mechanisms
are "heavier-weight" than SFR's, which we model as extra bookkeeping
compute and a metadata log entry per sync operation.  Commits are issued
at the end of every outermost critical section.
"""

from __future__ import annotations

from repro.lang import logbuf
from repro.lang.runtime import PersistencyModel, PmRuntime


class AtlasModel(PersistencyModel):
    """Outermost-critical-section failure atomicity with undo logging."""

    name = "atlas"
    enclose_regions = True

    def __init__(self, durable_commit: bool = False) -> None:
        self.durable_commit = durable_commit

    #: cycles of happens-before bookkeeping per synchronization operation
    #: (lock ownership tables and hb-graph maintenance in ATLAS's runtime).
    SYNC_COMPUTE = 260

    def on_lock(self, rt: PmRuntime, tid: int, lock_id: int) -> None:
        state = rt._threads[tid]
        rt.compute(tid, self.SYNC_COMPUTE)
        if state.lock_depth == 1:  # depth already incremented: outermost
            rt._open_region(tid, logbuf.ACQUIRE)
        else:
            # Nested acquire: log the sync op inside the open region.
            rt._append_entry(tid, logbuf.ACQUIRE, addr=lock_id)

    def on_unlock(self, rt: PmRuntime, tid: int, lock_id: int) -> None:
        state = rt._threads[tid]
        rt.compute(tid, self.SYNC_COMPUTE)
        if state.lock_depth == 1:  # releasing the outermost lock
            rt._close_region(tid, logbuf.RELEASE, commit_now=True)
        else:
            rt._append_entry(tid, logbuf.RELEASE, addr=lock_id)
