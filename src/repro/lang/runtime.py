"""Undo-logging runtime mapping language persistency models onto ISA
primitives (Section V, Figures 5 and 6).

:class:`PmRuntime` is what the workloads program against.  Every
persistent store inside a failure-atomic region is instrumented as::

    append undo-log entry ; CLWB(entry)
    <pair barrier>                      # log persists before update
    store ; CLWB(update)
    <pair separator>                    # pairs are independent (NewStrand)

and region commit follows Figure 6::

    <region drain>                      # every update of the region durable
    set commit marker on terminating entry ; CLWB
    <commit barrier>                    # marker persists before invalidation
    invalidate region entries ; CLWBs
    <commit barrier>
    store + CLWB head pointer

Which primitive implements each ordering point is decided by the
:class:`~repro.lang.dialect.IsaDialect`; where regions begin and end is
decided by the :class:`PersistencyModel` (TXN / ATLAS / SFR).

The runtime simultaneously (a) updates the functional PM image, so data
structures really live in simulated PM, and (b) emits the micro-op trace
consumed by the timing simulator and the formal persistency model.
"""

from __future__ import annotations

import struct

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.ops import CACHE_LINE, Op, Program, TraceCursor, lines_of
from repro.lang import logbuf
from repro.lang.logbuf import LogError, LogLayout
from repro.pmem.space import PersistentMemory

#: label every runtime stamps on its commit-intent marker store.  The
#: static analyzer (:mod:`repro.analysis`) keys on it: a commit marker is
#: the durability anchor every earlier persist of the thread must have an
#: ordering path to (Figure 6's crash-consistency obligation).
COMMIT_MARKER_LABEL = "commit-marker"


@dataclass
class _Region:
    """A closed failure-atomic region awaiting commit."""

    region_id: int
    slots: List[int]
    terminator_slot: int


@dataclass
class _ThreadState:
    cursor: TraceCursor
    tail: int = 0
    live_entries: int = 0
    region_open: bool = False
    region_id: int = -1
    region_slots: List[int] = field(default_factory=list)
    pending: List[_Region] = field(default_factory=list)
    lock_depth: int = 0
    committed_regions: List[int] = field(default_factory=list)
    #: deferred in-place updates of an open redo-logged region.
    write_set: List[Tuple[int, bytes]] = field(default_factory=list)


class PersistencyModel(ABC):
    """Where failure-atomic regions begin/end for one language model."""

    name = "abstract"
    #: enclose regions in JoinStrand / dfence / sfence at begin and end.
    enclose_regions = True
    #: stall at region end until the commit chain (marker, invalidations,
    #: head pointer) is durable.  The paper's runtimes only drain *updates*
    #: before the marker and let the chain drain asynchronously; the
    #: conservative variant is used by the crash-consistency tests, whose
    #: sequence-number recovery needs commits durable at lock hand-off.
    durable_commit = False
    #: "undo" records old values and rolls back at recovery; "redo"
    #: records new values, defers in-place updates to commit, and replays
    #: committed logs at recovery (the paper's future-work sketch, VII).
    logging_style = "undo"

    @abstractmethod
    def on_lock(self, rt: "PmRuntime", tid: int, lock_id: int) -> None: ...

    @abstractmethod
    def on_unlock(self, rt: "PmRuntime", tid: int, lock_id: int) -> None: ...

    def on_txn_begin(self, rt: "PmRuntime", tid: int) -> None:
        pass

    def on_txn_end(self, rt: "PmRuntime", tid: int) -> None:
        pass

    def on_finish(self, rt: "PmRuntime", tid: int) -> None:
        """End of the thread's workload: everything must commit."""
        rt._commit_pending(tid)


class PmRuntime:
    """Programmer-facing persistent-memory runtime."""

    def __init__(
        self,
        space: PersistentMemory,
        layout: LogLayout,
        dialect,
        model: PersistencyModel,
        n_threads: int,
    ) -> None:
        self.space = space
        self.layout = layout
        self.dialect = dialect
        self.model = model
        self.program = Program(n_threads)
        self._threads = [
            _ThreadState(cursor=TraceCursor(self.program, tid)) for tid in range(n_threads)
        ]
        self._next_seq = 1
        self._next_region = 0
        for tid in range(n_threads):
            layout.init_region(space, tid)

    # ------------------------------------------------------------------
    # workload-facing API
    # ------------------------------------------------------------------

    def lock(self, tid: int, lock_id: int) -> None:
        state = self._threads[tid]
        state.cursor.lock(lock_id)
        state.lock_depth += 1
        self.model.on_lock(self, tid, lock_id)

    def unlock(self, tid: int, lock_id: int) -> None:
        state = self._threads[tid]
        if state.lock_depth <= 0:
            raise LogError(f"thread {tid} unlocking without a held lock")
        self.model.on_unlock(self, tid, lock_id)
        state.lock_depth -= 1
        state.cursor.unlock(lock_id)

    def txn_begin(self, tid: int) -> None:
        self.model.on_txn_begin(self, tid)

    def txn_end(self, tid: int) -> None:
        self.model.on_txn_end(self, tid)

    def store(self, tid: int, addr: int, data: bytes, label: str = "") -> None:
        """Failure-atomically update PM.

        Undo logging (Fig. 5): log the old value, order it before the
        in-place update, separate pairs onto fresh strands.  Redo logging
        (Section VII sketch): log the new value now, defer the in-place
        update to commit time — logs of one transaction share a strand
        and need no intra-transaction ordering.
        """
        state = self._threads[tid]
        if not state.region_open:
            raise LogError(
                f"thread {tid} stored to PM outside a failure-atomic region"
            )
        if self.model.logging_style == "redo":
            self._append_entry(tid, logbuf.REDO, addr=addr, value=data)
            self.space.write(addr, data)  # visible to the thread's reads
            state.write_set.append((addr, data))
            return
        old = self.space.read(addr, len(data))
        self._append_entry(tid, logbuf.STORE, addr=addr, value=old)
        self.dialect.pair_barrier(state.cursor)
        self._plain_store(tid, addr, data, label=label or "update")
        self.dialect.pair_separator(state.cursor)

    def store_u64(self, tid: int, addr: int, value: int, label: str = "") -> None:
        self.store(tid, addr, struct.pack("<Q", value & (2**64 - 1)), label=label)

    def load(self, tid: int, addr: int, size: int) -> bytes:
        self._threads[tid].cursor.load(addr, size)
        return self.space.read(addr, size)

    def load_u64(self, tid: int, addr: int) -> int:
        self._threads[tid].cursor.load(addr, 8)
        return self.space.read_u64(addr)

    def compute(self, tid: int, cycles: int) -> None:
        self._threads[tid].cursor.compute(cycles)

    def vload(self, tid: int, addr: int, size: int = 8) -> None:
        self._threads[tid].cursor.vload(addr, size)

    def vstore(self, tid: int, addr: int, size: int = 8) -> None:
        self._threads[tid].cursor.vstore(addr, size)

    def finish(self, tid: int) -> None:
        """Flush the thread's pending commits at workload end."""
        self.model.on_finish(self, tid)

    # ------------------------------------------------------------------
    # introspection used by tests and recovery checks
    # ------------------------------------------------------------------

    def committed_regions(self, tid: int) -> List[int]:
        return list(self._threads[tid].committed_regions)

    def region_of(self, tid: int) -> int:
        return self._threads[tid].region_id

    @property
    def seq_counter(self) -> int:
        return self._next_seq

    # ------------------------------------------------------------------
    # region machinery (driven by the PersistencyModel)
    # ------------------------------------------------------------------

    def _open_region(self, tid: int, entry_type: int) -> None:
        state = self._threads[tid]
        if state.region_open:
            raise LogError(f"thread {tid} opened a region inside a region")
        state.region_open = True
        state.region_id = self._next_region
        self._next_region += 1
        state.region_slots = []
        state.cursor.region = state.region_id
        if self.model.enclose_regions:
            self.dialect.region_begin(state.cursor)
        self._append_entry(tid, entry_type)

    def _close_region(self, tid: int, entry_type: int, commit_now: bool) -> None:
        state = self._threads[tid]
        if not state.region_open:
            raise LogError(f"thread {tid} closed a region that is not open")
        terminator = self._append_entry(tid, entry_type)
        state.pending.append(
            _Region(state.region_id, list(state.region_slots), terminator)
        )
        state.region_open = False
        state.region_slots = []
        if commit_now:
            self._commit_pending(tid)
        if self.model.enclose_regions and self.model.durable_commit:
            self.dialect.region_end(state.cursor)
        state.cursor.region = -1

    def _commit_pending(self, tid: int) -> None:
        """Commit every closed region of the thread (Figure 6 protocol)."""
        state = self._threads[tid]
        if not state.pending:
            return
        cur = state.cursor
        terminator = state.pending[-1].terminator_slot
        # 1. All in-place updates of the pending regions become durable.
        self.dialect.region_drain(cur)
        # 2. Set the commit-intent marker on the terminating log entry.
        # The marker is tagged (label + region) so the static analyzer can
        # anchor check 1 on it even for deferred commits, where the
        # cursor's region id has already been reset.
        marker_addr = self.layout.entry_addr(tid, terminator) + 2
        marker = self._plain_store(
            tid, marker_addr, b"\x01", label=COMMIT_MARKER_LABEL
        )
        marker.region = state.pending[-1].region_id
        # 3. Marker persists before the entries are invalidated and before
        # the head pointer advances.
        self.dialect.commit_barrier(cur)
        # 4. Advance the head pointer and invalidate all entries of the
        # committed regions.  These persists need no mutual order, so they
        # share one sub-epoch on the marker's strand: each is ordered
        # after the marker yet they all drain concurrently.  (Rotating
        # them onto fresh strands would be faster still but unsound:
        # NewStrand clears the marker ordering, so a crash could expose an
        # invalidated entry with no commit marker.)
        head = (terminator + 1) % self.layout.capacity
        retired = self.layout.read_entry(self.space, tid, terminator).seq
        self._plain_store(
            tid,
            self.layout.header_addr(tid),
            self.layout.encode_head(head, retired),
            label="head",
        )
        for region in state.pending:
            for slot in region.slots:
                valid_addr = self.layout.entry_addr(tid, slot) + 1
                self._plain_store(tid, valid_addr, b"\x00", label="invalidate")
                state.live_entries -= 1
        state.committed_regions.extend(r.region_id for r in state.pending)
        state.pending = []

    def _append_entry(
        self, tid: int, entry_type: int, addr: int = 0, value: bytes = b"",
        commit: bool = False,
    ) -> int:
        """Allocate, write, and flush one undo-log entry; returns its slot."""
        state = self._threads[tid]
        if state.live_entries >= self.layout.capacity:
            raise LogError(
                f"thread {tid} exhausted its {self.layout.capacity}-entry log; "
                "size the log for the workload (the paper allocates more "
                "entries dynamically)"
            )
        slot = state.tail
        seq = self._next_seq
        self._next_seq += 1
        raw = logbuf.encode_entry(entry_type, tid, addr, value, seq, commit=commit)
        entry_addr = self.layout.entry_addr(tid, slot)
        self._plain_store(tid, entry_addr, raw, label=f"log:{logbuf.TYPE_NAMES[entry_type]}")
        state.tail = (slot + 1) % self.layout.capacity
        state.live_entries += 1
        if state.region_open:
            state.region_slots.append(slot)
        return slot

    def _plain_store(self, tid: int, addr: int, data: bytes, label: str = "") -> Op:
        """Unlogged PM store + CLWB of every touched line."""
        cur = self._threads[tid].cursor
        self.space.write(addr, data)
        op = cur.store(addr, data, label=label)
        for line in lines_of(addr, len(data)):
            cur.clwb(line * CACHE_LINE, label=label)
        return op


# ----------------------------------------------------------------------
# Accessors: one data-structure implementation, two execution modes
# ----------------------------------------------------------------------


class Accessor(ABC):
    """Uniform PM access surface for the persistent data structures."""

    @abstractmethod
    def read(self, addr: int, size: int) -> bytes: ...

    @abstractmethod
    def write(self, addr: int, data: bytes) -> None: ...

    def read_u64(self, addr: int) -> int:
        return struct.unpack("<Q", self.read(addr, 8))[0]

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, struct.pack("<Q", value & (2**64 - 1)))


class DirectAccessor(Accessor):
    """Untraced access — used during setup and by invariant checkers."""

    def __init__(self, space: PersistentMemory) -> None:
        self.space = space

    def read(self, addr: int, size: int) -> bytes:
        return self.space.read(addr, size)

    def write(self, addr: int, data: bytes) -> None:
        self.space.write(addr, data)


class RuntimeAccessor(Accessor):
    """Traced, undo-logged access bound to one thread of the runtime."""

    def __init__(self, rt: PmRuntime, tid: int) -> None:
        self.rt = rt
        self.tid = tid

    def read(self, addr: int, size: int) -> bytes:
        return self.rt.load(self.tid, addr, size)

    def write(self, addr: int, data: bytes) -> None:
        self.rt.store(self.tid, addr, data)
