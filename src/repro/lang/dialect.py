"""ISA dialects: how the logging runtime orders persists on each design.

The undo-logging runtime of Section V needs four ordering points; each
hardware design provides them with its own primitives:

=================  ===============  ============  =============
ordering point     strandweaver     intel x86     hops
=================  ===============  ============  =============
log -> update      persist barrier  SFENCE        ofence
between pairs      NewStrand        SFENCE        ofence
region drain       JoinStrand       SFENCE        dfence
commit ordering    persist barrier  SFENCE        ofence
=================  ===============  ============  =============

The NON-ATOMIC dialect emits none of them, which is why its traces fail
the crash-consistency property tests — by design.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Type

from repro.core.ops import TraceCursor


class IsaDialect(ABC):
    """Ordering-primitive emission strategy for one hardware design."""

    name = "abstract"
    #: designs (Machine names) this dialect's traces are meant for.
    designs = ()

    @abstractmethod
    def pair_barrier(self, cur: TraceCursor) -> None:
        """Order a log persist before its in-place update (Fig. 5)."""

    @abstractmethod
    def pair_separator(self, cur: TraceCursor) -> None:
        """Separate independent log/update pairs (Fig. 5's NewStrand)."""

    @abstractmethod
    def region_drain(self, cur: TraceCursor) -> None:
        """Make every prior persist of the region durable (commit gate)."""

    @abstractmethod
    def commit_barrier(self, cur: TraceCursor) -> None:
        """Order the commit marker before log invalidations (Fig. 6)."""

    def region_begin(self, cur: TraceCursor) -> None:
        """Entering a failure-atomic region (default: nothing)."""

    def region_end(self, cur: TraceCursor) -> None:
        """Leaving a failure-atomic region (default: nothing)."""



class StrandDialect(IsaDialect):
    """StrandWeaver: PB within pairs, NS across pairs, JS at region edges."""

    name = "strand"
    designs = ("strandweaver", "no-persist-queue")

    def pair_barrier(self, cur: TraceCursor) -> None:
        cur.persist_barrier()

    def pair_separator(self, cur: TraceCursor) -> None:
        cur.new_strand()

    def region_drain(self, cur: TraceCursor) -> None:
        cur.join_strand()

    def commit_barrier(self, cur: TraceCursor) -> None:
        cur.persist_barrier()

    def region_end(self, cur: TraceCursor) -> None:
        cur.join_strand()


class X86Dialect(IsaDialect):
    """Intel x86: every ordering point is a full SFENCE (Fig. 1b)."""

    name = "x86"
    designs = ("intel-x86",)

    def pair_barrier(self, cur: TraceCursor) -> None:
        cur.sfence()

    def pair_separator(self, cur: TraceCursor) -> None:
        cur.sfence()

    def region_drain(self, cur: TraceCursor) -> None:
        cur.sfence()

    def commit_barrier(self, cur: TraceCursor) -> None:
        cur.sfence()

    def region_end(self, cur: TraceCursor) -> None:
        cur.sfence()


class HopsDialect(IsaDialect):
    """HOPS: ofence for ordering, dfence for durability ([19])."""

    name = "hops"
    designs = ("hops",)

    def pair_barrier(self, cur: TraceCursor) -> None:
        cur.ofence()

    def pair_separator(self, cur: TraceCursor) -> None:
        cur.ofence()

    def region_drain(self, cur: TraceCursor) -> None:
        cur.dfence()

    def commit_barrier(self, cur: TraceCursor) -> None:
        cur.ofence()

    def region_end(self, cur: TraceCursor) -> None:
        # One dfence per region (before the commit marker) is enough:
        # epoch ordering already orders the commit before the next
        # region's persists, so leaving the region needs no drain [19].
        cur.ofence()


class NonAtomicDialect(IsaDialect):
    """No ordering whatsoever — the (incorrect) performance upper bound."""

    name = "non-atomic"
    designs = ("non-atomic",)

    def pair_barrier(self, cur: TraceCursor) -> None:
        pass

    def pair_separator(self, cur: TraceCursor) -> None:
        pass

    def region_drain(self, cur: TraceCursor) -> None:
        pass

    def commit_barrier(self, cur: TraceCursor) -> None:
        pass


DIALECTS: Dict[str, Type[IsaDialect]] = {
    cls.name: cls
    for cls in (StrandDialect, X86Dialect, HopsDialect, NonAtomicDialect)
}


def dialect_for_design(design: str) -> IsaDialect:
    """Instantiate the dialect whose traces the given design replays."""
    for cls in DIALECTS.values():
        if design in cls.designs:
            return cls()
    raise ValueError(f"no dialect targets design {design!r}")
