"""Generate once, specialize per dialect.

The four ISA dialects (:mod:`repro.lang.dialect`) differ *only* in which
fence op each of the runtime's ordering points expands to — one op for
strand/x86/HOPS, none for non-atomic.  Everything else about a generated
run (the functional PM image, the lock acquisition order, every
addressed op, every label, every region id) is dialect-independent: the
workload logic never observes the dialect, and fences never touch
memory.

So instead of executing the functional workload once per design, the
harness executes it **once** under :class:`MarkerDialect` — which stamps
each ordering point with a tagged placeholder fence — and then
*specializes* the canonical program per dialect:

* **strand / x86 / hops** replace each marker with the dialect's fence
  in place.  Every marker expands to exactly one op, so per-thread
  ``seq`` and global ``gseq`` numbering are unchanged and every
  non-marker :class:`~repro.core.ops.Op` object is *shared* between the
  canonical and specialized programs (ops are never mutated after
  generation; each specialized program still gets its own
  :class:`~repro.core.ops.ThreadTrace` objects, so per-trace compiled
  caches stay per-program).
* **non-atomic** drops the markers, which shifts numbering, so it gets
  a full copy with ``seq``/``gseq`` renumbered exactly as direct
  generation would number them.

``tests/sim/test_fastcore_identity.py`` pins that a specialized program
is op-for-op identical (all fields) to one generated directly with the
real dialect.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Optional

from repro.core.ops import ADDRESSED_KINDS, Op, OpKind, Program, ThreadTrace, TraceCursor
from repro.lang.dialect import IsaDialect

#: label prefix carried by canonical placeholder fences.
MARK_PREFIX = "mark:"

_PAIR = MARK_PREFIX + "pair"
_SEP = MARK_PREFIX + "sep"
_DRAIN = MARK_PREFIX + "drain"
_COMMIT = MARK_PREFIX + "commit"
_REGION_END = MARK_PREFIX + "region-end"


class MarkerDialect(IsaDialect):
    """Placeholder dialect: tags ordering points instead of choosing fences.

    The op kind of a marker is irrelevant (markers never reach a
    simulator); SFENCE is used so marker programs still satisfy trace
    invariants if inspected.  ``region_begin`` stays the inherited no-op
    because every concrete dialect also emits nothing there.
    """

    name = "marker"
    designs = ()

    def pair_barrier(self, cur: TraceCursor) -> None:
        cur.sfence().label = _PAIR

    def pair_separator(self, cur: TraceCursor) -> None:
        cur.sfence().label = _SEP

    def region_drain(self, cur: TraceCursor) -> None:
        cur.sfence().label = _DRAIN

    def commit_barrier(self, cur: TraceCursor) -> None:
        cur.sfence().label = _COMMIT

    def region_end(self, cur: TraceCursor) -> None:
        cur.sfence().label = _REGION_END


#: dialect name -> ordering-point label -> concrete fence kind (None: drop).
#: Mirrors the emission tables of :mod:`repro.lang.dialect` exactly.
SPECIALIZE_MAP: Dict[str, Dict[str, Optional[OpKind]]] = {
    "strand": {
        _PAIR: OpKind.PERSIST_BARRIER,
        _SEP: OpKind.NEW_STRAND,
        _DRAIN: OpKind.JOIN_STRAND,
        _COMMIT: OpKind.PERSIST_BARRIER,
        _REGION_END: OpKind.JOIN_STRAND,
    },
    "x86": {
        _PAIR: OpKind.SFENCE,
        _SEP: OpKind.SFENCE,
        _DRAIN: OpKind.SFENCE,
        _COMMIT: OpKind.SFENCE,
        _REGION_END: OpKind.SFENCE,
    },
    "hops": {
        _PAIR: OpKind.OFENCE,
        _SEP: OpKind.OFENCE,
        _DRAIN: OpKind.DFENCE,
        _COMMIT: OpKind.OFENCE,
        _REGION_END: OpKind.OFENCE,
    },
    "non-atomic": {
        _PAIR: None,
        _SEP: None,
        _DRAIN: None,
        _COMMIT: None,
        _REGION_END: None,
    },
}


def specialize(program: Program, dialect_name: str) -> Program:
    """Rewrite a canonical marker program for one concrete dialect.

    Returns a new :class:`Program`; the canonical program is untouched
    and can be specialized again for other dialects.

    Specialized programs inherit the canonical program's compiled
    replay streams and touched-line set wherever they are provably
    unchanged: addressed ops are dialect-independent (fences carry no
    address), so ``_touched_lines`` is shared outright, and the
    per-trace compiled arrays consumed by the native replay core
    (:mod:`repro.sim.cnative`) are derived by patching or slicing the
    canonical arrays at the marker sites instead of rescanning every
    op per dialect.
    """
    try:
        table = SPECIALIZE_MAP[dialect_name]
    except KeyError:
        raise ValueError(
            f"no specialization for dialect {dialect_name!r}; "
            f"choose from {sorted(SPECIALIZE_MAP)}"
        ) from None
    if dialect_name == "non-atomic":
        out = _specialize_dropping(program, table)
    else:
        out = _specialize_in_place(program, table)
    out._touched_lines = _canon_touched(program)
    out._touched_arr = program._touched_arr
    return out


def _canon_arrays(trace: ThreadTrace):
    """Canonical trace compiled to C-ready parallel arrays, cached.

    The list form comes from :func:`repro.sim.fastcore.compile_trace`
    (and stays cached there for the Python fast path); the array form
    is what per-dialect derivation slices and patches at C speed.
    """
    cached = getattr(trace, "_canon_arrays", None)
    if cached is None:
        from repro.sim.fastcore import compile_trace

        kinds, lines, cycles, lock_ids, static = compile_trace(trace)
        cached = (
            array("i", kinds),
            array("q", lines),
            array("i", cycles),
            array("i", lock_ids),
            static,
        )
        trace._canon_arrays = cached
    return cached


def _canon_touched(program: Program):
    """Touched-line set of the canonical program, computed once and
    shared with every specialization (fences never touch memory)."""
    touched_sorted = getattr(program, "_touched_lines", None)
    if touched_sorted is None:
        addressed = frozenset(int(k) for k in ADDRESSED_KINDS)
        touched = set()
        for trace in program.threads:
            ka, la, _, _, _ = _canon_arrays(trace)
            for k, ln in zip(ka, la):
                if k in addressed:
                    touched.add(ln)
        touched_sorted = sorted(touched)
        program._touched_lines = touched_sorted
    if getattr(program, "_touched_arr", None) is None:
        program._touched_arr = array("q", touched_sorted)
    return touched_sorted


def _marker_sites(trace: ThreadTrace):
    """Per-trace marker positions ``[(index, label), ...]``, cached on
    the canonical trace so each dialect specialization is a C-speed list
    copy plus point patches instead of a per-op Python scan."""
    sites = getattr(trace, "_marker_sites", None)
    if sites is None:
        sites = [
            (i, op.label)
            for i, op in enumerate(trace.ops)
            if op.label.startswith(MARK_PREFIX)
        ]
        trace._marker_sites = sites
    return sites


class _LazyTrace(ThreadTrace):
    """A specialized thread trace whose op list is built on first use.

    The native replay core consumes only the derived compiled arrays
    (``_c_arrays``), the shared lock order, and the shared touched-line
    set — so for simulation-only programs the per-op rewrite never
    runs.  Consumers that need real :class:`Op` objects (the Python
    engines, the formal model, crash-image checks) trigger it
    transparently on first ``.ops`` access.
    """

    def __init__(self, tid: int, build) -> None:
        self.tid = tid
        self._build = build

    def __getattr__(self, name: str):
        if name == "ops":
            ops = self._build()
            self.ops = ops
            del self._build
            return ops
        raise AttributeError(name)

    def __getstate__(self):
        self.ops  # materialize: closures don't pickle
        state = dict(self.__dict__)
        state.pop("_build", None)
        return state


def _in_place_builder(src: ThreadTrace, table):
    """Deferred op-list rewrite for one-op-per-marker dialects: share
    every non-marker op, rebuild each marker as the dialect's fence with
    identical numbering."""

    def build():
        ops = list(src.ops)
        for i, label in _marker_sites(src):
            op = ops[i]
            fence = Op(table[label])
            fence.tid = op.tid
            fence.seq = op.seq
            fence.gseq = op.gseq
            fence.region = op.region
            ops[i] = fence
        return ops

    return build


def _specialize_in_place(program: Program, table) -> Program:
    """One-op-per-marker dialects: numbering is unchanged, so non-marker
    ops are shared and only the markers are rebuilt (lazily — see
    :class:`_LazyTrace`).

    Compiled replay arrays are derived eagerly per trace: ``lines``/
    ``cycles``/``lock_ids`` are *shared* with the canonical arrays (a
    fence has no address, no cycles, no lock), ``kinds`` is a memcpy
    plus point patches, and the static op-mix counters shift only by
    the strand marks the patched fences introduce.
    """
    out = Program(program.n_threads)
    out._next_gseq = program._next_gseq
    out.lock_order = {k: list(v) for k, v in program.lock_order.items()}
    pb, ns = int(OpKind.PERSIST_BARRIER), int(OpKind.NEW_STRAND)
    threads = []
    for src in program.threads:
        ka0, la0, ca0, lka0, st0 = _canon_arrays(src)
        ka = array("i", ka0)
        marks = 0
        for i, label in _marker_sites(src):
            k2 = int(table[label])
            ka[i] = k2
            if k2 == pb or k2 == ns:
                marks += 1
        static = dict(st0)
        static["strand_marks"] = st0["strand_marks"] + marks
        dst = _LazyTrace(src.tid, _in_place_builder(src, table))
        dst._c_arrays = (ka, la0, ca0, lka0, static)
        dst._marker_sites = []  # specialized traces carry no markers
        threads.append(dst)
    out.threads = threads
    return out


def _specialize_dropping(program: Program, table) -> Program:
    """Marker-dropping dialects (non-atomic): every op is copied with
    ``seq``/``gseq`` renumbered to the contiguous values direct
    generation would assign.

    Renumbering needs no global merge: direct generation assigns gseq
    in the canonical emission order restricted to the kept ops, so the
    new gseq is the old one minus the number of dropped markers that
    preceded it.  Lock order is unchanged (lock ops are never markers
    and their relative order is preserved).  Compiled replay arrays are
    the canonical arrays with the marker slots sliced out.
    """
    if any(v is not None for v in table.values()):  # pragma: no cover
        return _specialize_dropping_generic(program, table)
    out = Program(program.n_threads)
    out.lock_order = {k: list(v) for k, v in program.lock_order.items()}
    dropped = sorted(
        trace.ops[i].gseq
        for trace in program.threads
        for i, _label in _marker_sites(trace)
    )
    kept_total = 0
    threads = []
    for src in program.threads:
        sites = [i for i, _label in _marker_sites(src)]
        kept_total += len(src.ops) - len(sites)
        ka0, la0, ca0, lka0, st0 = _canon_arrays(src)
        ka = array("i")
        la = array("q")
        ca = array("i")
        lka = array("i")
        prev = 0
        for i in sites + [len(src.ops)]:
            ka.extend(ka0[prev:i])
            la.extend(la0[prev:i])
            ca.extend(ca0[prev:i])
            lka.extend(lka0[prev:i])
            prev = i + 1
        static = dict(st0)
        static["fences"] = st0["fences"] - len(sites)
        dst = _LazyTrace(src.tid, _dropping_builder(src, set(sites), dropped))
        dst._c_arrays = (ka, la, ca, lka, static)
        dst._marker_sites = []
        threads.append(dst)
    out.threads = threads
    out._next_gseq = kept_total
    return out


def _dropping_builder(src: ThreadTrace, site_set, dropped):
    """Deferred op-list rewrite for marker-dropping dialects: copy each
    kept op with ``seq``/``gseq`` renumbered to the contiguous values
    direct generation would assign (see :func:`_specialize_dropping`)."""

    def build():
        ops = []
        append = ops.append
        seq = 0
        tid = src.tid
        for i, op in enumerate(src.ops):
            if i in site_set:
                continue
            gseq = op.gseq
            append(
                Op(
                    op.kind, op.addr, op.size, op.data, op.lock_id,
                    op.cycles, tid, seq, gseq - bisect_left(dropped, gseq),
                    op.region, op.label,
                )
            )
            seq += 1
        return ops

    return build


def _specialize_dropping_generic(program: Program, table) -> Program:
    """Reference emission-based rewrite, kept for marker tables that map
    some ordering points to real fences while dropping others."""
    out = Program(program.n_threads)
    emit = out.emit
    for op in program.all_ops():
        label = op.label
        if label and label.startswith(MARK_PREFIX):
            if table[label] is not None:
                emit(op.tid, Op(table[label], region=op.region))
            continue
        emit(
            op.tid,
            Op(
                op.kind,
                addr=op.addr,
                size=op.size,
                data=op.data,
                lock_id=op.lock_id,
                cycles=op.cycles,
                region=op.region,
                label=label,
            ),
        )
    return out
