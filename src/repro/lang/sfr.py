"""SFR persistency: failure-atomic synchronization-free regions
([12, 30], Section V).

Every low-level synchronization operation delimits a region.  At region
end the runtime logs the happens-before relation (the RELEASE entry) and
*continues without stalling* — undo logs commit lazily in batches of
``commit_batch`` regions.  This is why SFR shows the highest speedup
under StrandWeaver (Section VI-B, "Sensitivity to language-level
persistency model").

``safe_handoff`` commits all pending regions before a lock release so
that another thread can never observe data from a region whose logs
might later be rolled back.  The paper's Decoupled-SFR instead tracks
cross-thread happens-before edges in the logs and resolves them at
recovery; our conservative hand-off preserves the same recoverability
guarantee at a small performance cost and is enabled for the crash
tests (see DESIGN.md deviations).  Performance runs use the paper's
batched behaviour.
"""

from __future__ import annotations

from repro.lang import logbuf
from repro.lang.runtime import PersistencyModel, PmRuntime


class SfrModel(PersistencyModel):
    """Synchronization-free-region failure atomicity with batched commit."""

    name = "sfr"
    #: SFRs do not stall at region boundaries — no enclosing JoinStrand.
    enclose_regions = False

    def __init__(self, commit_batch: int = 4, safe_handoff: bool = False) -> None:
        if commit_batch <= 0:
            raise ValueError("commit_batch must be positive")
        self.commit_batch = commit_batch
        self.safe_handoff = safe_handoff

    def on_lock(self, rt: PmRuntime, tid: int, lock_id: int) -> None:
        state = rt._threads[tid]
        if state.region_open:
            # A sync op inside a region ends the current SFR.
            rt._close_region(tid, logbuf.ACQUIRE, commit_now=False)
        rt._open_region(tid, logbuf.ACQUIRE)

    def on_unlock(self, rt: PmRuntime, tid: int, lock_id: int) -> None:
        state = rt._threads[tid]
        if state.region_open:
            rt._close_region(tid, logbuf.RELEASE, commit_now=False)
        commit = self.safe_handoff or len(state.pending) >= self.commit_batch
        if commit:
            rt._commit_pending(tid)
        # The next SFR (between this release and the next sync op) opens
        # lazily at the next lock; stores outside locks are not generated
        # by our workloads.
