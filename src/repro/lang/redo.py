"""Redo logging under strand persistency (Section VII, future-work sketch).

The paper outlines how redo logging maps onto strand persistency:

    "Under strand persistency, each failure-atomic transaction may be
    performed on a separate strand.  Within each strand, transactions can
    create redo logs, issue a persist barrier and then perform in-place
    updates.  A group commit operation can merge strands and commit prior
    transactions."

Transactions append redo entries (new values) on their own strand; the
in-place updates are deferred entirely.  Every ``group_commit``
transactions, the group commit merges the strands and commits them::

    JoinStrand                        # every redo log durable
    commit marker on last TX_END ; CLWB
    <pair barrier>                    # marker persists before updates
    all deferred in-place updates ; CLWBs
    JoinStrand                        # updates durable
    invalidate entries ; advance head

The **group commit is the durability point**: transactions that crash
before their group commit vanish atomically (their logs are discarded by
recovery), and once the marker persists, recovery replays the group's
redo entries — in-place updates can never appear in a crash image without
the marker, because the marker precedes them in persist order.

With ``group_commit > 1`` the model is single-thread-safe only: another
thread could otherwise observe data whose durability is still pending
(the paper's sketch leaves the cross-thread protocol open).  The crash
tests therefore use ``group_commit=1`` for multi-threaded runs and larger
batches single-threaded.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lang import logbuf
from repro.lang.runtime import COMMIT_MARKER_LABEL, PersistencyModel, PmRuntime, _Region


class RedoTxnModel(PersistencyModel):
    """Failure-atomic transactions over redo logs with group commit."""

    name = "redo-txn"
    enclose_regions = False  # region edges are managed explicitly below
    logging_style = "redo"

    def __init__(self, group_commit: int = 1, durable_commit: bool = False) -> None:
        if group_commit <= 0:
            raise ValueError("group_commit must be positive")
        self.group_commit = group_commit
        self.durable_commit = durable_commit
        #: deferred write sets of pending (closed, uncommitted) txns.
        self._pending_writes: Dict[int, List[List[Tuple[int, bytes]]]] = {}

    def on_lock(self, rt: PmRuntime, tid: int, lock_id: int) -> None:
        pass

    def on_unlock(self, rt: PmRuntime, tid: int, lock_id: int) -> None:
        pass

    def on_txn_begin(self, rt: PmRuntime, tid: int) -> None:
        if self.group_commit > 1 and rt.program.n_threads > 1:
            raise logbuf.LogError(
                "redo group commit defers in-place updates past lock "
                "hand-off, so batches larger than 1 are single-thread "
                "only (the paper's sketch leaves the cross-thread "
                "protocol open)"
            )
        state = rt._threads[tid]
        # Each transaction runs on its own strand (NewStrand under the
        # strand dialect; a fence that closes the epoch elsewhere).
        rt.dialect.pair_separator(state.cursor)
        rt._open_region(tid, logbuf.TX_BEGIN)

    def on_txn_end(self, rt: PmRuntime, tid: int) -> None:
        state = rt._threads[tid]
        if not state.region_open:
            raise logbuf.LogError(f"thread {tid} committed with no open transaction")
        terminator = rt._append_entry(tid, logbuf.TX_END)
        state.pending.append(
            _Region(state.region_id, list(state.region_slots), terminator)
        )
        self._pending_writes.setdefault(tid, []).append(list(state.write_set))
        state.write_set = []
        state.region_open = False
        state.region_slots = []
        state.cursor.region = -1
        if len(state.pending) >= self.group_commit:
            self._group_commit(rt, tid)
        if self.durable_commit:
            rt.dialect.region_end(state.cursor)

    def on_finish(self, rt: PmRuntime, tid: int) -> None:
        self._group_commit(rt, tid)

    def _group_commit(self, rt: PmRuntime, tid: int) -> None:
        """Merge pending transaction strands and commit them (durability
        point)."""
        state = rt._threads[tid]
        if not state.pending:
            return
        cur = state.cursor
        # 1. Every redo log of the group is durable.
        rt.dialect.region_drain(cur)
        # 2. Commit marker on the group's last TX_END entry.
        terminator = state.pending[-1].terminator_slot
        marker_addr = rt.layout.entry_addr(tid, terminator) + 2
        marker = rt._plain_store(tid, marker_addr, b"\x01", label=COMMIT_MARKER_LABEL)
        marker.region = state.pending[-1].region_id
        # 3. Marker persists before any in-place update.
        rt.dialect.commit_barrier(cur)
        # 4. Apply the group's deferred updates (concurrent sub-epoch).
        for write_set in self._pending_writes.get(tid, []):
            for addr, data in write_set:
                rt._plain_store(tid, addr, data, label="redo-update")
        self._pending_writes[tid] = []
        # 5. Updates durable before the logs are retired.
        rt.dialect.region_drain(cur)
        # 6. Publish the retired-sequence watermark (with the new head),
        # and only then invalidate entries: replaying a *subset* of a
        # group's entries over newer in-place data would corrupt it, so
        # recovery must be able to tell "retired" from "uncommitted" even
        # when the per-entry invalidations persisted partially.
        head = (terminator + 1) % rt.layout.capacity
        retired = rt.layout.read_entry(rt.space, tid, terminator).seq
        rt._plain_store(
            tid,
            rt.layout.header_addr(tid),
            rt.layout.encode_head(head, retired),
            label="head",
        )
        rt.dialect.commit_barrier(cur)
        for region in state.pending:
            for slot in region.slots:
                valid_addr = rt.layout.entry_addr(tid, slot) + 1
                rt._plain_store(tid, valid_addr, b"\x00", label="invalidate")
                state.live_entries -= 1
        state.committed_regions.extend(r.region_id for r in state.pending)
        state.pending = []
