"""Failure-atomic transactions (PMDK/NV-heaps/Mnemosyne style, Section V).

Regions are explicit ``txn_begin``/``txn_end`` pairs; isolation comes
from external synchronization (the workloads hold locks around their
transactions).  ``txn_end`` flushes all PM mutations of the transaction
and persists them before committing the logs — the region commits (and
drains) at the end of every transaction.
"""

from __future__ import annotations

from repro.lang import logbuf
from repro.lang.runtime import PersistencyModel, PmRuntime


class TxnModel(PersistencyModel):
    """Failure-atomic transactions with commit-at-end semantics."""

    name = "txn"
    enclose_regions = True

    def __init__(self, durable_commit: bool = False) -> None:
        self.durable_commit = durable_commit

    def on_lock(self, rt: PmRuntime, tid: int, lock_id: int) -> None:
        # Locks provide isolation only; they do not delimit regions.
        pass

    def on_unlock(self, rt: PmRuntime, tid: int, lock_id: int) -> None:
        pass

    def on_txn_begin(self, rt: PmRuntime, tid: int) -> None:
        rt._open_region(tid, logbuf.TX_BEGIN)

    def on_txn_end(self, rt: PmRuntime, tid: int) -> None:
        rt._close_region(tid, logbuf.TX_END, commit_now=True)
