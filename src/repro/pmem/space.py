"""Functional persistent-memory address space.

:class:`PersistentMemory` holds the *architectural* contents of PM — the
values the program observes through its loads.  It also keeps a snapshot of
the last known-durable baseline so that crash images can be materialised:
a crash image is the baseline plus an arbitrary **consistent cut** of the
persist DAG (see :mod:`repro.core.crash`), applied in visibility order.

Addresses are plain integers; accessors exist for the common word sizes
used by the persistent data structures in :mod:`repro.workloads`.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

from repro.core.ops import Op, OpKind

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")


class PmError(Exception):
    """Raised on out-of-range or malformed PM accesses."""


class PersistentMemory:
    """A flat, byte-addressable persistent memory image."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise PmError(f"PM size must be positive, got {size}")
        self.size = size
        self._bytes = bytearray(size)
        self._baseline = bytes(size)

    # -- bounds ---------------------------------------------------------

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.size:
            raise PmError(f"access [{addr:#x}, {addr + size:#x}) outside PM of {self.size:#x}")

    # -- raw access -----------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        return bytes(self._bytes[addr : addr + size])

    def write(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self._bytes[addr : addr + len(data)] = data

    # -- typed access ---------------------------------------------------

    def read_u64(self, addr: int) -> int:
        return _U64.unpack_from(self._bytes, addr)[0]

    def write_u64(self, addr: int, value: int) -> None:
        self._check(addr, 8)
        _U64.pack_into(self._bytes, addr, value & 0xFFFFFFFFFFFFFFFF)

    def read_u32(self, addr: int) -> int:
        return _U32.unpack_from(self._bytes, addr)[0]

    def write_u32(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        _U32.pack_into(self._bytes, addr, value & 0xFFFFFFFF)

    # -- durability baseline -------------------------------------------

    def mark_clean(self) -> None:
        """Snapshot current contents as the durable pre-run baseline.

        Workload setup (allocation, initial data-structure population)
        runs before measurement and is considered fully persisted, exactly
        as the paper's benchmarks persist their initial state before the
        timed phase.
        """
        self._baseline = bytes(self._bytes)

    def baseline_image(self) -> bytearray:
        """A fresh mutable copy of the durable baseline."""
        return bytearray(self._baseline)

    def crash_image(self, persists: Sequence[Op]) -> "PersistentMemory":
        """Materialise the PM contents a crash could expose.

        Args:
            persists: PM stores forming a consistent cut of the persist
                DAG, in any order; they are applied in visibility order.

        Returns:
            A new :class:`PersistentMemory` whose contents are the
            baseline plus exactly the given persists.
        """
        image = PersistentMemory(self.size)
        image._bytes = self.baseline_image()
        for op in sorted(persists, key=lambda o: o.gseq):
            if op.kind is not OpKind.STORE:
                raise PmError(f"crash image can only apply STOREs, got {op!r}")
            image.write(op.addr, op.data)
        image._baseline = bytes(image._bytes)
        return image

    # -- helpers --------------------------------------------------------

    def snapshot(self) -> bytes:
        return bytes(self._bytes)

    def restore(self, snapshot: bytes) -> None:
        if len(snapshot) != self.size:
            raise PmError("snapshot size mismatch")
        self._bytes = bytearray(snapshot)

    def diff_lines(self, other: "PersistentMemory", line: int = 64) -> List[int]:
        """Cache-line indices whose contents differ from ``other``."""
        if other.size != self.size:
            raise PmError("cannot diff PM images of different sizes")
        out = []
        for start in range(0, self.size, line):
            if self._bytes[start : start + line] != other._bytes[start : start + line]:
                out.append(start // line)
        return out
