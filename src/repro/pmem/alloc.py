"""Persistent-memory allocator.

A deliberately simple allocator in the spirit of persistent heaps used by
the paper's benchmarks: a bump pointer with an aligned free list.  The
allocator's own metadata lives in volatile memory — the benchmarks persist
their roots explicitly and re-derive reachability during recovery, as the
paper's runtimes do (allocation is re-played idempotently inside
failure-atomic regions).
"""

from __future__ import annotations

from typing import Dict, List

from repro.pmem.space import PersistentMemory, PmError


def align_up(value: int, alignment: int) -> int:
    if alignment <= 0 or alignment & (alignment - 1):
        raise PmError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


class PmAllocator:
    """Bump allocator with size-class free lists over a PM range."""

    def __init__(self, space: PersistentMemory, base: int, size: int) -> None:
        if base < 0 or base + size > space.size:
            raise PmError(f"allocator range [{base:#x}, {base + size:#x}) outside PM")
        self.space = space
        self.base = base
        self.limit = base + size
        self._cursor = base
        self._free: Dict[int, List[int]] = {}

    @property
    def used(self) -> int:
        return self._cursor - self.base

    @property
    def remaining(self) -> int:
        return self.limit - self._cursor

    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Allocate ``nbytes`` and return its PM address.

        Freed blocks of the exact same size are reused first.
        """
        if nbytes <= 0:
            raise PmError(f"allocation size must be positive, got {nbytes}")
        bucket = self._free.get(nbytes)
        if bucket:
            addr = bucket.pop()
            if addr % align == 0:
                return addr
            bucket.append(addr)
        addr = align_up(self._cursor, align)
        if addr + nbytes > self.limit:
            raise PmError(
                f"persistent heap exhausted: need {nbytes} bytes, "
                f"{self.limit - addr} available"
            )
        self._cursor = addr + nbytes
        return addr

    def alloc_lines(self, n_lines: int) -> int:
        """Allocate ``n_lines`` cache-line-aligned 64-byte lines."""
        return self.alloc(n_lines * 64, align=64)

    def free(self, addr: int, nbytes: int) -> None:
        if addr < self.base or addr + nbytes > self._cursor:
            raise PmError(f"free of [{addr:#x}, {addr + nbytes:#x}) not from this heap")
        self._free.setdefault(nbytes, []).append(addr)
