"""Crash injection *inside* recovery: ordered writers and torn images.

Recovery is a program too: its repairs are PM stores that persist in
whatever order the hardware allows unless recovery orders them.  To test
that :func:`repro.lang.recovery.recover` survives a second power failure
mid-flight, its writes go through a writer object with two operations:

* ``write(addr, data)`` — issue one PM store;
* ``fence()`` — order point: everything written before the fence is
  durable before anything after it.

:class:`DirectWriter` is the production path — writes land immediately,
fences are free — and is byte-identical to recovery writing the image
directly.  :class:`CrashingRecoveryWriter` is the chaos path: it stops
the pass by raising :class:`RecoveryCrashed` once a seeded write budget
is spent, and :meth:`CrashingRecoveryWriter.materialise_crash` rebuilds
the image a real power failure would leave — every fenced epoch intact,
the unfenced tail reduced to a seeded subset (unordered persists may or
may not have left the fill buffers).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.pmem.space import PersistentMemory


class RecoveryCrashed(Exception):
    """A simulated power failure interrupted a recovery pass."""


class DirectWriter:
    """Fault-free writer: recovery's writes land immediately."""

    def __init__(self, image: PersistentMemory) -> None:
        self._image = image
        self.writes = 0

    def write(self, addr: int, data: bytes) -> None:
        self.writes += 1
        self._image.write(addr, data)

    def fence(self) -> None:
        pass


class CrashingRecoveryWriter:
    """Crash a recovery pass after ``after_writes`` stores.

    The writer applies stores to the live image so the pass behaves
    normally until the crash point; it also snapshots the image at every
    fence and journals the current epoch's stores.  When the budget is
    hit the pass dies with :class:`RecoveryCrashed`, and
    :meth:`materialise_crash` rewinds the image to the last fence plus a
    seeded subset of the unfenced tail — the states an unordered persist
    pipeline admits.  ``drop_prob`` is the chance each unfenced store is
    still in flight when power fails.
    """

    def __init__(
        self,
        image: PersistentMemory,
        after_writes: int,
        seed: int = 0,
        drop_prob: float = 0.5,
    ) -> None:
        if after_writes < 0:
            raise ValueError(f"after_writes must be >= 0, got {after_writes}")
        self._image = image
        self.after_writes = after_writes
        self.drop_prob = drop_prob
        self._rng = random.Random(seed)
        self._fenced = image.snapshot()
        self._epoch: List[Tuple[int, bytes]] = []
        self.writes = 0
        self.crashed = False

    def write(self, addr: int, data: bytes) -> None:
        if self.writes >= self.after_writes:
            self.crashed = True
            raise RecoveryCrashed(
                f"recovery pass crashed after {self.writes} writes "
                f"(budget {self.after_writes})"
            )
        self.writes += 1
        self._epoch.append((addr, bytes(data)))
        self._image.write(addr, data)

    def fence(self) -> None:
        self._fenced = self._image.snapshot()
        self._epoch = []

    def materialise_crash(self) -> int:
        """Rewind the image to what actually persisted; returns how many
        unfenced stores survived."""
        if not self.crashed:
            raise RuntimeError("materialise_crash() before any crash")
        self._image.restore(self._fenced)
        survived = 0
        for addr, data in self._epoch:
            if self._rng.random() >= self.drop_prob:
                self._image.write(addr, data)
                survived += 1
        self._epoch = []
        return survived
