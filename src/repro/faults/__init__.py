"""Device-level fault model and resilience primitives (repro.faults).

Two layers live here:

* :mod:`repro.faults.model` — a deterministic, seedable media fault
  model (:class:`MediaFaultModel`) the PM controller consults on every
  media write and read: transient write failures the controller retries
  with exponential backoff, ECC-correctable line errors that cost a
  correction penalty, uncorrectable errors that force a spare-line
  remap, and line wear that degrades the device once spares run out.
* :mod:`repro.faults.recovery` — the crash-during-recovery machinery:
  an ordered :class:`RecoveryWriter` protocol recovery persists through,
  plus :class:`CrashingRecoveryWriter`, which kills a recovery pass at a
  seeded write count and materialises the torn intermediate image
  (fenced epochs survive, unfenced writes persist as a seeded subset).

The chaos harness (:mod:`repro.chaos`) threads both through its fault
plans; with neither configured, every hook is absent and the simulator's
timing is bit-identical to a fault-free build.
"""

from repro.faults.model import (
    DEGRADED_NONE,
    DEGRADED_REMAP,
    DEGRADED_WORN,
    MediaFaultConfig,
    MediaFaultModel,
)
from repro.faults.recovery import (
    CrashingRecoveryWriter,
    DirectWriter,
    RecoveryCrashed,
)

__all__ = [
    "DEGRADED_NONE",
    "DEGRADED_REMAP",
    "DEGRADED_WORN",
    "CrashingRecoveryWriter",
    "DirectWriter",
    "MediaFaultConfig",
    "MediaFaultModel",
    "RecoveryCrashed",
]
