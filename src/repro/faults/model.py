"""Deterministic, seedable PM media fault model.

Real persistent-memory media is not the perfect device the seed
simulator assumed: Optane-class parts take transient write failures the
controller must retry, lines develop ECC-correctable bit errors that
cost a correction cycle, and worn lines go uncorrectable and must be
remapped to a spare region.  :class:`MediaFaultModel` injects exactly
those events, driven by one :class:`random.Random` stream seeded from
:class:`MediaFaultConfig`, so a given (workload, design, seed) triple
produces bit-identical fault sequences — and therefore bit-identical
timing statistics — on every run.

The model is *policy-free*: it only answers "does this media access
fault, and how".  The retry/backoff and spare-line-remap policy lives in
:class:`repro.sim.memory.PMController`, configured by
:class:`repro.sim.config.PMConfig`, so the resilience machinery is part
of the simulated hardware and its cost shows up in stall attribution
like any other controller behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Set

#: device health states reported by :meth:`MediaFaultModel.health`.
DEGRADED_NONE = "healthy"
DEGRADED_REMAP = "remapping"  #: at least one line moved to a spare
DEGRADED_WORN = "worn"  #: spare lines exhausted; uncorrectables persist


@dataclass(frozen=True)
class MediaFaultConfig:
    """Seeded fault-injection knobs for the PM media.

    All probabilities default to zero, so a default-constructed config
    is the *null* fault model: it never fires, consumes no randomness on
    the access path, and leaves timing bit-identical to a build without
    a fault model attached.
    """

    seed: int = 0
    #: per-media-write probability of a transient failure (the write
    #: consumed a media slot but did not stick; the controller retries).
    write_fail_prob: float = 0.0
    #: per-read probability of an ECC-correctable line error (costs the
    #: controller's correction penalty, data is fine).
    ecc_correctable_prob: float = 0.0
    #: per-write probability the line proves uncorrectable (wear-out):
    #: retries cannot help and the controller must remap to a spare.
    ecc_uncorrectable_prob: float = 0.0

    @property
    def enabled(self) -> bool:
        """True when any fault can ever fire."""
        return (
            self.write_fail_prob > 0
            or self.ecc_correctable_prob > 0
            or self.ecc_uncorrectable_prob > 0
        )

    def describe(self) -> str:
        if not self.enabled:
            return "media-faults(off)"
        return (
            f"media-faults(seed={self.seed} wfail={self.write_fail_prob:g} "
            f"ecc-c={self.ecc_correctable_prob:g} "
            f"ecc-u={self.ecc_uncorrectable_prob:g})"
        )


class MediaFaultModel:
    """One seeded fault stream plus the accounting the stats layer reads.

    The simulator replays accesses in a deterministic order, so drawing
    from a single stream keeps the whole fault sequence reproducible
    from ``cfg.seed`` alone.  Counters are mutated by the PM controller
    as it applies its retry/remap policy; :meth:`summary` is what lands
    in ``repro.stats/1`` under the ``"faults"`` key.
    """

    def __init__(self, cfg: MediaFaultConfig) -> None:
        self.cfg = cfg
        self._rng = random.Random(cfg.seed)
        #: lines already moved to the spare region (their faults are gone).
        self.remapped_lines: Set[int] = set()
        # -- counters the controller maintains --
        self.write_faults = 0  #: transient write failures observed
        self.retries = 0  #: media writes re-issued after a failure
        self.backoff_cycles = 0.0  #: total cycles spent backing off
        self.ecc_corrected = 0  #: correctable read errors fixed
        self.ecc_uncorrectable = 0  #: uncorrectable (wear-out) hits
        self.remaps = 0  #: lines moved to spares
        self.remap_denied = 0  #: uncorrectables with no spare left
        self.exhausted_retries = 0  #: writes that burned the retry budget

    @property
    def enabled(self) -> bool:
        return self.cfg.enabled

    # -- fault draws (called by the controller, in simulated order) -----

    def write_fails(self, line: int) -> bool:
        """Does this media write attempt fail transiently?"""
        if self.cfg.write_fail_prob <= 0 or line in self.remapped_lines:
            return False
        return self._rng.random() < self.cfg.write_fail_prob

    def write_uncorrectable(self, line: int) -> bool:
        """Has this line worn out (no retry can make the write stick)?"""
        if self.cfg.ecc_uncorrectable_prob <= 0 or line in self.remapped_lines:
            return False
        return self._rng.random() < self.cfg.ecc_uncorrectable_prob

    def read_correctable(self, line: int) -> bool:
        """Does this read hit a correctable ECC error?"""
        if self.cfg.ecc_correctable_prob <= 0 or line in self.remapped_lines:
            return False
        return self._rng.random() < self.cfg.ecc_correctable_prob

    # -- remap bookkeeping ---------------------------------------------

    def remap(self, line: int, spare_lines: int) -> bool:
        """Move ``line`` to a spare; False once the spare region is full."""
        if len(self.remapped_lines) >= spare_lines:
            self.remap_denied += 1
            return False
        self.remapped_lines.add(line)
        self.remaps += 1
        return True

    def health(self) -> str:
        if self.remap_denied:
            return DEGRADED_WORN
        if self.remapped_lines:
            return DEGRADED_REMAP
        return DEGRADED_NONE

    def summary(self) -> Dict[str, object]:
        """Flat record of everything the device suffered (JSON-safe)."""
        return {
            "seed": self.cfg.seed,
            "write_faults": self.write_faults,
            "retries": self.retries,
            "backoff_cycles": round(self.backoff_cycles, 3),
            "ecc_corrected": self.ecc_corrected,
            "ecc_uncorrectable": self.ecc_uncorrectable,
            "remaps": self.remaps,
            "remap_denied": self.remap_denied,
            "exhausted_retries": self.exhausted_retries,
        }
