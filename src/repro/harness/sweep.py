"""Parallel sweep engine: fan out simulation cells over a process pool.

Like the paper's evaluation — 8 benchmarks x 5 designs x 3 language
models plus the Figure 9/10 sweeps, each an independent gem5 run — our
cells are embarrassingly parallel: one cell is one (benchmark, design,
model, workload knobs, :class:`MachineConfig`) simulation with no shared
state.  :func:`run_sweep` evaluates any iterable of fully-specified
cells with

* **deterministic ordering** — results come back in input order no
  matter how the pool schedules them;
* **per-cell error capture** — one failed cell reports its traceback,
  the rest of the sweep completes;
* **three-level caching** — the in-process memo (shared with
  :func:`repro.harness.experiment.run_cell`), then the content-addressed
  on-disk cache (:mod:`repro.harness.cachedir`), then a real run.
  Identical cells appearing twice in one sweep are simulated once.

``jobs <= 1`` runs every cell inline in this process (no pool, no
pickling), which is the bit-identical reference path the parallel path
is validated against.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.harness.cachedir import CellCache, cell_fingerprint, fingerprint_key
from repro.harness.experiment import (
    RunKey,
    default_config,
    memo_lookup,
    memo_store,
    run_cell,
)
from repro.sim.config import TABLE_I, MachineConfig
from repro.sim.stats import MachineStats
from repro.workloads import WorkloadConfig


@dataclass(frozen=True)
class SweepCell:
    """One fully-specified simulation: everything that affects its result."""

    benchmark: str
    design: str
    model: str = "txn"
    ops_per_thread: int = 48
    ops_per_region: int = 1
    machine_cfg: MachineConfig = TABLE_I

    def workload_cfg(self) -> WorkloadConfig:
        return default_config(self.ops_per_thread, self.ops_per_region)

    def run_key(self) -> RunKey:
        return RunKey(
            self.benchmark,
            self.design,
            self.model,
            self.ops_per_thread,
            self.ops_per_region,
            self.machine_cfg,
        )

    def fingerprint(self) -> Dict[str, object]:
        return cell_fingerprint(
            self.benchmark, self.design, self.model,
            self.workload_cfg(), self.machine_cfg,
        )

    def key(self) -> str:
        """Content-address of this cell (the on-disk cache key)."""
        return fingerprint_key(self.fingerprint())

    def label(self) -> str:
        return f"{self.benchmark}/{self.design}/{self.model}"


@dataclass
class CellResult:
    """Outcome of one cell: stats on success, a traceback on failure."""

    cell: SweepCell
    stats: Optional[MachineStats]
    error: Optional[str] = None
    wall_time: float = 0.0
    #: where the result came from: ``memo`` | ``cache`` | ``run``.
    source: str = "run"

    @property
    def ok(self) -> bool:
        return self.error is None and self.stats is not None


@dataclass
class SweepResult:
    """All cell results, in input order, plus sweep-level accounting."""

    cells: List[CellResult]
    jobs: int = 1
    wall_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    memo_hits: int = 0

    def __post_init__(self) -> None:
        self._by_cell: Dict[SweepCell, CellResult] = {
            res.cell: res for res in self.cells
        }

    @property
    def errors(self) -> int:
        return sum(1 for res in self.cells if not res.ok)

    def result_for(self, cell: SweepCell) -> CellResult:
        return self._by_cell[cell]

    def stats_for(self, cell: SweepCell) -> MachineStats:
        """Stats of ``cell``; raises if the cell failed or is absent."""
        res = self._by_cell.get(cell)
        if res is None:
            raise KeyError(f"cell {cell.label()} was not part of this sweep")
        if not res.ok:
            raise RuntimeError(f"cell {cell.label()} failed:\n{res.error}")
        assert res.stats is not None
        return res.stats

    def to_json(self, deterministic: bool = False) -> Dict[str, object]:
        from repro.obs.export import sweep_to_json

        return sweep_to_json(self, deterministic=deterministic)


def expand_cells(
    benchmarks: Sequence[str],
    designs: Sequence[str],
    models: Sequence[str] = ("txn",),
    ops_per_thread: int = 48,
    ops_per_region: int = 1,
    machine_cfg: MachineConfig = TABLE_I,
) -> List[SweepCell]:
    """Cartesian (benchmark x design x model) cell list, in stable order."""
    return [
        SweepCell(bench, design, model, ops_per_thread, ops_per_region, machine_cfg)
        for bench in benchmarks
        for design in designs
        for model in models
    ]


def _execute(cell: SweepCell) -> Tuple[str, object, float]:
    """Run one cell; never raises.  Returns (status, payload, seconds)."""
    t0 = time.perf_counter()
    try:
        stats = run_cell(
            cell.benchmark,
            cell.design,
            cell.model,
            ops_per_thread=cell.ops_per_thread,
            ops_per_region=cell.ops_per_region,
            machine_cfg=cell.machine_cfg,
        )
        return "ok", stats, time.perf_counter() - t0
    except Exception:
        return "error", traceback.format_exc(), time.perf_counter() - t0


def run_sweep(
    cells: Iterable[SweepCell],
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    use_memo: bool = True,
) -> SweepResult:
    """Evaluate every cell, fanning misses out over ``jobs`` processes."""
    cell_list = list(cells)
    t0 = time.perf_counter()
    results: List[Optional[CellResult]] = [None] * len(cell_list)
    memo_hits = cache_hits = 0

    # Resolve memo and disk hits in the parent; dedupe the remainder so
    # identical cells are simulated once and fanned back out.
    pending: Dict[SweepCell, List[int]] = {}
    for idx, cell in enumerate(cell_list):
        earlier = pending.get(cell)
        if earlier is not None:
            earlier.append(idx)
            continue
        if use_memo:
            hit = memo_lookup(cell.run_key())
            if hit is not None:
                results[idx] = CellResult(cell, hit, source="memo")
                memo_hits += 1
                continue
        if cache is not None:
            t_cell = time.perf_counter()
            disk = cache.lookup(cell.fingerprint())
            if disk is not None:
                results[idx] = CellResult(
                    cell, disk, wall_time=time.perf_counter() - t_cell,
                    source="cache",
                )
                cache_hits += 1
                if use_memo:
                    memo_store(cell.run_key(), disk)
                continue
        pending[cell] = [idx]
    cache_misses = len(pending) if cache is not None else 0

    unique = list(pending)
    if jobs > 1 and len(unique) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(unique))) as pool:
            futures = [(cell, pool.submit(_execute, cell)) for cell in unique]
            outcomes = []
            for cell, fut in futures:
                try:
                    outcomes.append((cell,) + fut.result())
                except Exception:  # pool-level failure (e.g. dead worker)
                    outcomes.append((cell, "error", traceback.format_exc(), 0.0))
    else:
        outcomes = [(cell,) + _execute(cell) for cell in unique]

    for cell, status, payload, seconds in outcomes:
        if status == "ok":
            assert isinstance(payload, MachineStats)
            res = CellResult(cell, payload, wall_time=seconds, source="run")
            if use_memo:
                memo_store(cell.run_key(), payload)
            if cache is not None:
                cache.store(cell.fingerprint(), payload)
        else:
            res = CellResult(cell, None, error=str(payload), wall_time=seconds)
        for idx in pending[cell]:
            results[idx] = res

    assert all(res is not None for res in results)
    return SweepResult(
        cells=[res for res in results if res is not None],
        jobs=jobs,
        wall_time=time.perf_counter() - t0,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        memo_hits=memo_hits,
    )
