"""Parallel sweep engine: fan out simulation cells over a process pool.

Like the paper's evaluation — 8 benchmarks x 5 designs x 3 language
models plus the Figure 9/10 sweeps, each an independent gem5 run — our
cells are embarrassingly parallel: one cell is one (benchmark, design,
model, workload knobs, :class:`MachineConfig`) simulation with no shared
state.  :func:`run_sweep` evaluates any iterable of fully-specified
cells with

* **deterministic ordering** — results come back in input order no
  matter how the pool schedules them;
* **per-cell error capture** — one failed cell reports its exception
  class, message and traceback (:class:`CellFailure`), the rest of the
  sweep completes;
* **worker-loss isolation** — a worker that dies (OOM-killed, segfault,
  SIGKILL) poisons only the cell it was running: the pool is respawned
  and every other in-flight cell is re-executed in isolation, so the
  culprit is identified definitively instead of taking innocent
  neighbours down with a ``BrokenProcessPool``;
* **per-cell timeouts and bounded retries** — ``timeout`` kills a hung
  cell's worker and fails (or retries) just that cell; ``retries``
  re-runs failing cells a bounded number of times, with the attempt
  count recorded in the failure;
* **three-level caching** — the in-process memo (shared with
  :func:`repro.harness.experiment.run_cell`), then the content-addressed
  on-disk cache (:mod:`repro.harness.cachedir`), then a real run.
  Identical cells appearing twice in one sweep are simulated once.

``jobs <= 1`` runs every cell inline in this process (no pool, no
pickling), which is the bit-identical reference path the parallel path
is validated against.  Setting ``timeout`` forces the pool path even at
``jobs=1``: a hung cell can only be killed from outside its process.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: test-only fault hooks, read inside the worker: a cell whose label
#: equals the value of KILL dies by SIGKILL (simulating an OOM-killed or
#: segfaulting worker); a cell matching HANG sleeps far past any test
#: timeout (simulating a livelocked cell).  Unset in production.
TEST_KILL_ENV = "REPRO_SWEEP_TEST_KILL"
TEST_HANG_ENV = "REPRO_SWEEP_TEST_HANG"
_HANG_SECONDS = 60.0

from repro.harness.cachedir import CellCache, cell_fingerprint, fingerprint_key
from repro.harness.experiment import (
    RunKey,
    default_config,
    memo_lookup,
    memo_store,
    run_cell,
)
from repro.prof.runlog import Progress, RunLog
from repro.sim.config import TABLE_I, MachineConfig
from repro.sim.stats import MachineStats
from repro.workloads import WorkloadConfig


class SweepMonitor:
    """Fan-in point for campaign telemetry: forwards cell lifecycle
    events to an optional ``repro.runlog/1`` writer and an optional live
    progress line.  With neither attached every call is a no-op, so the
    engine's behaviour (and its deterministic results) are unchanged."""

    def __init__(
        self,
        total: int,
        runlog: Optional[RunLog] = None,
        progress: Optional[Progress] = None,
    ) -> None:
        self.runlog = runlog
        self.progress = progress
        self.total = total
        self.done = 0

    @property
    def enabled(self) -> bool:
        return self.runlog is not None or self.progress is not None

    def started(self, label: str, index: int) -> None:
        if self.runlog is not None:
            self.runlog.cell_start(label, index)

    def finished(
        self,
        label: str,
        index: int,
        ok: bool,
        wall_time_s: float,
        source: str = "run",
        worker: Optional[int] = None,
    ) -> None:
        self.done += 1
        if self.runlog is not None:
            self.runlog.cell_finish(
                label, index, ok, wall_time_s, source=source, worker=worker
            )
            self.runlog.maybe_heartbeat(self.done)
        if self.progress is not None:
            self.progress.update(self.done)

    def close(self, errors: int, busy_time_s: float) -> None:
        if self.runlog is not None:
            self.runlog.finish(self.done, errors, busy_time_s)
        if self.progress is not None:
            self.progress.close()


def measure_program_cycles(
    program, design: str, machine_cfg: MachineConfig = TABLE_I
) -> int:
    """Makespan of one already-compiled program on one design.

    The repair engine (:mod:`repro.analysis.repair`) uses this to price
    accepted over-serialization edits in real simulated cycles — same
    machine, same config as the sweep cells, so the numbers are
    comparable with the headline figures.
    """
    from repro.sim.machine import Machine

    return Machine(design, machine_cfg).run(program).cycles


@dataclass(frozen=True)
class SweepCell:
    """One fully-specified simulation: everything that affects its result."""

    benchmark: str
    design: str
    model: str = "txn"
    ops_per_thread: int = 48
    ops_per_region: int = 1
    machine_cfg: MachineConfig = TABLE_I

    def workload_cfg(self) -> WorkloadConfig:
        return default_config(self.ops_per_thread, self.ops_per_region)

    def run_key(self) -> RunKey:
        return RunKey(
            self.benchmark,
            self.design,
            self.model,
            self.ops_per_thread,
            self.ops_per_region,
            self.machine_cfg,
        )

    def fingerprint(self) -> Dict[str, object]:
        return cell_fingerprint(
            self.benchmark, self.design, self.model,
            self.workload_cfg(), self.machine_cfg,
        )

    def key(self) -> str:
        """Content-address of this cell (the on-disk cache key)."""
        return fingerprint_key(self.fingerprint())

    def label(self) -> str:
        return f"{self.benchmark}/{self.design}/{self.model}"


@dataclass
class CellFailure:
    """Typed provenance of one cell's failure.

    ``kind`` is ``"exception"`` (the cell raised), ``"timeout"`` (it
    exceeded the per-cell budget and its worker was killed) or
    ``"worker-lost"`` (its worker process died — OOM killer, segfault,
    external SIGKILL).  ``attempts`` counts every execution attempt,
    including retries.
    """

    kind: str
    exception: str  #: exception class name (or a synthetic one)
    message: str
    traceback: str = ""
    attempts: int = 1

    def __str__(self) -> str:
        return self.traceback or f"{self.exception}: {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "exception": self.exception,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }


@dataclass
class CellResult:
    """Outcome of one cell: stats on success, a typed failure otherwise."""

    cell: SweepCell
    stats: Optional[MachineStats]
    failure: Optional[CellFailure] = None
    wall_time: float = 0.0
    #: where the result came from: ``memo`` | ``cache`` | ``run``.
    source: str = "run"

    @property
    def error(self) -> Optional[str]:
        """Human-readable failure text (the traceback when available)."""
        return None if self.failure is None else str(self.failure)

    @property
    def ok(self) -> bool:
        return self.failure is None and self.stats is not None


@dataclass
class SweepResult:
    """All cell results, in input order, plus sweep-level accounting."""

    cells: List[CellResult]
    jobs: int = 1
    wall_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    memo_hits: int = 0

    def __post_init__(self) -> None:
        self._by_cell: Dict[SweepCell, CellResult] = {
            res.cell: res for res in self.cells
        }

    @property
    def errors(self) -> int:
        return sum(1 for res in self.cells if not res.ok)

    def result_for(self, cell: SweepCell) -> CellResult:
        return self._by_cell[cell]

    def stats_for(self, cell: SweepCell) -> MachineStats:
        """Stats of ``cell``; raises if the cell failed or is absent."""
        res = self._by_cell.get(cell)
        if res is None:
            raise KeyError(f"cell {cell.label()} was not part of this sweep")
        if not res.ok:
            raise RuntimeError(f"cell {cell.label()} failed:\n{res.error}")
        assert res.stats is not None
        return res.stats

    def to_json(self, deterministic: bool = False) -> Dict[str, object]:
        from repro.obs.export import sweep_to_json

        return sweep_to_json(self, deterministic=deterministic)


@dataclass
class CellPlan:
    """Re-enterable execution plan for a cell list.

    Splits a campaign into what is already resolved (``results`` slots
    filled from prior journal replay, the in-process memo, or the
    on-disk cache) and what remains to run (``pending``: unique
    outstanding cell -> every input index it satisfies).  Both
    :func:`run_sweep` and the campaign service's coordinator build one;
    the coordinator additionally seeds ``done`` from its write-ahead
    journal, which is what makes a ``kill -9``'d campaign resumable with
    exactly-once cell accounting — an index resolved in an earlier life
    is never re-executed, only re-read.
    """

    cells: List[SweepCell]
    results: List[Optional[CellResult]]
    pending: Dict[SweepCell, List[int]]
    memo_hits: int = 0
    cache_hits: int = 0

    def outstanding(self) -> List[SweepCell]:
        """Unique cells still to execute, in first-appearance order."""
        return list(self.pending)

    def first_index(self) -> Dict[SweepCell, int]:
        return {cell: idxs[0] for cell, idxs in self.pending.items()}

    @property
    def complete(self) -> bool:
        return all(res is not None for res in self.results)

    def finish(self) -> List[CellResult]:
        """The fully-resolved result list, in input order."""
        assert self.complete, "plan finished with unresolved cells"
        return [res for res in self.results if res is not None]


def plan_cells(
    cells: Iterable[SweepCell],
    cache: Optional[CellCache] = None,
    use_memo: bool = True,
    done: Optional[Dict[int, CellResult]] = None,
    monitor: Optional[SweepMonitor] = None,
) -> CellPlan:
    """Resolve memo/cache/``done`` hits; dedupe the rest into a plan.

    ``done`` maps input indices to already-settled results (a resumed
    campaign's journal replay); those indices are taken as-is and their
    cells charged to no one.  Identical outstanding cells are planned
    once and fanned back out to every index at settle time.
    """
    cell_list = list(cells)
    results: List[Optional[CellResult]] = [None] * len(cell_list)
    pending: Dict[SweepCell, List[int]] = {}
    memo_hits = cache_hits = 0
    for idx, cell in enumerate(cell_list):
        if done is not None and idx in done:
            results[idx] = done[idx]
            continue
        earlier = pending.get(cell)
        if earlier is not None:
            earlier.append(idx)
            continue
        if use_memo:
            hit = memo_lookup(cell.run_key())
            if hit is not None:
                results[idx] = CellResult(cell, hit, source="memo")
                memo_hits += 1
                if monitor is not None and monitor.enabled:
                    monitor.finished(cell.label(), idx, True, 0.0, source="memo")
                continue
        if cache is not None:
            t_cell = time.perf_counter()
            disk = cache.lookup(cell.fingerprint())
            if disk is not None:
                wall = time.perf_counter() - t_cell
                results[idx] = CellResult(
                    cell, disk, wall_time=wall,
                    source="cache",
                )
                cache_hits += 1
                if use_memo:
                    memo_store(cell.run_key(), disk)
                if monitor is not None and monitor.enabled:
                    monitor.finished(cell.label(), idx, True, wall, source="cache")
                continue
        pending[cell] = [idx]
    return CellPlan(
        cells=cell_list,
        results=results,
        pending=pending,
        memo_hits=memo_hits,
        cache_hits=cache_hits,
    )


def settle_outcome(
    plan: CellPlan,
    cell: SweepCell,
    status: str,
    payload: object,
    seconds: float,
    attempts: int,
    cache: Optional[CellCache] = None,
    use_memo: bool = True,
) -> CellResult:
    """Record one outstanding cell's outcome and fan it to its indices."""
    if status == "ok":
        assert isinstance(payload, MachineStats)
        res = CellResult(cell, payload, wall_time=seconds, source="run")
        if use_memo:
            memo_store(cell.run_key(), payload)
        if cache is not None:
            cache.store(cell.fingerprint(), payload)
    else:
        res = CellResult(
            cell,
            None,
            failure=_failure(status, payload, attempts),
            wall_time=seconds,
        )
    for idx in plan.pending[cell]:
        plan.results[idx] = res
    return res


def expand_cells(
    benchmarks: Sequence[str],
    designs: Sequence[str],
    models: Sequence[str] = ("txn",),
    ops_per_thread: int = 48,
    ops_per_region: int = 1,
    machine_cfg: MachineConfig = TABLE_I,
) -> List[SweepCell]:
    """Cartesian (benchmark x design x model) cell list, in stable order."""
    return [
        SweepCell(bench, design, model, ops_per_thread, ops_per_region, machine_cfg)
        for bench in benchmarks
        for design in designs
        for model in models
    ]


def _execute(cell: SweepCell) -> Tuple[str, object, float, int]:
    """Run one cell; never raises.  Returns (status, payload, seconds,
    worker pid).

    ``payload`` is the :class:`MachineStats` on ``"ok"``, or an
    ``(exception class name, message, traceback)`` triple on ``"error"``.
    """
    if os.environ.get(TEST_KILL_ENV) == cell.label():
        os.kill(os.getpid(), signal.SIGKILL)
    if os.environ.get(TEST_HANG_ENV) == cell.label():
        time.sleep(_HANG_SECONDS)
    t0 = time.perf_counter()
    try:
        stats = run_cell(
            cell.benchmark,
            cell.design,
            cell.model,
            ops_per_thread=cell.ops_per_thread,
            ops_per_region=cell.ops_per_region,
            machine_cfg=cell.machine_cfg,
        )
        return "ok", stats, time.perf_counter() - t0, os.getpid()
    except Exception as exc:
        payload = (type(exc).__name__, str(exc), traceback.format_exc())
        return "error", payload, time.perf_counter() - t0, os.getpid()


def _failure(status: str, payload: object, attempts: int) -> CellFailure:
    """Build the typed failure record for a non-``ok`` outcome."""
    if status == "error":
        exc_name, message, tb = payload  # type: ignore[misc]
        return CellFailure(
            kind="exception",
            exception=str(exc_name),
            message=str(message),
            traceback=str(tb),
            attempts=attempts,
        )
    if status == "timeout":
        return CellFailure(
            kind="timeout",
            exception="TimeoutError",
            message=str(payload),
            attempts=attempts,
        )
    return CellFailure(
        kind="worker-lost",
        exception="BrokenProcessPool",
        message=str(payload),
        attempts=attempts,
    )


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a pool that may contain hung or dead workers.

    A plain ``shutdown`` would block on (or leak) a hung worker, so the
    worker processes are terminated first.
    """
    for proc in list(getattr(pool, "_processes", {}).values() or []):
        try:
            proc.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_solo(
    cell: SweepCell, timeout: Optional[float], retries: int, prior_attempts: int
) -> Tuple[str, object, float, Optional[int], int]:
    """Execute one cell in its own single-worker pool, with retries.

    Full isolation: if the worker dies or hangs here, this cell is the
    culprit by construction.  Returns (status, payload, seconds, worker
    pid or None, total attempts including ``prior_attempts``).
    """
    attempts = prior_attempts
    last: Tuple[str, object, float, Optional[int]] = (
        "worker-lost", "cell was never executed", 0.0, None
    )
    for _ in range(retries + 1):
        attempts += 1
        pool = ProcessPoolExecutor(max_workers=1)
        fut = pool.submit(_execute, cell)
        try:
            last = fut.result(timeout=timeout)
            pool.shutdown()
        except FuturesTimeout:
            _kill_pool(pool)
            last = (
                "timeout",
                f"cell exceeded the per-cell timeout of {timeout:g}s",
                float(timeout or 0.0),
                None,
            )
            continue
        except Exception as exc:  # worker process died mid-cell
            _kill_pool(pool)
            last = (
                "worker-lost",
                f"worker process died while running this cell: {exc!r}",
                0.0,
                None,
            )
            continue
        if last[0] == "ok":
            break
    return last[0], last[1], last[2], last[3], attempts


def _run_pool(
    unique: List[SweepCell],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    monitor: Optional[SweepMonitor] = None,
    index_of: Optional[Dict[SweepCell, int]] = None,
) -> Dict[SweepCell, Tuple[str, object, float, Optional[int], int]]:
    """Fan cells over a process pool, surviving hangs and dead workers.

    Clean outcomes (ok / cell raised) are attributed in the parallel
    batch, with failed cells re-batched while they have retries left.  A
    hang or worker death cannot be attributed safely inside a shared
    pool — the broken future is not necessarily the broken cell — so the
    pool is torn down and every unfinished cell re-runs through
    :func:`_run_solo`, where blame is unambiguous.  One poisoned cell
    therefore fails alone; its neighbours complete on the respawned path.
    """
    outcomes: Dict[SweepCell, Tuple[str, object, float, Optional[int], int]] = {}
    attempts: Dict[SweepCell, int] = {cell: 0 for cell in unique}

    def _idx(cell: SweepCell) -> int:
        return index_of.get(cell, 0) if index_of is not None else 0

    def _record(
        cell: SweepCell, status: str, payload: object, seconds: float,
        pid: Optional[int],
    ) -> None:
        outcomes[cell] = (status, payload, seconds, pid, attempts[cell])
        if monitor is not None:
            monitor.finished(
                cell.label(), _idx(cell), status == "ok", seconds,
                source="run", worker=pid,
            )

    batch = list(unique)
    solo: List[SweepCell] = []
    while batch:
        for cell in batch:
            attempts[cell] += 1
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(batch)))
        futures = []
        for cell in batch:
            if monitor is not None:
                monitor.started(cell.label(), _idx(cell))
            futures.append((cell, pool.submit(_execute, cell)))
        retry_batch: List[SweepCell] = []
        broken = False
        for cell, fut in futures:
            if broken:
                # The pool is compromised: harvest finished results,
                # route everything else through isolated re-execution
                # (uncharged — the in-flight attempt was aborted through
                # no fault that can be pinned on the cell yet).
                done_ok = False
                if fut.done():
                    try:
                        status, payload, seconds, pid = fut.result(timeout=0)
                        done_ok = True
                    except Exception:
                        done_ok = False
                if done_ok:
                    if status == "ok" or attempts[cell] > retries:
                        _record(cell, status, payload, seconds, pid)
                    else:
                        retry_batch.append(cell)
                else:
                    attempts[cell] -= 1
                    solo.append(cell)
                continue
            try:
                status, payload, seconds, pid = fut.result(timeout=timeout)
            except FuturesTimeout:
                # `cell` hung (or is starved behind a hung neighbour):
                # isolation will tell, with the timeout measured fairly
                # from its own start.
                broken = True
                attempts[cell] -= 1
                solo.append(cell)
                continue
            except Exception:
                # The worker running *some* cell died and broke the
                # shared pool; which cell is the culprit is unknowable
                # from here.
                broken = True
                attempts[cell] -= 1
                solo.append(cell)
                continue
            if status == "ok" or attempts[cell] > retries:
                _record(cell, status, payload, seconds, pid)
            else:
                retry_batch.append(cell)
        _kill_pool(pool) if broken else pool.shutdown()
        batch = retry_batch
    for cell in solo:
        if monitor is not None:
            monitor.started(cell.label(), _idx(cell))
        status, payload, seconds, pid, n_attempts = _run_solo(
            cell, timeout, retries, attempts[cell]
        )
        attempts[cell] = n_attempts
        _record(cell, status, payload, seconds, pid)
    return outcomes


def run_sweep(
    cells: Iterable[SweepCell],
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    use_memo: bool = True,
    timeout: Optional[float] = None,
    retries: int = 0,
    runlog: Optional[RunLog] = None,
    progress: Optional[Progress] = None,
) -> SweepResult:
    """Evaluate every cell, fanning misses out over ``jobs`` processes.

    ``timeout`` bounds each cell's execution in seconds (enforced by
    killing the cell's worker process; forces the pool path even at
    ``jobs=1``).  ``retries`` re-runs a failing cell up to that many
    extra times before recording its :class:`CellFailure`.  ``runlog``
    streams ``repro.runlog/1`` campaign telemetry; ``progress`` drives a
    live status line — both are observation-only and never alter
    results (their wall-clock content is exactly why ``--deterministic``
    sweeps refuse them at the CLI).
    """
    cell_list = list(cells)
    t0 = time.perf_counter()
    monitor = SweepMonitor(len(cell_list), runlog=runlog, progress=progress)

    # Resolve memo and disk hits in the parent; dedupe the remainder so
    # identical cells are simulated once and fanned back out.
    plan = plan_cells(cell_list, cache=cache, use_memo=use_memo, monitor=monitor)
    cache_misses = len(plan.pending) if cache is not None else 0

    unique = plan.outstanding()
    first_index = plan.first_index()
    if (jobs > 1 or timeout is not None) and unique:
        by_cell = _run_pool(
            unique, max(jobs, 1), timeout, retries,
            monitor=monitor if monitor.enabled else None,
            index_of=first_index,
        )
        outcomes = [(cell,) + by_cell[cell] for cell in unique]
    else:
        outcomes = []
        for cell in unique:
            if monitor.enabled:
                monitor.started(cell.label(), first_index[cell])
            status, payload, seconds, pid = _execute(cell)
            attempts = 1
            while status != "ok" and attempts <= retries:
                status, payload, seconds, pid = _execute(cell)
                attempts += 1
            if monitor.enabled:
                monitor.finished(
                    cell.label(), first_index[cell], status == "ok", seconds,
                    source="run", worker=pid,
                )
            outcomes.append((cell, status, payload, seconds, pid, attempts))

    for cell, status, payload, seconds, _pid, attempts in outcomes:
        res = settle_outcome(
            plan, cell, status, payload, seconds, attempts,
            cache=cache, use_memo=use_memo,
        )
        if monitor.enabled:
            # Duplicate cells shared this execution; account them so the
            # campaign's done-count reaches the input cell total.
            for idx in plan.pending[cell][1:]:
                monitor.finished(cell.label(), idx, res.ok, 0.0, source="memo")

    final = plan.finish()
    result = SweepResult(
        cells=final,
        jobs=jobs,
        wall_time=time.perf_counter() - t0,
        cache_hits=plan.cache_hits,
        cache_misses=cache_misses,
        memo_hits=plan.memo_hits,
    )
    if monitor.enabled:
        monitor.close(
            errors=result.errors,
            busy_time_s=sum(res.wall_time for res in final),
        )
    return result
