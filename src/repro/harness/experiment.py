"""Experiment driver: (benchmark x design x language model) -> stats.

Each hardware design replays a trace generated with its own ISA dialect —
the same functional work, instrumented with the design's ordering
primitives, exactly as the paper compiles each benchmark once per target.
Results are memoised per process because several figures share runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.lang.dialect import dialect_for_design
from repro.sim.config import MachineConfig, TABLE_I
from repro.sim.machine import Machine
from repro.sim.stats import MachineStats
from repro.workloads import WORKLOADS, WorkloadConfig
from repro.workloads.base import GeneratedRun, generate_canonical, specialize_run

#: design order used in every figure (Figure 7's legend order).
ALL_DESIGNS = ("intel-x86", "hops", "no-persist-queue", "strandweaver", "non-atomic")

#: language-level persistency models evaluated (Section VI-A).
ALL_MODELS = ("txn", "atlas", "sfr")


@dataclass(frozen=True)
class RunKey:
    """Complete identity of one simulation cell.

    Embeds the *full* :class:`MachineConfig` (a frozen, hashable
    dataclass tree).  A previous revision fingerprinted only the two
    strand-buffer fields, so two configs differing in PM timing or core
    parameters silently shared a memoised result.
    """

    benchmark: str
    design: str
    model: str
    ops_per_thread: int
    ops_per_region: int
    machine_cfg: MachineConfig


_CACHE: Dict[RunKey, MachineStats] = {}

#: canonical marker runs, keyed by (benchmark, model, workload config) —
#: one functional execution serves every design (repro.lang.specialize).
_CANONICAL: Dict[tuple, GeneratedRun] = {}

#: specialized runs, keyed additionally by dialect name.  Designs that
#: share a dialect (strandweaver and no-persist-queue both replay strand
#: traces) share one program object *and* its per-trace compiled arrays;
#: machine configuration never affects generation, so Figure 9's six
#: strand-buffer variants also all hit this cache.
_PROGRAMS: Dict[tuple, GeneratedRun] = {}


def generation_for_cell(
    benchmark: str, design: str, model: str, wl_cfg: WorkloadConfig
) -> GeneratedRun:
    """Generate (or reuse) the run a cell replays.

    Two-level cache: the functional workload executes once per
    (benchmark, model, config) under the marker dialect, then each
    concrete dialect's program is specialized from it once.
    """
    dialect = dialect_for_design(design).name
    pkey = (benchmark, model, wl_cfg, dialect)
    run = _PROGRAMS.get(pkey)
    if run is None:
        ckey = (benchmark, model, wl_cfg)
        canonical = _CANONICAL.get(ckey)
        if canonical is None:
            canonical = generate_canonical(WORKLOADS[benchmark], wl_cfg, model)
            _CANONICAL[ckey] = canonical
        run = specialize_run(canonical, design)
        _PROGRAMS[pkey] = run
    return run


def memo_lookup(key: RunKey) -> Optional[MachineStats]:
    """In-process memo probe (shared with :mod:`repro.harness.sweep`)."""
    return _CACHE.get(key)


def memo_store(key: RunKey, stats: MachineStats) -> None:
    _CACHE[key] = stats


def default_config(ops_per_thread: int = 48, ops_per_region: int = 1) -> WorkloadConfig:
    """The workload scale used by the reproduction figures.

    The paper runs 50K ops per benchmark in gem5; we default to a smaller
    scale that finishes in seconds per cell while staying in steady state
    (speedups are stable beyond ~30 ops/thread).

    The persistent heap scales with the run length (TPC-C's tables grow
    with the op count) but never shrinks below the historical 8 MiB
    floor, so every configuration that fit before is byte-identical.
    Allocation is bump-pointer from a fixed base, so a larger heap
    changes no addresses — only how far the workloads may grow.
    """
    pm_size = 1 << 23
    need = 8192 * 8 * ops_per_thread  # generous per-op footprint
    while pm_size < need:
        pm_size <<= 1
    return WorkloadConfig(
        n_threads=8,
        ops_per_thread=ops_per_thread,
        ops_per_region=ops_per_region,
        log_entries=4096,
        pm_size=pm_size,
    )


def run_cell(
    benchmark: str,
    design: str,
    model: str = "txn",
    ops_per_thread: int = 48,
    ops_per_region: int = 1,
    machine_cfg: Optional[MachineConfig] = None,
) -> MachineStats:
    """Run one (benchmark, design, model) cell and return its stats."""
    if benchmark not in WORKLOADS:
        raise ValueError(f"unknown benchmark {benchmark!r}; choose from {sorted(WORKLOADS)}")
    cfg = machine_cfg or TABLE_I
    key = RunKey(benchmark, design, model, ops_per_thread, ops_per_region, cfg)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    wl_cfg = default_config(ops_per_thread, ops_per_region)
    run = generation_for_cell(benchmark, design, model, wl_cfg)
    stats = Machine(design, cfg).run(run.program)
    _CACHE[key] = stats
    return stats


def speedup(
    benchmark: str,
    design: str,
    model: str = "txn",
    baseline: str = "intel-x86",
    **kwargs,
) -> float:
    """Speedup of ``design`` over ``baseline`` on one benchmark."""
    base = run_cell(benchmark, baseline, model, **kwargs)
    this = run_cell(benchmark, design, model, **kwargs)
    return this.speedup_over(base)


def memo_size() -> int:
    """Number of distinct cells memoised so far (perf accounting: the
    bench recorder counts a figure's cells as its memo-entry delta)."""
    return len(_CACHE)


def clear_memo() -> None:
    """Forget memoised *stats* but keep generated programs.

    The bench recorder uses this between figures: each figure's
    simulation cost is measured cold, while trace generation — one
    functional execution per (benchmark, model, config), specialized and
    compiled once per dialect — is the shared, reusable artefact the
    compiled-engine design intends (figures legitimately replay the same
    programs; the paper, likewise, compiles each benchmark once).
    """
    _CACHE.clear()


def clear_cache() -> None:
    _CACHE.clear()
    _CANONICAL.clear()
    _PROGRAMS.clear()
