"""Regeneration of every evaluation table and figure of the paper.

Each function returns the figure's data and a printable rendering:

* :func:`table1`  — simulator configuration (Table I)
* :func:`table2`  — benchmarks and CKC write intensity (Table II)
* :func:`figure7` — speedup over Intel x86 per design (Figure 7)
* :func:`figure8` — persist-order CPU stalls normalised to x86 (Figure 8)
* :func:`figure9` — strand-buffer configuration sensitivity (Figure 9)
* :func:`figure10` — speedup vs operations per SFR (Figure 10)

Every figure first *declares* its full cell list — the (benchmark,
design, model, knobs, machine config) tuples it needs — then hands the
list to :func:`repro.harness.sweep.run_sweep` and renders from the
returned results.  ``jobs=1`` (the default) evaluates cells inline and
is bit-identical to the historical serial path; ``jobs=N`` fans the
same cells out over N processes, and ``cache=CellCache()`` reuses
results across invocations via the content-addressed on-disk cache.

Absolute numbers differ from the paper (our substrate is a Python
queue-level model, not gem5 + real Optane), but the comparisons the paper
draws — who wins, roughly by how much, where the curves saturate —
are preserved; see EXPERIMENTS.md for the side-by-side record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.cachedir import CellCache
from repro.harness.experiment import ALL_DESIGNS, ALL_MODELS
from repro.harness.report import render_table
from repro.harness.sweep import SweepCell, SweepResult, run_sweep
from repro.sim.config import TABLE_I
from repro.sim.stats import geomean
from repro.workloads import MICROBENCHMARKS

#: benchmark order of Table II / Figure 7.
BENCH_ORDER = (
    "queue",
    "hashmap",
    "arrayswap",
    "rbtree",
    "tpcc",
    "nstore-rd",
    "nstore-bal",
    "nstore-wr",
)

#: Figure 9 configurations: (strand buffers, entries per buffer).
FIG9_CONFIGS = ((1, 1), (2, 2), (2, 4), (4, 2), (4, 4), (8, 8))

#: Figure 10 sweep: data-structure operations per failure-atomic SFR.
FIG10_OPS_PER_REGION = (1, 2, 4, 8)


@dataclass
class FigureResult:
    """Data plus rendering for one regenerated artefact."""

    name: str
    columns: List[str]
    rows: List[List[object]]
    summary: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        out = render_table(self.name, self.columns, self.rows)
        if self.summary:
            out += "\n" + "  ".join(f"{k}={v:.2f}" for k, v in self.summary.items())
        return out

    def to_json(self) -> Dict[str, object]:
        """Machine-readable form of the artefact (``--json`` CLI flag)."""
        return {
            "schema": "repro.figure/1",
            "name": self.name,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "summary": dict(self.summary),
        }


def table1() -> FigureResult:
    """Table I: simulator specification."""
    rows = [[k, v] for k, v in TABLE_I.table1().items()]
    return FigureResult("Table I: simulator specification", ["component", "value"], rows)


def table2(
    ops_per_thread: int = 48,
    jobs: int = 1,
    cache: Optional[CellCache] = None,
) -> FigureResult:
    """Table II: benchmark descriptions and CKC (CLWBs per 1000 cycles).

    CKC is measured on the NON-ATOMIC design, as in the paper.
    """
    descriptions = {
        "queue": "insert/delete to queue",
        "hashmap": "read/update to hashmap",
        "arrayswap": "swap of array elements",
        "rbtree": "insert/delete to RB-tree",
        "tpcc": "new-order trans. from TPCC",
        "nstore-rd": "90% read/10% write KV",
        "nstore-bal": "50% read/50% write KV",
        "nstore-wr": "10% read/90% write KV",
    }
    cells = [
        SweepCell(bench, "non-atomic", "txn", ops_per_thread) for bench in BENCH_ORDER
    ]
    sweep = run_sweep(cells, jobs=jobs, cache=cache)
    rows = []
    for bench, cell in zip(BENCH_ORDER, cells):
        stats = sweep.stats_for(cell)
        rows.append([bench, descriptions[bench], round(stats.ckc, 2)])
    return FigureResult("Table II: benchmarks and CKC", ["benchmark", "description", "CKC"], rows)


def figure7(
    model: str = "txn",
    ops_per_thread: int = 48,
    designs: Sequence[str] = ALL_DESIGNS,
    jobs: int = 1,
    cache: Optional[CellCache] = None,
) -> FigureResult:
    """Figure 7: speedup over the Intel x86 design, per benchmark."""
    cells = [
        SweepCell(bench, design, model, ops_per_thread)
        for bench in BENCH_ORDER
        for design in tuple(designs) + ("intel-x86",)
    ]
    sweep = run_sweep(cells, jobs=jobs, cache=cache)
    rows = []
    per_design: Dict[str, List[float]] = {d: [] for d in designs}
    for bench in BENCH_ORDER:
        base = sweep.stats_for(SweepCell(bench, "intel-x86", model, ops_per_thread))
        row: List[object] = [bench]
        for design in designs:
            sp = sweep.stats_for(SweepCell(bench, design, model, ops_per_thread))
            value = sp.speedup_over(base)
            per_design[design].append(value)
            row.append(value)
        rows.append(row)
    rows.append(["geomean"] + [geomean(per_design[d]) for d in designs])
    summary = {
        "strandweaver_avg": geomean(per_design["strandweaver"]),
        "strandweaver_max": max(per_design["strandweaver"]),
        "sw_over_hops": geomean(per_design["strandweaver"]) / geomean(per_design["hops"]),
    }
    return FigureResult(
        f"Figure 7 ({model}): speedup over Intel x86",
        ["benchmark"] + list(designs),
        rows,
        summary,
    )


def figure8(
    model: str = "txn",
    ops_per_thread: int = 48,
    jobs: int = 1,
    cache: Optional[CellCache] = None,
) -> FigureResult:
    """Figure 8: persist-ordering CPU stalls, normalised to Intel x86."""
    designs = [d for d in ALL_DESIGNS if d != "non-atomic"]
    cells = [
        SweepCell(bench, design, model, ops_per_thread)
        for bench in BENCH_ORDER
        for design in designs
    ]
    sweep = run_sweep(cells, jobs=jobs, cache=cache)
    rows = []
    per_design: Dict[str, List[float]] = {d: [] for d in designs}
    for bench in BENCH_ORDER:
        base = sweep.stats_for(SweepCell(bench, "intel-x86", model, ops_per_thread))
        row: List[object] = [bench]
        for design in designs:
            st = sweep.stats_for(SweepCell(bench, design, model, ops_per_thread))
            ratio = st.stall_ratio_vs(base)
            per_design[design].append(ratio)
            row.append(ratio)
        rows.append(row)
    rows.append(
        ["mean"] + [sum(per_design[d]) / len(per_design[d]) for d in designs]
    )
    sw_mean = sum(per_design["strandweaver"]) / len(per_design["strandweaver"])
    npq_mean = sum(per_design["no-persist-queue"]) / len(per_design["no-persist-queue"])
    summary = {
        "strandweaver_stall_reduction_pct": 100.0 * (1 - sw_mean),
        "no_pq_stall_reduction_pct": 100.0 * (1 - npq_mean),
    }
    return FigureResult(
        f"Figure 8 ({model}): persist-order stalls normalised to x86",
        ["benchmark"] + designs,
        rows,
        summary,
    )


def figure9(
    ops_per_thread: int = 48,
    jobs: int = 1,
    cache: Optional[CellCache] = None,
) -> FigureResult:
    """Figure 9: sensitivity to (strand buffers, entries per buffer).

    As in the paper, shown for the SFR implementation, as geomean speedup
    over the Intel x86 baseline across the microbenchmarks.
    """
    configs = {
        (n_buffers, entries): TABLE_I.with_strand(n_buffers, entries)
        for n_buffers, entries in FIG9_CONFIGS
    }
    cells = [
        SweepCell(bench, "intel-x86", "sfr", ops_per_thread) for bench in MICROBENCHMARKS
    ] + [
        SweepCell(bench, "strandweaver", "sfr", ops_per_thread, machine_cfg=cfg)
        for cfg in configs.values()
        for bench in MICROBENCHMARKS
    ]
    sweep = run_sweep(cells, jobs=jobs, cache=cache)
    rows = []
    speedups: List[Tuple[str, float]] = []
    for (n_buffers, entries), cfg in configs.items():
        values = []
        for bench in MICROBENCHMARKS:
            base = sweep.stats_for(SweepCell(bench, "intel-x86", "sfr", ops_per_thread))
            st = sweep.stats_for(
                SweepCell(bench, "strandweaver", "sfr", ops_per_thread, machine_cfg=cfg)
            )
            values.append(st.speedup_over(base))
        label = f"({n_buffers},{entries})"
        mean = geomean(values)
        speedups.append((label, mean))
        rows.append([label] + values + [mean])
    summary = {label: value for label, value in speedups}
    return FigureResult(
        "Figure 9: StrandWeaver config (buffers, entries) — SFR speedup over x86",
        ["config"] + list(MICROBENCHMARKS) + ["geomean"],
        rows,
        summary,
    )


def figure10(
    ops_per_thread: int = 48,
    jobs: int = 1,
    cache: Optional[CellCache] = None,
) -> FigureResult:
    """Figure 10: speedup over x86 vs operations per failure-atomic SFR."""
    cells = [
        SweepCell(bench, design, "sfr", ops_per_thread, opr)
        for bench in MICROBENCHMARKS
        for opr in FIG10_OPS_PER_REGION
        for design in ("intel-x86", "strandweaver")
    ]
    sweep = run_sweep(cells, jobs=jobs, cache=cache)
    rows = []
    for bench in MICROBENCHMARKS:
        row: List[object] = [bench]
        for opr in FIG10_OPS_PER_REGION:
            base = sweep.stats_for(SweepCell(bench, "intel-x86", "sfr", ops_per_thread, opr))
            st = sweep.stats_for(
                SweepCell(bench, "strandweaver", "sfr", ops_per_thread, opr)
            )
            row.append(st.speedup_over(base))
        rows.append(row)
    means = []
    for idx, opr in enumerate(FIG10_OPS_PER_REGION):
        means.append(geomean([row[idx + 1] for row in rows]))
    rows.append(["geomean"] + means)
    return FigureResult(
        "Figure 10: StrandWeaver speedup vs ops per SFR",
        ["benchmark"] + [f"{n} ops" for n in FIG10_OPS_PER_REGION],
        rows,
        {f"{n}_ops": m for n, m in zip(FIG10_OPS_PER_REGION, means)},
    )


def model_sensitivity(
    ops_per_thread: int = 48,
    jobs: int = 1,
    cache: Optional[CellCache] = None,
) -> FigureResult:
    """Section VI-B: StrandWeaver speedup per language-level model."""
    cells = [
        SweepCell(bench, design, model, ops_per_thread)
        for model in ALL_MODELS
        for bench in BENCH_ORDER
        for design in ("intel-x86", "strandweaver")
    ]
    sweep = run_sweep(cells, jobs=jobs, cache=cache)
    rows = []
    summary = {}
    for model in ALL_MODELS:
        values = []
        for bench in BENCH_ORDER:
            base = sweep.stats_for(SweepCell(bench, "intel-x86", model, ops_per_thread))
            st = sweep.stats_for(SweepCell(bench, "strandweaver", model, ops_per_thread))
            values.append(st.speedup_over(base))
        mean = geomean(values)
        rows.append([model] + values + [mean])
        summary[model] = mean
    return FigureResult(
        "Language-model sensitivity: StrandWeaver speedup over x86",
        ["model"] + list(BENCH_ORDER) + ["geomean"],
        rows,
        summary,
    )


__all__ = [
    "BENCH_ORDER",
    "FIG9_CONFIGS",
    "FIG10_OPS_PER_REGION",
    "FigureResult",
    "SweepResult",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "model_sensitivity",
    "table1",
    "table2",
]
