"""Fixed-width table/series rendering for the experiment harness."""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    col_width: int = 12,
    first_width: int = 14,
) -> str:
    """Render a simple fixed-width table as a string."""
    out = [title, "=" * len(title)]
    header = f"{columns[0]:<{first_width}}" + "".join(
        f"{c:>{col_width}}" for c in columns[1:]
    )
    out.append(header)
    out.append("-" * len(header))
    for row in rows:
        cells = [f"{str(row[0]):<{first_width}}"]
        for cell in row[1:]:
            if isinstance(cell, float):
                cells.append(f"{cell:>{col_width}.2f}")
            else:
                cells.append(f"{str(cell):>{col_width}}")
        out.append("".join(cells))
    return "\n".join(out)


def render_series(title: str, series: Dict[str, List[float]], x_labels: Sequence[str]) -> str:
    """Render one line per series over labelled x points (figure data)."""
    rows = [[name] + values for name, values in series.items()]
    return render_table(title, ["series"] + list(x_labels), rows)
