"""Experiment drivers regenerating the paper's tables and figures."""

from repro.harness.experiment import ALL_DESIGNS, ALL_MODELS, run_cell, speedup
from repro.harness.figures import (
    figure7,
    figure8,
    figure9,
    figure10,
    model_sensitivity,
    table1,
    table2,
)

__all__ = [
    "ALL_DESIGNS",
    "ALL_MODELS",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "model_sensitivity",
    "run_cell",
    "speedup",
    "table1",
    "table2",
]
