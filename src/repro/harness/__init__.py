"""Experiment drivers regenerating the paper's tables and figures."""

from repro.harness.cachedir import CACHE_SCHEMA, DEFAULT_CACHE_DIR, CellCache
from repro.harness.experiment import ALL_DESIGNS, ALL_MODELS, run_cell, speedup
from repro.harness.figures import (
    figure7,
    figure8,
    figure9,
    figure10,
    model_sensitivity,
    table1,
    table2,
)
from repro.harness.sweep import (
    CellResult,
    SweepCell,
    SweepResult,
    expand_cells,
    run_sweep,
)

__all__ = [
    "ALL_DESIGNS",
    "ALL_MODELS",
    "CACHE_SCHEMA",
    "CellCache",
    "CellResult",
    "DEFAULT_CACHE_DIR",
    "SweepCell",
    "SweepResult",
    "expand_cells",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "model_sensitivity",
    "run_cell",
    "run_sweep",
    "speedup",
    "table1",
    "table2",
]
