"""Content-addressed on-disk result cache for simulation cells.

Each cached entry lives under ``.repro-cache/<k[:2]>/<k>.json`` where
``k`` is the SHA-256 of the cell's *complete* canonical fingerprint:
workload configuration, full machine configuration (every nested
dataclass field, not a hand-picked subset), design, language model and
the cache schema version.  The fingerprint is stored inside the entry
and re-compared on every read, so even a hash collision (or a corrupted
or hand-edited file) can never serve a foreign result — a lookup either
returns stats whose identity matched field-for-field, or it is a miss.

Entries are written atomically (temp file, ``fsync``, ``os.replace``) so
parallel sweep workers and concurrent sweeps can share one cache
directory without torn reads, and a machine crash racing the rename can
only leave behind the old entry, a stray ``.tmp`` file, or a complete
new entry — never a renamed-but-unwritten one.  Whatever garbage does
survive a crash (truncated JSON, a partial entry under the right name)
is rejected by the read-side verification and recomputed.  A
schema-version bump invalidates every existing entry implicitly: old
fingerprints no longer match, old files are just ignored.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from typing import Dict, Optional

from repro.obs.export import machine_stats_from_doc, machine_stats_to_doc
from repro.sim.config import MachineConfig
from repro.sim.stats import MachineStats
from repro.workloads import WorkloadConfig

#: Bump whenever the timing model or the cached payload layout changes
#: in a way that invalidates previously computed results.
CACHE_SCHEMA = "repro.cell/1"

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def cell_fingerprint(
    benchmark: str,
    design: str,
    model: str,
    workload_cfg: WorkloadConfig,
    machine_cfg: MachineConfig,
) -> Dict[str, object]:
    """Complete, canonical identity of one simulation cell."""
    return {
        "schema": CACHE_SCHEMA,
        "benchmark": benchmark,
        "design": design,
        "model": model,
        "workload": dataclasses.asdict(workload_cfg),
        "machine": dataclasses.asdict(machine_cfg),
    }


def fingerprint_key(fingerprint: Dict[str, object]) -> str:
    """SHA-256 of the canonical (sorted, compact) JSON fingerprint."""
    blob = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: a held lock file older than this is presumed abandoned even when its
#: owner PID cannot be proven dead (PID reuse, containers, NFS).
LOCK_STALE_S = 60.0


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe; unknown errors count as alive."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return True
    return True


class CacheLock:
    """Cross-process advisory lock on one cache entry, stale-tolerant.

    Two concurrent campaigns storing the same content-addressed entry
    must neither tear the file (the atomic rename already guarantees
    that) nor deadlock behind a lock whose owner was ``kill -9``'d.  The
    lock is a ``<entry>.lock`` file created with ``O_CREAT|O_EXCL``
    containing the owner's PID; a contender that finds the file checks
    the owner — dead PID, or an mtime older than ``stale_s`` — and
    *breaks* a stale lock instead of waiting on it.  ``acquire`` is
    bounded by ``timeout_s`` and returns False rather than blocking
    forever, so the worst case against a live, slow owner is a skipped
    redundant write, never a hung campaign.
    """

    def __init__(
        self,
        path: str,
        timeout_s: float = 5.0,
        stale_s: float = LOCK_STALE_S,
        poll_s: float = 0.02,
    ) -> None:
        self.path = path
        self.timeout_s = timeout_s
        self.stale_s = stale_s
        self.poll_s = poll_s
        self._held = False

    # -- staleness ---------------------------------------------------------

    def _owner_pid(self) -> Optional[int]:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                return int(fh.read().strip().split()[0])
        except (OSError, ValueError, IndexError):
            return None

    def is_stale(self) -> bool:
        """True when the current holder is provably gone or too old."""
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return False  # lock vanished; not ours to break
        if age > self.stale_s:
            return True
        pid = self._owner_pid()
        # An unreadable PID on a *young* lock is a writer mid-create, not
        # staleness; only a parsed-and-dead owner forfeits early.
        return pid is not None and not _pid_alive(pid)

    def break_stale(self) -> bool:
        """Remove a stale lock file; True if a file was removed."""
        try:
            os.unlink(self.path)
            return True
        except OSError:
            return False  # raced with the owner's release or a rival breaker

    # -- acquire/release ---------------------------------------------------

    def acquire(self) -> bool:
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self.is_stale():
                    self.break_stale()
                    continue  # retry immediately against rival breakers
                if time.monotonic() >= deadline:
                    return False
                time.sleep(self.poll_s)
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(f"{os.getpid()} {time.time():.6f}\n")
            self._held = True
            return True

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "CacheLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class CellCache:
    """On-disk cache of :class:`MachineStats`, keyed by full fingerprint."""

    def __init__(
        self,
        root: str = DEFAULT_CACHE_DIR,
        lock_timeout_s: float = 5.0,
        lock_stale_s: float = LOCK_STALE_S,
    ) -> None:
        self.root = root
        self.lock_timeout_s = lock_timeout_s
        self.lock_stale_s = lock_stale_s

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def lock_for(self, key: str) -> CacheLock:
        return CacheLock(
            self.path_for(key) + ".lock",
            timeout_s=self.lock_timeout_s,
            stale_s=self.lock_stale_s,
        )

    def lookup(self, fingerprint: Dict[str, object]) -> Optional[MachineStats]:
        """Return the cached stats, or None on miss.

        Stale schema versions, fingerprint mismatches (collisions,
        poisoned entries) and unreadable files are all treated as plain
        misses — the cell is recomputed, never served wrong.
        """
        path = self.path_for(fingerprint_key(fingerprint))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or doc.get("schema") != CACHE_SCHEMA:
            return None
        if doc.get("fingerprint") != fingerprint:
            return None
        try:
            return machine_stats_from_doc(doc["stats"])
        except (KeyError, TypeError, ValueError):
            return None

    def store(self, fingerprint: Dict[str, object], stats: MachineStats) -> str:
        """Atomically persist ``stats`` under the fingerprint's key.

        The temp file is flushed and ``fsync``'d *before* the rename:
        without it, a crash could reorder the rename ahead of the data
        and leave a correctly-named entry with truncated contents.

        Concurrent campaigns storing the same entry coordinate through a
        stale-tolerant :class:`CacheLock`: a dead writer's lock is
        broken, and a *live* rival holding it past the bounded wait means
        the identical bytes (the cache is content-addressed and the
        simulator deterministic) are already being written — the
        redundant write is skipped rather than deadlocking on it.
        """
        key = fingerprint_key(fingerprint)
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        lock = self.lock_for(key)
        if not lock.acquire():
            return path
        try:
            return self._write_entry(key, path, fingerprint, stats)
        finally:
            lock.release()

    def _write_entry(
        self,
        key: str,
        path: str,
        fingerprint: Dict[str, object],
        stats: MachineStats,
    ) -> str:
        doc = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "fingerprint": fingerprint,
            "stats": machine_stats_to_doc(stats),
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True, allow_nan=False)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path
