"""Content-addressed on-disk result cache for simulation cells.

Each cached entry lives under ``.repro-cache/<k[:2]>/<k>.json`` where
``k`` is the SHA-256 of the cell's *complete* canonical fingerprint:
workload configuration, full machine configuration (every nested
dataclass field, not a hand-picked subset), design, language model and
the cache schema version.  The fingerprint is stored inside the entry
and re-compared on every read, so even a hash collision (or a corrupted
or hand-edited file) can never serve a foreign result — a lookup either
returns stats whose identity matched field-for-field, or it is a miss.

Entries are written atomically (temp file, ``fsync``, ``os.replace``) so
parallel sweep workers and concurrent sweeps can share one cache
directory without torn reads, and a machine crash racing the rename can
only leave behind the old entry, a stray ``.tmp`` file, or a complete
new entry — never a renamed-but-unwritten one.  Whatever garbage does
survive a crash (truncated JSON, a partial entry under the right name)
is rejected by the read-side verification and recomputed.  A
schema-version bump invalidates every existing entry implicitly: old
fingerprints no longer match, old files are just ignored.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from repro.obs.export import machine_stats_from_doc, machine_stats_to_doc
from repro.sim.config import MachineConfig
from repro.sim.stats import MachineStats
from repro.workloads import WorkloadConfig

#: Bump whenever the timing model or the cached payload layout changes
#: in a way that invalidates previously computed results.
CACHE_SCHEMA = "repro.cell/1"

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def cell_fingerprint(
    benchmark: str,
    design: str,
    model: str,
    workload_cfg: WorkloadConfig,
    machine_cfg: MachineConfig,
) -> Dict[str, object]:
    """Complete, canonical identity of one simulation cell."""
    return {
        "schema": CACHE_SCHEMA,
        "benchmark": benchmark,
        "design": design,
        "model": model,
        "workload": dataclasses.asdict(workload_cfg),
        "machine": dataclasses.asdict(machine_cfg),
    }


def fingerprint_key(fingerprint: Dict[str, object]) -> str:
    """SHA-256 of the canonical (sorted, compact) JSON fingerprint."""
    blob = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CellCache:
    """On-disk cache of :class:`MachineStats`, keyed by full fingerprint."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = root

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def lookup(self, fingerprint: Dict[str, object]) -> Optional[MachineStats]:
        """Return the cached stats, or None on miss.

        Stale schema versions, fingerprint mismatches (collisions,
        poisoned entries) and unreadable files are all treated as plain
        misses — the cell is recomputed, never served wrong.
        """
        path = self.path_for(fingerprint_key(fingerprint))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or doc.get("schema") != CACHE_SCHEMA:
            return None
        if doc.get("fingerprint") != fingerprint:
            return None
        try:
            return machine_stats_from_doc(doc["stats"])
        except (KeyError, TypeError, ValueError):
            return None

    def store(self, fingerprint: Dict[str, object], stats: MachineStats) -> str:
        """Atomically persist ``stats`` under the fingerprint's key.

        The temp file is flushed and ``fsync``'d *before* the rename:
        without it, a crash could reorder the rename ahead of the data
        and leave a correctly-named entry with truncated contents.
        """
        key = fingerprint_key(fingerprint)
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        doc = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "fingerprint": fingerprint,
            "stats": machine_stats_to_doc(stats),
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True, allow_nan=False)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path
