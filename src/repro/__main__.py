"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro [table1|table2|fig7|fig8|fig9|fig10|models|all] [--ops N]
"""

import argparse
import sys

from repro.harness import (
    figure7,
    figure8,
    figure9,
    figure10,
    model_sensitivity,
    table1,
    table2,
)

ARTEFACTS = {
    "table1": lambda ops: table1(),
    "table2": lambda ops: table2(ops_per_thread=ops),
    "fig7": lambda ops: figure7(ops_per_thread=ops),
    "fig8": lambda ops: figure8(ops_per_thread=ops),
    "fig9": lambda ops: figure9(ops_per_thread=ops),
    "fig10": lambda ops: figure10(ops_per_thread=ops),
    "models": lambda ops: model_sensitivity(ops_per_thread=ops),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="StrandWeaver reproduction: regenerate evaluation artefacts",
    )
    parser.add_argument(
        "artefact",
        nargs="?",
        default="all",
        choices=sorted(ARTEFACTS) + ["all"],
        help="which table/figure to regenerate (default: all)",
    )
    parser.add_argument(
        "--ops", type=int, default=16,
        help="operations per thread (default 16; the paper used ~6250)",
    )
    args = parser.parse_args(argv)
    names = sorted(ARTEFACTS) if args.artefact == "all" else [args.artefact]
    for name in names:
        print(ARTEFACTS[name](args.ops).render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
