"""Command-line entry point: regenerate artefacts, trace runs, dump stats.

Usage::

    python -m repro [table1|table2|fig7|fig8|fig9|fig10|models|all] [--ops N] [-j N] [--json]
    python -m repro sweep [--workloads w1,w2|all] [--designs d1,d2|all] [-j N] [--json]
    python -m repro trace <workload> --design <d> [--model m] [--out trace.json]
    python -m repro bench [--ops N] [--out BENCH_trace.json]
    python -m repro bench --record [--baseline BENCH_date.json --max-regress PCT]
    python -m repro profile <workload> --design <d> [--sort cumtime] [--json|--out f]
    python -m repro crashtest <workload> --design <d> --crashes N [--seed S] [--json]
    python -m repro soak <workload> --seeds N [--design <d>] [--seed S] [--json]
    python -m repro lint <workload> [--design <d>|all] [--model m] [--json]
    python -m repro serve [--dir D] [--host H --port P] [--resume] [--drain]
    python -m repro submit <spec.json|-> [--url U] [--follow|--no-wait]

``trace`` replays one (workload, design, model) cell with the tracer on
and writes a Chrome/Perfetto trace-event JSON (open it in
ui.perfetto.dev) plus, with ``--stats-out``, the machine-readable stats
document.  ``bench`` runs every (benchmark, design) cell and writes a
deterministic summary the harness can diff across PRs.  ``crashtest``
crashes the simulator at N seeded fault points, recovers each crash
image and checks the workload's invariants — ``--design all`` runs the
differential oracle over every hardware design.  ``lint`` statically
analyses the compiled trace for persistency bugs (unflushed persists,
strand misuse, persistent races, over-serialization, torn writes)
without running the simulator — ``--design all`` lints every hardware
design and additionally fails if the deliberately broken NON-ATOMIC
design produces *no* errors (the linter must keep its teeth).  ``sweep``
evaluates an arbitrary (workload x design x model) matrix through the
parallel sweep engine and emits the ``repro.sweep/1`` artefact; figures
accept ``-j/--jobs`` to fan their cell lists over worker processes, and
both reuse results across invocations via the content-addressed on-disk
cache under ``.repro-cache/`` (disable with ``--no-cache``); ``--timeout``
and ``--retries`` bound each cell (a hung or killed worker fails only
its own cell).  ``soak`` runs a randomized fault campaign — per-case
crash points, media-fault models and power failures injected *inside*
recovery, all derived from one master seed — and shrinks any unexpected
violation to a minimal replayable reproducer (``repro.soak/1``).

``serve`` runs the crash-safe campaign service: a stdlib HTTP job API
(``POST /campaigns``, ``GET /campaigns/<id>``, ``GET
/campaigns/<id>/events``, ``POST /campaigns/<id>/cancel``) in front of
a checkpointed coordinator that journals every settled cell
write-ahead (``repro.campaign/1``) and shards work over supervised,
self-healing worker processes.  ``--resume`` replays half-finished
campaign journals from a previous life and continues them with
exactly-once cell accounting; ``--drain`` skips the HTTP listener and
just runs resumable campaigns to completion (crash-recovery in
scripts).  ``submit`` is the matching client: it posts a campaign spec
(a JSON file, or ``-`` for stdin), then waits — polling the status
document, or streaming the journal with ``--follow``.

``profile`` runs one cell under cProfile with the simulated-cycle phase
profiler attached and reports both attributions (wall-clock seconds per
simulator subsystem, simulated cycles per phase) as a table or the
``repro.prof/1`` JSON document; ``--compare`` diffs against a saved
document.  ``bench --record`` appends a timed run of every figure to a
``repro.bench-trajectory/1`` store (git SHA, config fingerprint,
per-figure wall time, cells/sec); ``bench --baseline F --max-regress P``
re-measures and exits non-zero past the threshold.  Long campaigns
(``sweep``/``soak``) accept ``--progress`` (live status line) and
``--runlog F`` (``repro.runlog/1`` JSONL telemetry: per-cell start and
finish with wall time, heartbeats with ETA, worker pids).  Because the
run log is wall-clock telemetry it is refused in ``--deterministic``
sweeps.
"""

import argparse
import json
import sys

from repro.harness import (
    figure7,
    figure8,
    figure9,
    figure10,
    model_sensitivity,
    table1,
    table2,
)

ARTEFACTS = {
    "table1": lambda ops, jobs, cache: table1(),
    "table2": lambda ops, jobs, cache: table2(ops_per_thread=ops, jobs=jobs, cache=cache),
    "fig7": lambda ops, jobs, cache: figure7(ops_per_thread=ops, jobs=jobs, cache=cache),
    "fig8": lambda ops, jobs, cache: figure8(ops_per_thread=ops, jobs=jobs, cache=cache),
    "fig9": lambda ops, jobs, cache: figure9(ops_per_thread=ops, jobs=jobs, cache=cache),
    "fig10": lambda ops, jobs, cache: figure10(ops_per_thread=ops, jobs=jobs, cache=cache),
    "models": lambda ops, jobs, cache: model_sensitivity(
        ops_per_thread=ops, jobs=jobs, cache=cache
    ),
}

COMMANDS = sorted(ARTEFACTS) + [
    "all", "sweep", "trace", "bench", "crashtest", "soak", "lint", "profile",
    "serve", "submit", "modelcheck", "repair",
]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="StrandWeaver reproduction: regenerate evaluation artefacts",
    )
    parser.add_argument(
        "artefact",
        nargs="?",
        default="all",
        choices=COMMANDS,
        help="table/figure to regenerate, or 'trace'/'bench'/'crashtest' "
        "(default: all)",
    )
    parser.add_argument(
        "workload",
        nargs="?",
        default=None,
        help="workload to replay ('trace' and 'crashtest'), e.g. 'queue'",
    )
    parser.add_argument(
        "--ops", type=int, default=16,
        help="operations per thread (default 16; the paper used ~6250)",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes for figures and 'sweep' (default 1 = serial; "
        "results are bit-identical at any -j)",
    )
    parser.add_argument(
        "--workloads", default="all",
        help="'sweep': comma-separated benchmarks, or 'all' (default)",
    )
    parser.add_argument(
        "--designs", default="all",
        help="'sweep': comma-separated hardware designs, or 'all' (default)",
    )
    parser.add_argument(
        "--models", default="txn",
        help="'sweep': comma-separated language models, or 'all' (default: txn)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache for figures and 'sweep'",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default .repro-cache)",
    )
    parser.add_argument(
        "--deterministic", action="store_true",
        help="'sweep' --json: omit wall-clock and cache-provenance fields "
        "so output is byte-identical across -j levels and cache states",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of rendered tables",
    )
    parser.add_argument(
        "--design", default=None,
        help="hardware design for 'trace'/'crashtest'/'soak' (default: "
        "strandweaver; 'crashtest' also accepts 'all' for the differential "
        "oracle; 'soak' rotates over every design unless one is pinned)",
    )
    parser.add_argument(
        "--model", default="txn",
        help="language-level persistency model for 'trace' (default: txn)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path: trace JSON for 'trace' (default trace.json), "
        "summary JSON for 'bench' (default BENCH_trace.json)",
    )
    parser.add_argument(
        "--stats-out", default=None,
        help="also write the run's stats document to this path ('trace')",
    )
    parser.add_argument(
        "--format", default=None, choices=("text", "json", "sarif"),
        dest="out_format",
        help="'lint'/'modelcheck': output format (default text; 'sarif' "
        "emits a SARIF 2.1.0 document for GitHub code scanning)",
    )
    parser.add_argument(
        "--budget", type=int, default=200_000, metavar="N",
        help="modelcheck/repair: bounded-exhaustive crash-state enumeration "
        "budget; programs whose state space exceeds it degrade to pairwise "
        "order checking (default 200000)",
    )
    parser.add_argument(
        "--samples", type=int, default=5, metavar="N",
        help="modelcheck: machine-oracle crash points sampled across the "
        "clean run's makespan (default 5; 0 disables the oracle)",
    )
    parser.add_argument(
        "--mutate", default=None, metavar="NAME",
        help="modelcheck: seed a deliberate semantics bug into the "
        "operational model (drop-barrier, drop-join, ignore-newstrand) — "
        "the checker must report a divergence",
    )
    parser.add_argument(
        "--apply", action="store_true",
        help="repair: write the repaired op stream as JSON to --out "
        "(default <target>.repaired.json)",
    )
    parser.add_argument(
        "--ring", type=int, default=0, metavar="N",
        help="keep only the most recent N trace events (0 = unbounded)",
    )
    parser.add_argument(
        "--crashes", type=int, default=50, metavar="N",
        help="number of seeded crash points for 'crashtest' (default 50)",
    )
    parser.add_argument(
        "--seed", type=int, default=7,
        help="master seed for 'crashtest' fault schedules (default 7)",
    )
    parser.add_argument(
        "--torn", action="store_true",
        help="crashtest: also tear the latest durable store (checker stress; "
        "failures become the expected outcome for every design)",
    )
    parser.add_argument(
        "--no-writeback-faults", action="store_true",
        help="crashtest: disable injected delayed write-backs",
    )
    parser.add_argument(
        "--no-drop-faults", action="store_true",
        help="crashtest: disable delayed-persist (drop) faults",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="crashtest/soak: skip shrinking failures to minimal reproducers",
    )
    parser.add_argument(
        "--seeds", type=int, default=50, metavar="N",
        help="soak: number of randomized cases to run (default 50)",
    )
    parser.add_argument(
        "--no-media", action="store_true",
        help="soak: never attach a device-level media fault model",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="sweep: per-cell timeout in seconds (a hung cell's worker is "
        "killed and only that cell fails)",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="sweep: re-run a failing cell up to N extra times (default 0)",
    )
    parser.add_argument(
        "--sort", default="tottime", choices=("tottime", "cumtime"),
        help="profile: hot-function ordering (default tottime)",
    )
    parser.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="profile: number of hot functions to report (default 15)",
    )
    parser.add_argument(
        "--compare", default=None, metavar="FILE",
        help="profile: diff this run against a saved repro.prof/1 document",
    )
    parser.add_argument(
        "--record", action="store_true",
        help="bench: time every figure and append the run to the "
        "trajectory store (--out, default BENCH_<date>.json)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="bench: compare this run against a committed trajectory "
        "store and fail on regression (see --max-regress)",
    )
    parser.add_argument(
        "--max-regress", type=float, default=300.0, metavar="PCT",
        help="bench: maximum tolerated total wall-time growth over the "
        "baseline, in percent (default 300)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="sweep/soak: live progress line on stderr",
    )
    parser.add_argument(
        "--dir", default=".repro-campaigns", metavar="DIR",
        help="serve: service root holding campaigns/<id>/ directories "
        "(default .repro-campaigns)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="serve: bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8642,
        help="serve: TCP port (default 8642; 0 picks a free port)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="serve: replay half-finished campaign journals under --dir "
        "and continue them (exactly-once cell accounting)",
    )
    parser.add_argument(
        "--drain", action="store_true",
        help="serve: no HTTP listener — resume campaigns, run them to "
        "completion, report, exit",
    )
    parser.add_argument(
        "--worker-budget", type=int, default=8, metavar="N",
        help="serve: global cap on concurrent campaign workers (default 8)",
    )
    parser.add_argument(
        "--rate", type=float, default=2.0, metavar="R",
        help="serve: sustained requests/second allowed per client (default 2)",
    )
    parser.add_argument(
        "--burst", type=int, default=6, metavar="N",
        help="serve: per-client burst capacity before 429s (default 6)",
    )
    parser.add_argument(
        "--url", default=None, metavar="URL",
        help="submit: service endpoint (default $REPRO_SERVICE_URL or "
        "http://127.0.0.1:8642)",
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="submit: stream the campaign journal instead of polling",
    )
    parser.add_argument(
        "--no-wait", action="store_true",
        help="submit: print the campaign id and return immediately",
    )
    parser.add_argument(
        "--status", default=None, metavar="ID", dest="status_id",
        help="submit: print the status document of an existing campaign",
    )
    parser.add_argument(
        "--cancel", default=None, metavar="ID", dest="cancel_id",
        help="submit: request cancellation of an existing campaign",
    )
    parser.add_argument(
        "--runlog", default=None, metavar="FILE",
        help="sweep/soak: stream repro.runlog/1 JSONL campaign telemetry "
        "to FILE (refused with --deterministic)",
    )
    return parser


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.harness.experiment import default_config
    from repro.obs import Tracer, write_stats_json, write_trace
    from repro.sim.machine import DESIGNS, Machine
    from repro.workloads import WORKLOADS, generate_for_design

    if args.design is None:
        args.design = "strandweaver"
    if args.workload is None:
        print("trace requires a workload, e.g.: python -m repro trace queue",
              file=sys.stderr)
        return 2
    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}; choose from {sorted(WORKLOADS)}",
              file=sys.stderr)
        return 2
    if args.design not in DESIGNS:
        print(f"unknown design {args.design!r}; choose from {sorted(DESIGNS)}",
              file=sys.stderr)
        return 2
    if args.model not in ("txn", "atlas", "sfr"):
        print(f"unknown model {args.model!r}; choose from ['atlas', 'sfr', 'txn']",
              file=sys.stderr)
        return 2
    if args.ring < 0:
        print("--ring must be a positive event count (or 0 for unbounded)",
              file=sys.stderr)
        return 2
    tracer = (
        Tracer(mode="ring", capacity=args.ring) if args.ring else Tracer()
    )
    run = generate_for_design(
        WORKLOADS[args.workload], default_config(args.ops), args.design, args.model
    )
    stats = Machine(args.design, tracer=tracer).run(run.program)
    out = args.out or "trace.json"
    doc = write_trace(out, tracer)
    if args.stats_out:
        write_stats_json(args.stats_out, stats)
    if args.json:
        print(json.dumps(stats.summary(), sort_keys=True))
    else:
        summary = stats.summary()
        print(f"wrote {out}: {len(doc['traceEvents'])} trace records "
              f"({tracer.dropped} dropped)")
        print(f"  {args.workload} on {args.design} ({args.model}): "
              f"{summary['cycles']} cycles, {summary['clwbs']} CLWBs, "
              f"{summary['persist_stalls']} persist-stall cycles")
        print("  open in https://ui.perfetto.dev")
    return 0


def _cmd_crashtest(args: argparse.Namespace) -> int:
    from repro.chaos import run_crashtest, run_differential
    from repro.sim.machine import DESIGNS
    from repro.workloads import WORKLOADS

    if args.design is None:
        args.design = "strandweaver"
    if args.workload is None:
        print("crashtest requires a workload, e.g.: "
              "python -m repro crashtest queue", file=sys.stderr)
        return 2
    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}; choose from {sorted(WORKLOADS)}",
              file=sys.stderr)
        return 2
    if args.design != "all" and args.design not in DESIGNS:
        print(f"unknown design {args.design!r}; choose from "
              f"{sorted(DESIGNS) + ['all']}", file=sys.stderr)
        return 2
    if args.crashes < 1:
        print("--crashes must be at least 1", file=sys.stderr)
        return 2
    kwargs = dict(
        crashes=args.crashes,
        seed=args.seed,
        torn=args.torn,
        writeback_faults=not args.no_writeback_faults,
        drop_faults=not args.no_drop_faults,
        shrink=not args.no_shrink,
    )
    if args.design == "all":
        result = run_differential(args.workload, **kwargs)
    else:
        result = run_crashtest(args.workload, args.design, **kwargs)
    if args.json:
        print(json.dumps(result.summary(), indent=1, sort_keys=True))
    else:
        print(result.render())
    return 0 if result.ok else 1


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.chaos import run_soak
    from repro.sim.machine import DESIGNS
    from repro.workloads import WORKLOADS

    if args.workload is None:
        print("soak requires a workload, e.g.: python -m repro soak queue",
              file=sys.stderr)
        return 2
    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}; choose from {sorted(WORKLOADS)}",
              file=sys.stderr)
        return 2
    if args.design not in (None, "all") and args.design not in DESIGNS:
        print(f"unknown design {args.design!r}; choose from "
              f"{sorted(DESIGNS) + ['all']}", file=sys.stderr)
        return 2
    if args.seeds < 1:
        print("--seeds must be at least 1", file=sys.stderr)
        return 2
    designs = None if args.design in (None, "all") else [args.design]
    runlog = progress = None
    if args.runlog:
        from repro.prof.runlog import RunLog

        runlog = RunLog(
            args.runlog, kind="soak", total=args.seeds,
            meta={"workload": args.workload, "seed": args.seed},
        )
    if args.progress:
        from repro.prof.runlog import Progress

        progress = Progress(args.seeds, label="soak")
    try:
        result = run_soak(
            args.workload,
            seeds=args.seeds,
            seed=args.seed,
            designs=designs,
            media=not args.no_media,
            shrink=not args.no_shrink,
            runlog=runlog,
            progress=progress,
        )
    finally:
        if runlog is not None:
            runlog.close()
    if args.json:
        print(json.dumps(result.summary(), indent=1, sort_keys=True))
    else:
        print(result.render())
    return 0 if result.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import LINT_SCHEMA, analyze
    from repro.harness.experiment import default_config
    from repro.sim.machine import DESIGNS
    from repro.workloads import WORKLOADS, generate_for_design

    if args.design is None:
        args.design = "strandweaver"
    if args.workload is None:
        print("lint requires a workload, e.g.: python -m repro lint queue",
              file=sys.stderr)
        return 2
    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}; choose from {sorted(WORKLOADS)}",
              file=sys.stderr)
        return 2
    if args.design != "all" and args.design not in DESIGNS:
        print(f"unknown design {args.design!r}; choose from "
              f"{sorted(DESIGNS) + ['all']}", file=sys.stderr)
        return 2
    designs = sorted(DESIGNS) if args.design == "all" else [args.design]
    cfg = default_config(args.ops)
    reports = {}
    for design in designs:
        run = generate_for_design(WORKLOADS[args.workload], cfg, design, args.model)
        reports[design] = analyze(run.program, design=design)
    # Exit-code policy: ERROR findings on a correct design fail the lint;
    # the NON-ATOMIC design is *supposed* to error (it is the paper's
    # deliberately unsafe upper bound), so there a silent pass is the bug.
    ok = all(
        (not r.errors) if d != "non-atomic" else bool(r.errors)
        for d, r in reports.items()
    )
    fmt = args.out_format or ("json" if args.json else "text")
    if fmt == "json":
        doc = {
            "schema": LINT_SCHEMA,
            "workload": args.workload,
            "model": args.model,
            "ok": ok,
            "designs": {d: r.to_json() for d, r in reports.items()},
        }
        print(json.dumps(doc, indent=1, sort_keys=True))
    elif fmt == "sarif":
        from repro.analysis.sarif import lint_to_sarif

        docs = [
            lint_to_sarif(r, target=f"{args.workload}@{d}")
            for d, r in reports.items()
        ]
        merged = docs[0]
        for extra in docs[1:]:
            merged["runs"].extend(extra["runs"])
        print(json.dumps(merged, indent=1, sort_keys=True))
    else:
        for design, report in reports.items():
            print(report.render())
            if design == "non-atomic" and report.errors:
                print("  (expected: NON-ATOMIC provides no ordering; the "
                      "differential crash oracle reproduces these)")
            print()
        print("lint OK" if ok else "lint FAILED")
    return 0 if ok else 1


def _modelcheck_targets(args: argparse.Namespace, designs):
    """Resolve the modelcheck/repair target into (name, program) pairs.

    A target is a litmus case, the whole litmus ``corpus``, or a workload
    name (compiled per design, litmus-sized state spaces not required —
    big programs degrade to pairwise checking).
    """
    from repro.analysis import LITMUS
    from repro.harness.experiment import default_config
    from repro.workloads import WORKLOADS, generate_for_design

    name = args.workload
    if name == "corpus":
        return [
            (case_name, lambda d, n=case_name: LITMUS[n].build())
            for case_name in sorted(LITMUS)
        ]
    if name in LITMUS:
        return [(name, lambda d, n=name: LITMUS[n].build())]
    if name in WORKLOADS:
        cfg = default_config(args.ops)

        def build(design, n=name):
            return generate_for_design(
                WORKLOADS[n], cfg, design, args.model
            ).program

        return [(name, build)]
    return None


def _cmd_modelcheck(args: argparse.Namespace) -> int:
    from repro.analysis import MODELCHECK_SCHEMA, MUTATIONS, check_program
    from repro.analysis.sarif import modelcheck_to_sarif
    from repro.sim.machine import DESIGNS

    if args.workload is None:
        print("modelcheck requires a target, e.g.: python -m repro "
              "modelcheck corpus --design all", file=sys.stderr)
        return 2
    if args.design is None:
        args.design = "all"
    if args.design != "all" and args.design not in DESIGNS:
        print(f"unknown design {args.design!r}; choose from "
              f"{sorted(DESIGNS) + ['all']}", file=sys.stderr)
        return 2
    if args.mutate is not None and args.mutate not in MUTATIONS:
        print(f"unknown mutation {args.mutate!r}; choose from "
              f"{sorted(MUTATIONS)}", file=sys.stderr)
        return 2
    if args.budget < 1:
        print("--budget must be at least 1", file=sys.stderr)
        return 2
    if args.samples < 0:
        print("--samples must be non-negative", file=sys.stderr)
        return 2
    designs = sorted(DESIGNS) if args.design == "all" else [args.design]
    targets = _modelcheck_targets(args, designs)
    if targets is None:
        from repro.analysis import LITMUS
        from repro.workloads import WORKLOADS

        print(f"unknown target {args.workload!r}; choose a litmus case "
              f"({', '.join(sorted(LITMUS))}), a workload "
              f"({', '.join(sorted(WORKLOADS))}), or 'corpus'",
              file=sys.stderr)
        return 2

    reports = []
    for name, build in targets:
        for design in designs:
            reports.append(
                check_program(
                    build(design),
                    design,
                    target=name,
                    budget=args.budget,
                    oracle_samples=args.samples,
                    mutate=args.mutate,
                )
            )
    agree = all(r.agree for r in reports)
    fmt = args.out_format or ("json" if args.json else "text")
    if fmt == "json":
        doc = {
            "schema": MODELCHECK_SCHEMA,
            "target": args.workload,
            "designs": designs,
            "budget": args.budget,
            "mutation": args.mutate,
            "agree": agree,
            "reports": [r.to_json() for r in reports],
        }
        print(json.dumps(doc, indent=1, sort_keys=True))
    elif fmt == "sarif":
        print(json.dumps(modelcheck_to_sarif(reports), indent=1, sort_keys=True))
    else:
        for r in reports:
            print(r.render())
        n_div = sum(len(r.divergences) for r in reports)
        print(f"modelcheck {'OK' if agree else 'FAILED'}: "
              f"{len(reports)} report(s), {n_div} divergence(s)")
    return 0 if agree else 1


def _cmd_repair(args: argparse.Namespace) -> int:
    from repro.analysis import LITMUS, repair
    from repro.sim.machine import DESIGNS

    if args.workload is None:
        print("repair requires a target, e.g.: python -m repro repair "
              "overser-double-clwb", file=sys.stderr)
        return 2
    if args.design is None:
        args.design = (
            LITMUS[args.workload].design
            if args.workload in LITMUS
            else "strandweaver"
        )
    if args.design not in DESIGNS:
        print(f"unknown design {args.design!r}; choose from {sorted(DESIGNS)}",
              file=sys.stderr)
        return 2
    targets = _modelcheck_targets(args, [args.design])
    if targets is None or args.workload == "corpus":
        print(f"unknown repair target {args.workload!r}; choose a litmus "
              f"case or a workload", file=sys.stderr)
        return 2
    (name, build), = targets
    result = repair(
        build(args.design), args.design, target=name, budget=args.budget
    )
    if args.apply and result.program is not None:
        out = args.out or f"{name}.repaired.json"
        _write_repaired_trace(out, result)
        if not args.json:
            print(f"wrote repaired trace to {out}")
    if args.json:
        print(json.dumps(result.to_json(), indent=1, sort_keys=True))
    else:
        print(result.render())
    return 0 if result.verified else 1


def _write_repaired_trace(path: str, result) -> None:
    """Serialise the repaired program as a portable op-stream document."""
    program = result.program
    doc = {
        "schema": "repro.repair/1-trace",
        "target": result.target,
        "design": result.design,
        "edits": [e.to_json() for e in result.edits],
        "threads": [
            [
                {
                    "kind": op.kind.name,
                    "addr": op.addr,
                    "size": op.size,
                    "data": op.data.hex(),
                    "lock_id": op.lock_id,
                    "cycles": op.cycles,
                    "gseq": op.gseq,
                    "region": op.region,
                    "label": op.label,
                }
                for op in trace.ops
            ]
            for trace in program.threads
        ],
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)


def _make_cache(args: argparse.Namespace):
    from repro.harness.cachedir import DEFAULT_CACHE_DIR, CellCache

    if args.no_cache:
        return None
    return CellCache(args.cache_dir or DEFAULT_CACHE_DIR)


def _parse_matrix_axis(raw: str, universe, axis: str):
    """Split a comma list, mapping 'all' to the full ordered universe."""
    if raw == "all":
        return list(universe), None
    names = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = [name for name in names if name not in universe]
    if not names:
        return None, f"--{axis} must name at least one entry"
    if unknown:
        return None, (
            f"unknown {axis} {unknown!r}; choose from {sorted(universe)} or 'all'"
        )
    return names, None


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness.experiment import ALL_DESIGNS, ALL_MODELS
    from repro.harness.figures import BENCH_ORDER
    from repro.harness.report import render_table
    from repro.harness.sweep import expand_cells, run_sweep
    from repro.obs.export import sweep_to_json, write_sweep_json
    from repro.workloads import WORKLOADS

    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    bench_universe = tuple(BENCH_ORDER) + tuple(
        name for name in sorted(WORKLOADS) if name not in BENCH_ORDER
    )
    workloads, err = _parse_matrix_axis(args.workloads, bench_universe, "workloads")
    if err:
        print(err, file=sys.stderr)
        return 2
    designs, err = _parse_matrix_axis(args.designs, ALL_DESIGNS, "designs")
    if err:
        print(err, file=sys.stderr)
        return 2
    models, err = _parse_matrix_axis(args.models, ALL_MODELS, "models")
    if err:
        print(err, file=sys.stderr)
        return 2
    if args.retries < 0:
        print("--retries must be non-negative", file=sys.stderr)
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print("--timeout must be a positive number of seconds", file=sys.stderr)
        return 2
    if args.deterministic and (args.runlog or args.progress):
        # The run log and progress line are wall-clock telemetry; a
        # deterministic sweep must not produce either (the whole point
        # of --deterministic is byte-identical artefacts).
        print("--deterministic excludes --runlog/--progress: the run log "
              "is wall-clock telemetry", file=sys.stderr)
        return 2
    cells = expand_cells(workloads, designs, models, ops_per_thread=args.ops)
    runlog = progress = None
    if args.runlog:
        from repro.prof.runlog import RunLog

        runlog = RunLog(
            args.runlog, kind="sweep", total=len(cells),
            meta={"jobs": args.jobs, "ops_per_thread": args.ops},
        )
    if args.progress:
        from repro.prof.runlog import Progress

        progress = Progress(len(cells), label="sweep")
    try:
        result = run_sweep(
            cells, jobs=args.jobs, cache=_make_cache(args),
            timeout=args.timeout, retries=args.retries,
            runlog=runlog, progress=progress,
        )
    finally:
        if runlog is not None:
            runlog.close()
    doc = sweep_to_json(result, deterministic=args.deterministic)
    if args.out:
        write_sweep_json(args.out, result, deterministic=args.deterministic)
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True, allow_nan=False))
    else:
        rows = []
        for res in result.cells:
            rows.append([
                res.cell.benchmark,
                res.cell.design,
                res.cell.model,
                res.stats.cycles if res.ok else "ERROR",
                res.source,
                f"{res.wall_time:.2f}s",
            ])
        print(render_table(
            f"Sweep: {len(result.cells)} cells (-j {result.jobs})",
            ["benchmark", "design", "model", "cycles", "source", "wall"],
            rows,
        ))
        print(
            f"wall {result.wall_time:.2f}s  cache {result.cache_hits} hit / "
            f"{result.cache_misses} miss  memo {result.memo_hits} hit  "
            f"errors {result.errors}"
        )
        for res in result.cells:
            if not res.ok:
                print(f"\nFAILED {res.cell.label()}:\n{res.error}")
    return 0 if result.errors == 0 else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.prof.wallclock import (
        compare_profiles,
        load_profile_doc,
        profile_cell,
        render_profile,
        write_profile_doc,
    )
    from repro.sim.machine import DESIGNS
    from repro.workloads import WORKLOADS

    if args.design is None:
        args.design = "strandweaver"
    if args.workload is None:
        print("profile requires a workload, e.g.: "
              "python -m repro profile queue --design strandweaver",
              file=sys.stderr)
        return 2
    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}; choose from {sorted(WORKLOADS)}",
              file=sys.stderr)
        return 2
    if args.design not in DESIGNS:
        print(f"unknown design {args.design!r}; choose from {sorted(DESIGNS)}",
              file=sys.stderr)
        return 2
    if args.model not in ("txn", "atlas", "sfr"):
        print(f"unknown model {args.model!r}; choose from ['atlas', 'sfr', 'txn']",
              file=sys.stderr)
        return 2
    if args.top < 1:
        print("--top must be at least 1", file=sys.stderr)
        return 2
    doc = profile_cell(
        args.workload, args.design, args.model,
        ops_per_thread=args.ops, sort=args.sort, top=args.top,
    )
    comparison = None
    if args.compare:
        try:
            baseline = load_profile_doc(args.compare)
        except (OSError, ValueError) as exc:
            print(f"cannot load --compare baseline: {exc}", file=sys.stderr)
            return 2
        comparison, _delta = compare_profiles(baseline, doc)
    if args.out:
        write_profile_doc(args.out, doc)
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True, allow_nan=False))
        if comparison:
            print(comparison, file=sys.stderr)
    else:
        print(render_profile(doc))
        if comparison:
            print()
            print(comparison)
        if args.out:
            print(f"\nwrote {args.out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import write_bench_summary
    from repro.prof.bench import resolve_ops

    ops = resolve_ops(args.ops)
    if args.record or args.baseline:
        import time as _time

        from repro.prof.bench import append_run, check_regression, record_run

        entry = record_run(ops_per_thread=ops)
        rc = 0
        if args.json:
            print(json.dumps(entry, indent=1, sort_keys=True, allow_nan=False))
        else:
            figures = entry["figures"]
            for name, fig in figures.items():
                print(f"  {name:8s} {fig['wall_s']:8.3f}s  {fig['cells']:3d} cells  "
                      f"{fig['cells_per_s']:8.2f} cells/s")
            print(f"  total    {entry['total_wall_s']:8.3f}s  "
                  f"{entry['total_cells']:3d} cells  "
                  f"{entry['cells_per_s']:8.2f} cells/s  "
                  f"(ops={ops}, sha {str(entry['git_sha'])[:12]})")
        if args.baseline:
            ok, report = check_regression(args.baseline, entry, args.max_regress)
            print(report, file=sys.stderr if args.json else sys.stdout)
            rc = 0 if ok else 1
        if args.record:
            out = args.out or _time.strftime("BENCH_%Y-%m-%d.json")
            doc = append_run(out, entry)
            print(f"recorded run {len(doc['runs'])} in {out}",
                  file=sys.stderr if args.json else sys.stdout)
        return rc
    out = args.out or "BENCH_trace.json"
    doc = write_bench_summary(out, ops_per_thread=ops)
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(f"wrote {out}: {len(doc['cells'])} cells "
              f"({len(doc['benchmarks'])} benchmarks x {len(doc['designs'])} designs, "
              f"ops_per_thread={doc['ops_per_thread']})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.api import CampaignHTTPServer, CampaignService
    from repro.service.ratelimit import ClientRateLimiter, ResourceTracker

    if args.worker_budget < 1:
        print("--worker-budget must be at least 1", file=sys.stderr)
        return 2
    if args.rate <= 0 or args.burst < 1:
        print("--rate must be positive and --burst at least 1", file=sys.stderr)
        return 2
    service = CampaignService(
        args.dir,
        cache=_make_cache(args),
        tracker=ResourceTracker(args.worker_budget),
        limiter=ClientRateLimiter(rate=args.rate, burst=args.burst),
    )
    if args.resume or args.drain:
        for campaign_id in service.resume_all():
            print(f"resumed campaign {campaign_id}", file=sys.stderr)
    if args.drain:
        service.drain()
        rc = 0
        for campaign_id in service.list_ids():
            state = service.get(campaign_id)
            if state is None:
                continue
            print(
                f"{campaign_id}: {state.status} "
                f"({state.done}/{state.spec.total}, {state.errors} errors)"
            )
            if state.status == "failed":
                rc = 1
        return rc
    server = CampaignHTTPServer((args.host, args.port), service)
    host, port = server.server_address[0], server.server_address[1]
    print(
        f"repro campaign service listening on http://{host}:{port} "
        f"(root {service.root})",
        file=sys.stderr, flush=True,
    )

    # Route SIGTERM into the same graceful path as Ctrl-C.  This also
    # covers `kill -INT` on a service backgrounded by a non-interactive
    # shell (CI scripts): such jobs inherit SIGINT as SIG_IGN, which
    # Python honours, so SIGTERM is the only reliable stop signal there.
    import signal as _signal

    def _sigterm(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    _signal.signal(_signal.SIGTERM, _sigterm)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.shutdown()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import os

    from repro.service.client import CampaignClient, ServiceError
    from repro.service.jobs import CampaignSpec, SpecError

    url = args.url or os.environ.get("REPRO_SERVICE_URL") or "http://127.0.0.1:8642"
    client = CampaignClient(url)
    try:
        if args.cancel_id:
            client.cancel(args.cancel_id)
            print(f"cancellation requested for {args.cancel_id}")
            return 0
        if args.status_id:
            print(json.dumps(client.status(args.status_id), indent=1, sort_keys=True))
            return 0
        if args.workload is None:
            print("submit requires a campaign spec: a JSON file path, or '-' "
                  "for stdin (or --status/--cancel ID)", file=sys.stderr)
            return 2
        if args.workload == "-":
            raw = sys.stdin.read()
        else:
            try:
                with open(args.workload, encoding="utf-8") as fh:
                    raw = fh.read()
            except OSError as exc:
                print(f"cannot read spec {args.workload!r}: {exc}", file=sys.stderr)
                return 2
        try:
            doc = json.loads(raw)
            spec = CampaignSpec.from_json(doc)
        except (ValueError, SpecError) as exc:
            # SpecError subclasses ValueError; both mean a bad spec.
            print(f"invalid campaign spec: {exc}", file=sys.stderr)
            return 2
        campaign_id = client.submit(spec.to_json())
        print(f"submitted campaign {campaign_id} "
              f"({spec.kind}, {spec.total} work units) to {url}", file=sys.stderr)
        if not args.json:
            # Bare id on stdout for scripting; --json keeps stdout pure JSON.
            print(campaign_id)
        if args.no_wait:
            return 0
        if args.follow:
            for record in client.events(campaign_id, follow=True):
                print(json.dumps(record, sort_keys=True))
            status = client.status(campaign_id)
        else:
            status = client.wait(campaign_id)
        if args.json:
            print(json.dumps(status, indent=1, sort_keys=True))
        else:
            print(f"campaign {campaign_id}: {status.get('status')} "
                  f"({status.get('done')}/{status.get('total')}, "
                  f"{status.get('errors')} errors)", file=sys.stderr)
        ok = status.get("status") == "finished" and not status.get("errors")
        return 0 if ok else 1
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.artefact == "trace":
        return _cmd_trace(args)
    if args.artefact == "bench":
        return _cmd_bench(args)
    if args.artefact == "crashtest":
        return _cmd_crashtest(args)
    if args.artefact == "soak":
        return _cmd_soak(args)
    if args.artefact == "lint":
        return _cmd_lint(args)
    if args.artefact == "modelcheck":
        return _cmd_modelcheck(args)
    if args.artefact == "repair":
        return _cmd_repair(args)
    if args.artefact == "sweep":
        return _cmd_sweep(args)
    if args.artefact == "profile":
        return _cmd_profile(args)
    if args.artefact == "serve":
        return _cmd_serve(args)
    if args.artefact == "submit":
        return _cmd_submit(args)
    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    cache = _make_cache(args)
    names = sorted(ARTEFACTS) if args.artefact == "all" else [args.artefact]
    if args.json:
        docs = [ARTEFACTS[name](args.ops, args.jobs, cache).to_json() for name in names]
        print(json.dumps(docs[0] if len(docs) == 1 else docs, indent=1, allow_nan=False))
    else:
        for name in names:
            print(ARTEFACTS[name](args.ops, args.jobs, cache).render())
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
