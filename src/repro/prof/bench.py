"""Bench trajectory store and regression gate (``repro bench --record``).

``repro bench --record`` times each evaluation figure at a fixed scale
and *appends* the measurement to a trajectory file
(``BENCH_<date>.json``, schema ``repro.bench-trajectory/1``), so the
repository accumulates a wall-clock history alongside the simulated
results: every entry carries the git SHA, the full workload+machine
config fingerprint, and per-figure wall time and cells/second.  The
ROADMAP-item-1 engine rewrite is steered — and guarded — by this file:
``repro bench --baseline <file> --max-regress PCT`` re-measures and
exits non-zero when total wall time regressed past the threshold (CI
runs it with a generous 3x bound to absorb runner-speed noise).

Figures are timed simulation-cold: the run-cell memo is cleared before
each figure and the on-disk cache is bypassed, so a measurement is
always the real cost of *simulating* that figure's cells.  Generated
and compiled programs, by contrast, persist across the figures of one
recorded run — they are per-(benchmark, model, config) artefacts shared
between figures by design (the paper likewise compiles each benchmark
once per target), and each program's one-time generation cost lands in
the first figure that needs it.  Cell counts come from the memo delta
(each unique cell is memoised exactly once).
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import time
from typing import Dict, List, Optional, Tuple

BENCH_TRAJECTORY_SCHEMA = "repro.bench-trajectory/1"

#: environment variable: sets the default ``--ops`` scale of ``repro
#: bench`` (an explicit ``--ops`` flag still wins).
BENCH_OPS_ENV = "REPRO_BENCH_OPS"

#: figures timed per recorded run, in execution order.
BENCH_FIGURES = ("table2", "fig7", "fig8", "fig9", "fig10")


def git_sha() -> str:
    """HEAD commit of the working tree, or ``"unknown"`` outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except Exception:
        return "unknown"
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


def config_fingerprint(ops_per_thread: int) -> str:
    """SHA-256 identity of the exact configuration being timed."""
    from repro.harness.cachedir import fingerprint_key
    from repro.harness.experiment import default_config
    from repro.sim.config import TABLE_I

    return fingerprint_key({
        "workload": dataclasses.asdict(default_config(ops_per_thread)),
        "machine": dataclasses.asdict(TABLE_I),
    })


def resolve_ops(cli_ops: int, default_ops: int = 16) -> int:
    """The bench scale: an explicit ``--ops`` wins, else the
    :data:`BENCH_OPS_ENV` environment variable, else the default."""
    if cli_ops != default_ops:
        return cli_ops
    env = os.environ.get(BENCH_OPS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise SystemExit(f"{BENCH_OPS_ENV} must be an integer, got {env!r}")
    return cli_ops


def record_run(ops_per_thread: int = 16) -> Dict[str, object]:
    """Time every bench figure cold; returns one trajectory entry."""
    from repro.harness import figure7, figure8, figure9, figure10, table2
    from repro.harness.experiment import clear_cache, clear_memo, memo_size

    builders = {
        "table2": lambda: table2(ops_per_thread=ops_per_thread),
        "fig7": lambda: figure7(ops_per_thread=ops_per_thread),
        "fig8": lambda: figure8(ops_per_thread=ops_per_thread),
        "fig9": lambda: figure9(ops_per_thread=ops_per_thread),
        "fig10": lambda: figure10(ops_per_thread=ops_per_thread),
    }
    figures: Dict[str, Dict[str, object]] = {}
    total_wall = 0.0
    total_cells = 0
    clear_cache()
    for name in BENCH_FIGURES:
        # Simulation is timed cold (the run-cell memo is dropped per
        # figure); generated + compiled programs are kept — they are
        # per-(benchmark, model, config) artefacts the figures share by
        # design, and their one-time cost is inside the first figure
        # that needs each of them.
        clear_memo()
        t0 = time.perf_counter()
        builders[name]()
        wall = time.perf_counter() - t0
        cells = memo_size()
        total_wall += wall
        total_cells += cells
        figures[name] = {
            "wall_s": round(wall, 6),
            "cells": cells,
            "cells_per_s": round(cells / wall, 3) if wall > 0 else 0.0,
        }
    clear_cache()
    return {
        "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "ops_per_thread": ops_per_thread,
        "config_fingerprint": config_fingerprint(ops_per_thread),
        "figures": figures,
        "total_wall_s": round(total_wall, 6),
        "total_cells": total_cells,
        "cells_per_s": round(total_cells / total_wall, 3) if total_wall else 0.0,
    }


def load_trajectory(path: str) -> Dict[str, object]:
    """Load a trajectory file; a missing file is an empty trajectory."""
    if not os.path.exists(path):
        return {"schema": BENCH_TRAJECTORY_SCHEMA, "runs": []}
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != BENCH_TRAJECTORY_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BENCH_TRAJECTORY_SCHEMA!r}, "
            f"got {doc.get('schema') if isinstance(doc, dict) else type(doc).__name__!r}"
        )
    if not isinstance(doc.get("runs"), list):
        raise ValueError(f"{path}: trajectory 'runs' must be a list")
    return doc


def append_run(path: str, entry: Dict[str, object]) -> Dict[str, object]:
    """Append ``entry`` to the trajectory at ``path`` (created if new)."""
    from repro.obs.export import dump_json

    doc = load_trajectory(path)
    doc["runs"].append(entry)  # type: ignore[union-attr]
    dump_json(path, doc)
    return doc


def _baseline_entry(
    doc: Dict[str, object], entry: Dict[str, object]
) -> Optional[Dict[str, object]]:
    """Most recent comparable baseline run: same ops scale, preferring
    an identical config fingerprint."""
    runs: List[Dict[str, object]] = [
        run for run in doc.get("runs", [])  # type: ignore[union-attr]
        if run.get("ops_per_thread") == entry["ops_per_thread"]
    ]
    same_cfg = [
        run for run in runs
        if run.get("config_fingerprint") == entry["config_fingerprint"]
    ]
    pool = same_cfg or runs
    return pool[-1] if pool else None


def check_regression(
    baseline_path: str,
    entry: Dict[str, object],
    max_regress_pct: float,
) -> Tuple[bool, str]:
    """Gate ``entry`` against the committed trajectory.

    Returns ``(ok, report)``: the gate fails when total wall time grew
    more than ``max_regress_pct`` percent over the most recent
    comparable baseline run.  Per-figure deltas are reported but do not
    gate individually (they are noisier than the total).
    """
    doc = load_trajectory(baseline_path)
    base = _baseline_entry(doc, entry)
    if base is None:
        return False, (
            f"{baseline_path}: no baseline run at "
            f"ops_per_thread={entry['ops_per_thread']} to compare against"
        )
    base_total = float(base["total_wall_s"])
    cur_total = float(entry["total_wall_s"])
    limit = base_total * (1.0 + max_regress_pct / 100.0)
    delta_pct = 100.0 * (cur_total - base_total) / base_total if base_total else 0.0
    lines = [
        f"baseline {str(base.get('git_sha', 'unknown'))[:12]} ({base.get('ts')}): "
        f"total {base_total:.3f}s -> current {cur_total:.3f}s "
        f"({delta_pct:+.1f}%, limit +{max_regress_pct:g}%)"
    ]
    base_figs: Dict[str, Dict[str, object]] = base.get("figures", {})  # type: ignore[assignment]
    cur_figs: Dict[str, Dict[str, object]] = entry["figures"]  # type: ignore[assignment]
    for name in BENCH_FIGURES:
        if name not in base_figs or name not in cur_figs:
            continue
        b = float(base_figs[name]["wall_s"])
        c = float(cur_figs[name]["wall_s"])
        rel = f"{100.0 * (c - b) / b:+.1f}%" if b > 0 else "n/a"
        lines.append(f"  {name:8s} {b:8.3f}s -> {c:8.3f}s  {rel}")
    ok = cur_total <= limit
    lines.append("bench gate OK" if ok else
                 f"bench gate FAILED: {cur_total:.3f}s > {limit:.3f}s")
    return ok, "\n".join(lines)
