"""Wall-clock hot-path profiler behind ``python -m repro profile``.

The phase profiler (:mod:`repro.prof.phases`) explains where *simulated*
cycles go; this module explains where the *simulator's own* wall time
goes — the question the ROADMAP-item-1 engine rewrite needs answered.
:func:`profile_cell` runs one (benchmark, design, model) cell under
:mod:`cProfile` with a live phase profiler attached, then maps every
profiled function to a simulator subsystem through a curated
path-prefix table, so the report reads "the sim core burns 61% of the
wall time", not "``_memory_access`` has a large tottime".

Both attributions are combined into one ``repro.prof/1`` document:

* ``wallclock`` — total seconds, per-subsystem self time, the hot
  function list, and ``attributed_pct`` (share of wall time mapped to a
  *named* subsystem — the CI perf-smoke job requires >= 95%);
* ``simulated`` — the phase profiler's cycle attribution for the same
  run (:meth:`~repro.prof.phases.PhaseProfiler.to_json`).

The document is plain rounded floats, so dump -> load -> dump is
byte-stable (``tests/prof/test_wallclock.py`` pins the round-trip).
"""

from __future__ import annotations

import cProfile
import json
import pstats
from typing import Dict, List, Optional, Tuple

from repro.prof.phases import PHASES, PhaseProfiler

PROF_SCHEMA = "repro.prof/1"

#: ordered path-prefix -> subsystem map for files under ``repro/``.
#: First match wins, so specific prefixes precede their parents.
_REPRO_SUBSYSTEMS: Tuple[Tuple[str, str], ...] = (
    ("sim/cache", "cache-model"),
    ("sim/memory", "pm-model"),
    ("sim/", "sim-core"),
    ("persistency/", "persist-model"),
    ("core/", "persist-model"),
    ("workloads", "workload-gen"),
    ("lang/", "lang-runtime"),
    ("pmem/", "pmem-alloc"),
    ("harness/", "harness"),
    ("obs/", "observability"),
    ("chaos/", "chaos"),
    ("faults/", "chaos"),
    ("analysis/", "analysis"),
    ("prof/", "profiler"),
    ("__main__", "cli"),
    ("__init__", "cli"),
)

#: rendering order of every subsystem the mapper can produce.
SUBSYSTEM_ORDER = (
    "sim-core", "cache-model", "pm-model", "persist-model", "workload-gen",
    "lang-runtime", "pmem-alloc", "harness", "observability", "chaos",
    "analysis", "profiler", "cli", "stdlib", "builtins", "other",
)


def subsystem_of(filename: str) -> str:
    """Map a profiled code object's file to a simulator subsystem.

    Anything under ``repro/`` goes through the curated prefix table;
    interpreter built-ins and stdlib frames get their own named buckets
    so ``other`` is reserved for genuinely unmapped code.
    """
    if filename.startswith("~") or filename.startswith("<"):
        return "builtins"
    norm = filename.replace("\\", "/")
    if "/repro/" in norm:
        rel = norm.rsplit("/repro/", 1)[1]
        for prefix, subsystem in _REPRO_SUBSYSTEMS:
            if rel.startswith(prefix):
                return subsystem
        return "other"
    return "stdlib"


def _short_file(filename: str) -> str:
    norm = filename.replace("\\", "/")
    if "/repro/" in norm:
        return "repro/" + norm.rsplit("/repro/", 1)[1]
    return norm.rsplit("/", 1)[-1]


def profile_cell(
    benchmark: str,
    design: str,
    model: str = "txn",
    ops_per_thread: int = 48,
    sort: str = "tottime",
    top: int = 15,
) -> Dict[str, object]:
    """Profile one cell end to end; returns a ``repro.prof/1`` document.

    The run covers trace generation *and* simulation (both are on the
    ``python -m repro`` hot path) and bypasses the run-cell memo — a
    memoised cell would profile a dictionary lookup.
    """
    # Imported lazily: the harness imports the simulator, which imports
    # repro.prof.phases — a module-level import here would be circular.
    from repro.harness.experiment import default_config
    from repro.sim.machine import Machine
    from repro.workloads import WORKLOADS, generate_for_design

    if sort not in ("tottime", "cumtime"):
        raise ValueError(f"sort must be 'tottime' or 'cumtime', got {sort!r}")
    phases = PhaseProfiler()
    profile = cProfile.Profile()
    profile.enable()
    run = generate_for_design(
        WORKLOADS[benchmark], default_config(ops_per_thread), design, model
    )
    stats = Machine(design, profiler=phases).run(run.program)
    profile.disable()

    raw = pstats.Stats(profile).stats  # type: ignore[attr-defined]
    sub_self: Dict[str, float] = {}
    sub_calls: Dict[str, int] = {}
    functions: List[Dict[str, object]] = []
    total = 0.0
    for (filename, line, func), (cc, nc, tt, ct, _callers) in raw.items():
        total += tt
        subsystem = subsystem_of(filename)
        sub_self[subsystem] = sub_self.get(subsystem, 0.0) + tt
        sub_calls[subsystem] = sub_calls.get(subsystem, 0) + nc
        functions.append({
            "function": func,
            "file": _short_file(filename),
            "line": line,
            "subsystem": subsystem,
            "calls": nc,
            "self_s": round(tt, 6),
            "cum_s": round(ct, 6),
        })
    key = "self_s" if sort == "tottime" else "cum_s"
    functions.sort(key=lambda f: (-float(f[key]), f["file"], f["function"]))
    attributed = total - sub_self.get("other", 0.0)
    doc: Dict[str, object] = {
        "schema": PROF_SCHEMA,
        "kind": "profile",
        "benchmark": benchmark,
        "design": design,
        "model": model,
        "ops_per_thread": ops_per_thread,
        "cycles": stats.cycles,
        "wallclock": {
            "total_s": round(total, 6),
            "attributed_pct": round(100.0 * attributed / total, 3) if total else 100.0,
            "sort": sort,
            "subsystems": {
                name: {
                    "self_s": round(sub_self[name], 6),
                    "pct": round(100.0 * sub_self[name] / total, 3) if total else 0.0,
                    "calls": sub_calls[name],
                }
                for name in sub_self
            },
            "hot_functions": functions[:top],
        },
        "simulated": phases.to_json(),
    }
    return doc


def write_profile_doc(path: str, doc: Dict[str, object]) -> None:
    from repro.obs.export import dump_json

    dump_json(path, doc)


def load_profile_doc(path: str) -> Dict[str, object]:
    """Load and validate a ``repro.prof/1`` document."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != PROF_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {PROF_SCHEMA!r}, "
            f"got {doc.get('schema') if isinstance(doc, dict) else type(doc).__name__!r}"
        )
    return doc


def render_profile(doc: Dict[str, object]) -> str:
    """Human-readable report: subsystem table, phase table, hot list."""
    from repro.harness.report import render_table

    wall = doc["wallclock"]
    sim = doc["simulated"]
    title = (
        f"profile: {doc['benchmark']} on {doc['design']} ({doc['model']}, "
        f"ops={doc['ops_per_thread']})"
    )
    sub_rows = []
    subsystems: Dict[str, Dict[str, object]] = wall["subsystems"]  # type: ignore[assignment]
    ordered = [s for s in SUBSYSTEM_ORDER if s in subsystems]
    ordered += sorted(s for s in subsystems if s not in SUBSYSTEM_ORDER)
    for name in sorted(ordered, key=lambda s: -float(subsystems[s]["self_s"])):
        entry = subsystems[name]
        sub_rows.append([
            name, f"{entry['self_s']:.4f}s", f"{entry['pct']:.1f}%",
            str(entry["calls"]),
        ])
    out = [render_table(
        f"{title} — wall {wall['total_s']:.3f}s, "
        f"{wall['attributed_pct']:.1f}% attributed",
        ["subsystem", "self", "share", "calls"], sub_rows,
    )]
    phase_rows = [
        [phase, f"{sim['phases'][phase]:.0f}", f"{sim['phase_pct'][phase]:.1f}%"]
        for phase in PHASES
    ]
    out.append(render_table(
        f"simulated-cycle attribution ({sim['total_cycles']:.0f} core cycles)",
        ["phase", "cycles", "share"], phase_rows,
    ))
    out.append(f"hot functions (by {wall['sort']}):")
    for entry in wall["hot_functions"]:  # type: ignore[union-attr]
        out.append(
            f"  {entry['self_s']:8.4f}s self {entry['cum_s']:8.4f}s cum "
            f"{entry['calls']:>9} calls  {entry['file']}:{entry['line']} "
            f"{entry['function']} [{entry['subsystem']}]"
        )
    return "\n".join(out)


def compare_profiles(
    baseline: Dict[str, object], current: Dict[str, object]
) -> Tuple[str, Optional[float]]:
    """Diff two ``repro.prof/1`` documents.

    Returns the rendered comparison and the total wall-time change in
    percent (None when the baseline recorded no measurable time).
    """
    base_wall = baseline["wallclock"]
    cur_wall = current["wallclock"]
    base_total = float(base_wall["total_s"])  # type: ignore[index]
    cur_total = float(cur_wall["total_s"])  # type: ignore[index]
    delta_pct = (
        100.0 * (cur_total - base_total) / base_total if base_total > 0 else None
    )
    lines = [
        f"baseline {baseline['benchmark']}/{baseline['design']} "
        f"{base_total:.4f}s -> current {cur_total:.4f}s"
        + (f" ({delta_pct:+.1f}%)" if delta_pct is not None else ""),
    ]
    base_subs: Dict[str, Dict[str, object]] = base_wall["subsystems"]  # type: ignore[index]
    cur_subs: Dict[str, Dict[str, object]] = cur_wall["subsystems"]  # type: ignore[index]
    names = [s for s in SUBSYSTEM_ORDER if s in base_subs or s in cur_subs]
    names += sorted(
        s for s in set(base_subs) | set(cur_subs) if s not in SUBSYSTEM_ORDER
    )
    for name in names:
        b = float(base_subs.get(name, {}).get("self_s", 0.0))
        c = float(cur_subs.get(name, {}).get("self_s", 0.0))
        if b == 0.0 and c == 0.0:
            continue
        rel = f"{100.0 * (c - b) / b:+.1f}%" if b > 0 else "new"
        lines.append(f"  {name:14s} {b:8.4f}s -> {c:8.4f}s  {rel}")
    return "\n".join(lines), delta_pct
