"""Campaign telemetry: the ``repro.runlog/1`` JSONL run log.

Long-running ``sweep`` and ``soak`` campaigns need observability while
they run, not just a result document afterwards — the ROADMAP-item-2
campaign service will stream exactly this.  A :class:`RunLog` appends
one self-describing JSON object per line:

* ``start``       — campaign kind, total work items, invocation metadata;
* ``cell-start``  — a work item was handed to a worker;
* ``cell-finish`` — it completed: wall time, ok/failed, result source
  (``run``/``cache``/``memo``), worker pid;
* ``heartbeat``   — periodic liveness: items done, ETA;
* ``finish``      — totals: elapsed wall time, summed busy time, errors.

Every line carries the schema tag, so a consumer can tail the file, and
logs from several workers or campaigns can be concatenated and still be
parsed line-by-line.  Timestamps are wall-clock (``time.time``); the
run log is *telemetry*, deliberately non-deterministic — which is why
``--deterministic`` sweeps must never write one (the CLI enforces this,
see ``tests/prof/test_runlog.py``).

:class:`Progress` is the matching ``--progress`` live line: one
carriage-returned status line on stderr with done/total, percentage,
rate and ETA.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict, List, Optional, TextIO

RUNLOG_SCHEMA = "repro.runlog/1"

#: minimum seconds between heartbeat records.
HEARTBEAT_INTERVAL_S = 5.0


class RunLog:
    """Append-only JSONL writer for one campaign run."""

    def __init__(self, path: str, kind: str, total: int,
                 meta: Optional[Dict[str, object]] = None) -> None:
        self.path = path
        self.kind = kind
        self.total = total
        self._fh: Optional[TextIO] = open(path, "w", encoding="utf-8")
        self._t0 = time.time()
        self._last_heartbeat = self._t0
        self.events_written = 0
        self.event("start", total=total, meta=dict(meta or {}))

    # -- low-level ---------------------------------------------------------

    def event(self, event: str, **fields: object) -> None:
        """Write one record; a closed log silently drops (idempotent
        shutdown beats losing the campaign to a logging error)."""
        fh = self._fh
        if fh is None:
            return
        record: Dict[str, object] = {
            "schema": RUNLOG_SCHEMA,
            "kind": self.kind,
            "event": event,
            "ts": round(time.time(), 6),
        }
        record.update(fields)
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.flush()
        self.events_written += 1

    # -- campaign vocabulary -----------------------------------------------

    def cell_start(self, label: str, index: int, **fields: object) -> None:
        self.event("cell-start", cell=label, index=index, **fields)

    def cell_finish(
        self,
        label: str,
        index: int,
        ok: bool,
        wall_time_s: float,
        source: str = "run",
        worker: Optional[int] = None,
        **fields: object,
    ) -> None:
        self.event(
            "cell-finish",
            cell=label,
            index=index,
            ok=ok,
            wall_time_s=round(wall_time_s, 6),
            source=source,
            worker=worker,
            **fields,
        )

    def maybe_heartbeat(self, done: int) -> None:
        """Emit a heartbeat if enough time has passed since the last."""
        now = time.time()
        if now - self._last_heartbeat < HEARTBEAT_INTERVAL_S:
            return
        self._last_heartbeat = now
        elapsed = now - self._t0
        eta = (self.total - done) * (elapsed / done) if done else None
        self.event(
            "heartbeat",
            done=done,
            total=self.total,
            elapsed_s=round(elapsed, 3),
            eta_s=None if eta is None else round(eta, 3),
        )

    def finish(self, done: int, errors: int, busy_time_s: float,
               **fields: object) -> None:
        self.event(
            "finish",
            done=done,
            total=self.total,
            errors=errors,
            wall_time_s=round(time.time() - self._t0, 6),
            busy_time_s=round(busy_time_s, 6),
            **fields,
        )
        self.close()

    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()


def parse_jsonl_tolerant(
    path: str, schema: str, what: str = "runlog"
) -> List[Dict[str, object]]:
    """Parse a schema-tagged JSONL stream, tolerating a torn tail.

    The shared reader shape for every append-only log in the repo (the
    run log here, the campaign journal in :mod:`repro.service.journal`):
    a truncated *final* line — a live writer mid-append, or the fsync'd
    prefix a ``kill -9`` left behind — is silently dropped and the
    parsed prefix returned, while a malformed or foreign-schema line
    anywhere *before* the tail is real corruption and raises
    ``ValueError``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.readlines()
    records: List[Dict[str, object]] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                break  # torn tail of a live log
            raise ValueError(f"{path}:{lineno}: malformed {what} line")
        if not isinstance(record, dict) or record.get("schema") != schema:
            got = record.get("schema") if isinstance(record, dict) else record
            raise ValueError(
                f"{path}:{lineno}: expected schema {schema!r}, got {got!r}"
            )
        records.append(record)
    return records


def read_runlog(path: str) -> List[Dict[str, object]]:
    """Parse a run log; raises ValueError on a non-runlog line.

    Truncated final lines (a live campaign mid-write) are tolerated —
    the parsed prefix is returned.
    """
    return parse_jsonl_tolerant(path, RUNLOG_SCHEMA, what="runlog")


class Progress:
    """A live single-line progress display (``--progress``)."""

    def __init__(self, total: int, label: str = "sweep",
                 stream: Optional[TextIO] = None) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self._t0 = time.perf_counter()
        self._done = 0

    def update(self, done: int) -> None:
        self._done = done
        elapsed = time.perf_counter() - self._t0
        rate = done / elapsed if elapsed > 0 else 0.0
        eta = (self.total - done) / rate if rate > 0 else float("nan")
        pct = 100.0 * done / self.total if self.total else 100.0
        line = (
            f"\r[{self.label}] {done}/{self.total} ({pct:5.1f}%)  "
            f"{rate:6.2f} cells/s  eta {eta:6.1f}s"
        )
        self.stream.write(line)
        self.stream.flush()

    def close(self) -> None:
        if self._done or self.total:
            self.stream.write("\n")
            self.stream.flush()
