"""Deterministic simulated-cycle attribution (``repro.prof`` part one).

The timing simulator already *knows* where every cycle goes — dispatch
costs, exposed miss latencies, persist-ordering stalls, lock waits — it
just never adds them up.  :class:`PhaseProfiler` is the accumulator the
instrumentation sites feed: every advance of a core's local clock is
bucketed into one of five phases,

* ``core-issue``   — front-end dispatch, compute, lock RMW cost, and any
  residual pipeline time not claimed by a more specific phase;
* ``cache``        — exposed load-miss latency served by the caches or
  DRAM (the part out-of-order execution could not hide);
* ``pm-controller``— exposed latency of reads served by the PM media;
* ``persist-hw``   — waits imposed by persist-ordering hardware: fences,
  drains, full persist structures (the ``stall_*`` taxonomy of Fig. 8);
* ``idle``         — lock-arbitration waits (the core is parked, not
  working).

Per core, the five buckets sum *exactly* to that core's final local
clock: :meth:`begin_op`/:meth:`end_op` bracket every dispatched micro-op
and charge the unclaimed remainder to ``core-issue``, so nothing is ever
lost or double-counted (``tests/prof/test_phases.py`` pins this
invariant).  Shared-resource activity that is not on any core's dispatch
timeline — PM media busy time, queue residency, write-backs — goes into
the separate :attr:`resources` map instead, so the timeline identity is
preserved.

Like the event tracer, the profiler is observation-only by construction:
no method returns a time, and the default :data:`NULL_PROF` makes every
site one attribute check, so simulated results are bit-identical with
profiling on or off.  Setting the :data:`PROF_PHASES_ENV` environment
variable attaches a live profiler to every :class:`~repro.sim.machine.
Machine` built without one — the switch the bit-invisibility tests flip.

This module must stay import-free of the simulator (the simulator
imports *it*).
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: environment variable: when set (to anything non-empty), machines built
#: without an explicit profiler attach a live :class:`PhaseProfiler`.
PROF_PHASES_ENV = "REPRO_PROF_PHASES"

#: the closed phase taxonomy, in rendering order.
PHASES = ("core-issue", "cache", "pm-controller", "persist-hw", "idle")

#: stall buckets (``CoreStats.stall_*`` names) -> phase.
STALL_PHASE = {
    "stall_fence": "persist-hw",
    "stall_queue_full": "persist-hw",
    "stall_drain": "persist-hw",
    "stall_lock": "idle",
}


def _empty_buckets() -> Dict[str, float]:
    return {phase: 0.0 for phase in PHASES}


class PhaseProfiler:
    """Accumulates per-core phase cycles and shared-resource activity."""

    enabled = True

    def __init__(self) -> None:
        #: tid -> phase -> simulated cycles.
        self.core_phases: Dict[int, Dict[str, float]] = {}
        #: shared-resource accounting (busy cycles, residencies, counts);
        #: deliberately off the core timeline.
        self.resources: Dict[str, float] = {}
        self._snapshots: Dict[int, Dict[str, float]] = {}

    # -- core-timeline charging -------------------------------------------

    def charge(self, tid: int, phase: str, amount: float) -> None:
        """Attribute ``amount`` cycles of core ``tid``'s timeline to
        ``phase``.  Non-positive amounts are ignored (no-wait fast path)."""
        if amount <= 0.0:
            return
        buckets = self.core_phases.get(tid)
        if buckets is None:
            buckets = self.core_phases[tid] = _empty_buckets()
        buckets[phase] += amount

    def begin_op(self, tid: int) -> None:
        """Bracket start: snapshot ``tid``'s buckets so :meth:`end_op`
        can compute the op's unclaimed remainder (and :meth:`abort_op`
        can roll a cancelled dispatch back)."""
        buckets = self.core_phases.get(tid)
        if buckets is None:
            buckets = self.core_phases[tid] = _empty_buckets()
        self._snapshots[tid] = dict(buckets)

    def abort_op(self, tid: int) -> None:
        """The op did not dispatch after all (lock parking): restore the
        snapshot so the retry cannot double-charge."""
        snap = self._snapshots.pop(tid, None)
        if snap is not None:
            self.core_phases[tid] = snap

    def end_op(self, tid: int, total: float) -> None:
        """Bracket end: the op advanced the core's clock by ``total``;
        whatever no site claimed is front-end/pipeline time."""
        snap = self._snapshots.pop(tid, None)
        buckets = self.core_phases.get(tid)
        if buckets is None:
            buckets = self.core_phases[tid] = _empty_buckets()
        charged = sum(buckets.values())
        if snap is not None:
            charged -= sum(snap.values())
        rest = total - charged
        if rest > 0.0:
            buckets["core-issue"] += rest

    # -- shared resources --------------------------------------------------

    def charge_resource(self, name: str, amount: float = 1.0) -> None:
        """Accumulate off-timeline activity (media busy cycles, queue
        residency, write-back counts) under ``name``."""
        self.resources[name] = self.resources.get(name, 0.0) + amount

    # -- reporting ---------------------------------------------------------

    def phase_totals(self) -> Dict[str, float]:
        """Phase cycles summed over every core, all phases present."""
        out = _empty_buckets()
        for buckets in self.core_phases.values():
            for phase, amount in buckets.items():
                out[phase] += amount
        return out

    def core_total(self, tid: int) -> float:
        """All cycles attributed to core ``tid`` (== its local clock)."""
        return sum(self.core_phases.get(tid, {}).values())

    def to_json(self) -> Dict[str, object]:
        """The ``simulated`` section of a ``repro.prof/1`` document."""
        totals = self.phase_totals()
        grand = sum(totals.values())
        per_core: List[Dict[str, float]] = [
            {phase: round(self.core_phases[tid][phase], 6) for phase in PHASES}
            for tid in sorted(self.core_phases)
        ]
        return {
            "phases": {phase: round(totals[phase], 6) for phase in PHASES},
            "total_cycles": round(grand, 6),
            "phase_pct": {
                phase: round(100.0 * totals[phase] / grand, 3) if grand else 0.0
                for phase in PHASES
            },
            "per_core": per_core,
            "resources": {
                name: round(value, 6) for name, value in sorted(self.resources.items())
            },
        }


class NullPhaseProfiler:
    """Disabled profiler: every site is one attribute check, nothing is
    recorded, and simulated timing cannot be perturbed."""

    enabled = False
    core_phases: Dict[int, Dict[str, float]] = {}
    resources: Dict[str, float] = {}

    def charge(self, tid: int, phase: str, amount: float) -> None:
        pass

    def begin_op(self, tid: int) -> None:
        pass

    def abort_op(self, tid: int) -> None:
        pass

    def end_op(self, tid: int, total: float) -> None:
        pass

    def charge_resource(self, name: str, amount: float = 1.0) -> None:
        pass

    def phase_totals(self) -> Dict[str, float]:
        return _empty_buckets()

    def core_total(self, tid: int) -> float:
        return 0.0

    def to_json(self) -> Dict[str, object]:
        return {}


#: process-wide disabled profiler; the default everywhere.
NULL_PROF = NullPhaseProfiler()


def active_profiler(explicit: Optional["PhaseProfiler"] = None):
    """Resolve the profiler a machine should use: an explicit one wins;
    otherwise :data:`PROF_PHASES_ENV` attaches a fresh live profiler,
    and the default is the no-op :data:`NULL_PROF`."""
    import os

    if explicit is not None and explicit is not NULL_PROF:
        return explicit
    if os.environ.get(PROF_PHASES_ENV):
        return PhaseProfiler()
    return explicit if explicit is not None else NULL_PROF
