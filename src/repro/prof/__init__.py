"""``repro.prof`` — performance observability for the simulator itself.

Three coordinated parts (see README "Profiling & perf tracking"):

* :mod:`repro.prof.phases` — deterministic simulated-cycle attribution:
  phase hooks threaded through the sim core bucket every tick into the
  core-issue / cache / pm-controller / persist-hw / idle taxonomy,
  bit-invisible when disabled.
* :mod:`repro.prof.wallclock` — the ``python -m repro profile`` hot-path
  profiler: cProfile with a curated function->subsystem mapping, so the
  report answers "which simulator layer burns the wall time".  Emits the
  ``repro.prof/1`` schema combining both attributions.
* :mod:`repro.prof.bench` + :mod:`repro.prof.runlog` — the perf
  trajectory store (``repro bench --record`` / ``--baseline``) and the
  ``repro.runlog/1`` campaign telemetry behind ``sweep``/``soak``
  ``--progress``.

Only the dependency-free submodules are re-exported here: importing
:mod:`repro.prof.wallclock` or :mod:`repro.prof.bench` at package level
would recurse into the harness (which imports the simulator, which
imports :mod:`repro.prof.phases`).  Import those submodules directly.
"""

from repro.prof.phases import (
    NULL_PROF,
    PHASES,
    PROF_PHASES_ENV,
    STALL_PHASE,
    NullPhaseProfiler,
    PhaseProfiler,
    active_profiler,
)
from repro.prof.runlog import (
    RUNLOG_SCHEMA,
    Progress,
    RunLog,
    read_runlog,
)

#: JSON schema tag shared by every profiler export.
PROF_SCHEMA = "repro.prof/1"

__all__ = [
    "NULL_PROF",
    "PHASES",
    "PROF_PHASES_ENV",
    "PROF_SCHEMA",
    "Progress",
    "RUNLOG_SCHEMA",
    "RunLog",
    "NullPhaseProfiler",
    "PhaseProfiler",
    "STALL_PHASE",
    "active_profiler",
    "read_runlog",
]
