"""Machine configuration (Table I of the paper).

All latencies are stored in **CPU cycles** at the configured clock.  The
paper's machine runs at 2 GHz, so one cycle is 0.5 ns; Table I's nanosecond
figures are converted accordingly:

==========================  ============  ============
Parameter                   Paper (ns)    Cycles @2GHz
==========================  ============  ============
L1-D hit                    2             4
L2 hit                      16            32
PM read                     346           692
PM write to controller      96            192
PM write to media           500           1000
==========================  ============  ============

The persist-ordering hardware sizes follow Section VI-A: a 16-entry persist
queue and a strand buffer unit with four 4-entry strand buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core front-end and queue capacities (Table I)."""

    clock_ghz: float = 2.0
    dispatch_width: int = 6
    commit_width: int = 8
    rob_entries: int = 224
    load_queue_entries: int = 72
    store_queue_entries: int = 64
    #: fraction of a PM/L2 load-miss latency hidden by out-of-order
    #: execution (the ROB overlaps independent work with the miss).
    load_overlap: float = 0.75


@dataclass(frozen=True)
class CacheConfig:
    """One cache level: geometry and hit latency."""

    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency: int
    mshrs: int

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(frozen=True)
class PMConfig:
    """Persistent-memory controller and media timing (Table I, [58])."""

    read_latency: int = 692
    #: CLWB acknowledgement latency: time for a write to reach the
    #: ADR-protected controller, after which it is considered persistent.
    write_to_controller: int = 192
    #: media write time, drained from the controller's write queue.
    write_to_media: int = 1000
    write_queue_entries: int = 64
    read_queue_entries: int = 32
    #: concurrent media writes the device sustains (bank parallelism);
    #: Optane sustains roughly one 64B line per ~30ns of write bandwidth,
    #: i.e. ~16 lines in flight at the 500ns media latency.
    media_banks: int = 16
    #: minimum controller acceptance interval between writes (cycles);
    #: models the controller's front-end bandwidth.
    accept_interval: int = 8
    #: combine writes to a line still waiting in the write queue (the
    #: Optane write-pending-queue behaviour); disable for ablation.
    coalesce_writes: bool = True
    # -- media-resilience policy (only exercised when a fault model is
    # attached; see repro.faults.MediaFaultModel) --------------------------
    #: media write attempts before the controller gives up retrying a
    #: transiently failing line and falls back to a spare-line remap.
    max_write_retries: int = 4
    #: backoff before the first retry (cycles); doubles per attempt up to
    #: ``retry_backoff_mult ** (attempt - 1)`` times the base.
    retry_backoff_base: int = 128
    retry_backoff_mult: float = 2.0
    #: extra controller latency to redirect a line into the spare region
    #: (metadata update + spare write setup).
    remap_latency: int = 1500
    #: spare lines available for remapping before the device is worn out.
    spare_lines: int = 64
    #: added read latency when the ECC engine corrects a line error.
    ecc_penalty: int = 96


@dataclass(frozen=True)
class StrandConfig:
    """StrandWeaver hardware sizing (Section VI-A, Figure 9 sweeps these)."""

    persist_queue_entries: int = 16
    n_strand_buffers: int = 4
    strand_buffer_entries: int = 4


@dataclass(frozen=True)
class HopsConfig:
    """HOPS per-core persist buffer sizing (per [19])."""

    persist_buffer_entries: int = 16


@dataclass(frozen=True)
class MachineConfig:
    """Complete machine: cores, caches, PM, and persistency hardware."""

    n_cores: int = 8
    core: CoreConfig = field(default_factory=CoreConfig)
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=32 * 1024, assoc=2, line_bytes=64, hit_latency=4, mshrs=6
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=28 * 1024 * 1024, assoc=16, line_bytes=64, hit_latency=32, mshrs=16
        )
    )
    pm: PMConfig = field(default_factory=PMConfig)
    strand: StrandConfig = field(default_factory=StrandConfig)
    hops: HopsConfig = field(default_factory=HopsConfig)
    #: cross-core dirty-line transfer latency (snoop + data forward).
    coherence_transfer: int = 40

    def with_strand(self, n_buffers: int, entries: int) -> "MachineConfig":
        """Return a copy re-sized for a Figure-9 sensitivity point."""
        return replace(
            self,
            strand=replace(
                self.strand,
                n_strand_buffers=n_buffers,
                strand_buffer_entries=entries,
            ),
        )

    def table1(self) -> Dict[str, str]:
        """Render the configuration in the shape of Table I."""
        ns = 1.0 / self.core.clock_ghz
        return {
            "Core": (
                f"{self.n_cores}-cores, {self.core.clock_ghz:g}GHz OoO, "
                f"{self.core.dispatch_width}-wide dispatch, "
                f"{self.core.commit_width}-wide commit, "
                f"{self.core.rob_entries}-entry ROB, "
                f"{self.core.load_queue_entries}/{self.core.store_queue_entries}-entry LQ/SQ"
            ),
            "D-Cache": (
                f"{self.l1d.size_bytes // 1024}kB, {self.l1d.assoc}-way, "
                f"{self.l1d.line_bytes}B, {self.l1d.hit_latency * ns:g}ns hit, "
                f"{self.l1d.mshrs} MSHRs"
            ),
            "L2-Cache": (
                f"{self.l2.size_bytes // (1024 * 1024)}MB, {self.l2.assoc}-way, "
                f"{self.l2.line_bytes}B, {self.l2.hit_latency * ns:g}ns hit, "
                f"{self.l2.mshrs} MSHRs"
            ),
            "PM controller": (
                f"{self.pm.write_queue_entries}/{self.pm.read_queue_entries}-entry "
                f"write/read queue"
            ),
            "PM": (
                f"{self.pm.read_latency * ns:g}ns read, "
                f"{self.pm.write_to_controller * ns:g}ns write to controller, "
                f"{self.pm.write_to_media * ns:g}ns write to PM"
            ),
            "StrandWeaver": (
                f"{self.strand.persist_queue_entries}-entry persist queue, "
                f"{self.strand.n_strand_buffers} strand buffers x "
                f"{self.strand.strand_buffer_entries} entries"
            ),
        }


#: The default machine of Table I.
TABLE_I = MachineConfig()
