"""Simulation statistics: cycles, stall taxonomy, CLWB intensity.

The paper reports three derived quantities this module supports directly:

* **speedup** — ratio of total cycles between two designs (Figure 7);
* **persist-order stalls** — cycles the front end is blocked by a
  persist-ordering constraint (Figure 8);
* **CKC** — CLWBs issued per thousand cycles, the write-intensity metric
  of Table II.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # no runtime import: obs depends on this module
    from repro.obs.metrics import MetricsRegistry, ScopedMetrics
    from repro.sim.durability import CrashState


@dataclass
class CoreStats:
    """Per-core counters accumulated during trace replay."""

    cycles: int = 0
    ops: int = 0
    stores: int = 0
    loads: int = 0
    clwbs: int = 0
    fences: int = 0
    compute_cycles: int = 0
    #: dispatch-blocked cycles attributable to persist ordering, split by
    #: the blocking mechanism.
    stall_fence: int = 0
    stall_queue_full: int = 0
    stall_drain: int = 0
    stall_lock: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    pm_reads: int = 0
    pm_writes: int = 0
    #: per-core metric view (``core<tid>/...`` names) when the machine
    #: ran under a tracer; None otherwise.  Never merged.
    metrics: Optional["ScopedMetrics"] = field(
        default=None, repr=False, compare=False
    )

    @property
    def persist_stalls(self) -> int:
        """Total persist-ordering stall cycles (Figure 8 numerator)."""
        return self.stall_fence + self.stall_queue_full + self.stall_drain

    def merge(self, other: "CoreStats") -> None:
        self.cycles = max(self.cycles, other.cycles)
        for name in (
            "ops",
            "stores",
            "loads",
            "clwbs",
            "fences",
            "compute_cycles",
            "stall_fence",
            "stall_queue_full",
            "stall_drain",
            "stall_lock",
            "l1_hits",
            "l1_misses",
            "pm_reads",
            "pm_writes",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class MachineStats:
    """Aggregated result of replaying a program on one hardware design."""

    design: str = ""
    per_core: List[CoreStats] = field(default_factory=list)
    #: registry of queue-occupancy / latency metrics when the machine ran
    #: under a tracer; None otherwise.  Not part of equality.
    metrics: Optional["MetricsRegistry"] = field(
        default=None, repr=False, compare=False
    )
    #: machine state at the injected crash point when the run was cut
    #: short by a fault plan (see repro.chaos); None on normal completion.
    crash: Optional["CrashState"] = field(default=None, repr=False, compare=False)
    #: media fault/resilience accounting when the run executed under an
    #: enabled :class:`repro.faults.MediaFaultModel`; None otherwise, so
    #: fault-free summaries are byte-identical to pre-fault-layer builds.
    faults: Optional[Dict[str, object]] = field(default=None, compare=False)

    @property
    def cycles(self) -> int:
        """Makespan: completion time of the slowest core."""
        return max((c.cycles for c in self.per_core), default=0)

    @property
    def total(self) -> CoreStats:
        out = CoreStats()
        for core in self.per_core:
            out.merge(core)
        return out

    @property
    def clwbs(self) -> int:
        return sum(c.clwbs for c in self.per_core)

    @property
    def persist_stalls(self) -> int:
        return sum(c.persist_stalls for c in self.per_core)

    @property
    def ckc(self) -> float:
        """CLWBs per thousand cycles (Table II write-intensity metric)."""
        cycles = self.cycles
        if cycles == 0:
            return 0.0
        return 1000.0 * self.clwbs / cycles

    def speedup_over(self, baseline: "MachineStats") -> float:
        """How much faster this run is than ``baseline`` (>1 == faster)."""
        if self.cycles == 0:
            return 0.0
        return baseline.cycles / self.cycles

    def stall_ratio_vs(self, baseline: "MachineStats") -> float:
        """Persist-stall cycles normalised to ``baseline`` (Figure 8).

        When the baseline has no persist stalls the normalisation is
        undefined; rather than leaking ``inf`` (which is not valid JSON
        and poisons ``--json`` figure output) the absolute stall count of
        this run is returned as a finite proxy — 0.0 when this run also
        has none.
        """
        if baseline.persist_stalls == 0:
            return float(self.persist_stalls)
        return self.persist_stalls / baseline.persist_stalls

    def summary(self) -> Dict[str, object]:
        """Flat scalar summary (the JSON exporter's per-run record).

        Values are ints and floats plus the ``design`` string — hence the
        ``object`` value type.
        """
        total = self.total
        out: Dict[str, object] = {
            "design": self.design,
            "cycles": self.cycles,
            "ops": total.ops,
            "stores": total.stores,
            "loads": total.loads,
            "clwbs": total.clwbs,
            "fences": total.fences,
            "persist_stalls": self.persist_stalls,
            "stall_fence": total.stall_fence,
            "stall_queue_full": total.stall_queue_full,
            "stall_drain": total.stall_drain,
            "stall_lock": total.stall_lock,
            "l1_hits": total.l1_hits,
            "l1_misses": total.l1_misses,
            "pm_reads": total.pm_reads,
            "pm_writes": total.pm_writes,
            "ckc": round(self.ckc, 2),
        }
        if self.faults is not None:
            out["faults"] = dict(self.faults)
        return out


def geomean(values: List[float]) -> float:
    """Geometric mean, the paper's "average speedup" aggregation.

    Non-positive inputs have no geometric mean; silently dropping them
    (the historical behaviour) skews figure summaries without a trace,
    so they are rejected loudly instead.  An empty list stays 0.0 for
    callers aggregating possibly-empty series.
    """
    bad = [v for v in values if v <= 0]
    if bad:
        raise ValueError(f"geomean is undefined for non-positive values: {bad}")
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
