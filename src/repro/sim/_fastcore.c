/* Native replay core for the StrandWeaver timing simulator.
 *
 * A literal port of the verified Python fast path (repro/sim/fastcore.py)
 * that owns *all* simulator state natively: tag caches, dirty ownership,
 * bandwidth windows with path-compressed skip chains, PM/DRAM timing,
 * lock arbitration, per-design persist structures.  The only output is
 * the per-core dynamic stats block -- the Python layer merges it with the
 * replay-invariant op-mix totals (see fastcore.compile_trace).
 *
 * Bit-identity contract: every floating-point expression mirrors the
 * reference engine's CPython arithmetic operation-for-operation.  Build
 * with -ffp-contract=off (no FMA contraction) so doubles round exactly
 * like CPython's; llrint() under the default FE_TONEAREST mode matches
 * Python's round-half-to-even.  Data-structure substitutions (sorted
 * arrays for the reference's filter+sort lists, running maxima for
 * max()-drain targets) are the same ones fastcore.py proves exact.
 *
 * Error protocol: rs_run returns 0 on success, 1 on replay deadlock and
 * 2 on any unsupported/internal condition.  Non-zero means the Python
 * caller silently re-runs on the Python engine, which reproduces the
 * exact exception (or result) -- so the C core never needs to replicate
 * diagnostics, only fault-free timing.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;
typedef int32_t i32;
typedef uint8_t u8;

/* ---- op kinds (must match repro.core.ops.OpKind) -------------------- */
enum {
    K_STORE = 0, K_LOAD = 1, K_CLWB = 2,
    K_SFENCE = 3, K_PB = 4, K_NS = 5, K_JS = 6, K_OFENCE = 7, K_DFENCE = 8,
    K_LOCK_ACQ = 9, K_LOCK_REL = 10, K_COMPUTE = 11,
    K_VSTORE = 12, K_VLOAD = 13,
};

enum { RC_OK = 0, RC_DEADLOCK = 1, RC_ERR = 2 };

/* =====================================================================
 * open-addressing hash map: i64 key -> double value
 * ===================================================================== */

typedef struct {
    i64 *keys;
    double *vals;
    u8 *st;        /* 0 empty, 1 live, 2 tombstone */
    i64 cap;       /* power of two */
    i64 live;
    i64 fill;      /* live + tombstones */
} Map;

static inline uint64_t mix64(uint64_t x) {
    x ^= x >> 33; x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33; x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

static int map_init(Map *m, i64 cap0) {
    i64 cap = 16;
    while (cap < cap0) cap <<= 1;
    m->keys = (i64 *)malloc((size_t)cap * sizeof(i64));
    m->vals = (double *)malloc((size_t)cap * sizeof(double));
    m->st = (u8 *)calloc((size_t)cap, 1);
    m->cap = cap; m->live = 0; m->fill = 0;
    return m->keys && m->vals && m->st ? 0 : -1;
}

static void map_free(Map *m) {
    free(m->keys); free(m->vals); free(m->st);
    m->keys = NULL; m->vals = NULL; m->st = NULL;
}

static int map_grow(Map *m) {
    i64 ncap = 16;
    while (ncap < m->live * 4 + 16) ncap <<= 1;
    i64 *nk = (i64 *)malloc((size_t)ncap * sizeof(i64));
    double *nv = (double *)malloc((size_t)ncap * sizeof(double));
    u8 *ns = (u8 *)calloc((size_t)ncap, 1);
    if (!nk || !nv || !ns) { free(nk); free(nv); free(ns); return -1; }
    for (i64 i = 0; i < m->cap; i++) {
        if (m->st[i] != 1) continue;
        i64 j = (i64)(mix64((uint64_t)m->keys[i]) & (uint64_t)(ncap - 1));
        while (ns[j]) j = (j + 1) & (ncap - 1);
        nk[j] = m->keys[i]; nv[j] = m->vals[i]; ns[j] = 1;
    }
    free(m->keys); free(m->vals); free(m->st);
    m->keys = nk; m->vals = nv; m->st = ns;
    m->cap = ncap; m->fill = m->live;
    return 0;
}

static inline int map_get(const Map *m, i64 key, double *out) {
    i64 mask = m->cap - 1;
    i64 j = (i64)(mix64((uint64_t)key) & (uint64_t)mask);
    for (;;) {
        u8 s = m->st[j];
        if (s == 0) return 0;
        if (s == 1 && m->keys[j] == key) { *out = m->vals[j]; return 1; }
        j = (j + 1) & mask;
    }
}

static inline int map_put(Map *m, i64 key, double val) {
    if (m->fill * 2 >= m->cap && map_grow(m)) return -1;
    i64 mask = m->cap - 1;
    i64 j = (i64)(mix64((uint64_t)key) & (uint64_t)mask);
    i64 tomb = -1;
    for (;;) {
        u8 s = m->st[j];
        if (s == 0) break;
        if (s == 2) { if (tomb < 0) tomb = j; }
        else if (m->keys[j] == key) { m->vals[j] = val; return 0; }
        j = (j + 1) & mask;
    }
    if (tomb >= 0) j = tomb; else m->fill++;
    m->keys[j] = key; m->vals[j] = val; m->st[j] = 1; m->live++;
    return 0;
}

static inline void map_del(Map *m, i64 key) {
    i64 mask = m->cap - 1;
    i64 j = (i64)(mix64((uint64_t)key) & (uint64_t)mask);
    for (;;) {
        u8 s = m->st[j];
        if (s == 0) return;
        if (s == 1 && m->keys[j] == key) { m->st[j] = 2; m->live--; return; }
        j = (j + 1) & mask;
    }
}

/* =====================================================================
 * growable double ring with O(1) drop-from-front (rob / sq / strand brt:
 * values are appended monotonically non-decreasing)
 * ===================================================================== */

typedef struct {
    double *v;
    i64 head, len, cap;
} Ring;

static int ring_init(Ring *r, i64 cap0) {
    r->v = (double *)malloc((size_t)cap0 * sizeof(double));
    r->head = 0; r->len = 0; r->cap = cap0;
    return r->v ? 0 : -1;
}

static void ring_free(Ring *r) { free(r->v); r->v = NULL; }

static int ring_push(Ring *r, double x) {
    if (r->head + r->len == r->cap) {
        if (r->head > r->cap / 2) {
            memmove(r->v, r->v + r->head, (size_t)r->len * sizeof(double));
            r->head = 0;
        } else {
            i64 ncap = r->cap * 2;
            double *nv = (double *)realloc(r->v, (size_t)ncap * sizeof(double));
            if (!nv) return -1;
            r->v = nv; r->cap = ncap;
        }
    }
    r->v[r->head + r->len++] = x;
    return 0;
}

static inline void ring_drop_le(Ring *r, double t) {
    while (r->len && r->v[r->head] <= t) { r->head++; r->len--; }
}

#define RING_AT(r, i) ((r)->v[(r)->head + (i)])

/* =====================================================================
 * sorted dynamic array (ascending) -- the reference keeps these as
 * plain lists it filters (drop <= t) and sorts (k-th smallest when
 * full); a sorted array is the same multiset with O(1) both queries.
 * ===================================================================== */

typedef struct {
    double *v;
    i64 head, len, cap;
} SArr;

static int sarr_init(SArr *s, i64 cap0) {
    s->v = (double *)malloc((size_t)cap0 * sizeof(double));
    s->head = 0; s->len = 0; s->cap = cap0;
    return s->v ? 0 : -1;
}

static void sarr_free(SArr *s) { free(s->v); s->v = NULL; }

static inline void sarr_drop_le(SArr *s, double t) {
    while (s->len && s->v[s->head] <= t) { s->head++; s->len--; }
}

static int sarr_insert(SArr *s, double x) {
    if (s->head + s->len == s->cap) {
        if (s->head > s->cap / 2) {
            memmove(s->v, s->v + s->head, (size_t)s->len * sizeof(double));
            s->head = 0;
        } else {
            i64 ncap = s->cap * 2;
            double *nv = (double *)realloc(s->v, (size_t)ncap * sizeof(double));
            if (!nv) return -1;
            s->v = nv; s->cap = ncap;
        }
    }
    /* binary search for first element > x within [head, head+len) */
    i64 lo = 0, hi = s->len;
    double *base = s->v + s->head;
    while (lo < hi) {
        i64 mid = (lo + hi) >> 1;
        if (base[mid] <= x) lo = mid + 1; else hi = mid;
    }
    memmove(base + lo + 1, base + lo, (size_t)(s->len - lo) * sizeof(double));
    base[lo] = x;
    s->len++;
    return 0;
}

static inline void sarr_clear(SArr *s) { s->head = 0; s->len = 0; }

#define SARR_AT(s, i) ((s)->v[(s)->head + (i)])

/* =====================================================================
 * set-associative LRU tag cache: per-set way arrays in recency order
 * (index 0 = LRU victim).  Mirrors TagCache's OrderedDict exactly.
 * ===================================================================== */

typedef struct {
    i64 *lines;   /* n_sets * assoc, valid ways [0, cnt) per set */
    u8 *dirty;
    i32 *cnt;
    i64 n_sets;
    i32 assoc;
} TC;

static int tc_init(TC *c, i64 n_sets, i32 assoc) {
    c->lines = (i64 *)malloc((size_t)(n_sets * assoc) * sizeof(i64));
    c->dirty = (u8 *)calloc((size_t)(n_sets * assoc), 1);
    c->cnt = (i32 *)calloc((size_t)n_sets, sizeof(i32));
    c->n_sets = n_sets; c->assoc = assoc;
    return c->lines && c->dirty && c->cnt ? 0 : -1;
}

static void tc_free(TC *c) {
    free(c->lines); free(c->dirty); free(c->cnt);
    c->lines = NULL; c->dirty = NULL; c->cnt = NULL;
}

static inline i64 tc_set(const TC *c, i64 line) { return line % c->n_sets; }

static inline i32 tc_find(const TC *c, i64 set, i64 line) {
    const i64 *ws = c->lines + set * c->assoc;
    i32 n = c->cnt[set];
    for (i32 i = 0; i < n; i++)
        if (ws[i] == line) return i;
    return -1;
}

/* move way w of `set` to MRU (preserving relative order of the rest) */
static inline void tc_touch(TC *c, i64 set, i32 w) {
    i32 n = c->cnt[set];
    if (w == n - 1) return;
    i64 *ws = c->lines + set * c->assoc;
    u8 *ds = c->dirty + set * c->assoc;
    i64 line = ws[w]; u8 d = ds[w];
    memmove(ws + w, ws + w + 1, (size_t)(n - 1 - w) * sizeof(i64));
    memmove(ds + w, ds + w + 1, (size_t)(n - 1 - w));
    ws[n - 1] = line; ds[n - 1] = d;
}

/* insert `line`; returns 1 and fills the victim out-params if a way
 * was evicted, 0 otherwise.  Exact port of TagCache.fill. */
static inline int tc_fill(TC *c, i64 line, u8 dirty, i64 *v_line, u8 *v_dirty) {
    i64 set = tc_set(c, line);
    i32 w = tc_find(c, set, line);
    i64 *ws = c->lines + set * c->assoc;
    u8 *ds = c->dirty + set * c->assoc;
    if (w >= 0) {
        u8 d = (u8)(ds[w] | dirty);
        tc_touch(c, set, w);
        ds[c->cnt[set] - 1] = d;
        return 0;
    }
    int evicted = 0;
    i32 n = c->cnt[set];
    if (n >= c->assoc) {
        *v_line = ws[0]; *v_dirty = ds[0];
        memmove(ws, ws + 1, (size_t)(n - 1) * sizeof(i64));
        memmove(ds, ds + 1, (size_t)(n - 1));
        n--; c->cnt[set] = n;
        evicted = 1;
    }
    ws[n] = line; ds[n] = dirty;
    c->cnt[set] = n + 1;
    return evicted;
}

/* remove way w of `set`; returns its dirty bit */
static inline u8 tc_remove(TC *c, i64 set, i32 w) {
    i32 n = c->cnt[set];
    i64 *ws = c->lines + set * c->assoc;
    u8 *ds = c->dirty + set * c->assoc;
    u8 d = ds[w];
    memmove(ws + w, ws + w + 1, (size_t)(n - 1 - w) * sizeof(i64));
    memmove(ds + w, ds + w + 1, (size_t)(n - 1 - w));
    c->cnt[set] = n - 1;
    return d;
}

/* =====================================================================
 * bandwidth resource: windowed capacity accounting with skip chains
 * (exact port of BandwidthResource.reserve/prune)
 * ===================================================================== */

typedef struct {
    Map win;    /* window -> count */
    Map skip;   /* full window -> next candidate */
    double iv;
    i64 capn;
    i64 floor_w;
} BW;

static int bw_init(BW *b, double iv, i64 capn) {
    b->iv = iv; b->capn = capn; b->floor_w = 0;
    if (map_init(&b->win, 64)) return -1;
    return map_init(&b->skip, 64);
}

static void bw_free(BW *b) { map_free(&b->win); map_free(&b->skip); }

static double bw_reserve(BW *b, double t, int *err) {
    double tt = t > 0.0 ? t : 0.0;
    i64 w = (i64)(tt / b->iv);
    double nxt;
    if (map_get(&b->skip, w, &nxt)) {
        i64 root = (i64)nxt;
        double hop;
        while (map_get(&b->skip, root, &hop)) root = (i64)hop;
        i64 ww = w;
        while (map_get(&b->skip, ww, &hop) && (i64)hop != root) {
            if (map_put(&b->skip, ww, (double)root)) { *err = 1; return t; }
            ww = (i64)hop;
        }
        w = root;
    }
    double cv = 0.0;
    map_get(&b->win, w, &cv);
    i64 count = (i64)cv + 1;
    if (map_put(&b->win, w, (double)count)) { *err = 1; return t; }
    if (count >= b->capn && map_put(&b->skip, w, (double)(w + 1))) {
        *err = 1; return t;
    }
    double wt = (double)w * b->iv;
    return t > wt ? t : wt;
}

static void bw_prune(BW *b, double low) {
    double tt = low > 0.0 ? low : 0.0;
    i64 w_min = (i64)(tt / b->iv);
    if (w_min <= b->floor_w) return;
    for (i64 i = 0; i < b->win.cap; i++)
        if (b->win.st[i] == 1 && b->win.keys[i] < w_min) {
            b->win.st[i] = 2; b->win.live--;
        }
    for (i64 i = 0; i < b->skip.cap; i++)
        if (b->skip.st[i] == 1 && b->skip.keys[i] < w_min) {
            b->skip.st[i] = 2; b->skip.live--;
        }
    b->floor_w = w_min;
}

/* =====================================================================
 * the machine context
 * ===================================================================== */

#define OUT_STRIDE 8
/* out[tid*8 + ...] */
enum {
    O_CYCLES = 0, O_L1H = 1, O_L1M = 2, O_PMR = 3,
    O_STQ = 4, O_STF = 5, O_STD = 6, O_STL = 7,
};

typedef struct {
    /* config */
    int des, n;
    i64 rob_cap, sq_cap;
    i64 out_cap, hops_cap, n_bufs, sb_cap, pq_cap;
    i64 prune_period;
    double dispatch, hit, lock_cost;
    double l1_lat, l2_lat, ovl;
    double w2c, max_backlog, read_lat, dram_lat, coh;
    int coalesce;

    /* memory system */
    TC *l1;        /* n cores */
    TC l2;
    Map downer;    /* line -> owning tid (value: (double)tid) */
    BW accept, media, readbw, drambw;
    Map queued;    /* line -> media_start */

    /* per-core engine state */
    double *clock, *key;
    i64 *pc;
    u8 *st;                 /* 0 runnable, 1 parked, 2 finished */
    i64 *parked_on;         /* lock index when st==1 */
    Ring *rob, *sq;
    double *rob_last, *sq_last;
    Map *lsr;               /* line -> youngest store retire */

    /* per-design persist state */
    SArr *outs;             /* x86 / non-atomic / hops / strand-pq */
    double *out_latest;
    double *epoch_ready, *oe_max;   /* hops */
    i64 *oe_n;
    Ring *brt;              /* n * n_bufs strand buffers */
    double *b_last, *b_dep;
    Map *b_linert;
    i64 *ongoing;
    double *store_gate, *max_issue, *pq_latest;

    /* locks */
    i64 n_locks;
    const i32 *lock_keys, *lock_offs, *lock_tids;
    i64 *lk_next;
    double *lk_rel;
    u8 *lk_held;

    /* stats */
    i64 *dyn;   /* n * OUT_STRIDE */
    int err;
} Ctx;

static i64 lock_index(const Ctx *c, i32 lock_id) {
    for (i64 i = 0; i < c->n_locks; i++)
        if (c->lock_keys[i] == lock_id) return i;
    return -1;
}

static double pm_write(Ctx *c, double t, i64 line) {
    double grant = bw_reserve(&c->accept, t, &c->err);
    if (line >= 0 && c->coalesce) {
        double pending;
        if (map_get(&c->queued, line, &pending) && pending > grant)
            return grant + c->w2c;
    }
    double ms = bw_reserve(&c->media, grant, &c->err);
    double accepted = grant;
    if (ms - grant > c->max_backlog) accepted = ms - c->max_backlog;
    if (line >= 0 && map_put(&c->queued, line, ms)) c->err = 1;
    return accepted + c->w2c;
}

static double pm_read(Ctx *c, double t) {
    return bw_reserve(&c->readbw, t, &c->err) + c->read_lat;
}

static double dram_access(Ctx *c, double t) {
    return bw_reserve(&c->drambw, t, &c->err) + c->dram_lat;
}

/* CacheHierarchy._steal_if_remote_dirty */
static double steal(Ctx *c, int tid, i64 line, double t) {
    double ov;
    if (!map_get(&c->downer, line, &ov)) return t;
    int owner = (int)ov;
    if (owner == tid) return t;
    TC *ol1 = &c->l1[owner];
    i64 set = tc_set(ol1, line);
    i32 w = tc_find(ol1, set, line);
    if (w >= 0 && ol1->dirty[set * ol1->assoc + w]) {
        if (c->des == 2 || c->des == 3) {
            /* StrandWeaver snoop stall: max over the owner's buffers of
             * line_drain_time(line, t) -- stale entries are deleted. */
            double best = t;
            for (i64 b = 0; b < c->n_bufs; b++) {
                Map *lr = &c->b_linert[(i64)owner * c->n_bufs + b];
                double r;
                if (map_get(lr, line, &r)) {
                    if (r <= t) map_del(lr, line);
                    else if (r > best) best = r;
                }
            }
            t = best;
        }
        tc_remove(ol1, set, w);   /* invalidate; dirty known true */
        i64 vl; u8 vd;
        if (tc_fill(&c->l2, line, 1, &vl, &vd) && vd)
            pm_write(c, t, vl);   /* to_pm=True; ticket discarded */
        t += c->coh;
    }
    map_del(&c->downer, line);
    return t;
}

/* CacheHierarchy.access; served: 0 l1, 1 l2/dram, 2 pm */
static double access_mem(Ctx *c, int tid, i64 line, int is_write, double t,
                         int persistent, int *served) {
    t = steal(c, tid, line, t);
    TC *l1 = &c->l1[tid];
    i64 s1 = tc_set(l1, line);
    i32 w = tc_find(l1, s1, line);
    if (w >= 0) {
        tc_touch(l1, s1, w);
        if (is_write) {
            l1->dirty[s1 * l1->assoc + c->l1[tid].cnt[s1] - 1] = 1;
            if (map_put(&c->downer, line, (double)tid)) c->err = 1;
        }
        *served = 0;
        return t + c->l1_lat;
    }
    double t1 = t + c->l1_lat;
    double done;
    i64 s2 = tc_set(&c->l2, line);
    i32 w2 = tc_find(&c->l2, s2, line);
    if (w2 >= 0) {
        tc_touch(&c->l2, s2, w2);
        done = t1 + c->l2_lat;
        *served = 1;
    } else {
        if (persistent) { done = pm_read(c, t1 + c->l2_lat); *served = 2; }
        else { done = dram_access(c, t1 + c->l2_lat); *served = 1; }
        i64 vl; u8 vd;
        if (tc_fill(&c->l2, line, 0, &vl, &vd) && vd) {
            if (persistent) pm_write(c, done, vl);
            else dram_access(c, done);
        }
    }
    i64 vl1; u8 vd1;
    if (tc_fill(l1, line, (u8)is_write, &vl1, &vd1)) {
        i64 vl2; u8 vd2;
        if (tc_fill(&c->l2, vl1, vd1, &vl2, &vd2) && vd2) {
            if (persistent) pm_write(c, done, vl2);
            else dram_access(c, done);
        }
    }
    if (is_write && map_put(&c->downer, line, (double)tid)) c->err = 1;
    return done;
}

/* CacheHierarchy.flush */
static double flush_line(Ctx *c, int tid, i64 line, double t) {
    t = steal(c, tid, line, t);
    TC *l1 = &c->l1[tid];
    i64 s1 = tc_set(l1, line);
    i32 w = tc_find(l1, s1, line);
    if (w >= 0) {
        l1->dirty[s1 * l1->assoc + w] = 0;
        map_del(&c->downer, line);
        return t + c->l1_lat;
    }
    i64 s2 = tc_set(&c->l2, line);
    i32 w2 = tc_find(&c->l2, s2, line);
    if (w2 >= 0) {
        c->l2.dirty[s2 * c->l2.assoc + w2] = 0;
        return t + c->l1_lat + c->l2_lat;
    }
    return t + c->l1_lat;
}

static void ctx_free(Ctx *c) {
    if (c->l1) { for (int i = 0; i < c->n; i++) tc_free(&c->l1[i]); free(c->l1); }
    tc_free(&c->l2);
    map_free(&c->downer); map_free(&c->queued);
    bw_free(&c->accept); bw_free(&c->media);
    bw_free(&c->readbw); bw_free(&c->drambw);
    free(c->clock); free(c->key); free(c->pc); free(c->st); free(c->parked_on);
    if (c->rob) { for (int i = 0; i < c->n; i++) ring_free(&c->rob[i]); free(c->rob); }
    if (c->sq) { for (int i = 0; i < c->n; i++) ring_free(&c->sq[i]); free(c->sq); }
    free(c->rob_last); free(c->sq_last);
    if (c->lsr) { for (int i = 0; i < c->n; i++) map_free(&c->lsr[i]); free(c->lsr); }
    if (c->outs) { for (int i = 0; i < c->n; i++) sarr_free(&c->outs[i]); free(c->outs); }
    free(c->out_latest); free(c->epoch_ready); free(c->oe_max); free(c->oe_n);
    if (c->brt) {
        for (i64 i = 0; i < (i64)c->n * c->n_bufs; i++) ring_free(&c->brt[i]);
        free(c->brt);
    }
    free(c->b_last); free(c->b_dep);
    if (c->b_linert) {
        for (i64 i = 0; i < (i64)c->n * c->n_bufs; i++) map_free(&c->b_linert[i]);
        free(c->b_linert);
    }
    free(c->ongoing); free(c->store_gate); free(c->max_issue); free(c->pq_latest);
    free(c->lk_next); free(c->lk_rel); free(c->lk_held);
    free(c->dyn);
}

/* =====================================================================
 * entry point
 * ===================================================================== */

int rs_run(
    const double *fcfg, const i64 *icfg,
    const i32 *kinds, const i64 *lines, const i32 *cycles, const i32 *lockids,
    const i64 *offs,
    const i32 *lock_keys, const i32 *lock_offs, const i32 *lock_tids,
    i64 n_locks,
    const i64 *warm_lines, i64 n_warm,
    i64 *out)
{
    Ctx cx; memset(&cx, 0, sizeof(cx));
    Ctx *c = &cx;
    c->des = (int)icfg[0];
    c->n = (int)icfg[1];
    c->rob_cap = icfg[2]; c->sq_cap = icfg[3];
    i64 l1_sets = icfg[4]; i32 l1_assoc = (i32)icfg[5];
    i64 l2_sets = icfg[6]; i32 l2_assoc = (i32)icfg[7];
    c->out_cap = icfg[8]; c->hops_cap = icfg[9];
    c->n_bufs = icfg[10] > 0 ? icfg[10] : 1;
    c->sb_cap = icfg[11]; c->pq_cap = icfg[12];
    c->prune_period = icfg[13];
    i64 accept_cap = icfg[14], media_cap = icfg[15];
    i64 read_cap = icfg[16], dram_cap = icfg[17];
    c->dispatch = fcfg[0]; c->hit = fcfg[1]; c->lock_cost = fcfg[2];
    c->l1_lat = fcfg[3]; c->l2_lat = fcfg[4]; c->ovl = fcfg[5];
    c->w2c = fcfg[10]; c->max_backlog = fcfg[11];
    c->read_lat = fcfg[12]; c->dram_lat = fcfg[13];
    c->coh = fcfg[14];
    c->coalesce = fcfg[15] != 0.0;
    int n = c->n, des = c->des;
    if (n <= 0 || n > 1024 || des < 0 || des > 4) return RC_ERR;
    c->n_locks = n_locks;
    c->lock_keys = lock_keys; c->lock_offs = lock_offs; c->lock_tids = lock_tids;

    int rc = RC_ERR;
    /* ---- allocation ------------------------------------------------- */
    c->l1 = (TC *)calloc((size_t)n, sizeof(TC));
    if (!c->l1) goto fail;
    for (int i = 0; i < n; i++)
        if (tc_init(&c->l1[i], l1_sets, l1_assoc)) goto fail;
    if (tc_init(&c->l2, l2_sets, l2_assoc)) goto fail;
    if (map_init(&c->downer, 1024) || map_init(&c->queued, 1024)) goto fail;
    if (bw_init(&c->accept, fcfg[6], accept_cap)) goto fail;
    if (bw_init(&c->media, fcfg[7], media_cap)) goto fail;
    if (bw_init(&c->readbw, fcfg[8], read_cap)) goto fail;
    if (bw_init(&c->drambw, fcfg[9], dram_cap)) goto fail;
    c->clock = (double *)calloc((size_t)n, sizeof(double));
    c->key = (double *)calloc((size_t)n, sizeof(double));
    c->pc = (i64 *)calloc((size_t)n, sizeof(i64));
    c->st = (u8 *)calloc((size_t)n, 1);
    c->parked_on = (i64 *)calloc((size_t)n, sizeof(i64));
    c->rob = (Ring *)calloc((size_t)n, sizeof(Ring));
    c->sq = (Ring *)calloc((size_t)n, sizeof(Ring));
    c->rob_last = (double *)calloc((size_t)n, sizeof(double));
    c->sq_last = (double *)calloc((size_t)n, sizeof(double));
    c->lsr = (Map *)calloc((size_t)n, sizeof(Map));
    c->outs = (SArr *)calloc((size_t)n, sizeof(SArr));
    c->out_latest = (double *)calloc((size_t)n, sizeof(double));
    c->epoch_ready = (double *)calloc((size_t)n, sizeof(double));
    c->oe_max = (double *)calloc((size_t)n, sizeof(double));
    c->oe_n = (i64 *)calloc((size_t)n, sizeof(i64));
    c->ongoing = (i64 *)calloc((size_t)n, sizeof(i64));
    c->store_gate = (double *)calloc((size_t)n, sizeof(double));
    c->max_issue = (double *)calloc((size_t)n, sizeof(double));
    c->pq_latest = (double *)calloc((size_t)n, sizeof(double));
    c->dyn = (i64 *)calloc((size_t)n * OUT_STRIDE, sizeof(i64));
    if (!c->clock || !c->key || !c->pc || !c->st || !c->parked_on || !c->rob ||
        !c->sq || !c->rob_last || !c->sq_last || !c->lsr || !c->outs ||
        !c->out_latest || !c->epoch_ready || !c->oe_max || !c->oe_n ||
        !c->ongoing || !c->store_gate || !c->max_issue || !c->pq_latest ||
        !c->dyn)
        goto fail;
    for (int i = 0; i < n; i++) {
        if (ring_init(&c->rob[i], 256) || ring_init(&c->sq[i], 128)) goto fail;
        if (map_init(&c->lsr[i], 256)) goto fail;
        if (sarr_init(&c->outs[i], 64)) goto fail;
    }
    if (des == 2 || des == 3) {
        i64 nb = (i64)n * c->n_bufs;
        c->brt = (Ring *)calloc((size_t)nb, sizeof(Ring));
        c->b_last = (double *)calloc((size_t)nb, sizeof(double));
        c->b_dep = (double *)calloc((size_t)nb, sizeof(double));
        c->b_linert = (Map *)calloc((size_t)nb, sizeof(Map));
        if (!c->brt || !c->b_last || !c->b_dep || !c->b_linert) goto fail;
        for (i64 i = 0; i < nb; i++) {
            if (ring_init(&c->brt[i], 32)) goto fail;
            if (map_init(&c->b_linert[i], 64)) goto fail;
        }
    }
    c->lk_next = (i64 *)calloc((size_t)(n_locks ? n_locks : 1), sizeof(i64));
    c->lk_rel = (double *)calloc((size_t)(n_locks ? n_locks : 1), sizeof(double));
    c->lk_held = (u8 *)calloc((size_t)(n_locks ? n_locks : 1), 1);
    if (!c->lk_next || !c->lk_rel || !c->lk_held) goto fail;

    /* ---- warm: pre-fill the shared L2 with clean lines -------------- */
    for (i64 i = 0; i < n_warm; i++) {
        i64 vl; u8 vd;
        tc_fill(&c->l2, warm_lines[i], 0, &vl, &vd);
    }

    /* ---- replay loop ------------------------------------------------ */
    {
        i64 dispatched = 0, next_prune = c->prune_period;
        for (int i = 0; i < n; i++) {
            c->key[i] = 0.0;
            if (offs[i + 1] == offs[i]) c->st[i] = 2;  /* empty trace */
        }
        for (;;) {
            if (c->err) goto fail;
            int tid = -1;
            double bk = 0.0;
            for (int i = 0; i < n; i++)
                if (c->st[i] == 0 && (tid < 0 || c->key[i] < bk)) {
                    tid = i; bk = c->key[i];
                }
            if (tid < 0) {
                int parked = 0;
                for (int i = 0; i < n; i++) if (c->st[i] == 1) parked = 1;
                rc = parked ? RC_DEADLOCK : RC_OK;
                if (parked) goto fail;
                break;
            }

            const i32 *K = kinds + offs[tid];
            const i64 *L = lines + offs[tid];
            const i32 *CY = cycles + offs[tid];
            const i32 *LK = lockids + offs[tid];
            i64 pc = c->pc[tid], n_ops = offs[tid + 1] - offs[tid];
            double clock = c->clock[tid];
            Ring *rob = &c->rob[tid], *sq = &c->sq[tid];
            i64 *dyn = c->dyn + (i64)tid * OUT_STRIDE;

            double t = clock + c->dispatch;
            ring_drop_le(rob, t);
            if (rob->len >= c->rob_cap) {
                double slot = RING_AT(rob, rob->len - c->rob_cap);
                if (slot > t) { dyn[O_STQ] += llrint(slot - t); t = slot; }
            }
            double rob_done = t;
            i32 kind = K[pc];

            if (kind == K_STORE || kind == K_VSTORE) {
                if (kind == K_STORE && (des == 2 || des == 3)) {
                    double gate = c->store_gate[tid];
                    if (gate > t) { dyn[O_STF] += llrint(gate - t); t = gate; }
                }
                ring_drop_le(sq, t);
                double slot = t;
                if (sq->len >= c->sq_cap) {
                    slot = RING_AT(sq, sq->len - c->sq_cap);
                    if (slot > t) dyn[O_STQ] += llrint(slot - t);
                    else slot = t;
                }
                i64 line = L[pc];
                int served;
                double done = access_mem(c, tid, line, 1, slot,
                                         kind == K_STORE, &served);
                if (served == 0) dyn[O_L1H]++;
                else { dyn[O_L1M]++; if (served == 2) dyn[O_PMR]++; }
                ring_drop_le(sq, slot);
                double retire = done > c->sq_last[tid] ? done : c->sq_last[tid];
                if (ring_push(sq, retire)) goto fail;
                c->sq_last[tid] = retire;
                double prev;
                if (!map_get(&c->lsr[tid], line, &prev) || retire > prev)
                    if (map_put(&c->lsr[tid], line, retire)) goto fail;
                t = slot + c->hit;
                rob_done = retire;

            } else if (kind == K_CLWB) {
                i64 line = L[pc];
                double g;
                if (map_get(&c->lsr[tid], line, &g) && g > t) t = g;
                double slot = t;
                SArr *oset = NULL;
                if (des == 0 || des == 4) {
                    oset = &c->outs[tid];
                    sarr_drop_le(oset, t);
                    if (oset->len >= c->out_cap) {
                        slot = SARR_AT(oset, oset->len - c->out_cap);
                        if (slot > t) dyn[O_STQ] += llrint(slot - t);
                        else slot = t;
                    }
                } else if (des == 1) {
                    oset = &c->outs[tid];
                    sarr_drop_le(oset, t);
                    if (oset->len >= c->hops_cap) {
                        slot = SARR_AT(oset, oset->len - c->hops_cap);
                        if (slot > t) dyn[O_STQ] += llrint(slot - t);
                        else slot = t;
                    }
                } else if (des == 3) {
                    oset = &c->outs[tid];   /* persist-queue completions */
                    sarr_drop_le(oset, t);
                    if (oset->len >= c->pq_cap) {
                        slot = SARR_AT(oset, oset->len - c->pq_cap);
                        if (slot > t) dyn[O_STQ] += llrint(slot - t);
                        else slot = t;
                    }
                } else {  /* no-persist-queue: CLWB takes a sq slot */
                    ring_drop_le(sq, t);
                    if (sq->len >= c->sq_cap) {
                        slot = RING_AT(sq, sq->len - c->sq_cap);
                        if (slot > t) dyn[O_STQ] += llrint(slot - t);
                        else slot = t;
                    }
                }
                double flush_t, issue = 0.0;
                Ring *brt = NULL;
                i64 bidx = 0;
                if (des == 2 || des == 3) {
                    bidx = (i64)tid * c->n_bufs + c->ongoing[tid];
                    brt = &c->brt[bidx];
                    ring_drop_le(brt, slot);
                    issue = brt->len < c->sb_cap
                        ? slot : RING_AT(brt, brt->len - c->sb_cap);
                    flush_t = issue;
                } else {
                    flush_t = slot;
                }
                double depart = flush_line(c, tid, line, flush_t);
                if (des == 1) {
                    if (c->epoch_ready[tid] > depart) depart = c->epoch_ready[tid];
                } else if (des == 2 || des == 3) {
                    if (c->b_dep[bidx] > depart) depart = c->b_dep[bidx];
                }
                double acked = pm_write(c, depart, line);
                if (des == 0 || des == 4) {
                    if (sarr_insert(oset, acked)) goto fail;
                    if (acked > c->out_latest[tid]) c->out_latest[tid] = acked;
                    t = slot + 1;
                    rob_done = t;
                } else if (des == 1) {
                    if (sarr_insert(oset, acked)) goto fail;
                    if (acked > c->out_latest[tid]) c->out_latest[tid] = acked;
                    c->oe_n[tid]++;
                    if (acked > c->oe_max[tid]) c->oe_max[tid] = acked;
                    t = slot + 1;
                    rob_done = t;
                } else {
                    double bl = c->b_last[bidx];
                    double retire = acked > bl ? acked : bl;
                    if (ring_push(brt, retire)) goto fail;
                    c->b_last[bidx] = retire;
                    double pv;
                    if (!map_get(&c->b_linert[bidx], line, &pv) || retire > pv)
                        if (map_put(&c->b_linert[bidx], line, retire)) goto fail;
                    if (issue > c->max_issue[tid]) c->max_issue[tid] = issue;
                    if (des == 3) {
                        double pqc = retire > slot ? retire : slot;
                        if (sarr_insert(oset, pqc)) goto fail;
                        if (pqc > c->pq_latest[tid]) c->pq_latest[tid] = pqc;
                        t = slot + 1;
                        rob_done = t;
                    } else {
                        ring_drop_le(sq, slot);
                        double sqr = issue > c->sq_last[tid]
                            ? issue : c->sq_last[tid];
                        if (ring_push(sq, sqr)) goto fail;
                        c->sq_last[tid] = sqr;
                        t = slot + 1;
                        rob_done = sqr;
                    }
                }

            } else if (kind == K_COMPUTE) {
                t += (double)CY[pc];
                rob_done = t;

            } else if (kind == K_LOAD || kind == K_VLOAD) {
                i64 line = L[pc];
                int served;
                double done = access_mem(c, tid, line, 0, t,
                                         kind == K_LOAD, &served);
                if (served == 0) {
                    dyn[O_L1H]++;
                    t = t + c->hit;
                } else {
                    dyn[O_L1M]++;
                    if (served == 2) dyn[O_PMR]++;
                    t = t + c->hit + (done - t) * c->ovl;
                }
                rob_done = done;

            } else if (kind == K_LOCK_ACQ) {
                i64 li = lock_index(c, LK[pc]);
                if (li < 0) goto fail;
                i64 cnt = lock_offs[li + 1] - lock_offs[li];
                if (c->lk_next[li] >= cnt ||
                    lock_tids[lock_offs[li] + c->lk_next[li]] != tid ||
                    c->lk_held[li]) {
                    c->st[tid] = 1;
                    c->parked_on[tid] = li;
                    continue;   /* parked: no state committed */
                }
                double grant = t > c->lk_rel[li] ? t : c->lk_rel[li];
                c->lk_next[li]++;
                c->lk_held[li] = 1;
                dyn[O_STL] += llrint(grant - t);
                t = (t > grant ? t : grant) + c->lock_cost;
                rob_done = t;

            } else if (kind == K_LOCK_REL) {
                i64 li = lock_index(c, LK[pc]);
                if (li < 0) goto fail;
                t += c->hit;
                rob_done = t;
                if (t > c->lk_rel[li]) c->lk_rel[li] = t;
                c->lk_held[li] = 0;

            } else {  /* fence kinds */
                if (des == 4) {
                    /* non-atomic tolerates stray fences as no-ops */
                } else if (kind == K_SFENCE && des == 0) {
                    double done = t > c->out_latest[tid]
                        ? t : c->out_latest[tid];
                    if (c->sq_last[tid] > done) done = c->sq_last[tid];
                    if (done > t) dyn[O_STF] += llrint(done - t);
                    sarr_clear(&c->outs[tid]);
                    t = done;
                } else if (kind == K_OFENCE && des == 1) {
                    if (c->oe_n[tid]) {
                        if (c->oe_max[tid] > c->epoch_ready[tid])
                            c->epoch_ready[tid] = c->oe_max[tid];
                        c->oe_n[tid] = 0;
                        c->oe_max[tid] = 0.0;
                    }
                    t = t + 1;
                } else if (kind == K_DFENCE && des == 1) {
                    double done = t > c->out_latest[tid]
                        ? t : c->out_latest[tid];
                    if (done > t) dyn[O_STD] += llrint(done - t);
                    sarr_clear(&c->outs[tid]);
                    c->oe_n[tid] = 0;
                    c->oe_max[tid] = 0.0;
                    if (done > c->epoch_ready[tid]) c->epoch_ready[tid] = done;
                    t = done;
                } else if (kind == K_PB && (des == 2 || des == 3)) {
                    i64 bidx = (i64)tid * c->n_bufs + c->ongoing[tid];
                    double bl = c->b_last[bidx];
                    double bdone = t > bl ? t : bl;
                    if (bdone > c->b_dep[bidx]) c->b_dep[bidx] = bdone;
                    if (des == 3) {
                        if (sarr_insert(&c->outs[tid], t + 1)) goto fail;
                        if (t + 1 > c->pq_latest[tid]) c->pq_latest[tid] = t + 1;
                    }
                    if (c->max_issue[tid] > c->store_gate[tid])
                        c->store_gate[tid] = c->max_issue[tid];
                    t = t + 1;
                } else if (kind == K_NS && (des == 2 || des == 3)) {
                    c->ongoing[tid] = (c->ongoing[tid] + 1) % c->n_bufs;
                    if (des == 3) {
                        if (sarr_insert(&c->outs[tid], t + 1)) goto fail;
                        if (t + 1 > c->pq_latest[tid]) c->pq_latest[tid] = t + 1;
                    }
                    t = t + 1;
                } else if (kind == K_JS && (des == 2 || des == 3)) {
                    double done;
                    if (des == 3) {
                        done = t > c->pq_latest[tid] ? t : c->pq_latest[tid];
                    } else {
                        double bmax = 0.0;
                        for (i64 b = 0; b < c->n_bufs; b++) {
                            double v = c->b_last[(i64)tid * c->n_bufs + b];
                            if (v > bmax) bmax = v;
                        }
                        done = t > bmax ? t : bmax;
                    }
                    if (c->sq_last[tid] > done) done = c->sq_last[tid];
                    if (done > t) dyn[O_STD] += llrint(done - t);
                    c->store_gate[tid] = 0.0;
                    t = done;
                } else {
                    goto fail;  /* wrong fence for design: Python raises */
                }
                rob_done = t;
            }

            /* ROB push: rob.push(min(t, rob_done), rob_done) */
            {
                double t2 = t < rob_done ? t : rob_done;
                ring_drop_le(rob, t2);
                double rr = rob_done > c->rob_last[tid]
                    ? rob_done : c->rob_last[tid];
                if (ring_push(rob, rr)) goto fail;
                c->rob_last[tid] = rr;
            }
            clock = t;
            pc++;
            if (pc >= n_ops) {
                /* end of trace: domain.drain_all */
                double done;
                if (des == 0 || des == 4) {
                    done = clock > c->out_latest[tid]
                        ? clock : c->out_latest[tid];
                    if (done > clock) dyn[O_STD] += llrint(done - clock);
                    sarr_clear(&c->outs[tid]);
                } else if (des == 1) {
                    done = clock > c->out_latest[tid]
                        ? clock : c->out_latest[tid];
                    if (done > clock) dyn[O_STD] += llrint(done - clock);
                    sarr_clear(&c->outs[tid]);
                    c->oe_n[tid] = 0;
                    c->oe_max[tid] = 0.0;
                    if (done > c->epoch_ready[tid]) c->epoch_ready[tid] = done;
                } else if (des == 3) {
                    done = clock > c->pq_latest[tid]
                        ? clock : c->pq_latest[tid];
                    if (c->sq_last[tid] > done) done = c->sq_last[tid];
                    if (done > clock) dyn[O_STD] += llrint(done - clock);
                    c->store_gate[tid] = 0.0;
                } else {
                    double bmax = 0.0;
                    for (i64 b = 0; b < c->n_bufs; b++) {
                        double v = c->b_last[(i64)tid * c->n_bufs + b];
                        if (v > bmax) bmax = v;
                    }
                    done = clock > bmax ? clock : bmax;
                    if (c->sq_last[tid] > done) done = c->sq_last[tid];
                    if (done > clock) dyn[O_STD] += llrint(done - clock);
                    c->store_gate[tid] = 0.0;
                }
                clock = done;
                c->st[tid] = 2;
            }
            c->clock[tid] = clock;
            c->key[tid] = clock;
            c->pc[tid] = pc;

            if (kind == K_LOCK_REL) {
                /* a release may wake parked cores */
                i64 li = lock_index(c, LK[pc - 1]);
                for (int w = 0; w < n; w++)
                    if (c->st[w] == 1 && c->parked_on[w] == li) {
                        c->st[w] = 0;
                        c->key[w] = c->clock[w] > clock ? c->clock[w] : clock;
                    }
            }

            dispatched++;
            if (dispatched >= next_prune) {
                next_prune = dispatched + c->prune_period;
                double low = clock;
                for (int i = 0; i < n; i++)
                    if (c->st[i] != 2 && c->clock[i] < low) low = c->clock[i];
                bw_prune(&c->accept, low);
                bw_prune(&c->media, low);
                bw_prune(&c->readbw, low);
                bw_prune(&c->drambw, low);
                Map *q = &c->queued;
                for (i64 i = 0; i < q->cap; i++)
                    if (q->st[i] == 1 && q->vals[i] <= low) {
                        q->st[i] = 2; q->live--;
                    }
            }
        }
    }

    /* ---- output ----------------------------------------------------- */
    for (int i = 0; i < n; i++) {
        i64 *dyn = c->dyn + (i64)i * OUT_STRIDE;
        out[i * OUT_STRIDE + O_CYCLES] = llrint(c->clock[i]);
        for (int j = 1; j < OUT_STRIDE; j++)
            out[i * OUT_STRIDE + j] = dyn[j];
    }
    ctx_free(c);
    return RC_OK;

fail:
    ctx_free(c);
    return rc;
}
