"""Persistent-memory controller and DRAM timing models.

The PM controller is ADR-protected (Section IV, "PM controller"): a write
is *persistent* once the controller accepts it, so a CLWB acknowledges
``write_to_controller`` cycles after acceptance.  Acceptance contends on
the controller's front-end bandwidth, and — when the bounded write queue
backs up behind the media's write bandwidth — acceptance itself is
delayed, which is the back-pressure write-heavy workloads (N-Store
wr-heavy) feel in Table II.

All shared resources use windowed capacity accounting
(:class:`~repro.sim.engine.BandwidthResource`) so that cores reserving at
out-of-order times cannot steal bandwidth from each other's past.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.prof.phases import NULL_PROF
from repro.sim.config import PMConfig
from repro.sim.engine import BandwidthResource

if TYPE_CHECKING:  # no runtime import: faults is an optional layer
    from repro.faults.model import MediaFaultModel

#: Perfetto track names of the controller's shared resources.
WRITE_QUEUE_TRACK = "pm/write-queue"
MEDIA_TRACK = "pm/media"


@dataclass
class WriteTicket:
    """Timing of one line write through the PM controller."""

    accepted: float  #: entered the write queue (ADR domain)
    acked: float  #: acknowledgement back to the CPU — the persist point
    media_done: float  #: line written to the PM media


class PMController:
    """Shared PM controller: acceptance bandwidth, write queue, media.

    When a :class:`~repro.faults.MediaFaultModel` is attached the
    controller additionally runs its resilience policy: transient media
    write failures are retried with exponential backoff (each retry
    consumes a real media slot, so retries back-pressure the write queue
    and surface as persist stalls), and a line that exhausts its retry
    budget — or proves ECC-uncorrectable — is remapped into the spare
    region, degrading the device once spares run out.  Without a model
    every fault path is dead code and timing is bit-identical to the
    fault-free build.
    """

    def __init__(
        self,
        cfg: PMConfig,
        tracer: Tracer = NULL_TRACER,
        faults: Optional["MediaFaultModel"] = None,
        profiler=NULL_PROF,
    ) -> None:
        self.cfg = cfg
        self.tracer = tracer
        #: off-timeline resource accounting (see :mod:`repro.prof.phases`).
        self.profiler = profiler
        self.faults = faults if faults is not None and faults.enabled else None
        self._accept = BandwidthResource(cfg.accept_interval)
        #: media sustains one line per this many cycles.
        self._media_interval = cfg.write_to_media / cfg.media_banks
        self._media = BandwidthResource(self._media_interval)
        self._read_bw = BandwidthResource(max(1, cfg.accept_interval // 2))
        #: line -> media start time of its most recent queued write, for
        #: write combining inside the controller's queue.
        self._queued_line: dict = {}
        self.writes = 0
        self.coalesced = 0
        self.reads = 0

    def write(self, t: float, line: int = -1) -> WriteTicket:
        """Issue one line write (CLWB or write-back) arriving at ``t``.

        Writes to a line that is still sitting in the write queue (its
        media write has not started) are *coalesced*: the controller
        updates the queued entry in place and acknowledges immediately,
        consuming no extra media bandwidth.  Optane's controller combines
        writes the same way in its write-pending queue, and persistency
        is unaffected — the queue is inside the ADR domain.
        """
        self.writes += 1
        tracer = self.tracer
        grant = self._accept.reserve(t)
        if line >= 0 and self.cfg.coalesce_writes:
            pending = self._queued_line.get(line)
            if pending is not None and pending > grant:
                self.coalesced += 1
                acked = grant + self.cfg.write_to_controller
                if self.profiler.enabled:
                    self.profiler.charge_resource("pm/writes")
                    self.profiler.charge_resource("pm/coalesced_writes")
                if tracer.enabled:
                    tracer.instant("pm.coalesce", WRITE_QUEUE_TRACK, grant, line=line)
                    tracer.metrics.counter("pm/coalesced").inc()
                    tracer.metrics.histogram("pm/ack_latency").observe(acked - t)
                return WriteTicket(
                    accepted=grant, acked=acked, media_done=pending + self.cfg.write_to_media
                )
        media_start, media_done = self._media_write(grant, line)
        # Back-pressure: the write queue holds a line from acceptance to
        # the start of its media write.  When the backlog exceeds what the
        # queue can hold, acceptance is delayed accordingly.
        max_backlog = self.cfg.write_queue_entries * self._media_interval
        accepted = grant
        if media_start - grant > max_backlog:
            accepted = media_start - max_backlog
        acked = accepted + self.cfg.write_to_controller
        if line >= 0:
            self._queued_line[line] = media_start
        if self.profiler.enabled:
            self.profiler.charge_resource("pm/writes")
            self.profiler.charge_resource("pm/media_busy_cycles",
                                          media_done - media_start)
        if tracer.enabled:
            # Queue depth ahead of this write, in media-service units.
            backlog = max(0, int(round((media_start - accepted) / self._media_interval)))
            tracer.instant("pm.admit", WRITE_QUEUE_TRACK, accepted, line=line)
            tracer.counter("pm.wq_depth", WRITE_QUEUE_TRACK, accepted, backlog)
            tracer.span("pm.drain", MEDIA_TRACK, media_start, media_done - media_start,
                        line=line)
            metrics = tracer.metrics
            metrics.histogram("pm/wq_occupancy").observe(backlog)
            metrics.histogram("pm/ack_latency").observe(acked - t)
        return WriteTicket(accepted=accepted, acked=acked, media_done=media_done)

    def _media_write(self, grant: float, line: int) -> "tuple[float, float]":
        """Issue the media write for one line, applying the fault policy.

        Returns ``(media_start, media_done)`` of the attempt that finally
        stuck.  Every failed attempt consumed a real media slot, so
        retries back-pressure later writes exactly like extra traffic.
        """
        media_start = self._media.reserve(grant)
        media_done = media_start + self.cfg.write_to_media
        faults = self.faults
        if faults is None or line < 0:
            return media_start, media_done
        # Wear-out: the line is uncorrectable — no retry can help, the
        # controller goes straight to the spare region.
        if faults.write_uncorrectable(line):
            faults.ecc_uncorrectable += 1
            return self._remap_write(media_done, line)
        attempt = 1
        while faults.write_fails(line):
            faults.write_faults += 1
            if attempt > self.cfg.max_write_retries:
                faults.exhausted_retries += 1
                return self._remap_write(media_done, line)
            backoff = self.cfg.retry_backoff_base * (
                self.cfg.retry_backoff_mult ** (attempt - 1)
            )
            faults.retries += 1
            faults.backoff_cycles += backoff
            if self.tracer.enabled:
                self.tracer.span(
                    "pm.retry", MEDIA_TRACK, media_done, backoff,
                    line=line, attempt=attempt,
                )
                self.tracer.metrics.counter("pm/retries").inc()
            media_start = self._media.reserve(media_done + backoff)
            media_done = media_start + self.cfg.write_to_media
            attempt += 1
        return media_start, media_done

    def _remap_write(self, t: float, line: int) -> "tuple[float, float]":
        """Redirect ``line`` into the spare region and write it there.

        When the spare region is exhausted the device is worn: the write
        still completes (the media eventually absorbs it) but the model
        records the denial, and the line keeps faulting on later writes.
        """
        assert self.faults is not None
        remapped = self.faults.remap(line, self.cfg.spare_lines)
        media_start = self._media.reserve(t + self.cfg.remap_latency)
        media_done = media_start + self.cfg.write_to_media
        if self.tracer.enabled:
            self.tracer.instant(
                "pm.remap" if remapped else "pm.remap-denied",
                MEDIA_TRACK, media_start, line=line,
            )
            self.tracer.metrics.counter(
                "pm/remaps" if remapped else "pm/remap_denied"
            ).inc()
        return media_start, media_done

    def prune(self, low_water: float) -> None:
        """Drop accounting that no future request can observe.

        Safe only when every later ``write``/``read`` arrives at or
        after ``low_water`` (the machine passes the minimum of all core
        clocks): bandwidth windows below the mark are unreachable, and a
        queued line whose media write started at or before the mark can
        never satisfy the coalescing test ``pending > grant`` again.
        Callers needing crash-state occupancy must not prune (the crash
        snapshot queries ``write_queue_depth`` at an earlier cycle).
        """
        self._accept.prune(low_water)
        self._media.prune(low_water)
        self._read_bw.prune(low_water)
        queued = self._queued_line
        stale = [line for line, start in queued.items() if start <= low_water]
        for line in stale:
            del queued[line]

    def write_queue_depth(self, t: float) -> int:
        """Lines sitting in the write queue at ``t`` — accepted into the
        ADR domain but not yet started on the media (crash-state
        reporting)."""
        return sum(1 for start in self._queued_line.values() if start > t)

    def read(self, t: float, line: int = -1) -> float:
        """Issue one line read at ``t``; returns data-return time.

        Under a fault model, a correctable ECC error on the line adds
        the correction penalty to the data-return path.
        """
        self.reads += 1
        grant = self._read_bw.reserve(t)
        done = grant + self.cfg.read_latency
        if self.profiler.enabled:
            self.profiler.charge_resource("pm/reads")
            self.profiler.charge_resource("pm/read_busy_cycles",
                                          self.cfg.read_latency)
        faults = self.faults
        if faults is not None and line >= 0 and faults.read_correctable(line):
            faults.ecc_corrected += 1
            done += self.cfg.ecc_penalty
            if self.tracer.enabled:
                self.tracer.instant("pm.ecc-correct", MEDIA_TRACK, grant, line=line)
                self.tracer.metrics.counter("pm/ecc_corrected").inc()
        return done


class DRAMController:
    """Simple DRAM back end for volatile data (fixed latency + bandwidth)."""

    def __init__(self, latency: float = 120.0, interval: float = 4.0) -> None:
        self.latency = latency
        self._bw = BandwidthResource(interval)
        self.accesses = 0

    def access(self, t: float) -> float:
        self.accesses += 1
        return self._bw.reserve(t) + self.latency

    def prune(self, low_water: float) -> None:
        """See :meth:`PMController.prune`."""
        self._bw.prune(low_water)
