"""Per-core issue engine: replays a thread trace through a persist domain.

The engine is cycle-approximate: it models the front end as a dispatch
pipe of ``dispatch_width`` ops per cycle, a bounded in-order store queue,
and full out-of-order latency hiding for all but the persist-ordering
stalls — which is where the designs differ and what Figures 7/8 measure.

Lock acquisitions follow the FIFO order fixed at trace-generation time;
when the predecessor critical section has not yet released in simulated
time, the engine reports itself *blocked* and the machine resumes it when
the release happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.ops import Op, OpKind, ThreadTrace, line_of
from repro.obs.tracer import NULL_TRACER, Tracer, core_track
from repro.persistency.base import PersistDomain
from repro.sim.cache import CacheHierarchy
from repro.sim.config import MachineConfig
from repro.sim.engine import InOrderQueue
from repro.sim.stats import CoreStats


@dataclass
class Blocked:
    """Signal: the core cannot proceed until ``lock_id`` is released."""

    lock_id: int


class LockTable:
    """FIFO lock arbitration following the generation-time order.

    A lock is granted only when (a) it is this thread's turn in the
    recorded acquisition order and (b) the previous holder has released
    it in simulated time — both are required for mutual exclusion.
    """

    def __init__(self, lock_order) -> None:
        self._order = {lock: list(tids) for lock, tids in lock_order.items()}
        self._next_idx = {lock: 0 for lock in self._order}
        self._last_release = {lock: 0.0 for lock in self._order}
        self._held = {lock: False for lock in self._order}

    def try_acquire(self, lock_id: int, tid: int, t: float) -> Optional[float]:
        """Attempt acquisition; returns grant time, or None to park."""
        order = self._order[lock_id]
        idx = self._next_idx[lock_id]
        if idx >= len(order) or order[idx] != tid or self._held[lock_id]:
            return None
        grant = max(t, self._last_release[lock_id])
        self._next_idx[lock_id] = idx + 1
        self._held[lock_id] = True
        return grant

    def release(self, lock_id: int, t: float) -> None:
        self._last_release[lock_id] = max(self._last_release[lock_id], t)
        self._held[lock_id] = False

    def holder_pending(self, lock_id: int) -> bool:
        return self._next_idx[lock_id] < len(self._order[lock_id])

    def next_holder(self, lock_id: int) -> Optional[int]:
        """Thread whose turn the lock is waiting for (deadlock reports)."""
        order = self._order[lock_id]
        idx = self._next_idx[lock_id]
        return order[idx] if idx < len(order) else None


class CoreEngine:
    """Replays one thread's micro-ops, maintaining a local clock."""

    #: front-end cost per micro-op beyond its execution latency.
    DISPATCH_COST = 0.25
    #: cost of an L1-hit memory op as seen by the (OoO) front end.
    HIT_COST = 0.5
    #: cost of a lock RMW beyond arbitration.
    LOCK_COST = 110.0

    def __init__(
        self,
        trace: ThreadTrace,
        cfg: MachineConfig,
        hierarchy: CacheHierarchy,
        domain: PersistDomain,
        stats: CoreStats,
        locks: LockTable,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.trace = trace
        self.tid = trace.tid
        self.cfg = cfg
        self.hierarchy = hierarchy
        self.domain = domain
        self.stats = stats
        self.locks = locks
        self.tracer = tracer
        #: shared with the persist domain (the machine wires one profiler
        #: through every layer); NULL_PROF unless profiling is on.
        self.profiler = domain.profiler
        self.track = core_track(trace.tid)
        self.store_queue = domain.store_queue
        self.rob = InOrderQueue(cfg.core.rob_entries)
        if tracer.enabled:
            self.rob.instrument(tracer, self.track + "/rob", "rob")
            self.store_queue.instrument(
                tracer, self.track + "/store-queue", "store-queue"
            )
        if self.profiler.enabled:
            self.rob.profile(self.profiler, f"core{self.tid}/rob")
            self.store_queue.profile(self.profiler, f"core{self.tid}/store-queue")
        #: per-line retire time of the youngest store, so a CLWB cannot
        #: flush a line before the store it persists has reached the L1
        #: (the persist queue's store-queue lookup, Section IV).
        self._line_store_retire = {}
        self.clock = 0.0
        self.pc = 0
        self.finished = len(trace) == 0

    # -- helpers -----------------------------------------------------------

    def _memory_access(
        self, op: Op, is_write: bool, persistent: bool, t: float
    ) -> Tuple[float, float]:
        """Returns ``(dispatch_continue_time, completion_time)``."""
        done, served = self.hierarchy.access(
            self.tid, line_of(op.addr), is_write, t, persistent
        )
        if served == "l1":
            self.stats.l1_hits += 1
            return t + self.HIT_COST, done
        self.stats.l1_misses += 1
        if served == "pm":
            self.stats.pm_reads += 1
        latency = done - t
        # Out-of-order execution hides part of a miss behind other work.
        visible = latency * (1.0 - self.cfg.core.load_overlap) if not is_write else 0.0
        if visible > 0.0 and self.profiler.enabled:
            # Exposed miss latency: the memory-system share of the timeline.
            self.profiler.charge(
                self.tid, "pm-controller" if served == "pm" else "cache", visible
            )
        return t + self.HIT_COST + visible, done

    def _do_store(self, op: Op, persistent: bool, t: float) -> Tuple[float, float]:
        if persistent:
            t = self.domain.store_gate(t)
        slot = self.store_queue.earliest_slot(t)
        if slot > t:
            self.stats.stall_queue_full += int(round(slot - t))
            if self.profiler.enabled:
                self.profiler.charge(self.tid, "persist-hw", slot - t)
            if self.tracer.enabled:
                self.tracer.stall(
                    "queue_full", self.track, t, slot - t, queue="store-queue"
                )
        cont, done = self._memory_access(op, True, persistent, slot)
        # A store completes (leaves the ROB) when its store-queue entry
        # retires to the cache — behind any elder CLWBs parked in the
        # store queue (the NO-PERSIST-QUEUE head-of-line effect).
        retire = self.store_queue.push(slot, done)
        if persistent and self.domain.durability.enabled:
            self.domain.durability.note_store(op, retire)
        line = line_of(op.addr)
        prev = self._line_store_retire.get(line, 0.0)
        self._line_store_retire[line] = max(prev, retire)
        self.stats.stores += 1
        return slot + self.HIT_COST, retire

    def blocked_state(self, lock_id: int) -> str:
        """One-line description of where this core is stuck, for
        :class:`~repro.sim.machine.SimulationDeadlock` reports."""
        op = self.trace[self.pc] if self.pc < len(self.trace) else None
        holder = self.locks.next_holder(lock_id)
        expect = f"core {holder}" if holder is not None else "nobody (order exhausted)"
        return (
            f"core {self.tid}: op {self.pc}/{len(self.trace)} {op!r}, "
            f"local clock {self.clock:.1f}, waiting on lock {lock_id} "
            f"(next holder by recorded order: {expect})"
        )

    # -- stepping ------------------------------------------------------------

    def step(self) -> Optional[Blocked]:
        """Execute the next micro-op; returns Blocked if a lock isn't ours yet."""
        op = self.trace[self.pc]
        tracer = self.tracer
        profiler = self.profiler
        if profiler.enabled:
            # Bracket the op so end_op can charge the unclaimed remainder
            # of its clock advance to core-issue (see repro.prof.phases).
            profiler.begin_op(self.tid)
        dispatched = self.clock
        t = dispatched + self.DISPATCH_COST
        kind = op.kind

        # Reorder-buffer pressure: dispatch stalls while the ROB is full of
        # ops that have not completed (in-order retirement).
        rob_slot = self.rob.earliest_slot(t)
        if rob_slot > t:
            self.stats.stall_queue_full += int(round(rob_slot - t))
            if profiler.enabled:
                profiler.charge(self.tid, "persist-hw", rob_slot - t)
            if tracer.enabled:
                tracer.stall("queue_full", self.track, t, rob_slot - t, queue="rob")
            t = rob_slot
        rob_done = t

        if kind is OpKind.COMPUTE:
            t += op.cycles
            rob_done = t
            self.stats.compute_cycles += op.cycles
        elif kind is OpKind.STORE:
            t, rob_done = self._do_store(op, True, t)
        elif kind is OpKind.VSTORE:
            t, rob_done = self._do_store(op, False, t)
        elif kind is OpKind.LOAD:
            t, rob_done = self._memory_access(op, False, True, t)
            self.stats.loads += 1
        elif kind is OpKind.VLOAD:
            t, rob_done = self._memory_access(op, False, False, t)
            self.stats.loads += 1
        elif kind is OpKind.CLWB:
            line = line_of(op.addr)
            # The flush may not issue before the flushed store is in L1.
            t = max(t, self._line_store_retire.get(line, 0.0))
            t, rob_done = self.domain.clwb(t, line)
            self.stats.clwbs += 1
        elif kind is OpKind.LOCK_ACQ:
            grant = self.locks.try_acquire(op.lock_id, self.tid, t)
            if grant is None:
                # Not our turn yet: stay at this op, let the machine park us.
                if profiler.enabled:
                    # The clock did not advance; roll back so the retry
                    # cannot double-charge the ROB stall above.
                    profiler.abort_op(self.tid)
                if tracer.enabled:
                    tracer.instant("lock.park", self.track, t, lock=op.lock_id)
                return Blocked(op.lock_id)
            self.stats.stall_lock += int(round(grant - t))
            if profiler.enabled:
                profiler.charge(self.tid, "idle", grant - t)
            if tracer.enabled:
                if grant > t:
                    tracer.stall("lock", self.track, t, grant - t, lock=op.lock_id)
                tracer.instant(
                    "lock.acquire", self.track, max(t, grant), lock=op.lock_id
                )
            t = max(t, grant) + self.LOCK_COST
            rob_done = t
        elif kind is OpKind.LOCK_REL:
            t += self.HIT_COST
            rob_done = t
            self.locks.release(op.lock_id, t)
            if tracer.enabled:
                tracer.instant("lock.release", self.track, t, lock=op.lock_id)
        else:  # all fence kinds
            t = self.domain.fence(op, t)
            rob_done = t
            self.stats.fences += 1

        self.rob.push(min(t, rob_done), rob_done)
        if tracer.enabled:
            tracer.span(
                f"op:{kind.name}", self.track, dispatched, t - dispatched, pc=self.pc
            )
        self.clock = t
        self.stats.ops += 1
        self.pc += 1
        if self.pc >= len(self.trace):
            # End of trace: everything must become durable before the
            # benchmark is considered finished (same rule for all designs).
            self.clock = self.domain.drain_all(self.clock)
            self.finished = True
            self.stats.cycles = int(round(self.clock))
        if profiler.enabled:
            profiler.end_op(self.tid, self.clock - dispatched)
        return None
