"""Machine model: cores + caches + PM controller under one design.

``Machine.run(program)`` replays a multi-threaded micro-op program on the
selected persistency design and returns :class:`MachineStats`.  Cores are
stepped in minimum-local-clock order so shared-resource reservations are
made approximately in global time order; a core whose next op is a lock
acquisition that is not yet its turn is parked and woken by the release.
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, List, Optional, Type

from repro.core.ops import OpKind, Program
from repro.core.strandweaver import NoPersistQueueDomain, StrandWeaverDomain
from repro.obs.tracer import NULL_TRACER, Tracer, core_track
from repro.persistency.base import PersistDomain
from repro.prof.phases import PhaseProfiler, active_profiler
from repro.persistency.hops import HopsDomain
from repro.persistency.intel_x86 import IntelX86Domain
from repro.persistency.nonatomic import NonAtomicDomain
from repro.sim.cache import CacheHierarchy
from repro.sim.config import MachineConfig, TABLE_I
from repro.sim.cpu import CoreEngine, LockTable
from repro.sim.durability import CrashState, DurabilityTracker
from repro.sim.engine import InOrderQueue
from repro.sim.memory import DRAMController, PMController
from repro.sim.stats import CoreStats, MachineStats

#: dispatched-op period of the resource-pruning sweep.  Every core's
#: future reservation times are bounded below by its local clock, so
#: once per period the machine forgets bandwidth windows and queued-line
#: entries below the minimum clock of all live cores — long runs hold a
#: working set instead of the whole timeline.  Crash-instrumented runs
#: never prune (the snapshot queries occupancy at an earlier cycle).
PRUNE_PERIOD = 4096

#: environment variable: set to any non-empty value to force the
#: reference per-op engine even for uninstrumented runs (debugging and
#: the fast-vs-reference identity property test).
REFERENCE_ENGINE_ENV = "REPRO_SIM_REFERENCE"

#: registry of the hardware designs compared in Figure 7.
DESIGNS: Dict[str, Type[PersistDomain]] = {
    "intel-x86": IntelX86Domain,
    "hops": HopsDomain,
    "no-persist-queue": NoPersistQueueDomain,
    "strandweaver": StrandWeaverDomain,
    "non-atomic": NonAtomicDomain,
}


class SimulationDeadlock(Exception):
    """All unfinished cores are blocked — a replay invariant was broken.

    The message lists every parked core's position (op index, the op it is
    stuck on, its local clock) and the resource it is blocked on, so the
    broken hand-off can be identified without re-running under a tracer.
    """


class Machine:
    """An ``n_cores`` machine running one persistency design."""

    def __init__(
        self,
        design: str,
        cfg: MachineConfig = TABLE_I,
        tracer: Tracer = NULL_TRACER,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        if design not in DESIGNS:
            raise ValueError(f"unknown design {design!r}; choose from {sorted(DESIGNS)}")
        self.design = design
        self.cfg = cfg
        self.tracer = tracer
        #: simulated-cycle phase attribution (repro.prof); resolves to the
        #: no-op NULL_PROF unless a profiler was passed explicitly or the
        #: REPRO_PROF_PHASES environment variable is set.
        self.profiler = active_profiler(profiler)

    def run(
        self, program: Program, warm: bool = True, fault_plan=None,
        media_faults=None,
    ) -> MachineStats:
        """Replay ``program``; ``warm`` pre-loads every touched line into
        the L2 to model steady-state measurement (see CacheHierarchy.warm).

        ``fault_plan`` (anything exposing ``.trigger`` with ``kind`` of
        ``"cycle"``/``"ops"`` and a threshold ``at`` — see
        :class:`repro.chaos.FaultPlan`) cuts the replay short at the
        trigger point and attaches a :class:`CrashState` snapshot of the
        machine's durable frontier and persist-structure occupancy to the
        returned stats.  Without a plan the durability tracker is the
        no-op null object, so timing is bit-identical to a plain run.

        ``media_faults`` attaches a :class:`repro.faults.MediaFaultModel`
        to the PM controller (retry/backoff, ECC penalties, spare-line
        remaps — see :mod:`repro.sim.memory`).  A plan carrying a
        ``media`` :class:`~repro.faults.MediaFaultConfig` builds one
        implicitly; ``stats.faults`` then records what the device
        suffered.  With neither, timing is bit-identical to a build
        without the fault layer.
        """
        if program.n_threads > self.cfg.n_cores:
            raise ValueError(
                f"program has {program.n_threads} threads but machine has "
                f"{self.cfg.n_cores} cores"
            )
        tracer = self.tracer
        if media_faults is None and fault_plan is not None:
            media_cfg = getattr(fault_plan, "media", None)
            if media_cfg is not None and media_cfg.enabled:
                from repro.faults.model import MediaFaultModel

                media_faults = MediaFaultModel(media_cfg)
        profiler = self.profiler

        # Uninstrumented runs first try the native replay core — a C port
        # of the compiled fast path loaded via ctypes (repro.sim.cnative).
        # It owns all simulator state itself, so on success the Python
        # hierarchy/controller/domain objects are never built.  Any
        # decline (no compiler, REPRO_SIM_NO_C, replay deadlock, a shape
        # the core doesn't model) falls through to the Python engines,
        # which reproduce the exact result or exception.
        if (
            fault_plan is None
            and media_faults is None
            and not tracer.enabled
            and not profiler.enabled
            and not os.environ.get(REFERENCE_ENGINE_ENV)
        ):
            from repro.sim import cnative

            per_core = cnative.run_native(
                self.design, program, self.cfg, warm, PRUNE_PERIOD
            )
            if per_core is not None:
                stats = MachineStats(design=self.design)
                stats.per_core.extend(per_core)
                return stats

        pm = PMController(self.cfg.pm, tracer, faults=media_faults,
                          profiler=profiler)
        dram = DRAMController()
        hierarchy = CacheHierarchy(self.cfg, pm, dram)
        hierarchy.profiler = profiler
        if warm:
            # The touched-line set is a pure function of the (immutable)
            # program; cache it so replays of one program across designs
            # and machine configs don't rescan every op.
            touched_sorted = getattr(program, "_touched_lines", None)
            if touched_sorted is None:
                touched = set()
                addressed = (OpKind.STORE, OpKind.LOAD, OpKind.CLWB,
                             OpKind.VSTORE, OpKind.VLOAD)
                for trace in program.threads:
                    for op in trace.ops:
                        if op.kind in addressed:
                            touched.add(op.addr // 64)
                touched_sorted = sorted(touched)
                program._touched_lines = touched_sorted
            hierarchy.warm(touched_sorted)
        locks = LockTable(program.lock_order)
        domain_cls = DESIGNS[self.design]

        trigger = fault_plan.trigger if fault_plan is not None else None
        tracker = None
        if fault_plan is not None:
            tracker = DurabilityTracker()
            # Natural dirty evictions reach PM too; record them so the
            # durable frontier reflects everything the ADR domain holds.
            hierarchy.durability = tracker

        # The compiled fast path replays uninstrumented runs bit-identically
        # an order of magnitude faster (see repro.sim.fastcore).  Any
        # observer that hooks the per-op path — tracer, profiler, crash
        # plan, media faults — falls back to the reference engine.
        use_fast = (
            tracker is None
            and media_faults is None
            and not tracer.enabled
            and not profiler.enabled
            and not os.environ.get(REFERENCE_ENGINE_ENV)
        )

        cores: List[CoreEngine] = []
        domains: List[PersistDomain] = []
        stats = MachineStats(design=self.design)
        if tracer.enabled:
            stats.metrics = tracer.metrics
        for trace in program.threads:
            core_stats = CoreStats()
            if tracer.enabled:
                core_stats.metrics = tracer.metrics.scope(core_track(trace.tid))
            stats.per_core.append(core_stats)
            store_queue = InOrderQueue(self.cfg.core.store_queue_entries)
            kwargs = {} if tracker is None else {"durability": tracker}
            domain = domain_cls(
                trace.tid, self.cfg, hierarchy, pm, core_stats, store_queue,
                tracer=tracer, profiler=profiler, **kwargs,
            )
            domains.append(domain)
            if not use_fast:
                cores.append(
                    CoreEngine(
                        trace, self.cfg, hierarchy, domain, core_stats, locks,
                        tracer
                    )
                )

        if use_fast:
            from repro.sim.fastcore import FastDeadlock, run_fast

            try:
                run_fast(
                    self.design, program, self.cfg, hierarchy, domains,
                    stats.per_core, locks, pm, dram, PRUNE_PERIOD,
                )
            except FastDeadlock as exc:
                raise SimulationDeadlock(str(exc)) from None
            return stats

        # Min-clock stepping with lock parking.
        ready = [(core.clock, core.tid) for core in cores if not core.finished]
        heapq.heapify(ready)
        parked: Dict[int, List[CoreEngine]] = {}  # lock_id -> waiting cores
        crash_cycle: Optional[float] = None
        dispatched = 0

        while ready or parked:
            if not ready:
                detail = "; ".join(
                    waiter.blocked_state(lock_id)
                    for lock_id, waiters in sorted(parked.items())
                    for waiter in waiters
                )
                raise SimulationDeadlock(
                    f"[{self.design}] all unfinished cores are parked with no "
                    f"runnable core: {detail}"
                )
            clock, tid = heapq.heappop(ready)
            core = cores[tid]
            if core.finished:
                continue
            if trigger is not None and trigger.kind == "cycle" and clock >= trigger.at:
                # The minimum runnable clock passed the crash point; parked
                # cores resume no earlier than their releaser, so nothing
                # can dispatch before ``at`` any more.
                crash_cycle = float(trigger.at)
                break
            blocked = core.step()
            if blocked is not None:
                parked.setdefault(blocked.lock_id, []).append(core)
                continue
            dispatched += 1
            if trigger is not None and trigger.kind == "ops" and dispatched >= trigger.at:
                crash_cycle = core.clock
                break
            # A release may wake parked cores (their turn may have come).
            if core.pc > 0 and core.trace[core.pc - 1].kind is OpKind.LOCK_REL:
                lock_id = core.trace[core.pc - 1].lock_id
                for waiter in parked.pop(lock_id, []):
                    heapq.heappush(ready, (max(waiter.clock, core.clock), waiter.tid))
            if not core.finished:
                heapq.heappush(ready, (core.clock, core.tid))
            if tracker is None and dispatched % PRUNE_PERIOD == 0:
                # Low-water mark over *actual* clocks, not heap keys: a
                # woken core's key is max(its clock, releaser clock) and
                # may exceed the clock it will resume stepping from.
                low = min(
                    (c.clock for c in cores if not c.finished),
                    default=core.clock,
                )
                pm.prune(low)
                dram.prune(low)

        if tracker is not None:
            if crash_cycle is None:
                # The program outran the trigger: power fails after the
                # final drain, so the image degrades to full recovery.
                crash_cycle = max((core.clock for core in cores), default=0.0)
            durable = [
                rec
                for domain in domains
                for rec in domain.durable_frontier(crash_cycle)
            ]
            durable.sort(key=lambda rec: rec.op.gseq)
            stats.crash = CrashState(
                cycle=crash_cycle,
                design=self.design,
                durable=durable,
                in_flight=tracker.in_flight(crash_cycle),
                occupancy={
                    "pm_write_queue": pm.write_queue_depth(crash_cycle),
                    "cores": {
                        domain.tid: domain.occupancy(crash_cycle)
                        for domain in domains
                    },
                },
                tracker=tracker,
            )
        if pm.faults is not None:
            stats.faults = pm.faults.summary()
        return stats


def run_design(
    design: str,
    program: Program,
    cfg: MachineConfig = TABLE_I,
    tracer: Tracer = NULL_TRACER,
) -> MachineStats:
    """Convenience wrapper: replay ``program`` on ``design``."""
    return Machine(design, cfg, tracer).run(program)
