"""Machine model: cores + caches + PM controller under one design.

``Machine.run(program)`` replays a multi-threaded micro-op program on the
selected persistency design and returns :class:`MachineStats`.  Cores are
stepped in minimum-local-clock order so shared-resource reservations are
made approximately in global time order; a core whose next op is a lock
acquisition that is not yet its turn is parked and woken by the release.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Type

from repro.core.ops import OpKind, Program
from repro.core.strandweaver import NoPersistQueueDomain, StrandWeaverDomain
from repro.obs.tracer import NULL_TRACER, Tracer, core_track
from repro.persistency.base import PersistDomain
from repro.persistency.hops import HopsDomain
from repro.persistency.intel_x86 import IntelX86Domain
from repro.persistency.nonatomic import NonAtomicDomain
from repro.sim.cache import CacheHierarchy
from repro.sim.config import MachineConfig, TABLE_I
from repro.sim.cpu import Blocked, CoreEngine, LockTable
from repro.sim.engine import InOrderQueue
from repro.sim.memory import DRAMController, PMController
from repro.sim.stats import CoreStats, MachineStats

#: registry of the hardware designs compared in Figure 7.
DESIGNS: Dict[str, Type[PersistDomain]] = {
    "intel-x86": IntelX86Domain,
    "hops": HopsDomain,
    "no-persist-queue": NoPersistQueueDomain,
    "strandweaver": StrandWeaverDomain,
    "non-atomic": NonAtomicDomain,
}


class SimulationDeadlock(Exception):
    """All unfinished cores are blocked — a replay invariant was broken."""


class Machine:
    """An ``n_cores`` machine running one persistency design."""

    def __init__(
        self,
        design: str,
        cfg: MachineConfig = TABLE_I,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if design not in DESIGNS:
            raise ValueError(f"unknown design {design!r}; choose from {sorted(DESIGNS)}")
        self.design = design
        self.cfg = cfg
        self.tracer = tracer

    def run(self, program: Program, warm: bool = True) -> MachineStats:
        """Replay ``program``; ``warm`` pre-loads every touched line into
        the L2 to model steady-state measurement (see CacheHierarchy.warm).
        """
        if program.n_threads > self.cfg.n_cores:
            raise ValueError(
                f"program has {program.n_threads} threads but machine has "
                f"{self.cfg.n_cores} cores"
            )
        tracer = self.tracer
        pm = PMController(self.cfg.pm, tracer)
        dram = DRAMController()
        hierarchy = CacheHierarchy(self.cfg, pm, dram)
        if warm:
            touched = set()
            for trace in program.threads:
                for op in trace.ops:
                    if op.kind in (OpKind.STORE, OpKind.LOAD, OpKind.CLWB,
                                   OpKind.VSTORE, OpKind.VLOAD):
                        touched.add(op.addr // 64)
            hierarchy.warm(sorted(touched))
        locks = LockTable(program.lock_order)
        domain_cls = DESIGNS[self.design]

        cores: List[CoreEngine] = []
        stats = MachineStats(design=self.design)
        if tracer.enabled:
            stats.metrics = tracer.metrics
        for trace in program.threads:
            core_stats = CoreStats()
            if tracer.enabled:
                core_stats.metrics = tracer.metrics.scope(core_track(trace.tid))
            stats.per_core.append(core_stats)
            store_queue = InOrderQueue(self.cfg.core.store_queue_entries)
            domain = domain_cls(
                trace.tid, self.cfg, hierarchy, pm, core_stats, store_queue,
                tracer=tracer,
            )
            cores.append(
                CoreEngine(
                    trace, self.cfg, hierarchy, domain, core_stats, locks, tracer
                )
            )

        # Min-clock stepping with lock parking.
        ready = [(core.clock, core.tid) for core in cores if not core.finished]
        heapq.heapify(ready)
        parked: Dict[int, List[CoreEngine]] = {}  # lock_id -> waiting cores

        while ready or parked:
            if not ready:
                raise SimulationDeadlock(
                    f"cores parked on locks {sorted(parked)} with no runnable core"
                )
            _, tid = heapq.heappop(ready)
            core = cores[tid]
            if core.finished:
                continue
            blocked = core.step()
            if blocked is not None:
                parked.setdefault(blocked.lock_id, []).append(core)
                continue
            # A release may wake parked cores (their turn may have come).
            if core.pc > 0 and core.trace[core.pc - 1].kind is OpKind.LOCK_REL:
                lock_id = core.trace[core.pc - 1].lock_id
                for waiter in parked.pop(lock_id, []):
                    heapq.heappush(ready, (max(waiter.clock, core.clock), waiter.tid))
            if not core.finished:
                heapq.heappush(ready, (core.clock, core.tid))

        return stats


def run_design(
    design: str,
    program: Program,
    cfg: MachineConfig = TABLE_I,
    tracer: Tracer = NULL_TRACER,
) -> MachineStats:
    """Convenience wrapper: replay ``program`` on ``design``."""
    return Machine(design, cfg, tracer).run(program)
