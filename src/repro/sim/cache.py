"""Cache hierarchy timing model: per-core L1-D, shared L2, coherence.

Tag-only set-associative caches with LRU replacement.  The hierarchy
answers two questions for the core model:

* how long does this load/store take (L1 / L2 / PM / DRAM service), and
* which accesses cross cores (dirty-ownership transfers), because those
  are where StrandWeaver's snoop-buffer drain rule applies
  (Section IV, "Enabling inter-thread persist order").

Dirty evictions from the L2 to PM consume controller write bandwidth, so
cache pressure feeds back into persist timing as in the real system.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.prof.phases import NULL_PROF
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.durability import NULL_DURABILITY, SOURCE_WRITEBACK
from repro.sim.memory import DRAMController, PMController


class TagCache:
    """One set-associative, write-back, LRU tag array."""

    def __init__(self, cfg: CacheConfig) -> None:
        self.cfg = cfg
        self.n_sets = cfg.n_sets
        # set index -> OrderedDict[line -> dirty]; LRU order = insertion order.
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}
        self.hits = 0
        self.misses = 0

    def _set_for(self, line: int) -> "OrderedDict[int, bool]":
        idx = line % self.n_sets
        bucket = self._sets.get(idx)
        if bucket is None:
            bucket = OrderedDict()
            self._sets[idx] = bucket
        return bucket

    def lookup(self, line: int, touch: bool = True) -> Optional[bool]:
        """Return the line's dirty bit on hit (refreshing LRU), else None."""
        bucket = self._set_for(line)
        if line not in bucket:
            return None
        if touch:
            bucket.move_to_end(line)
        return bucket[line]

    def fill(self, line: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        """Insert ``line``; returns ``(victim_line, victim_dirty)`` if one
        was evicted."""
        bucket = self._set_for(line)
        if line in bucket:
            bucket[line] = bucket[line] or dirty
            bucket.move_to_end(line)
            return None
        victim = None
        if len(bucket) >= self.cfg.assoc:
            victim = bucket.popitem(last=False)
        bucket[line] = dirty
        return victim

    def set_dirty(self, line: int) -> None:
        bucket = self._set_for(line)
        if line in bucket:
            bucket[line] = True
            bucket.move_to_end(line)

    def clean(self, line: int) -> bool:
        """Clear the dirty bit (CLWB semantics); returns prior dirtiness."""
        bucket = self._set_for(line)
        if line not in bucket:
            return False
        was_dirty = bucket[line]
        bucket[line] = False
        return was_dirty

    def invalidate(self, line: int) -> bool:
        """Drop the line; returns whether it was dirty."""
        bucket = self._set_for(line)
        if line not in bucket:
            return False
        return bucket.pop(line)


#: Hook type: (owner_tid, line, time) -> time after owner's strand buffers
#: drained past the recorded tail index (StrandWeaver snoop-stall rule).
DrainHook = Callable[[int, int, float], float]


class CacheHierarchy:
    """Per-core L1s over a shared L2 over PM + DRAM."""

    def __init__(
        self,
        cfg: MachineConfig,
        pm: PMController,
        dram: DRAMController,
    ) -> None:
        self.cfg = cfg
        self.pm = pm
        self.dram = dram
        self.l1 = [TagCache(cfg.l1d) for _ in range(cfg.n_cores)]
        self.l2 = TagCache(cfg.l2)
        #: last core to write each line while it may still be dirty in L1.
        self._dirty_owner: Dict[int, int] = {}
        #: StrandWeaver installs a drain hook per core; other designs None.
        self.drain_hooks: List[Optional[DrainHook]] = [None] * cfg.n_cores
        self.coherence_transfers = 0
        #: durability tracker for crash injection; natural dirty evictions
        #: reach PM too and so extend the durable frontier (marked with
        #: their "writeback" source so the chaos layer can reason about
        #: them separately from explicit CLWBs).
        self.durability = NULL_DURABILITY
        #: off-timeline resource accounting (see :mod:`repro.prof.phases`).
        self.profiler = NULL_PROF

    # -- internal helpers -------------------------------------------------

    def _writeback_victim(self, victim: Optional[Tuple[int, bool]], t: float, to_pm: bool) -> None:
        """Handle an L2 eviction: dirty lines consume memory bandwidth."""
        if victim is None:
            return
        line, dirty = victim
        if not dirty:
            return
        if to_pm:
            ticket = self.pm.write(t, line)
            self.durability.line_persisted(
                line, t, ticket.accepted, source=SOURCE_WRITEBACK
            )
            if self.profiler.enabled:
                self.profiler.charge_resource("cache/pm_writebacks")
        else:
            self.dram.access(t)
            if self.profiler.enabled:
                self.profiler.charge_resource("cache/dram_writebacks")

    def _steal_if_remote_dirty(self, tid: int, line: int, t: float) -> float:
        """Resolve cross-core dirty ownership; returns post-transfer time."""
        owner = self._dirty_owner.get(line)
        if owner is None or owner == tid:
            return t
        owner_l1 = self.l1[owner]
        state = owner_l1.lookup(line, touch=False)
        if state:  # dirty in the owner's L1
            hook = self.drain_hooks[owner]
            if hook is not None:
                # Read-exclusive reply stalls until the owner's strand
                # buffers drain to the recorded tail index.
                t = hook(owner, line, t)
            dirty = owner_l1.invalidate(line)
            victim = self.l2.fill(line, dirty)
            self._writeback_victim(victim, t, to_pm=True)
            self.coherence_transfers += 1
            if self.profiler.enabled:
                self.profiler.charge_resource("cache/coherence_transfers")
            t += self.cfg.coherence_transfer
        self._dirty_owner.pop(line, None)
        return t

    # -- public API --------------------------------------------------------

    def warm(self, lines) -> None:
        """Pre-fill the shared L2 with clean copies of ``lines``.

        Models measurement at steady state (the paper times 50K operations
        on long-lived structures whose working set is L2-resident; CLWB is
        non-invalidating, so flushed lines stay cached).
        """
        for line in lines:
            self.l2.fill(line, dirty=False)

    def access(
        self, tid: int, line: int, is_write: bool, t: float, persistent: bool
    ) -> Tuple[float, str]:
        """Service a load/store for core ``tid``.

        Returns ``(completion_time, served_by)`` where ``served_by`` is one
        of ``"l1"``, ``"l2"``, ``"pm"``, ``"dram"``.
        """
        l1 = self.l1[tid]
        t = self._steal_if_remote_dirty(tid, line, t)
        state = l1.lookup(line)
        if state is not None:
            l1.hits += 1
            if is_write:
                l1.set_dirty(line)
                self._dirty_owner[line] = tid
            return t + self.cfg.l1d.hit_latency, "l1"

        l1.misses += 1
        t_l1 = t + self.cfg.l1d.hit_latency  # tag check before going down
        l2_state = self.l2.lookup(line)
        if l2_state is not None:
            self.l2.hits += 1
            done = t_l1 + self.cfg.l2.hit_latency
            served = "l2"
        else:
            self.l2.misses += 1
            if persistent:
                done = self.pm.read(t_l1 + self.cfg.l2.hit_latency, line)
                served = "pm"
            else:
                done = self.dram.access(t_l1 + self.cfg.l2.hit_latency)
                served = "dram"
            victim = self.l2.fill(line, dirty=False)
            self._writeback_victim(victim, done, to_pm=persistent)

        victim = l1.fill(line, dirty=is_write)
        if victim is not None:
            v_line, v_dirty = victim
            l2_victim = self.l2.fill(v_line, v_dirty)
            self._writeback_victim(l2_victim, done, to_pm=persistent)
        if is_write:
            self._dirty_owner[line] = tid
        return done, served

    def flush(self, tid: int, line: int, t: float) -> float:
        """CLWB front half: look up and clean the line in the hierarchy.

        Returns the time the flush request leaves for the PM controller.
        The caller then books the controller write itself (designs differ
        in who tracks the acknowledgement).
        """
        t = self._steal_if_remote_dirty(tid, line, t)
        l1 = self.l1[tid]
        if l1.lookup(line, touch=False) is not None:
            l1.clean(line)
            self._dirty_owner.pop(line, None)
            return t + self.cfg.l1d.hit_latency
        if self.l2.lookup(line, touch=False) is not None:
            self.l2.clean(line)
            return t + self.cfg.l1d.hit_latency + self.cfg.l2.hit_latency
        return t + self.cfg.l1d.hit_latency
