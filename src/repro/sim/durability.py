"""Machine-state durability tracking for crash injection (repro.chaos).

The timing simulator models *when* each persist reaches the ADR-protected
PM controller, but until this module it threw that information away once
the stall accounting was done.  :class:`DurabilityTracker` records, for
every persistent store the machine replays,

* when the store retired to the cache (it is volatile from then on), and
* when each cache line it touches was accepted by the PM controller —
  via an explicit CLWB (tracked by the design's persist hardware: fill
  buffers, HOPS persist buffer, StrandWeaver strand buffers) or via a
  dirty write-back from the cache hierarchy.

A crash at cycle ``T`` then has a well-defined **durable frontier**: the
stores whose every touched line was accepted at or before ``T``.  The
chaos harness (:mod:`repro.chaos`) materialises that frontier into a
:class:`~repro.pmem.space.PersistentMemory` crash image and validates
recovery against the workload's invariants.

Tracking is opt-in: :data:`NULL_DURABILITY` is installed by default and
makes every hook a no-op, so cycle counts and allocation behaviour with
fault injection disabled are bit-identical to a tracker-free build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.ops import Op, lines_of

INF = float("inf")

#: durability sources, in decreasing order of hardware explicitness.
SOURCE_CLWB = "clwb"
SOURCE_WRITEBACK = "writeback"


@dataclass
class StoreRecord:
    """Durability lifecycle of one persistent store.

    ``covered`` maps each touched cache line to the acceptance time of
    the earliest PM-controller write that included this store's bytes
    (i.e. whose cache read-out happened after the store retired).  The
    store is durable once every touched line is covered.
    """

    op: Op
    retire: float
    lines: Tuple[int, ...]
    covered: Dict[int, float] = field(default_factory=dict)
    sources: Dict[int, str] = field(default_factory=dict)

    @property
    def durable(self) -> float:
        """Cycle at which the whole store is durable (INF if it never is)."""
        if len(self.covered) < len(self.lines):
            return INF
        return max(self.covered.values())

    @property
    def source(self) -> str:
        """``"writeback"`` when any line owes durability to a cache
        eviction rather than an explicit persist operation."""
        if any(s == SOURCE_WRITEBACK for s in self.sources.values()):
            return SOURCE_WRITEBACK
        return SOURCE_CLWB


class DurabilityTracker:
    """Records persist events so any crash cycle can be materialised.

    The machine owns one tracker per run; the per-core persist domains
    and the cache hierarchy feed it.  All methods are timestamped with
    simulated cycles, so recording is insensitive to the host-side order
    of calls beyond what the simulator itself guarantees.
    """

    enabled = True

    def __init__(self) -> None:
        self.records: List[StoreRecord] = []
        #: line -> records with that line still uncovered, FIFO by retire.
        self._pending: Dict[int, List[StoreRecord]] = {}

    # -- event hooks -------------------------------------------------------

    def note_store(self, op: Op, retire: float) -> None:
        """A persistent STORE retired to the cache at ``retire``."""
        lines = lines_of(op.addr, op.size)
        rec = StoreRecord(op=op, retire=retire, lines=lines)
        self.records.append(rec)
        for line in lines:
            self._pending.setdefault(line, []).append(rec)

    def line_persisted(
        self, line: int, content_time: float, durable_time: float,
        source: str = SOURCE_CLWB,
    ) -> None:
        """A write of ``line`` was accepted by the PM controller.

        ``content_time`` is when the line's bytes were read out of the
        cache (the flush or eviction point): only stores retired by then
        are part of the written-back content.  ``durable_time`` is the
        controller acceptance — the persist point under ADR.
        """
        pending = self._pending.get(line)
        if not pending:
            return
        remaining: List[StoreRecord] = []
        for rec in pending:
            if rec.retire <= content_time:
                rec.covered[line] = durable_time
                rec.sources[line] = source
            else:
                remaining.append(rec)
        if remaining:
            self._pending[line] = remaining
        else:
            del self._pending[line]

    # -- queries -----------------------------------------------------------

    def frontier(self, t: float) -> List[StoreRecord]:
        """Stores durable at or before cycle ``t``, in visibility order."""
        out = [rec for rec in self.records if rec.durable <= t]
        out.sort(key=lambda rec: rec.op.gseq)
        return out

    def in_flight(self, t: float) -> List[StoreRecord]:
        """Stores retired by ``t`` but not yet durable: the cached-dirty /
        in-flight-persist window a crash at ``t`` wipes out (unless a
        write-back fault resurrects it)."""
        out = [rec for rec in self.records if rec.retire <= t < rec.durable]
        out.sort(key=lambda rec: rec.op.gseq)
        return out


class _NullDurability:
    """Do-nothing tracker installed when no fault plan is active."""

    enabled = False

    def note_store(self, op: Op, retire: float) -> None:
        pass

    def line_persisted(
        self, line: int, content_time: float, durable_time: float,
        source: str = SOURCE_CLWB,
    ) -> None:
        pass


NULL_DURABILITY = _NullDurability()


@dataclass(frozen=True)
class CrashTrigger:
    """When a :class:`~repro.chaos.plan.FaultPlan` fires.

    ``kind`` is ``"cycle"`` (crash once no core can dispatch before cycle
    ``at``) or ``"ops"`` (crash after the machine dispatched ``at``
    micro-ops in total, at the dispatching core's local clock).
    """

    kind: str
    at: float

    def __post_init__(self) -> None:
        if self.kind not in ("cycle", "ops"):
            raise ValueError(f"unknown trigger kind {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"trigger point must be >= 0, got {self.at}")

    def describe(self) -> str:
        if self.kind == "cycle":
            return f"cycle={self.at:g}"
        return f"op-count={int(self.at)}"


@dataclass
class CrashState:
    """Everything the machine reports when a fault plan fires.

    ``occupancy`` snapshots the live hardware state that produced the
    frontier — per-core persist-structure occupancy plus the PM write
    queue — so failure messages can show *why* a store was (not) durable.
    """

    cycle: float
    design: str
    durable: List[StoreRecord]
    in_flight: List[StoreRecord]
    occupancy: Dict[str, object] = field(default_factory=dict)
    tracker: Optional[DurabilityTracker] = None

    def summary(self) -> Dict[str, object]:
        return {
            "cycle": self.cycle,
            "design": self.design,
            "durable_stores": len(self.durable),
            "in_flight_stores": len(self.in_flight),
            "occupancy": self.occupancy,
        }

    def durable_keys(self) -> List[Tuple[int, int]]:
        """Stable ``(tid, seq)`` coordinates of the durable frontier.

        The model checker compares machine frontiers against the formal
        models by op identity, not by :class:`StoreRecord`.
        """
        return [(r.op.tid, r.op.seq) for r in self.durable]

    def in_flight_keys(self) -> List[Tuple[int, int]]:
        """Stable ``(tid, seq)`` coordinates of retired-but-volatile stores."""
        return [(r.op.tid, r.op.seq) for r in self.in_flight]
