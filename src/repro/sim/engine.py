"""Discrete-event bookkeeping primitives for the timing simulator.

The simulator advances per-core local clocks and lets cores reserve shared
resources (PM controller bandwidth, write-queue slots, media banks) on
timelines.  Cores are stepped in minimum-local-clock order by the machine
(:mod:`repro.sim.machine`), so reservations arrive approximately in global
time order and simple earliest-available timelines model contention well.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.tracer import Tracer
from repro.prof.phases import PhaseProfiler


class BandwidthResource:
    """A server that accepts at most ``capacity`` requests per ``interval``.

    Implemented as windowed capacity accounting so that reservations may
    arrive in any time order: a core that computed a *future* issue time
    (e.g. a CLWB chained behind a persist barrier) must not block another
    core's earlier request — the bandwidth in between is still available.

    Two resource-scaling properties hold at paper-length runs:

    * **Bounded memory** — the window map grows one entry per interval
      for the whole run unless pruned.  :meth:`prune` drops every window
      below a caller-supplied low-water mark (the minimum of all core
      clocks, below which no reservation can ever arrive again); the
      machine stepper calls it periodically so multi-million-cycle runs
      hold a working set, not a history.
    * **O(1) amortised saturation** — under sustained back-pressure the
      naive "next window" scan walks every full window on every reserve
      (O(windows) per call, quadratic per run).  Full windows instead
      carry a path-compressed skip pointer straight to the next
      candidate window, so saturated reservation stays amortised
      near-constant.
    """

    def __init__(self, interval: float, capacity: int = 1) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.interval = interval
        self.capacity = capacity
        self._windows: Dict[int, int] = {}
        #: full window -> next candidate window (union-find style skip
        #: chain; path-compressed on traversal).
        self._skip: Dict[int, int] = {}
        #: everything below this window index has been pruned.
        self._floor = 0

    def reserve(self, t: float) -> float:
        """Reserve a slot at or after ``t``; returns the grant time."""
        window = int(max(t, 0.0) / self.interval)
        skip = self._skip
        nxt = skip.get(window)
        if nxt is not None:
            # Jump over the saturated run: chase the skip chain to the
            # first window that was not full when last updated...
            root = nxt
            while True:
                hop = skip.get(root)
                if hop is None:
                    break
                root = hop
            # ...and point every window on the walked chain straight at
            # it, so the next saturated reserve is O(1).
            w = window
            while True:
                hop = skip.get(w)
                if hop is None or hop == root:
                    break
                skip[w] = root
                w = hop
            window = root
        windows = self._windows
        count = windows.get(window, 0) + 1
        windows[window] = count
        if count >= self.capacity:
            skip[window] = window + 1
        return max(t, window * self.interval)

    def prune(self, low_water: float) -> None:
        """Forget windows that can never be queried again.

        ``low_water`` must not exceed the minimum time any future
        :meth:`reserve` can be called with (the machine uses the minimum
        of all core clocks).  Reservations only ever inspect windows at
        or after ``int(t / interval)``, so windows strictly below the
        low-water window are unreachable and carry no information.
        """
        w_min = int(max(low_water, 0.0) / self.interval)
        if w_min <= self._floor:
            return
        windows = self._windows
        for w in [w for w in windows if w < w_min]:
            del windows[w]
        skip = self._skip
        for w in [w for w in skip if w < w_min]:
            del skip[w]
        self._floor = w_min

    @property
    def n_windows(self) -> int:
        """Live window-map entries (resource-bound regression tests)."""
        return len(self._windows)


class BankedResource:
    """``n_banks`` parallel servers, each busy ``service`` cycles per job.

    Used for PM media writes: the controller drains its write queue into
    a small number of concurrently writable banks.
    """

    def __init__(self, n_banks: int, service: float) -> None:
        if n_banks <= 0:
            raise ValueError("need at least one bank")
        self.service = service
        self._free_at: List[float] = [0.0] * n_banks
        heapq.heapify(self._free_at)

    def reserve(self, t: float) -> float:
        """Run one job starting at or after ``t``; returns completion time."""
        earliest = heapq.heappop(self._free_at)
        start = max(t, earliest)
        done = start + self.service
        heapq.heappush(self._free_at, done)
        return done


class SlottedQueue:
    """A queue with ``capacity`` slots; a slot is held until a deadline.

    ``admit`` returns the time the request actually enters the queue: if
    all slots are occupied at ``t``, entry is delayed until the earliest
    occupant leaves.  This models back-pressure from bounded hardware
    queues (PM write queue, persist buffers).

    ``occupancy_at`` is exact for any query time only when the queue was
    built with ``retain_history=True``: the live heap drops departures as
    admissions drain it, so without history a query earlier than the
    last drain undercounts (crash-image snapshots ask about the crash
    cycle, which precedes later admissions).  History retention keeps
    one ``(entry, departure)`` pair per admission and answers any ``t``
    exactly; leave it off for pure forward-timing uses.
    """

    #: instrumentation is opt-in; the class default keeps the hot path to
    #: one attribute check when no tracer was attached.
    _tracer: Optional[Tracer] = None
    #: phase profiling is likewise opt-in (see :meth:`profile`).
    _profiler: Optional[PhaseProfiler] = None

    def __init__(self, capacity: int, retain_history: bool = False) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._departures: List[float] = []
        #: (entry, departure) per admission when retain_history is set.
        self._history: Optional[List[Tuple[float, float]]] = (
            [] if retain_history else None
        )

    def instrument(self, tracer: Tracer, track: str, name: str) -> None:
        """Attach a tracer: each admission emits an occupancy counter
        sample on ``track`` and feeds the ``<name>/occupancy`` histogram."""
        self._tracer = tracer
        self._track = track
        self._name = name

    def profile(self, profiler: PhaseProfiler, name: str) -> None:
        """Attach a phase profiler: each admission charges the entry's
        slot-holding time to the ``<name>/residency_cycles`` resource."""
        self._profiler = profiler
        self._prof_name = name

    def occupancy_at(self, t: float) -> int:
        """Entries resident at time ``t``.

        Exact for arbitrary ``t`` when history is retained; otherwise
        exact only for ``t`` at or after the last internal drain (the
        live heap has already forgotten earlier departures).
        """
        history = self._history
        if history is not None:
            return sum(1 for entry, dep in history if entry <= t < dep)
        return sum(1 for d in self._departures if d > t)

    def earliest_admission(self, t: float) -> float:
        self._drain(t)
        if len(self._departures) < self.capacity:
            return t
        return self._departures[0]

    def admit(self, t: float, departure: float) -> float:
        """Admit a request at or after ``t``, holding a slot until
        ``departure`` (if departure precedes admission, the slot is held
        for zero time).  Returns the admission time."""
        entry = self.earliest_admission(t)
        self._drain(entry)
        if len(self._departures) >= self.capacity:
            # earliest_admission guaranteed a free slot at `entry`.
            heapq.heappop(self._departures)
        heapq.heappush(self._departures, max(departure, entry))
        if self._history is not None:
            self._history.append((entry, max(departure, entry)))
        profiler = self._profiler
        if profiler is not None and profiler.enabled:
            profiler.charge_resource(
                self._prof_name + "/residency_cycles", max(departure, entry) - entry
            )
            profiler.charge_resource(self._prof_name + "/admissions")
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            occ = len(self._departures)
            tracer.counter(self._name, self._track, entry, occ)
            tracer.metrics.histogram(f"{self._track}/occupancy").observe(occ)
            if entry > t:
                tracer.span(f"{self._name}:backpressure", self._track, t, entry - t)
        return entry

    def _drain(self, t: float) -> None:
        while self._departures and self._departures[0] <= t:
            heapq.heappop(self._departures)


class InOrderQueue:
    """A FIFO whose entries *retire in order*; capacity-limited.

    Models the store queue: an entry may be individually "ready" early but
    cannot leave before its elders.  ``push`` returns the time the new
    entry will retire; dispatch must stall when the queue is full.
    """

    #: see :meth:`SlottedQueue.instrument`; default keeps the path free.
    _tracer: Optional[Tracer] = None
    #: see :meth:`SlottedQueue.profile`; default keeps the path free.
    _profiler: Optional[PhaseProfiler] = None

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        # monotone non-decreasing, oldest first; deque so the per-retire
        # pop is O(1) instead of list.pop(0)'s O(n).
        self._retire_times: Deque[float] = deque()
        self._last_retire = 0.0

    def instrument(self, tracer: Tracer, track: str, name: str) -> None:
        """Attach a tracer: each push samples occupancy on ``track`` and
        feeds the ``<name>/occupancy`` histogram."""
        self._tracer = tracer
        self._track = track
        self._name = name

    def profile(self, profiler: PhaseProfiler, name: str) -> None:
        """Attach a phase profiler: each push charges the entry's queue
        residency to the ``<name>/residency_cycles`` resource."""
        self._profiler = profiler
        self._prof_name = name

    def earliest_slot(self, t: float) -> float:
        """When a new entry could be inserted (full queue delays insert)."""
        self._drain(t)
        if len(self._retire_times) < self.capacity:
            return t
        return self._retire_times[len(self._retire_times) - self.capacity]

    def push(self, t: float, ready: float) -> float:
        """Insert at or after ``t`` an entry that is ready at ``ready``.

        Returns the entry's retire time (in-order: >= all elder retires).
        """
        entry_t = self.earliest_slot(t)
        retire = max(ready, self._last_retire, entry_t)
        self._retire_times.append(retire)
        self._last_retire = retire
        profiler = self._profiler
        if profiler is not None and profiler.enabled:
            profiler.charge_resource(
                self._prof_name + "/residency_cycles", retire - entry_t
            )
            profiler.charge_resource(self._prof_name + "/admissions")
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            occ = len(self._retire_times)
            tracer.counter(self._name, self._track, entry_t, occ)
            tracer.metrics.histogram(f"{self._track}/occupancy").observe(occ)
        return retire

    def drain_time(self, t: float) -> float:
        """Time when everything currently queued has retired."""
        return max(t, self._last_retire)

    def _drain(self, t: float) -> None:
        while self._retire_times and self._retire_times[0] <= t:
            self._retire_times.popleft()
