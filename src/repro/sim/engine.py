"""Discrete-event bookkeeping primitives for the timing simulator.

The simulator advances per-core local clocks and lets cores reserve shared
resources (PM controller bandwidth, write-queue slots, media banks) on
timelines.  Cores are stepped in minimum-local-clock order by the machine
(:mod:`repro.sim.machine`), so reservations arrive approximately in global
time order and simple earliest-available timelines model contention well.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.obs.tracer import Tracer
from repro.prof.phases import PhaseProfiler


class BandwidthResource:
    """A server that accepts at most ``capacity`` requests per ``interval``.

    Implemented as windowed capacity accounting so that reservations may
    arrive in any time order: a core that computed a *future* issue time
    (e.g. a CLWB chained behind a persist barrier) must not block another
    core's earlier request — the bandwidth in between is still available.
    """

    def __init__(self, interval: float, capacity: int = 1) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.interval = interval
        self.capacity = capacity
        self._windows: Dict[int, int] = {}

    def reserve(self, t: float) -> float:
        """Reserve a slot at or after ``t``; returns the grant time."""
        window = int(max(t, 0.0) / self.interval)
        while self._windows.get(window, 0) >= self.capacity:
            window += 1
        self._windows[window] = self._windows.get(window, 0) + 1
        return max(t, window * self.interval)


class BankedResource:
    """``n_banks`` parallel servers, each busy ``service`` cycles per job.

    Used for PM media writes: the controller drains its write queue into
    a small number of concurrently writable banks.
    """

    def __init__(self, n_banks: int, service: float) -> None:
        if n_banks <= 0:
            raise ValueError("need at least one bank")
        self.service = service
        self._free_at: List[float] = [0.0] * n_banks
        heapq.heapify(self._free_at)

    def reserve(self, t: float) -> float:
        """Run one job starting at or after ``t``; returns completion time."""
        earliest = heapq.heappop(self._free_at)
        start = max(t, earliest)
        done = start + self.service
        heapq.heappush(self._free_at, done)
        return done


class SlottedQueue:
    """A queue with ``capacity`` slots; a slot is held until a deadline.

    ``admit`` returns the time the request actually enters the queue: if
    all slots are occupied at ``t``, entry is delayed until the earliest
    occupant leaves.  This models back-pressure from bounded hardware
    queues (PM write queue, persist buffers).
    """

    #: instrumentation is opt-in; the class default keeps the hot path to
    #: one attribute check when no tracer was attached.
    _tracer: Optional[Tracer] = None
    #: phase profiling is likewise opt-in (see :meth:`profile`).
    _profiler: Optional[PhaseProfiler] = None

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._departures: List[float] = []

    def instrument(self, tracer: Tracer, track: str, name: str) -> None:
        """Attach a tracer: each admission emits an occupancy counter
        sample on ``track`` and feeds the ``<name>/occupancy`` histogram."""
        self._tracer = tracer
        self._track = track
        self._name = name

    def profile(self, profiler: PhaseProfiler, name: str) -> None:
        """Attach a phase profiler: each admission charges the entry's
        slot-holding time to the ``<name>/residency_cycles`` resource."""
        self._profiler = profiler
        self._prof_name = name

    def occupancy_at(self, t: float) -> int:
        return sum(1 for d in self._departures if d > t)

    def earliest_admission(self, t: float) -> float:
        self._drain(t)
        if len(self._departures) < self.capacity:
            return t
        return self._departures[0]

    def admit(self, t: float, departure: float) -> float:
        """Admit a request at or after ``t``, holding a slot until
        ``departure`` (if departure precedes admission, the slot is held
        for zero time).  Returns the admission time."""
        entry = self.earliest_admission(t)
        self._drain(entry)
        if len(self._departures) >= self.capacity:
            # earliest_admission guaranteed a free slot at `entry`.
            heapq.heappop(self._departures)
        heapq.heappush(self._departures, max(departure, entry))
        profiler = self._profiler
        if profiler is not None and profiler.enabled:
            profiler.charge_resource(
                self._prof_name + "/residency_cycles", max(departure, entry) - entry
            )
            profiler.charge_resource(self._prof_name + "/admissions")
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            occ = len(self._departures)
            tracer.counter(self._name, self._track, entry, occ)
            tracer.metrics.histogram(f"{self._track}/occupancy").observe(occ)
            if entry > t:
                tracer.span(f"{self._name}:backpressure", self._track, t, entry - t)
        return entry

    def _drain(self, t: float) -> None:
        while self._departures and self._departures[0] <= t:
            heapq.heappop(self._departures)


class InOrderQueue:
    """A FIFO whose entries *retire in order*; capacity-limited.

    Models the store queue: an entry may be individually "ready" early but
    cannot leave before its elders.  ``push`` returns the time the new
    entry will retire; dispatch must stall when the queue is full.
    """

    #: see :meth:`SlottedQueue.instrument`; default keeps the path free.
    _tracer: Optional[Tracer] = None
    #: see :meth:`SlottedQueue.profile`; default keeps the path free.
    _profiler: Optional[PhaseProfiler] = None

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        # monotone non-decreasing, oldest first; deque so the per-retire
        # pop is O(1) instead of list.pop(0)'s O(n).
        self._retire_times: Deque[float] = deque()
        self._last_retire = 0.0

    def instrument(self, tracer: Tracer, track: str, name: str) -> None:
        """Attach a tracer: each push samples occupancy on ``track`` and
        feeds the ``<name>/occupancy`` histogram."""
        self._tracer = tracer
        self._track = track
        self._name = name

    def profile(self, profiler: PhaseProfiler, name: str) -> None:
        """Attach a phase profiler: each push charges the entry's queue
        residency to the ``<name>/residency_cycles`` resource."""
        self._profiler = profiler
        self._prof_name = name

    def earliest_slot(self, t: float) -> float:
        """When a new entry could be inserted (full queue delays insert)."""
        self._drain(t)
        if len(self._retire_times) < self.capacity:
            return t
        return self._retire_times[len(self._retire_times) - self.capacity]

    def push(self, t: float, ready: float) -> float:
        """Insert at or after ``t`` an entry that is ready at ``ready``.

        Returns the entry's retire time (in-order: >= all elder retires).
        """
        entry_t = self.earliest_slot(t)
        retire = max(ready, self._last_retire, entry_t)
        self._retire_times.append(retire)
        self._last_retire = retire
        profiler = self._profiler
        if profiler is not None and profiler.enabled:
            profiler.charge_resource(
                self._prof_name + "/residency_cycles", retire - entry_t
            )
            profiler.charge_resource(self._prof_name + "/admissions")
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            occ = len(self._retire_times)
            tracer.counter(self._name, self._track, entry_t, occ)
            tracer.metrics.histogram(f"{self._track}/occupancy").observe(occ)
        return retire

    def drain_time(self, t: float) -> float:
        """Time when everything currently queued has retired."""
        return max(t, self._last_retire)

    def _drain(self, t: float) -> None:
        while self._retire_times and self._retire_times[0] <= t:
            self._retire_times.popleft()
