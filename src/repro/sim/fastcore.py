"""Compiled fast replay path for the timing simulator.

The reference engine (:mod:`repro.sim.cpu` + the per-design domains) is
written for clarity: every micro-op crosses several object layers —
``CoreEngine.step`` → domain hooks → queue objects → cache hierarchy —
each with tracer/profiler branches.  At paper-length runs (1,000+ ops
per thread) that layering is the bottleneck, not the model.

This module replays the *same semantics* an order of magnitude faster:

* each thread trace is **pre-compiled** once into flat parallel arrays
  (int op kinds, cache-line indices, compute cycles, lock ids), cached
  on the trace object, so the hot loop never touches ``Op`` dataclasses
  or ``OpKind`` enum objects;
* the whole machine loop runs in **one function frame**: per-core
  clocks, ROB/store-queue state, and per-design persist structures are
  locals indexed by ``tid``, eliminating per-op attribute and method
  dispatch;
* consecutive ops of the minimum-clock core are **batched**: the ready
  heap is only touched when the core's key passes the next-smallest
  key, which provably pops in the identical global order;
* the common fast cases — L1 hits, L1-miss/L2-hit fills, owner-local
  flushes, fault-free PM bandwidth reservations — are inlined; every
  rare case (memory-level misses, cross-core dirty transfers, dirty
  evictions) falls back to the reference hierarchy methods on the
  *shared* cache/controller objects, so state stays exact.

Two data-structure substitutions keep per-op cost flat while staying
arithmetically identical to the reference:

* Outstanding-acknowledgement sets (x86 fill buffers, HOPS persist
  buffers, StrandWeaver persist-queue completions) are min-heaps
  instead of lists: the reference filters ``[x for x in xs if x > t]``
  and sorts to find the k-th smallest when full; a heap drain removes
  exactly the same elements and ``nsmallest`` yields the same k-th
  value.
* ``max(xs)``-style drain targets use a **running maximum** over every
  value ever inserted since the structure was created.  This is exact:
  any value the reference has dropped (filtered at an earlier time
  ``t' <= t``, or cleared by a fence that advanced the core's clock
  past it) is ``<= t``, so inside ``max(t, ...)`` the stale running
  maximum is dominated by ``t`` whenever it disagrees with the live
  maximum.

The fast path is only taken for uninstrumented runs (no tracer, no
profiler, no fault plan, no media faults); everything else uses the
reference engine.  Bit-identity against the reference is pinned by
``tests/sim/test_engine_identity_pins.py`` and the property test in
``tests/sim/test_fastcore_identity.py``.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from typing import Dict, List

from repro.core.ops import Program
from repro.sim.cache import CacheHierarchy
from repro.sim.config import MachineConfig
from repro.sim.cpu import CoreEngine, LockTable
from repro.sim.memory import DRAMController, PMController
from repro.sim.stats import CoreStats

#: design name -> dispatch id used by the compiled loop.
DESIGN_IDS = {
    "intel-x86": 0,
    "hops": 1,
    "no-persist-queue": 2,
    "strandweaver": 3,
    "non-atomic": 4,
}

# Op kind ints (must match repro.core.ops.OpKind values).
_STORE, _LOAD, _CLWB = 0, 1, 2
_SFENCE, _PB, _NS, _JS, _OFENCE, _DFENCE = 3, 4, 5, 6, 7, 8
_LOCK_ACQ, _LOCK_REL, _COMPUTE, _VSTORE, _VLOAD = 9, 10, 11, 12, 13

_DISPATCH = CoreEngine.DISPATCH_COST
_HIT = CoreEngine.HIT_COST
_LOCK_COST = CoreEngine.LOCK_COST

#: design id -> fence kinds its domain accepts (non-atomic accepts all).
_VALID_FENCES = {
    0: frozenset({_SFENCE}),
    1: frozenset({_OFENCE, _DFENCE}),
    2: frozenset({_PB, _NS, _JS}),
    3: frozenset({_PB, _NS, _JS}),
}

#: design id -> the reference domain's ValueError message template.
_FENCE_ERR = {
    0: "intel-x86 traces only contain SFENCE, got {0!r}",
    1: "hops traces only contain OFENCE/DFENCE, got {0!r}",
    2: "no-persist-queue traces use PB/NS/JS, got {0!r}",
    3: "strandweaver traces use PB/NS/JS, got {0!r}",
}


def compile_trace(trace):
    """Flatten a :class:`ThreadTrace` into parallel arrays, cached.

    Returns ``(kinds, lines, cycles, lock_ids, static)`` where
    ``static`` holds the replay-invariant counter totals (every op
    executes exactly once, so op-mix counters don't need per-op
    increments in the hot loop).
    """
    cached = getattr(trace, "_compiled", None)
    if cached is not None:
        return cached
    kinds: List[int] = []
    lines: List[int] = []
    cycles: List[int] = []
    lock_ids: List[int] = []
    k_append = kinds.append
    l_append = lines.append
    c_append = cycles.append
    lk_append = lock_ids.append
    n_store = n_load = n_clwb = n_fence = n_mark = 0
    compute_cycles = 0
    for op in trace.ops:
        k = int(op.kind)
        k_append(k)
        l_append(op.addr // 64)
        c_append(op.cycles)
        lk_append(op.lock_id)
        if k == _STORE or k == _VSTORE:
            n_store += 1
        elif k == _LOAD or k == _VLOAD:
            n_load += 1
        elif k == _CLWB:
            n_clwb += 1
        elif k == _COMPUTE:
            compute_cycles += op.cycles
        elif _SFENCE <= k <= _DFENCE:
            n_fence += 1
            if k == _PB or k == _NS:
                n_mark += 1
    static = {
        "stores": n_store,
        "loads": n_load,
        "clwbs": n_clwb,
        "fences": n_fence,
        "strand_marks": n_mark,
        "compute_cycles": compute_cycles,
    }
    compiled = (kinds, lines, cycles, lock_ids, static)
    trace._compiled = compiled
    return compiled


class FastDeadlock(Exception):
    """Internal: re-raised as SimulationDeadlock by the machine."""


#: debug-only: set to a list to record (tid, pc, clock) per committed op.
TRACE = None


def _blocked_detail(program, pcs, clocks, parked, locks) -> str:
    """Mirror of :meth:`CoreEngine.blocked_state` for the fast loop."""
    parts = []
    for lock_id in sorted(parked):
        for tid in parked[lock_id]:
            trace = program.threads[tid]
            pc = pcs[tid]
            op = trace[pc] if pc < len(trace) else None
            holder = locks.next_holder(lock_id)
            expect = (
                f"core {holder}" if holder is not None
                else "nobody (order exhausted)"
            )
            parts.append(
                f"core {tid}: op {pc}/{len(trace)} {op!r}, "
                f"local clock {clocks[tid]:.1f}, waiting on lock {lock_id} "
                f"(next holder by recorded order: {expect})"
            )
    return "; ".join(parts)


def run_fast(
    design: str,
    program: Program,
    cfg: MachineConfig,
    hierarchy: CacheHierarchy,
    domains: list,
    per_core_stats: List[CoreStats],
    locks: LockTable,
    pm: PMController,
    dram: DRAMController,
    prune_period: int,
) -> None:
    """Replay ``program`` bit-identically to the reference engine.

    Fills ``per_core_stats`` in place.  Caller guarantees: no tracer,
    no profiler, no durability tracker, no media faults.
    """
    des = DESIGN_IDS[design]
    n = program.n_threads

    # ---- compiled per-core op streams -------------------------------
    kinds_a: List[List[int]] = []
    lines_a: List[List[int]] = []
    cyc_a: List[List[int]] = []
    lkid_a: List[List[int]] = []
    static_a: List[dict] = []
    nops = []
    for trace in program.threads:
        kinds, lines, cycles, lock_ids, static = compile_trace(trace)
        kinds_a.append(kinds)
        lines_a.append(lines)
        cyc_a.append(cycles)
        lkid_a.append(lock_ids)
        static_a.append(static)
        nops.append(len(kinds))

    # ---- per-core engine state (locals indexed by tid) --------------
    clocks = [0.0] * n
    pcs = [0] * n
    finished = [nops[t] == 0 for t in range(n)]
    rob_cap = cfg.core.rob_entries
    sq_cap = cfg.core.store_queue_entries
    robs = [deque() for _ in range(n)]
    rob_last = [0.0] * n
    sqs = [domains[t].store_queue for t in range(n)]
    sq_times = [sq._retire_times for sq in sqs]
    sq_last = [sq._last_retire for sq in sqs]
    line_retire = [dict() for _ in range(n)]  # youngest store retire / line

    # Dynamic stat accumulators (op-mix totals are static, see compile).
    s_l1h = [0] * n
    s_l1m = [0] * n
    s_pmr = [0] * n
    s_stall_q = [0] * n
    s_stall_f = [0] * n
    s_stall_d = [0] * n
    s_stall_l = [0] * n

    # ---- per-design persist-structure state -------------------------
    # Outstanding-time lists live as min-heaps (they start empty, so the
    # heap invariant holds on the shared reference lists themselves) and
    # each carries a running maximum (see module docstring for why the
    # running maximum is exact inside max(t, ...) expressions).
    if des == 0 or des == 4:  # intel-x86 / non-atomic
        out_sets = [domains[t]._outstanding for t in range(n)]
        out_times = [o._times for o in out_sets]
        out_latest = [0.0] * n
        out_cap = out_sets[0].capacity if n else 0
    elif des == 1:  # hops
        hop_cap = cfg.hops.persist_buffer_entries
        buffered = [domains[t]._buffered for t in range(n)]
        buf_latest = [0.0] * n
        open_epoch = [domains[t]._open_epoch for t in range(n)]
        oe_max = [0.0] * n
        epoch_ready = [domains[t]._epoch_ready for t in range(n)]
    else:  # strandweaver / no-persist-queue
        sbus = [domains[t].sbu for t in range(n)]
        sbuf_arrays = [sbu.buffers for sbu in sbus]
        n_bufs = len(sbuf_arrays[0]) if n else 0
        sb_cap = sbuf_arrays[0][0].capacity if n else 0
        ongoing = [sbu.ongoing for sbu in sbus]
        store_gate = [domains[t]._store_gate for t in range(n)]
        max_issue = [domains[t]._max_issue for t in range(n)]
        if des == 3:
            pqs = [domains[t].pq for t in range(n)]
            pq_cap = cfg.strand.persist_queue_entries
            pq_comp = [pq._completions for pq in pqs]
            pq_latest = [pq._latest for pq in pqs]

    # ---- cache + PM fast-path bindings ------------------------------
    l1_caches = hierarchy.l1
    n1 = cfg.l1d.n_sets
    l1_assoc = cfg.l1d.assoc
    l1_lat = cfg.l1d.hit_latency
    l2_cache = hierarchy.l2
    n2 = cfg.l2.n_sets
    l2_assoc = cfg.l2.assoc
    l2_lat = cfg.l2.hit_latency
    # Direct set-indexed bucket views (list indexing beats dict.get in
    # the hot loop; buckets are the shared OrderedDict objects, so the
    # reference fallbacks see every mutation).
    l1v = []
    for c in l1_caches:
        sets = c._sets
        l1v.append([sets.setdefault(i, OrderedDict()) for i in range(n1)])
    l2sets = l2_cache._sets
    l2v = [l2sets.setdefault(i, OrderedDict()) for i in range(n2)]
    l1_hits_c = [0] * n   # TagCache.hits deltas, applied at the end
    l1_miss_c = [0] * n   # TagCache.misses deltas
    l2_hits_c = 0         # shared-L2 TagCache.hits delta
    dirty_owner = hierarchy._dirty_owner
    h_access = hierarchy.access
    h_flush = hierarchy.flush
    ovl = 1.0 - cfg.core.load_overlap

    # PM bandwidth accounting, inlined (BandwidthResource.reserve of the
    # accept and media servers; prune() mutates the same dicts in
    # place, so mid-run pruning stays visible here).
    accept = pm._accept
    a_win = accept._windows
    a_skip = accept._skip
    a_iv = accept.interval
    a_cap = accept.capacity
    media = pm._media
    m_win = media._windows
    m_skip = media._skip
    m_iv = media.interval
    m_cap = media.capacity
    queued_line = pm._queued_line
    coalesce = pm.cfg.coalesce_writes
    w2c = pm.cfg.write_to_controller
    media_interval = pm._media_interval
    max_backlog = pm.cfg.write_queue_entries * media_interval
    pm_writes_local = 0
    pm_coalesced_local = 0

    try_acquire = locks.try_acquire
    release = locks.release
    heappush = heapq.heappush
    heappop = heapq.heappop
    nsmallest = heapq.nsmallest

    # debug trace hook, bound once (module global checked per run only)
    trace_dbg = TRACE

    # ---- the machine loop -------------------------------------------
    ready = [(clocks[t], t) for t in range(n) if not finished[t]]
    heapq.heapify(ready)
    parked: Dict[int, List[int]] = {}  # lock_id -> waiting tids
    dispatched = 0
    next_prune = prune_period

    while ready or parked:
        if not ready:
            raise FastDeadlock(
                f"[{design}] all unfinished cores are parked with no "
                f"runnable core: "
                f"{_blocked_detail(program, pcs, clocks, parked, locks)}"
            )
        _, tid = heappop(ready)
        if finished[tid]:
            continue
        # The heap key of a woken core is max(its clock, the releaser's
        # clock) — the core itself still resumes from its own clock.
        clock = clocks[tid]
        if ready:
            head_clock, head_tid = ready[0]
            have_head = True
        else:
            have_head = False

        kinds = kinds_a[tid]
        lines = lines_a[tid]
        cyc = cyc_a[tid]
        lkid = lkid_a[tid]
        pc = pcs[tid]
        n_ops = nops[tid]
        rob = robs[tid]
        r_last = rob_last[tid]
        sqt = sq_times[tid]
        sql = sq_last[tid]
        lsr = line_retire[tid]
        l1vt = l1v[tid]
        pc0 = pc
        push_back = True

        # -- batched per-op stepping (reference: CoreEngine.step) -----
        while True:
            t = clock + _DISPATCH
            # ROB dispatch pressure (InOrderQueue.earliest_slot inline).
            while rob and rob[0] <= t:
                rob.popleft()
            lr = len(rob)
            if lr >= rob_cap:
                rob_slot = rob[lr - rob_cap]
                if rob_slot > t:
                    s_stall_q[tid] += int(round(rob_slot - t))
                    t = rob_slot
            rob_done = t
            kind = kinds[pc]

            if kind == _STORE or kind == _VSTORE:
                if kind == _STORE and (des == 2 or des == 3):
                    gate = store_gate[tid]
                    if gate > t:
                        s_stall_f[tid] += int(round(gate - t))
                        t = gate
                # store queue earliest_slot
                while sqt and sqt[0] <= t:
                    sqt.popleft()
                ls = len(sqt)
                slot = t
                if ls >= sq_cap:
                    slot = sqt[ls - sq_cap]
                    if slot > t:
                        s_stall_q[tid] += int(round(slot - t))
                    else:
                        slot = t
                line = lines[pc]
                # memory access (L1 hit and L1-miss/L2-hit inline,
                # everything else falls back to the reference path)
                owner = dirty_owner.get(line)
                if owner is None or owner == tid:
                    bucket = l1vt[line % n1]
                    if line in bucket:
                        bucket.move_to_end(line)
                        bucket[line] = True
                        dirty_owner[line] = tid
                        l1_hits_c[tid] += 1
                        s_l1h[tid] += 1
                        done = slot + l1_lat
                    else:
                        l2b = l2v[line % n2]
                        fastfill = False
                        if line in l2b:
                            if len(bucket) < l1_assoc:
                                victim = None
                                fastfill = True
                            else:
                                v_line = next(iter(bucket))
                                v_l2b = l2v[v_line % n2]
                                if v_line in v_l2b:
                                    victim = v_line
                                    fastfill = True
                        if fastfill:
                            # l1 miss -> l2 hit -> clean-path l1 fill
                            l1_miss_c[tid] += 1
                            l2_hits_c += 1
                            l2b.move_to_end(line)
                            if victim is not None:
                                v_dirty = bucket.pop(victim)
                                if v_dirty:
                                    v_l2b[victim] = True
                                v_l2b.move_to_end(victim)
                            bucket[line] = True
                            dirty_owner[line] = tid
                            s_l1m[tid] += 1
                            done = slot + l1_lat + l2_lat
                        else:
                            done, served = h_access(
                                tid, line, True, slot, kind == _STORE
                            )
                            if served == "l1":
                                s_l1h[tid] += 1
                            else:
                                s_l1m[tid] += 1
                                if served == "pm":
                                    s_pmr[tid] += 1
                else:
                    done, served = h_access(
                        tid, line, True, slot, kind == _STORE
                    )
                    if served == "l1":
                        s_l1h[tid] += 1
                    else:
                        s_l1m[tid] += 1
                        if served == "pm":
                            s_pmr[tid] += 1
                # store queue push (entry slot is free at `slot`)
                while sqt and sqt[0] <= slot:
                    sqt.popleft()
                retire = done if done > sql else sql
                sqt.append(retire)
                sql = retire
                prev = lsr.get(line)
                if prev is None or retire > prev:
                    lsr[line] = retire
                t = slot + _HIT
                rob_done = retire

            elif kind == _CLWB:
                line = lines[pc]
                gate = lsr.get(line)
                if gate is not None and gate > t:
                    t = gate
                if des == 0 or des == 4:  # x86 / non-atomic fill buffers
                    times = out_times[tid]
                    while times and times[0] <= t:
                        heappop(times)
                    lo = len(times)
                    slot = t
                    if lo >= out_cap:
                        k = lo - out_cap
                        slot = times[0] if k == 0 else nsmallest(k + 1, times)[-1]
                        if slot > t:
                            s_stall_q[tid] += int(round(slot - t))
                        else:
                            slot = t
                elif des == 1:  # hops persist buffer
                    times = buffered[tid]
                    while times and times[0] <= t:
                        heappop(times)
                    lo = len(times)
                    slot = t
                    if lo >= hop_cap:
                        k = lo - hop_cap
                        slot = times[0] if k == 0 else nsmallest(k + 1, times)[-1]
                        if slot > t:
                            s_stall_q[tid] += int(round(slot - t))
                        else:
                            slot = t
                elif des == 3:  # strandweaver persist queue
                    comp = pq_comp[tid]
                    while comp and comp[0] <= t:
                        heappop(comp)
                    lo = len(comp)
                    slot = t
                    if lo >= pq_cap:
                        k = lo - pq_cap
                        slot = comp[0] if k == 0 else nsmallest(k + 1, comp)[-1]
                        if slot > t:
                            s_stall_q[tid] += int(round(slot - t))
                        else:
                            slot = t
                else:  # no-persist-queue: CLWB takes a store-queue slot
                    while sqt and sqt[0] <= t:
                        sqt.popleft()
                    ls = len(sqt)
                    slot = t
                    if ls >= sq_cap:
                        slot = sqt[ls - sq_cap]
                        if slot > t:
                            s_stall_q[tid] += int(round(slot - t))
                        else:
                            slot = t

                if des == 2 or des == 3:
                    # StrandBuffer.insert_clwb inline on ongoing buffer.
                    buf = sbuf_arrays[tid][ongoing[tid]]
                    brt = buf._retire_times
                    brt[:] = [x for x in brt if x > slot]
                    lb = len(brt)
                    issue = slot if lb < sb_cap else brt[lb - sb_cap]
                    flush_t = issue
                else:
                    flush_t = slot
                # cache flush (owner-local inline, else full path)
                owner = dirty_owner.get(line)
                if owner is None or owner == tid:
                    bucket = l1vt[line % n1]
                    if line in bucket:
                        bucket[line] = False
                        dirty_owner.pop(line, None)
                        depart = flush_t + l1_lat
                    else:
                        l2b = l2v[line % n2]
                        if line in l2b:
                            l2b[line] = False
                            depart = flush_t + l1_lat + l2_lat
                        else:
                            depart = flush_t + l1_lat
                else:
                    depart = h_flush(tid, line, flush_t)
                # PM controller write inline (PMController.write,
                # fault-free, uninstrumented).
                if des == 1:
                    er = epoch_ready[tid]
                    if er > depart:
                        depart = er
                elif des == 2 or des == 3:
                    dr = buf._dep_ready
                    if dr > depart:
                        depart = dr
                pm_writes_local += 1
                # accept-bandwidth reserve (BandwidthResource.reserve)
                w = int(depart / a_iv) if depart > 0.0 else 0
                nxt = a_skip.get(w)
                if nxt is not None:
                    root = nxt
                    while True:
                        hop = a_skip.get(root)
                        if hop is None:
                            break
                        root = hop
                    ww = w
                    while True:
                        hop = a_skip.get(ww)
                        if hop is None or hop == root:
                            break
                        a_skip[ww] = root
                        ww = hop
                    w = root
                c = a_win.get(w, 0) + 1
                a_win[w] = c
                if c >= a_cap:
                    a_skip[w] = w + 1
                wt = w * a_iv
                grant = depart if depart > wt else wt
                pending = queued_line.get(line) if coalesce else None
                if pending is not None and pending > grant:
                    pm_coalesced_local += 1
                    acked = grant + w2c
                else:
                    # media-bandwidth reserve
                    w = int(grant / m_iv) if grant > 0.0 else 0
                    nxt = m_skip.get(w)
                    if nxt is not None:
                        root = nxt
                        while True:
                            hop = m_skip.get(root)
                            if hop is None:
                                break
                            root = hop
                        ww = w
                        while True:
                            hop = m_skip.get(ww)
                            if hop is None or hop == root:
                                break
                            m_skip[ww] = root
                            ww = hop
                        w = root
                    c = m_win.get(w, 0) + 1
                    m_win[w] = c
                    if c >= m_cap:
                        m_skip[w] = w + 1
                    wt = w * m_iv
                    media_start = grant if grant > wt else wt
                    accepted = grant
                    if media_start - grant > max_backlog:
                        accepted = media_start - max_backlog
                    acked = accepted + w2c
                    queued_line[line] = media_start

                if des == 0 or des == 4:
                    heappush(times, acked)
                    if acked > out_latest[tid]:
                        out_latest[tid] = acked
                    t = slot + 1
                    rob_done = t
                elif des == 1:
                    heappush(times, acked)
                    if acked > buf_latest[tid]:
                        buf_latest[tid] = acked
                    oe = open_epoch[tid]
                    oe.append(acked)
                    if acked > oe_max[tid]:
                        oe_max[tid] = acked
                    t = slot + 1
                    rob_done = t
                else:
                    blast = buf._last_retire
                    retire = acked if acked > blast else blast
                    brt.append(retire)
                    buf._last_retire = retire
                    blr = buf._line_retire
                    prevb = blr.get(line)
                    if prevb is None or retire > prevb:
                        blr[line] = retire
                    buf.clwbs += 1
                    if issue > max_issue[tid]:
                        max_issue[tid] = issue
                    if des == 3:
                        pqc = retire if retire > slot else slot
                        heappush(comp, pqc)
                        if pqc > pq_latest[tid]:
                            pq_latest[tid] = pqc
                        t = slot + 1
                        rob_done = t
                    else:
                        # CLWB holds its store-queue slot until issue.
                        while sqt and sqt[0] <= slot:
                            sqt.popleft()
                        sq_retire = issue if issue > sql else sql
                        sqt.append(sq_retire)
                        sql = sq_retire
                        t = slot + 1
                        rob_done = sq_retire

            elif kind == _COMPUTE:
                t += cyc[pc]
                rob_done = t

            elif kind == _LOAD or kind == _VLOAD:
                line = lines[pc]
                owner = dirty_owner.get(line)
                if owner is None or owner == tid:
                    bucket = l1vt[line % n1]
                    if line in bucket:
                        bucket.move_to_end(line)
                        l1_hits_c[tid] += 1
                        s_l1h[tid] += 1
                        done = t + l1_lat
                        t = t + _HIT
                    else:
                        l2b = l2v[line % n2]
                        fastfill = False
                        if line in l2b:
                            if len(bucket) < l1_assoc:
                                victim = None
                                fastfill = True
                            else:
                                v_line = next(iter(bucket))
                                v_l2b = l2v[v_line % n2]
                                if v_line in v_l2b:
                                    victim = v_line
                                    fastfill = True
                        if fastfill:
                            l1_miss_c[tid] += 1
                            l2_hits_c += 1
                            l2b.move_to_end(line)
                            if victim is not None:
                                v_dirty = bucket.pop(victim)
                                if v_dirty:
                                    v_l2b[victim] = True
                                v_l2b.move_to_end(victim)
                            bucket[line] = False
                            s_l1m[tid] += 1
                            done = t + l1_lat + l2_lat
                            t = t + _HIT + (done - t) * ovl
                        else:
                            done, served = h_access(
                                tid, line, False, t, kind == _LOAD
                            )
                            if served == "l1":
                                s_l1h[tid] += 1
                                t = t + _HIT
                            else:
                                s_l1m[tid] += 1
                                if served == "pm":
                                    s_pmr[tid] += 1
                                t = t + _HIT + (done - t) * ovl
                else:
                    done, served = h_access(
                        tid, line, False, t, kind == _LOAD
                    )
                    if served == "l1":
                        s_l1h[tid] += 1
                        t = t + _HIT
                    else:
                        s_l1m[tid] += 1
                        if served == "pm":
                            s_pmr[tid] += 1
                        t = t + _HIT + (done - t) * ovl
                rob_done = done

            elif kind == _LOCK_ACQ:
                grant = try_acquire(lkid[pc], tid, t)
                if grant is None:
                    # Park without advancing pc/clock (reference returns
                    # Blocked before any state commit).
                    parked.setdefault(lkid[pc], []).append(tid)
                    push_back = False
                    break
                s_stall_l[tid] += int(round(grant - t))
                t = (t if t > grant else grant) + _LOCK_COST
                rob_done = t

            elif kind == _LOCK_REL:
                t += _HIT
                rob_done = t
                release(lkid[pc], t)

            else:  # fence kinds
                if des != 4 and kind not in _VALID_FENCES[des]:
                    # Reproduce the reference domain's rejection of a
                    # fence kind foreign to the design, message and all.
                    raise ValueError(
                        _FENCE_ERR[des].format(program.threads[tid][pc])
                    )
                if des == 4:
                    pass  # non-atomic tolerates stray fences as no-ops
                elif kind == _SFENCE:
                    # reference: max(t, max(times) or 0, sq drain); the
                    # running maximum is exact here (module docstring).
                    times = out_times[tid]
                    latest = out_latest[tid]
                    done = t if t > latest else latest
                    if sql > done:
                        done = sql
                    if done > t:
                        s_stall_f[tid] += int(round(done - t))
                    del times[:]
                    t = done
                elif kind == _OFENCE:
                    oe = open_epoch[tid]
                    if oe:
                        m = oe_max[tid]
                        if m > epoch_ready[tid]:
                            epoch_ready[tid] = m
                        del oe[:]
                        oe_max[tid] = 0.0
                    t = t + 1
                elif kind == _DFENCE:
                    times = buffered[tid]
                    latest = buf_latest[tid]
                    done = t if t > latest else latest
                    if done > t:
                        s_stall_d[tid] += int(round(done - t))
                    del times[:]
                    del open_epoch[tid][:]
                    oe_max[tid] = 0.0
                    if done > epoch_ready[tid]:
                        epoch_ready[tid] = done
                    t = done
                elif kind == _PB:
                    buf = sbuf_arrays[tid][ongoing[tid]]
                    blast = buf._last_retire
                    bdone = t if t > blast else blast
                    if bdone > buf._dep_ready:
                        buf._dep_ready = bdone
                    if des == 3:
                        comp = pq_comp[tid]
                        heappush(comp, t + 1)
                        if t + 1 > pq_latest[tid]:
                            pq_latest[tid] = t + 1
                    mi = max_issue[tid]
                    if mi > store_gate[tid]:
                        store_gate[tid] = mi
                    t = t + 1
                elif kind == _NS:
                    ongoing[tid] = (ongoing[tid] + 1) % n_bufs
                    if des == 3:
                        comp = pq_comp[tid]
                        heappush(comp, t + 1)
                        if t + 1 > pq_latest[tid]:
                            pq_latest[tid] = t + 1
                    t = t + 1
                elif kind == _JS:
                    if des == 3:
                        pql = pq_latest[tid]
                        done = max(t, pql, sql)
                    else:
                        bmax = 0.0
                        for b in sbuf_arrays[tid]:
                            if b._last_retire > bmax:
                                bmax = b._last_retire
                        done = max(t, bmax, sql)
                    if done > t:
                        s_stall_d[tid] += int(round(done - t))
                    store_gate[tid] = 0.0
                    t = done
                else:
                    raise ValueError(
                        f"[{design}] unexpected fence kind {kind} in trace"
                    )
                rob_done = t

            # ROB push (InOrderQueue.push inline; proof in fastcore
            # tests that entry time never dominates the retire max).
            t2 = t if t < rob_done else rob_done
            while rob and rob[0] <= t2:
                rob.popleft()
            rr = rob_done if rob_done > r_last else r_last
            rob.append(rr)
            r_last = rr

            clock = t
            pc += 1
            if trace_dbg is not None:
                trace_dbg.append((tid, pc, clock))
            if pc >= n_ops:
                # End of trace: drain everything (domain.drain_all).
                if des == 0 or des == 4:
                    times = out_times[tid]
                    latest = out_latest[tid]
                    done = clock if clock > latest else latest
                    if done > clock:
                        s_stall_d[tid] += int(round(done - clock))
                    del times[:]
                elif des == 1:
                    times = buffered[tid]
                    latest = buf_latest[tid]
                    done = clock if clock > latest else latest
                    if done > clock:
                        s_stall_d[tid] += int(round(done - clock))
                    del times[:]
                    del open_epoch[tid][:]
                    oe_max[tid] = 0.0
                    if done > epoch_ready[tid]:
                        epoch_ready[tid] = done
                elif des == 3:
                    done = max(clock, pq_latest[tid], sql)
                    if done > clock:
                        s_stall_d[tid] += int(round(done - clock))
                    store_gate[tid] = 0.0
                else:
                    bmax = 0.0
                    for b in sbuf_arrays[tid]:
                        if b._last_retire > bmax:
                            bmax = b._last_retire
                    done = max(clock, bmax, sql)
                    if done > clock:
                        s_stall_d[tid] += int(round(done - clock))
                    store_gate[tid] = 0.0
                clock = done
                finished[tid] = True
                push_back = False
                if trace_dbg is not None:
                    trace_dbg[-1] = (tid, pc, clock)
                if kind == _LOCK_REL:
                    waiters = parked.pop(lkid[pc - 1], None)
                    if waiters:
                        for wtid in waiters:
                            wc = clocks[wtid]
                            heappush(
                                ready,
                                (wc if wc > clock else clock, wtid),
                            )
                break

            if kind == _LOCK_REL:
                # A release may wake earlier-keyed cores; break the
                # batch so the heap re-arbitrates (reference order).
                waiters = parked.pop(lkid[pc - 1], None)
                if waiters:
                    for wtid in waiters:
                        wc = clocks[wtid]
                        heappush(
                            ready, (wc if wc > clock else clock, wtid)
                        )
                    break

            # Batch continuation: keep stepping while this core is
            # still the minimum-(clock, tid) runnable core.
            if have_head and (
                clock > head_clock or (clock == head_clock and tid > head_tid)
            ):
                break

        # -- write back per-core state --------------------------------
        clocks[tid] = clock
        pcs[tid] = pc
        rob_last[tid] = r_last
        sq_last[tid] = sql
        dispatched += pc - pc0
        if push_back:
            heappush(ready, (clock, tid))
        if dispatched >= next_prune:
            next_prune = dispatched + prune_period
            # Low-water mark over *actual* clocks (parked or runnable),
            # never heap keys: a woken core's key may exceed the clock
            # it will resume stepping from.
            low = clock
            for wtid in range(n):
                if not finished[wtid] and clocks[wtid] < low:
                    low = clocks[wtid]
            pm.prune(low)
            dram.prune(low)

    # ---- flush accumulated state back into the shared objects -------
    pm.writes += pm_writes_local
    pm.coalesced += pm_coalesced_local
    l2_cache.hits += l2_hits_c
    for t in range(n):
        stats = per_core_stats[t]
        static = static_a[t]
        stats.cycles = int(round(clocks[t]))
        stats.ops = nops[t]
        stats.stores = static["stores"]
        stats.loads = static["loads"]
        stats.clwbs = static["clwbs"]
        stats.fences = static["fences"]
        stats.compute_cycles = static["compute_cycles"]
        stats.pm_writes = static["clwbs"]
        stats.l1_hits = s_l1h[t]
        stats.l1_misses = s_l1m[t]
        stats.pm_reads = s_pmr[t]
        stats.stall_queue_full = s_stall_q[t]
        stats.stall_fence = s_stall_f[t]
        stats.stall_drain = s_stall_d[t]
        stats.stall_lock = s_stall_l[t]
        l1_caches[t].hits += l1_hits_c[t]
        l1_caches[t].misses += l1_miss_c[t]
        sqs[t]._last_retire = sq_last[t]
        if des == 1:
            domains[t]._epoch_ready = epoch_ready[t]
        elif des == 2 or des == 3:
            sbus[t].ongoing = ongoing[t]
            domains[t]._store_gate = store_gate[t]
            domains[t]._max_issue = max_issue[t]
            if des == 3:
                pqs[t]._latest = pq_latest[t]
                pqs[t].inserted += static["clwbs"] + static["strand_marks"]
    pcs_done = pcs  # keep name referenced for debuggers
    del pcs_done
