"""ctypes loader for the native replay core (``_fastcore.c``).

The C core is the third tier of the engine fallback chain:

``native C`` -> ``Python fastcore`` -> ``reference per-op engine``

It is compiled on demand from the single-file source next to this
module with whatever C compiler the host provides (``cc``/``gcc``/
``clang``), cached by source hash under ``_build/``, and loaded with
ctypes — no CPython headers, no third-party packages.  Hosts without a
compiler simply run the Python fast path; behaviour is identical
because the C core is a literal port of it (bit-identity is pinned by
``tests/sim/test_fastcore_identity.py`` and the engine-identity pins).

Determinism: the build uses ``-ffp-contract=off`` so no FMA contraction
changes double rounding, and the core itself mirrors the reference
engine's arithmetic operation-for-operation (see the C file header).

Error protocol: the core returns non-zero for *anything* it does not
model (replay deadlock, unknown fence-design pairing, allocation
failure) and :func:`run_native` then returns ``None`` — the machine
falls through to the Python engines, which reproduce the exact
exception or result.  Set ``REPRO_SIM_NO_C=1`` to disable the C core
outright (the identity property tests use this to diff the tiers).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from array import array
from typing import List, Optional

from repro.core.ops import Program
from repro.sim.config import MachineConfig
from repro.sim.stats import CoreStats

#: environment variable: any non-empty value disables the native core.
NO_C_ENV = "REPRO_SIM_NO_C"

#: environment variable: override the shared-library build directory.
BUILD_DIR_ENV = "REPRO_CC_CACHE"

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_fastcore.c")

_lib = None
_lib_failed = False

_OUT_STRIDE = 8  # per-core dynamic stats slots (see _fastcore.c)


def _build_dir() -> str:
    override = os.environ.get(BUILD_DIR_ENV)
    if override:
        return override
    return os.path.join(os.path.dirname(_SRC), "_build")


def _find_cc() -> Optional[str]:
    from shutil import which

    for cand in ("cc", "gcc", "clang"):
        path = which(cand)
        if path:
            return path
    return None


def _compile(src: str, out: str) -> bool:
    cc = _find_cc()
    if cc is None:
        return False
    tmp = out + f".tmp{os.getpid()}"
    cmd = [
        cc, "-O2", "-fPIC", "-shared", "-ffp-contract=off",
        "-o", tmp, src, "-lm",
    ]
    try:
        proc = subprocess.run(cmd, capture_output=True, timeout=120)
    except Exception:
        return False
    if proc.returncode != 0:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False
    os.replace(tmp, out)  # atomic: concurrent builders race benignly
    return True


def _load():
    """Compile (if needed) and load the shared library; None on failure."""
    global _lib, _lib_failed
    if os.environ.get(NO_C_ENV):  # honored even once loaded
        return None
    if _lib is not None:
        return _lib
    if _lib_failed:
        return None
    try:
        with open(_SRC, "rb") as fh:
            src_bytes = fh.read()
        tag = hashlib.sha256(src_bytes).hexdigest()[:16]
        build_dir = _build_dir()
        so_path = os.path.join(build_dir, f"_fastcore-{tag}.so")
        if not os.path.exists(so_path):
            try:
                os.makedirs(build_dir, exist_ok=True)
            except OSError:
                build_dir = tempfile.gettempdir()
                so_path = os.path.join(build_dir, f"repro-fastcore-{tag}.so")
            if not os.path.exists(so_path) and not _compile(_SRC, so_path):
                _lib_failed = True
                return None
        lib = ctypes.CDLL(so_path)
        lib.rs_run.restype = ctypes.c_int
        lib.rs_run.argtypes = [
            ctypes.POINTER(ctypes.c_double),   # fcfg
            ctypes.POINTER(ctypes.c_int64),    # icfg
            ctypes.POINTER(ctypes.c_int32),    # kinds
            ctypes.POINTER(ctypes.c_int64),    # lines
            ctypes.POINTER(ctypes.c_int32),    # cycles
            ctypes.POINTER(ctypes.c_int32),    # lockids
            ctypes.POINTER(ctypes.c_int64),    # offs
            ctypes.POINTER(ctypes.c_int32),    # lock_keys
            ctypes.POINTER(ctypes.c_int32),    # lock_offs
            ctypes.POINTER(ctypes.c_int32),    # lock_tids
            ctypes.c_int64,                    # n_locks
            ctypes.POINTER(ctypes.c_int64),    # warm_lines
            ctypes.c_int64,                    # n_warm
            ctypes.POINTER(ctypes.c_int64),    # out
        ]
        _lib = lib
        return lib
    except Exception:
        _lib_failed = True
        return None


def available() -> bool:
    """True when the native core can be (or already was) loaded."""
    return _load() is not None


def _ptr(arr, ctype):
    """C pointer to an ``array`` module buffer (kept alive by caller)."""
    addr, _ = arr.buffer_info()
    return ctypes.cast(addr, ctypes.POINTER(ctype))


def _program_streams(program: Program):
    """Concatenated per-thread op streams as C-ready buffers, cached on
    the program (programs are immutable once generated)."""
    cached = getattr(program, "_c_streams", None)
    if cached is not None:
        return cached
    from repro.sim.fastcore import compile_trace

    ks = array("i")
    ls = array("q")
    cs = array("i")
    lk = array("i")
    offs = array("q", [0])
    statics = []
    for trace in program.threads:
        arrs = getattr(trace, "_c_arrays", None)
        if arrs is None:
            # Not a specialized trace: compile the list form once and
            # keep the array form for later replays of this program.
            kinds, lines, cycles, lock_ids, static = compile_trace(trace)
            arrs = (
                array("i", kinds),
                array("q", lines),
                array("i", cycles),
                array("i", lock_ids),
                static,
            )
            trace._c_arrays = arrs
        ka, la, ca, lka, static = arrs
        ks.extend(ka)
        ls.extend(la)
        cs.extend(ca)
        lk.extend(lka)
        offs.append(len(ks))
        statics.append(static)
    lkeys = array("i")
    loffs = array("i", [0])
    ltids = array("i")
    for lock_id, tids in program.lock_order.items():
        lkeys.append(lock_id)
        ltids.extend(tids)
        loffs.append(len(ltids))
    streams = (ks, ls, cs, lk, offs, statics, lkeys, loffs, ltids)
    program._c_streams = streams
    return streams


def _touched_lines(program: Program):
    """Sorted touched-line set, shared with the machine's warm path."""
    touched_sorted = getattr(program, "_touched_lines", None)
    if touched_sorted is None:
        from repro.core.ops import OpKind

        addressed = (OpKind.STORE, OpKind.LOAD, OpKind.CLWB,
                     OpKind.VSTORE, OpKind.VLOAD)
        touched = set()
        for trace in program.threads:
            for op in trace.ops:
                if op.kind in addressed:
                    touched.add(op.addr // 64)
        touched_sorted = sorted(touched)
        program._touched_lines = touched_sorted
    arr = getattr(program, "_touched_arr", None)
    if arr is None:
        arr = array("q", touched_sorted)
        program._touched_arr = arr
    return arr


def run_native(
    design: str,
    program: Program,
    cfg: MachineConfig,
    warm: bool,
    prune_period: int,
) -> Optional[List[CoreStats]]:
    """Replay ``program`` on the C core; None means "use the Python path".

    Caller guarantees the run is uninstrumented (no tracer, profiler,
    fault plan, or media faults — the same gate as the Python fast path).
    """
    lib = _load()
    if lib is None:
        return None
    from repro.sim import fastcore

    if fastcore.TRACE is not None:  # debug per-op trace needs Python
        return None
    des = fastcore.DESIGN_IDS.get(design)
    if des is None:
        return None
    n = program.n_threads
    if n == 0 or n > cfg.n_cores:
        return None

    ks, ls, cs, lk, offs, statics, lkeys, loffs, ltids = (
        _program_streams(program)
    )
    warm_arr = _touched_lines(program) if warm else array("q")

    # Resource parameters are read off freshly constructed controller
    # objects so the C core always sees the reference's own arithmetic
    # (e.g. media_interval = write_to_media / media_banks).
    from repro.persistency.intel_x86 import IntelX86Domain
    from repro.persistency.nonatomic import NonAtomicDomain
    from repro.sim.cpu import CoreEngine
    from repro.sim.memory import DRAMController, PMController

    pm = PMController(cfg.pm)
    dram = DRAMController()
    out_cap = (NonAtomicDomain.CLWB_WINDOW if design == "non-atomic"
               else IntelX86Domain.CLWB_WINDOW)

    icfg = array("q", [
        des,
        n,
        cfg.core.rob_entries,
        cfg.core.store_queue_entries,
        cfg.l1d.n_sets,
        cfg.l1d.assoc,
        cfg.l2.n_sets,
        cfg.l2.assoc,
        out_cap,
        cfg.hops.persist_buffer_entries,
        cfg.strand.n_strand_buffers,
        cfg.strand.strand_buffer_entries,
        cfg.strand.persist_queue_entries,
        prune_period,
        pm._accept.capacity,
        pm._media.capacity,
        pm._read_bw.capacity,
        dram._bw.capacity,
    ])
    fcfg = array("d", [
        CoreEngine.DISPATCH_COST,
        CoreEngine.HIT_COST,
        CoreEngine.LOCK_COST,
        cfg.l1d.hit_latency,
        cfg.l2.hit_latency,
        1.0 - cfg.core.load_overlap,
        pm._accept.interval,
        pm._media.interval,
        pm._read_bw.interval,
        dram._bw.interval,
        cfg.pm.write_to_controller,
        cfg.pm.write_queue_entries * pm._media_interval,
        cfg.pm.read_latency,
        dram.latency,
        cfg.coherence_transfer,
        1.0 if cfg.pm.coalesce_writes else 0.0,
    ])

    out = array("q", bytes(8 * n * _OUT_STRIDE))
    rc = lib.rs_run(
        _ptr(fcfg, ctypes.c_double),
        _ptr(icfg, ctypes.c_int64),
        _ptr(ks, ctypes.c_int32),
        _ptr(ls, ctypes.c_int64),
        _ptr(cs, ctypes.c_int32),
        _ptr(lk, ctypes.c_int32),
        _ptr(offs, ctypes.c_int64),
        _ptr(lkeys, ctypes.c_int32),
        _ptr(loffs, ctypes.c_int32),
        _ptr(ltids, ctypes.c_int32),
        len(lkeys),
        _ptr(warm_arr, ctypes.c_int64),
        len(warm_arr),
        _ptr(out, ctypes.c_int64),
    )
    if rc != 0:
        # Deadlock or unsupported shape: the Python engines reproduce
        # the exact exception/result, so just decline.
        return None

    per_core: List[CoreStats] = []
    for t in range(n):
        static = statics[t]
        stats = CoreStats()
        base = t * _OUT_STRIDE
        stats.cycles = out[base + 0]
        stats.ops = offs[t + 1] - offs[t]
        stats.stores = static["stores"]
        stats.loads = static["loads"]
        stats.clwbs = static["clwbs"]
        stats.fences = static["fences"]
        stats.compute_cycles = static["compute_cycles"]
        stats.pm_writes = static["clwbs"]
        stats.l1_hits = out[base + 1]
        stats.l1_misses = out[base + 2]
        stats.pm_reads = out[base + 3]
        stats.stall_queue_full = out[base + 4]
        stats.stall_fence = out[base + 5]
        stats.stall_drain = out[base + 6]
        stats.stall_lock = out[base + 7]
        per_core.append(stats)
    return per_core
