"""StrandWeaver reproduction: relaxed persist ordering using strand
persistency (Gogte et al., ISCA 2020).

Public API overview
===================

Formal model and crash states
    :class:`repro.core.model.PersistDag`, :mod:`repro.core.crash`

Timing simulation
    :class:`repro.sim.machine.Machine`, :data:`repro.sim.machine.DESIGNS`,
    :class:`repro.sim.config.MachineConfig`

Language-level persistency runtimes
    :class:`repro.lang.runtime.PmRuntime`, the TXN/ATLAS/SFR models, and
    :func:`repro.lang.recovery.recover`

Benchmarks and experiments
    :data:`repro.workloads.WORKLOADS`, :mod:`repro.harness.figures`

Observability
    :class:`repro.obs.Tracer` (pass to :class:`~repro.sim.machine.Machine`),
    :func:`repro.obs.write_trace` (Perfetto), :func:`repro.obs.stats_to_json`
"""

from repro.core.model import PersistDag
from repro.core.ops import Op, OpKind, Program, TraceCursor
from repro.lang.recovery import recover
from repro.obs import Tracer, stats_to_json, write_trace
from repro.pmem.space import PersistentMemory
from repro.sim.config import TABLE_I, MachineConfig
from repro.sim.machine import DESIGNS, Machine, run_design
from repro.workloads import WORKLOADS, WorkloadConfig, generate_for_design

__version__ = "1.0.0"

__all__ = [
    "DESIGNS",
    "Machine",
    "MachineConfig",
    "Op",
    "OpKind",
    "PersistDag",
    "PersistentMemory",
    "Program",
    "TABLE_I",
    "TraceCursor",
    "Tracer",
    "WORKLOADS",
    "WorkloadConfig",
    "generate_for_design",
    "recover",
    "run_design",
    "stats_to_json",
    "write_trace",
]
