"""StrandWeaver reproduction: relaxed persist ordering using strand
persistency (Gogte et al., ISCA 2020).

Public API overview
===================

Formal model and crash states
    :class:`repro.core.model.PersistDag`, :mod:`repro.core.crash`

Timing simulation
    :class:`repro.sim.machine.Machine`, :data:`repro.sim.machine.DESIGNS`,
    :class:`repro.sim.config.MachineConfig`

Language-level persistency runtimes
    :class:`repro.lang.runtime.PmRuntime`, the TXN/ATLAS/SFR models, and
    :func:`repro.lang.recovery.recover`

Benchmarks and experiments
    :data:`repro.workloads.WORKLOADS`, :mod:`repro.harness.figures`
"""

from repro.core.model import PersistDag
from repro.core.ops import Op, OpKind, Program, TraceCursor
from repro.lang.recovery import recover
from repro.pmem.space import PersistentMemory
from repro.sim.config import TABLE_I, MachineConfig
from repro.sim.machine import DESIGNS, Machine, run_design
from repro.workloads import WORKLOADS, WorkloadConfig, generate_for_design

__version__ = "1.0.0"

__all__ = [
    "DESIGNS",
    "Machine",
    "MachineConfig",
    "Op",
    "OpKind",
    "PersistDag",
    "PersistentMemory",
    "Program",
    "TABLE_I",
    "TraceCursor",
    "WORKLOADS",
    "WorkloadConfig",
    "generate_for_design",
    "recover",
    "run_design",
]
