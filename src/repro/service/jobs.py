"""Campaign specifications: what a submitted job *is*.

A :class:`CampaignSpec` is the validated, JSON-round-trippable identity
of one campaign — either a ``sweep`` (a benchmark x design x model
matrix, sharded cell-by-cell) or a ``soak`` (a seed range of randomized
crash/fault cases, sharded into contiguous seed ranges).  The spec is
journaled verbatim in the campaign's ``created`` record, so a resumed
coordinator rebuilds the *same* work list from the WAL alone; everything
execution-related (worker count, per-task timeout, retry budget) rides
in the spec too, making a campaign self-describing.

Work units are intentionally the existing engines' units:

* sweep campaigns expand to :class:`repro.harness.sweep.SweepCell` lists
  via the same :func:`expand_cells` the CLI uses, and resolve through
  the same plan/cache/memo machinery (:func:`plan_cells`), so a
  serviced sweep is bit-identical to ``repro sweep``;
* soak campaigns shard ``[0, seeds)`` into contiguous index ranges with
  :func:`repro.chaos.soak.shard_seed_ranges`; each range replays through
  :func:`run_soak_case`, which is index-pure by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.harness.experiment import ALL_DESIGNS, ALL_MODELS
from repro.harness.figures import BENCH_ORDER
from repro.harness.sweep import SweepCell, expand_cells
from repro.sim.machine import DESIGNS
from repro.workloads import WORKLOADS

#: campaign kinds the coordinator knows how to drive.
KINDS = ("sweep", "soak")

#: ceiling on workers a single campaign may request (the service's
#: resource tracker enforces the *global* budget on top of this).
MAX_CAMPAIGN_WORKERS = 64


class SpecError(ValueError):
    """A submitted campaign spec failed validation."""


@dataclass(frozen=True)
class CampaignSpec:
    """One validated campaign: work definition plus execution knobs."""

    kind: str
    # -- sweep axes --------------------------------------------------------
    workloads: Tuple[str, ...] = ()
    designs: Tuple[str, ...] = ()
    models: Tuple[str, ...] = ("txn",)
    ops_per_thread: int = 16
    # -- soak axes ---------------------------------------------------------
    workload: str = ""
    seeds: int = 50
    seed: int = 7
    soak_designs: Tuple[str, ...] = ()  #: empty = rotate over all designs
    media: bool = True
    shrink: bool = True
    # -- execution ---------------------------------------------------------
    workers: int = 2
    timeout_s: Optional[float] = None
    retries: int = 1
    deterministic: bool = False

    # -- work expansion ----------------------------------------------------

    @property
    def total(self) -> int:
        """Number of accountable work indices (cells or cases)."""
        if self.kind == "sweep":
            return len(self.workloads) * len(self.designs) * len(self.models)
        return self.seeds

    def sweep_cells(self) -> List[SweepCell]:
        assert self.kind == "sweep"
        return expand_cells(
            list(self.workloads), list(self.designs), list(self.models),
            ops_per_thread=self.ops_per_thread,
        )

    def soak_design_pool(self) -> Optional[List[str]]:
        return list(self.soak_designs) if self.soak_designs else None

    # -- JSON --------------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "kind": self.kind,
            "workers": self.workers,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            "deterministic": self.deterministic,
        }
        if self.kind == "sweep":
            doc.update(
                workloads=list(self.workloads),
                designs=list(self.designs),
                models=list(self.models),
                ops_per_thread=self.ops_per_thread,
            )
        else:
            doc.update(
                workload=self.workload,
                seeds=self.seeds,
                seed=self.seed,
                designs=list(self.soak_designs),
                media=self.media,
                shrink=self.shrink,
            )
        return doc

    @staticmethod
    def from_json(doc: Dict[str, object]) -> "CampaignSpec":
        """Validate an untrusted document into a spec (or raise SpecError)."""
        if not isinstance(doc, dict):
            raise SpecError("campaign spec must be a JSON object")
        kind = doc.get("kind")
        if kind not in KINDS:
            raise SpecError(f"unknown campaign kind {kind!r}; choose from {list(KINDS)}")
        try:
            workers = int(doc.get("workers", 2))
            retries = int(doc.get("retries", 1))
            raw_timeout = doc.get("timeout_s")
            timeout_s = None if raw_timeout is None else float(raw_timeout)
            deterministic = bool(doc.get("deterministic", False))
        except (TypeError, ValueError) as exc:
            raise SpecError(f"malformed execution knobs: {exc}")
        if not 1 <= workers <= MAX_CAMPAIGN_WORKERS:
            raise SpecError(
                f"workers must be in [1, {MAX_CAMPAIGN_WORKERS}], got {workers}"
            )
        if retries < 0:
            raise SpecError("retries must be non-negative")
        if timeout_s is not None and timeout_s <= 0:
            raise SpecError("timeout_s must be positive when set")

        if kind == "sweep":
            # BENCH_ORDER, not sorted(): 'all' must expand exactly like the
            # CLI's --workloads all so the artefacts are byte-identical.
            workloads = _names(doc.get("workloads"), BENCH_ORDER, "workloads")
            designs = _names(doc.get("designs"), ALL_DESIGNS, "designs")
            models = _names(doc.get("models", ["txn"]), ALL_MODELS, "models")
            try:
                ops = int(doc.get("ops_per_thread", 16))
            except (TypeError, ValueError) as exc:
                raise SpecError(f"malformed ops_per_thread: {exc}")
            if ops < 1:
                raise SpecError("ops_per_thread must be at least 1")
            return CampaignSpec(
                kind="sweep",
                workloads=workloads,
                designs=designs,
                models=models,
                ops_per_thread=ops,
                workers=workers,
                timeout_s=timeout_s,
                retries=retries,
                deterministic=deterministic,
            )

        workload = doc.get("workload")
        if workload not in WORKLOADS:
            raise SpecError(
                f"unknown workload {workload!r}; choose from {sorted(WORKLOADS)}"
            )
        raw_designs = doc.get("designs") or []
        soak_designs: Tuple[str, ...] = ()
        if raw_designs:
            soak_designs = _names(raw_designs, sorted(DESIGNS), "designs")
        try:
            seeds = int(doc.get("seeds", 50))
            seed = int(doc.get("seed", 7))
        except (TypeError, ValueError) as exc:
            raise SpecError(f"malformed seeds/seed: {exc}")
        if seeds < 1:
            raise SpecError("seeds must be at least 1")
        return CampaignSpec(
            kind="soak",
            workload=str(workload),
            seeds=seeds,
            seed=seed,
            soak_designs=soak_designs,
            media=bool(doc.get("media", True)),
            shrink=bool(doc.get("shrink", True)),
            workers=workers,
            timeout_s=timeout_s,
            retries=retries,
            deterministic=deterministic,
        )


def _names(raw: object, universe, axis: str) -> Tuple[str, ...]:
    """Validate a name list (or the literal 'all') against a universe."""
    if raw == "all":
        return tuple(universe)
    if not isinstance(raw, (list, tuple)) or not raw:
        raise SpecError(f"{axis} must be a non-empty list of names (or 'all')")
    names = [str(name) for name in raw]
    unknown = [name for name in names if name not in universe]
    if unknown:
        raise SpecError(
            f"unknown {axis} {unknown!r}; choose from {sorted(universe)}"
        )
    return tuple(names)
