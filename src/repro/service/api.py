"""The job API: campaign registry + stdlib HTTP server.

:class:`CampaignService` owns the campaign directory tree
(``<root>/campaigns/<id>/``), runs one coordinator thread per active
campaign, and serves wall-clock-free status documents.  Every campaign
is durable from the moment ``submit`` returns: the spec is journaled
before the coordinator thread starts, so a service ``kill -9``'d
between submit and completion leaves a resumable directory that the
next ``repro serve --resume`` picks up.

:class:`CampaignHTTPServer` is a stdlib ``ThreadingHTTPServer`` in
front of the registry:

* ``POST /campaigns``            — submit (202 + id), 400 on bad spec;
* ``GET  /campaigns``            — list known campaigns;
* ``GET  /campaigns/<id>``       — status document;
* ``GET  /campaigns/<id>/events``— stream journal records as JSONL
  (``?follow=1`` tails until the terminal record);
* ``POST /campaigns/<id>/cancel``— request cancellation (202);
* ``GET  /healthz``              — liveness + resource snapshot.

Admission control (both from :mod:`repro.service.ratelimit`): a
per-client token bucket turns bursts into 429 + ``Retry-After``, and a
global worker budget queues campaigns that would oversubscribe the box
instead of running them all at once.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterator, List, Optional, Tuple

from repro.harness.cachedir import CellCache
from repro.obs.export import campaign_status_to_json
from repro.service.coordinator import (
    RESULT_NAME,
    SPEC_NAME,
    Coordinator,
    write_json_atomic,
)
from repro.service.jobs import CampaignSpec, SpecError
from repro.service.journal import (
    JOURNAL_NAME,
    read_journal,
    replay_journal,
)
from repro.service.ratelimit import ClientRateLimiter, ResourceTracker

#: sub-directory of the service root holding one directory per campaign.
CAMPAIGNS_DIR = "campaigns"

#: maximum accepted request body (a campaign spec is tiny).
MAX_BODY_BYTES = 64 * 1024


@dataclass
class CampaignState:
    """One campaign the service knows about, live or historical."""

    campaign_id: str
    spec: CampaignSpec
    directory: str
    status: str = "queued"  #: queued | running | finished | cancelled | failed
    done: int = 0
    errors: int = 0
    detail: Optional[str] = None
    replayed: int = 0
    cancel: threading.Event = field(default_factory=threading.Event)
    thread: Optional[threading.Thread] = None
    coordinator: Optional[Coordinator] = None


class CampaignService:
    """Registry + executor for campaigns under one service root."""

    def __init__(
        self,
        root: str,
        cache: Optional[CellCache] = None,
        tracker: Optional[ResourceTracker] = None,
        limiter: Optional[ClientRateLimiter] = None,
    ) -> None:
        self.root = os.path.abspath(root)
        self.cache = cache
        self.tracker = tracker or ResourceTracker()
        self.limiter = limiter or ClientRateLimiter()
        self._lock = threading.Lock()
        self._campaigns: Dict[str, CampaignState] = {}
        self._counter = 0
        self._stopping = threading.Event()

    # -- registry ----------------------------------------------------------

    def _campaign_dir(self, campaign_id: str) -> str:
        return os.path.join(self.root, CAMPAIGNS_DIR, campaign_id)

    def _new_id(self) -> str:
        with self._lock:
            self._counter += 1
            n = self._counter
        stamp = int(time.time())
        suffix = os.urandom(3).hex()
        return f"c{stamp}-{n:03d}-{suffix}"

    def get(self, campaign_id: str) -> Optional[CampaignState]:
        with self._lock:
            return self._campaigns.get(campaign_id)

    def list_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._campaigns)

    # -- lifecycle ---------------------------------------------------------

    def submit(self, spec: CampaignSpec, campaign_id: Optional[str] = None) -> str:
        """Register a campaign durably and start its coordinator thread."""
        campaign_id = campaign_id or self._new_id()
        directory = self._campaign_dir(campaign_id)
        os.makedirs(directory, exist_ok=True)
        write_json_atomic(os.path.join(directory, SPEC_NAME), spec.to_json())
        state = CampaignState(
            campaign_id=campaign_id, spec=spec, directory=directory
        )
        with self._lock:
            self._campaigns[campaign_id] = state
        self._start(state)
        return campaign_id

    def _start(self, state: CampaignState) -> None:
        thread = threading.Thread(
            target=self._drive, args=(state,),
            name=f"campaign-{state.campaign_id}", daemon=True,
        )
        state.thread = thread
        thread.start()

    def _drive(self, state: CampaignState) -> None:
        workers = self.tracker.clamp(state.spec.workers)
        if not self.tracker.acquire(workers, cancel=state.cancel):
            state.status = "cancelled"
            return
        try:
            state.status = "running"

            def _progress(done: int, total: int, errors: int) -> None:
                state.done, state.errors = done, errors

            coordinator = Coordinator(
                campaign_dir=state.directory,
                campaign_id=state.campaign_id,
                spec=state.spec,
                cache=self.cache,
                cancel=state.cancel,
                on_progress=_progress,
            )
            state.coordinator = coordinator
            outcome = coordinator.run()
            state.done = outcome.done
            state.errors = outcome.errors
            state.replayed = outcome.replayed
            state.status = outcome.status
        except Exception as exc:  # a coordinator bug, not a work failure
            state.status = "failed"
            state.detail = f"{type(exc).__name__}: {exc}"
        finally:
            state.coordinator = None
            self.tracker.release(workers)

    def cancel(self, campaign_id: str) -> bool:
        state = self.get(campaign_id)
        if state is None:
            return False
        state.cancel.set()
        return True

    def resume_all(self) -> List[str]:
        """Scan the root for resumable campaign directories and restart them.

        A directory is resumable when its journal holds a ``created``
        record but no terminal one.  Finished campaigns are registered
        read-only so their status stays queryable.
        """
        base = os.path.join(self.root, CAMPAIGNS_DIR)
        resumed: List[str] = []
        if not os.path.isdir(base):
            return resumed
        for campaign_id in sorted(os.listdir(base)):
            directory = os.path.join(base, campaign_id)
            journal = os.path.join(directory, JOURNAL_NAME)
            if self.get(campaign_id) is not None or not os.path.isdir(directory):
                continue
            try:
                replayed = replay_journal(journal)
            except (OSError, ValueError):
                continue
            spec_doc = replayed.spec_doc
            if spec_doc is None:
                spec_path = os.path.join(directory, SPEC_NAME)
                try:
                    with open(spec_path, encoding="utf-8") as fh:
                        spec_doc = json.load(fh)
                except (OSError, ValueError):
                    continue
            try:
                spec = CampaignSpec.from_json(spec_doc)
            except SpecError:
                continue
            state = CampaignState(
                campaign_id=campaign_id, spec=spec, directory=directory
            )
            if replayed.terminal:
                state.status = "cancelled" if replayed.cancelled else "finished"
                state.done = len(replayed.done)
                with self._lock:
                    self._campaigns[campaign_id] = state
                continue
            with self._lock:
                self._campaigns[campaign_id] = state
            self._start(state)
            resumed.append(campaign_id)
        return resumed

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Block until every campaign thread settles (for --drain mode)."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            with self._lock:
                threads = [
                    s.thread
                    for s in self._campaigns.values()
                    if s.thread is not None and s.thread.is_alive()
                ]
            if not threads:
                return True
            if deadline is not None and time.monotonic() > deadline:
                return False
            threads[0].join(timeout=0.2)

    def shutdown(self) -> None:
        self._stopping.set()
        with self._lock:
            states = list(self._campaigns.values())
        for state in states:
            state.cancel.set()
        for state in states:
            if state.thread is not None:
                state.thread.join(timeout=5.0)

    # -- documents ---------------------------------------------------------

    def status_doc(self, state: CampaignState) -> Dict[str, object]:
        workers = None
        coordinator = state.coordinator
        if coordinator is not None and coordinator.supervisor is not None:
            workers = list(coordinator.supervisor.worker_info)
        return campaign_status_to_json(
            state.campaign_id,
            state.spec.kind,
            state.status,
            state.spec.total,
            state.done,
            state.errors,
            state.spec.to_json(),
            workers=workers,
            detail=state.detail,
        )

    def events(
        self, state: CampaignState, since_seq: int = -1, follow: bool = False
    ) -> Iterator[Dict[str, object]]:
        """Yield journal records with ``seq > since_seq``; optionally tail."""
        journal = os.path.join(state.directory, JOURNAL_NAME)
        last = since_seq
        while True:
            try:
                records = read_journal(journal)
            except (OSError, ValueError):
                records = []
            terminal = False
            for record in records:
                seq = int(record.get("seq", -1))
                if seq <= last:
                    continue
                last = seq
                yield record
                if record.get("event") in ("finished", "cancelled"):
                    terminal = True
            if terminal or not follow or self._stopping.is_set():
                return
            if state.thread is not None and not state.thread.is_alive():
                return
            time.sleep(0.2)

    def result_doc(self, state: CampaignState) -> Optional[Dict[str, object]]:
        path = os.path.join(state.directory, RESULT_NAME)
        try:
            with open(path, encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-campaigns/1"
    service: CampaignService  # set by CampaignHTTPServer

    # -- plumbing ----------------------------------------------------------

    def log_message(self, fmt: str, *args: object) -> None:
        if os.environ.get("REPRO_SERVICE_DEBUG"):
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def _client_key(self) -> str:
        return self.client_address[0] if self.client_address else "unknown"

    def _send_json(
        self,
        code: int,
        doc: Dict[str, object],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, val in (extra_headers or {}).items():
            self.send_header(key, val)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str, **extra: object) -> None:
        doc: Dict[str, object] = {"error": message}
        doc.update(extra)
        headers = {}
        if code == 429 and "retry_after_s" in extra:
            headers["Retry-After"] = str(
                max(1, int(float(str(extra["retry_after_s"])) + 0.999))
            )
        self._send_json(code, doc, headers)

    def _admit(self) -> bool:
        granted, retry_after = self.service.limiter.check(self._client_key())
        if granted:
            return True
        self._error(
            429, "rate limit exceeded; slow down",
            retry_after_s=round(retry_after, 3),
        )
        return False

    def _route(self) -> Tuple[str, ...]:
        path = self.path.split("?", 1)[0]
        return tuple(part for part in path.split("/") if part)

    def _query(self) -> Dict[str, str]:
        if "?" not in self.path:
            return {}
        out: Dict[str, str] = {}
        for pair in self.path.split("?", 1)[1].split("&"):
            if "=" in pair:
                key, val = pair.split("=", 1)
                out[key] = val
        return out

    def _read_body(self) -> Optional[Dict[str, object]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "bad Content-Length")
            return None
        if length <= 0 or length > MAX_BODY_BYTES:
            self._error(400, f"body must be 1..{MAX_BODY_BYTES} bytes")
            return None
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self._error(400, "body is not valid JSON")
            return None
        if not isinstance(doc, dict):
            self._error(400, "body must be a JSON object")
            return None
        return doc

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        if not self._admit():
            return
        route = self._route()
        if route == ("healthz",):
            self._send_json(
                200,
                {"ok": True, "resources": self.service.tracker.snapshot()},
            )
            return
        if route == ("campaigns",):
            docs = []
            for campaign_id in self.service.list_ids():
                state = self.service.get(campaign_id)
                if state is not None:
                    docs.append(self.service.status_doc(state))
            self._send_json(200, {"campaigns": docs})
            return
        if len(route) >= 2 and route[0] == "campaigns":
            state = self.service.get(route[1])
            if state is None:
                self._error(404, f"unknown campaign {route[1]!r}")
                return
            if len(route) == 2:
                self._send_json(200, self.service.status_doc(state))
                return
            if route[2] == "result":
                doc = self.service.result_doc(state)
                if doc is None:
                    self._error(404, "result not written yet")
                    return
                self._send_json(200, doc)
                return
            if route[2] == "events":
                self._stream_events(state)
                return
        self._error(404, f"no route for GET {self.path}")

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler contract)
        if not self._admit():
            return
        route = self._route()
        if route == ("campaigns",):
            doc = self._read_body()
            if doc is None:
                return
            try:
                spec = CampaignSpec.from_json(doc)
            except SpecError as exc:
                self._error(400, str(exc))
                return
            campaign_id = self.service.submit(spec)
            self._send_json(
                202,
                {
                    "id": campaign_id,
                    "status_url": f"/campaigns/{campaign_id}",
                    "events_url": f"/campaigns/{campaign_id}/events?follow=1",
                },
            )
            return
        if len(route) == 3 and route[0] == "campaigns" and route[2] == "cancel":
            if self.service.cancel(route[1]):
                self._send_json(202, {"id": route[1], "cancelling": True})
            else:
                self._error(404, f"unknown campaign {route[1]!r}")
            return
        self._error(404, f"no route for POST {self.path}")

    def _stream_events(self, state: CampaignState) -> None:
        query = self._query()
        follow = query.get("follow", "0") not in ("0", "", "false")
        try:
            since = int(query.get("since", "-1"))
        except ValueError:
            since = -1
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        # Stream of unknown length: close delimits the body.
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for record in self.service.events(state, since_seq=since, follow=follow):
                self.wfile.write((json.dumps(record, sort_keys=True) + "\n").encode())
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            return
        finally:
            self.close_connection = True


class CampaignHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`CampaignService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: CampaignService) -> None:
        handler = type("BoundHandler", (_Handler,), {"service": service})
        super().__init__(address, handler)
        self.service = service


def serve_forever(
    host: str,
    port: int,
    service: CampaignService,
    ready: Optional[threading.Event] = None,
) -> None:
    """Run the HTTP server until interrupted; always shuts the service down."""
    server = CampaignHTTPServer((host, port), service)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        service.shutdown()
