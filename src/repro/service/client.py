"""Tiny urllib client for the campaign job API (``repro submit``).

Stdlib-only by design (the container bakes no HTTP libraries): thin
wrappers over ``urllib.request`` that speak the JSON vocabulary of
:mod:`repro.service.api` and surface 4xx/5xx bodies as
:class:`ServiceError` with the server's own message.  ``submit_and_wait``
follows the event stream when asked, otherwise polls the status
document with bounded backoff — respecting any 429 ``Retry-After`` the
rate limiter hands back.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, Iterator, Optional


class ServiceError(RuntimeError):
    """An API call failed; carries the HTTP status and server message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


#: cap on total seconds spent honoring 429 ``Retry-After`` hints.
MAX_RETRY_WAIT_S = 30.0


def _request(
    url: str, method: str = "GET", body: Optional[Dict[str, object]] = None,
    timeout_s: float = 30.0,
) -> Dict[str, object]:
    data = None
    headers = {"Accept": "application/json"}
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        headers["Content-Type"] = "application/json"
    waited = 0.0
    while True:
        req = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=timeout_s) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                doc = json.loads(exc.read().decode("utf-8"))
                message = str(doc.get("error", exc.reason))
            except Exception:
                message = str(exc.reason)
            if exc.code == 429:
                # Be the polite client the limiter is designed for: honor
                # Retry-After (bounded) instead of failing the command.
                try:
                    pause = float(exc.headers.get("Retry-After") or 1.0)
                except ValueError:
                    pause = 1.0
                pause = max(0.1, min(pause, 5.0))
                if waited + pause <= MAX_RETRY_WAIT_S:
                    waited += pause
                    time.sleep(pause)
                    continue
                message += f" (gave up after {waited:.0f}s of backoff)"
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach service: {exc.reason}") from None


class CampaignClient:
    """One service endpoint, e.g. ``CampaignClient("http://127.0.0.1:8642")``."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def submit(self, spec_doc: Dict[str, object]) -> str:
        doc = _request(
            f"{self.base}/campaigns", "POST", spec_doc, self.timeout_s
        )
        return str(doc["id"])

    def status(self, campaign_id: str) -> Dict[str, object]:
        return _request(f"{self.base}/campaigns/{campaign_id}", timeout_s=self.timeout_s)

    def result(self, campaign_id: str) -> Dict[str, object]:
        return _request(
            f"{self.base}/campaigns/{campaign_id}/result", timeout_s=self.timeout_s
        )

    def cancel(self, campaign_id: str) -> None:
        _request(
            f"{self.base}/campaigns/{campaign_id}/cancel", "POST", {},
            self.timeout_s,
        )

    def health(self) -> Dict[str, object]:
        return _request(f"{self.base}/healthz", timeout_s=self.timeout_s)

    def events(
        self, campaign_id: str, follow: bool = True, since: int = -1
    ) -> Iterator[Dict[str, object]]:
        """Yield journal records from the event stream as they arrive."""
        url = (
            f"{self.base}/campaigns/{campaign_id}/events"
            f"?follow={1 if follow else 0}&since={since}"
        )
        req = urllib.request.Request(url, headers={"Accept": "application/x-ndjson"})
        try:
            # No read timeout: a quiet campaign may be mid-cell for longer
            # than any polling timeout; the server closes on terminal.
            with urllib.request.urlopen(req) as resp:
                for line in resp:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, str(exc.reason)) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach service: {exc.reason}") from None

    def wait(
        self,
        campaign_id: str,
        poll_s: float = 0.5,
        timeout_s: Optional[float] = None,
        on_status: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> Dict[str, object]:
        """Poll until the campaign reaches a terminal status."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        delay = poll_s
        while True:
            try:
                doc = self.status(campaign_id)
            except ServiceError as exc:
                if exc.status != 429:
                    raise
                time.sleep(delay)
                continue
            if on_status is not None:
                on_status(doc)
            if doc.get("status") in ("finished", "cancelled", "failed"):
                return doc
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(0, f"campaign {campaign_id} still running")
            time.sleep(delay)
            delay = min(2.0, delay * 1.5)
