"""Admission control for the job API: token buckets + resource budget.

Two independent gates sit in front of the coordinator:

* :class:`ClientRateLimiter` — a token bucket per client key (the
  remote address).  A burst beyond the bucket's capacity gets a 429
  with a ``Retry-After`` hint; tokens refill continuously, so a polite
  client recovers after the window without ever being banned.
* :class:`ResourceTracker` — a global budget of concurrent campaign
  workers (and an advisory memory cap derived from it).  Submissions
  that would oversubscribe the box queue rather than fail: a campaign
  acquires its worker allotment before spawning and releases it on any
  exit path.

Both take an injectable ``clock`` so tests never sleep.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

#: default admission rate: sustained requests/second per client.
DEFAULT_RATE = 2.0
#: default burst capacity per client.
DEFAULT_BURST = 6
#: default global budget of concurrent campaign workers.
DEFAULT_WORKER_BUDGET = 8
#: advisory per-worker memory footprint (simulator state is small; this
#: exists so operators can reason in bytes, not worker counts).
WORKER_MEM_BYTES = 256 * 1024 * 1024


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(
        self,
        rate: float = DEFAULT_RATE,
        burst: int = DEFAULT_BURST,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be positive and burst at least 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self.clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_acquire(self, cost: float = 1.0) -> Tuple[bool, float]:
        """Take ``cost`` tokens if available.

        Returns ``(granted, retry_after_s)``; ``retry_after_s`` is 0 on
        grant, else the time until the bucket holds ``cost`` tokens.
        """
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return True, 0.0
        return False, (cost - self._tokens) / self.rate


class ClientRateLimiter:
    """Per-client token buckets keyed by an opaque client id."""

    #: drop idle buckets after this long (bounded memory for many clients).
    IDLE_S = 300.0

    def __init__(
        self,
        rate: float = DEFAULT_RATE,
        burst: int = DEFAULT_BURST,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, Tuple[TokenBucket, float]] = {}

    def check(self, client: str, cost: float = 1.0) -> Tuple[bool, float]:
        """Charge ``client`` one request; ``(granted, retry_after_s)``."""
        now = self.clock()
        with self._lock:
            entry = self._buckets.get(client)
            if entry is None:
                bucket = TokenBucket(self.rate, self.burst, self.clock)
            else:
                bucket = entry[0]
            granted, retry_after = bucket.try_acquire(cost)
            self._buckets[client] = (bucket, now)
            if len(self._buckets) > 64:
                self._buckets = {
                    key: val
                    for key, val in self._buckets.items()
                    if now - val[1] < self.IDLE_S or key == client
                }
        return granted, retry_after


class ResourceTracker:
    """Global budget of concurrent campaign workers.

    ``acquire`` blocks (cancellably) until the allotment fits, so queued
    campaigns start in submission order instead of failing; ``snapshot``
    feeds the status endpoint.
    """

    def __init__(self, worker_budget: int = DEFAULT_WORKER_BUDGET) -> None:
        if worker_budget < 1:
            raise ValueError("worker budget must be at least 1")
        self.worker_budget = worker_budget
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._in_use = 0

    def clamp(self, workers: int) -> int:
        """Largest allotment a single campaign may hold."""
        return max(1, min(workers, self.worker_budget))

    def acquire(
        self,
        workers: int,
        cancel: Optional[threading.Event] = None,
        timeout_s: Optional[float] = None,
    ) -> bool:
        """Block until ``workers`` fit in the budget (or cancel/timeout)."""
        workers = self.clamp(workers)
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._cond:
            while self._in_use + workers > self.worker_budget:
                if cancel is not None and cancel.is_set():
                    return False
                wait = 0.1
                if deadline is not None:
                    wait = min(wait, deadline - time.monotonic())
                    if wait <= 0:
                        return False
                self._cond.wait(timeout=wait)
            self._in_use += workers
            return True

    def release(self, workers: int) -> None:
        workers = self.clamp(workers)
        with self._cond:
            self._in_use = max(0, self._in_use - workers)
            self._cond.notify_all()

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            in_use = self._in_use
        return {
            "worker_budget": self.worker_budget,
            "workers_in_use": in_use,
            "workers_free": self.worker_budget - in_use,
            "mem_budget_bytes": self.worker_budget * WORKER_MEM_BYTES,
            "mem_in_use_bytes": in_use * WORKER_MEM_BYTES,
        }
