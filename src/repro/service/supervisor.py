"""Supervised multi-process workers for the campaign service.

Where :mod:`repro.harness.sweep` hardens a *single batch* against hung
and killed workers (tear the pool down, re-run survivors solo), a
long-running campaign needs the inverse shape: a fixed crew of workers
that outlives any one task, with the supervisor watching each worker and
replacing casualties in place.  The supervisor generalizes PR 5's
kill-pool hardening:

* **per-worker dispatch** — each worker has its own task queue, so the
  supervisor always knows exactly which task a dead worker was holding
  (a shared queue cannot attribute blame without the worker's help);
* **heartbeats** — a daemon thread in every worker reports liveness on
  the shared result queue; the same thread watches the parent PID and
  ``os._exit``\\ s if the coordinator is ``kill -9``'d, so orphaned
  workers never outlive their campaign;
* **per-task timeout** — a task past its deadline gets its worker
  SIGKILLed and counts a ``timeout`` attempt; a live-but-silent worker
  (no heartbeat past the grace window) is treated the same way;
* **retry budget + exponential backoff** — failed attempts requeue with
  ``backoff_base_s * 2**(attempt-1)`` (capped) of cool-down, bounded by
  ``retries``; exhaustion yields a typed outcome, never an exception —
  graceful degradation to a partial-results campaign;
* **dead-worker respawn** — the crew is kept at strength until every
  task settles.

Task payloads are the engines' own units: a ``sweep-cell`` task wraps
:func:`repro.harness.sweep._execute` (inheriting its test-only
kill/hang hooks), a ``soak-range`` task replays
:func:`repro.chaos.soak.run_soak_case` over a contiguous index range
with a per-process harness cache.  A third test-only hook,
``REPRO_SERVICE_TEST_KILL_ONCE``, kills a worker the *first* time it
picks up a matching task label — the marker file in ``scratch_dir``
makes it one-shot, so retry-after-respawn is observable end to end.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from queue import Empty
from typing import Callable, Dict, List, Optional, Tuple

#: test-only: SIGKILL the worker the first time it dequeues a task with
#: this label (one-shot via a marker file in the supervisor scratch dir).
TEST_KILL_ONCE_ENV = "REPRO_SERVICE_TEST_KILL_ONCE"
#: test-only: sleep this many seconds before executing each task —
#: deterministic pacing so crash tests can land a kill mid-campaign.
TEST_SLEEP_ENV = "REPRO_SERVICE_TEST_TASK_SLEEP_S"


@dataclass
class SupervisorConfig:
    """Tunables for one supervised run."""

    workers: int = 2
    timeout_s: Optional[float] = None
    retries: int = 1
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 5.0
    heartbeat_interval_s: float = 0.5
    #: a worker silent for this long (while alive) is presumed wedged.
    heartbeat_grace_s: float = 30.0
    #: directory for test-hook marker files (optional).
    scratch_dir: Optional[str] = None


@dataclass
class Task:
    """One unit of campaign work."""

    task_id: int
    kind: str  #: ``sweep-cell`` | ``soak-range``
    payload: object
    label: str = ""


@dataclass
class TaskOutcome:
    """How one task ended, after every retry was spent or it succeeded.

    ``status`` mirrors the sweep engine's typed failures: ``ok``,
    ``error`` (payload = (exception, message, traceback)), ``timeout``,
    ``worker-lost``; plus ``cancelled`` when the campaign was stopped
    before the task settled.
    """

    task_id: int
    status: str
    payload: object
    seconds: float = 0.0
    worker: Optional[int] = None
    attempts: int = 0


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------

#: per-process cache of soak baselines: workload -> design -> harness.
_SOAK_HARNESSES: Dict[str, Dict[str, object]] = {}


def _maybe_test_kill_once(label: str, scratch: Optional[str]) -> None:
    want = os.environ.get(TEST_KILL_ONCE_ENV)
    if not want or want != label or not scratch:
        return
    marker = os.path.join(
        scratch, "killed-" + hashlib.sha256(label.encode()).hexdigest()[:12]
    )
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return  # already died once for this label; run normally
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


def _run_task(kind: str, payload: object) -> Tuple[str, object, float, int]:
    """Execute one task in the worker; returns (status, payload, s, pid)."""
    if kind == "sweep-cell":
        from repro.harness.sweep import _execute

        return _execute(payload)  # type: ignore[arg-type]
    if kind == "soak-range":
        from repro.chaos.soak import run_soak_case

        t0 = time.perf_counter()
        spec = dict(payload)  # type: ignore[call-overload]
        cases: List[Dict[str, object]] = []
        for idx in spec["indices"]:
            harness_cache = _SOAK_HARNESSES.setdefault(spec["workload"], {})
            case = run_soak_case(
                spec["workload"],
                int(spec["seed"]) + int(idx),
                int(idx),
                spec["design_pool"],
                media=bool(spec["media"]),
                shrink=bool(spec["shrink"]),
                harnesses=harness_cache,  # type: ignore[arg-type]
            )
            cases.append(case.to_json())
        return "ok", cases, time.perf_counter() - t0, os.getpid()
    return (
        "error",
        ("ValueError", f"unknown task kind {kind!r}", ""),
        0.0,
        os.getpid(),
    )


def _worker_main(
    worker_id: int,
    task_q: "multiprocessing.Queue",
    result_q: "multiprocessing.Queue",
    hb_interval_s: float,
    parent_pid: int,
    scratch: Optional[str],
) -> None:
    def _beat() -> None:
        while True:
            if os.getppid() != parent_pid:
                os._exit(2)  # the coordinator died; do not orphan
            try:
                result_q.put(("hb", worker_id, time.time()))
            except Exception:
                os._exit(2)
            time.sleep(hb_interval_s)

    threading.Thread(target=_beat, daemon=True).start()
    pace = float(os.environ.get(TEST_SLEEP_ENV, "0") or 0.0)
    while True:
        item = task_q.get()
        if item is None:
            return
        task_id, kind, payload, label = item
        _maybe_test_kill_once(label, scratch)
        if pace > 0:
            time.sleep(pace)
        try:
            status, result, seconds, pid = _run_task(kind, payload)
        except BaseException as exc:  # never let a worker die silently
            status = "error"
            result = (type(exc).__name__, str(exc), traceback.format_exc())
            seconds, pid = 0.0, os.getpid()
        try:
            result_q.put(("done", worker_id, task_id, status, result, seconds, pid))
        except Exception:
            os._exit(3)  # result unpicklable/pipe gone; supervisor will respawn


# ---------------------------------------------------------------------------
# supervisor
# ---------------------------------------------------------------------------


@dataclass
class _WorkerHandle:
    proc: "multiprocessing.process.BaseProcess"
    task_q: "multiprocessing.Queue"
    current: Optional["_TaskState"] = None
    deadline: Optional[float] = None
    last_hb: float = 0.0


@dataclass
class _TaskState:
    task: Task
    attempts: int = 0
    not_before: float = 0.0


class WorkerSupervisor:
    """Run tasks to completion over a self-healing worker crew."""

    def __init__(self, config: Optional[SupervisorConfig] = None) -> None:
        self.config = config or SupervisorConfig()
        self._ctx = multiprocessing.get_context()
        self._workers: Dict[int, _WorkerHandle] = {}
        self._next_worker_id = 0
        self._result_q: Optional["multiprocessing.Queue"] = None
        #: liveness snapshot for status documents.
        self.worker_info: List[Dict[str, object]] = []

    # -- crew management ---------------------------------------------------

    def _spawn_worker(self) -> int:
        assert self._result_q is not None
        wid = self._next_worker_id
        self._next_worker_id += 1
        task_q: "multiprocessing.Queue" = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                wid, task_q, self._result_q,
                self.config.heartbeat_interval_s, os.getpid(),
                self.config.scratch_dir,
            ),
            daemon=True,
        )
        proc.start()
        self._workers[wid] = _WorkerHandle(
            proc=proc, task_q=task_q, last_hb=time.monotonic()
        )
        return wid

    def _kill_worker(self, wid: int) -> None:
        handle = self._workers.pop(wid, None)
        if handle is None:
            return
        try:
            if handle.proc.pid is not None:
                os.kill(handle.proc.pid, signal.SIGKILL)
        except OSError:
            pass
        handle.proc.join(timeout=1.0)
        handle.task_q.close()

    def _shutdown(self) -> None:
        for wid, handle in list(self._workers.items()):
            try:
                handle.task_q.put(None)
            except Exception:
                pass
        deadline = time.monotonic() + 2.0
        for handle in self._workers.values():
            handle.proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for wid in list(self._workers):
            handle = self._workers[wid]
            if handle.proc.is_alive():
                self._kill_worker(wid)
        self._workers.clear()

    # -- accounting --------------------------------------------------------

    def _backoff(self, attempts: int) -> float:
        base = self.config.backoff_base_s
        if base <= 0:
            return 0.0
        return min(self.config.backoff_cap_s, base * (2.0 ** max(0, attempts - 1)))

    def _requeue_or_fail(
        self,
        state: _TaskState,
        status: str,
        payload: object,
        seconds: float,
        worker_pid: Optional[int],
        ready: List[_TaskState],
        completed: Dict[int, TaskOutcome],
        on_result: Optional[Callable[[TaskOutcome], None]],
    ) -> None:
        if status != "ok" and state.attempts <= self.config.retries:
            state.not_before = time.monotonic() + self._backoff(state.attempts)
            ready.append(state)
            return
        outcome = TaskOutcome(
            task_id=state.task.task_id,
            status=status,
            payload=payload,
            seconds=seconds,
            worker=worker_pid,
            attempts=state.attempts,
        )
        completed[state.task.task_id] = outcome
        if on_result is not None:
            on_result(outcome)

    def _snapshot_workers(self) -> None:
        now = time.monotonic()
        self.worker_info = [
            {
                "pid": handle.proc.pid,
                "busy": handle.current is not None,
                "task": None if handle.current is None else handle.current.task.label,
                "heartbeat_age_s": round(now - handle.last_hb, 3),
            }
            for handle in self._workers.values()
        ]

    # -- main loop ---------------------------------------------------------

    def run(
        self,
        tasks: List[Task],
        on_result: Optional[Callable[[TaskOutcome], None]] = None,
        cancel: Optional[threading.Event] = None,
    ) -> Dict[int, TaskOutcome]:
        """Execute ``tasks``, calling ``on_result`` as each one settles.

        Returns outcomes keyed by task id.  With ``cancel`` set, unsettled
        tasks come back with status ``cancelled`` (in-flight work is
        SIGKILLed); the call itself always returns — a lost worker, a
        wedged cell, or an exhausted retry budget degrades to a typed
        outcome instead of an exception.
        """
        cfg = self.config
        completed: Dict[int, TaskOutcome] = {}
        if not tasks:
            return completed
        states = {t.task_id: _TaskState(task=t) for t in tasks}
        ready: List[_TaskState] = list(states.values())
        self._result_q = self._ctx.Queue()
        hb_stale = max(cfg.heartbeat_grace_s, 5.0 * cfg.heartbeat_interval_s)
        try:
            for _ in range(min(cfg.workers, len(tasks))):
                self._spawn_worker()
            while len(completed) < len(tasks):
                if cancel is not None and cancel.is_set():
                    for handle in self._workers.values():
                        if handle.current is not None:
                            self._requeue_cancelled(
                                handle.current, completed, on_result
                            )
                            handle.current = None
                    for state in ready:
                        self._requeue_cancelled(state, completed, on_result)
                    ready = []
                    break

                # 1. Drain results and heartbeats.
                try:
                    msg = self._result_q.get(timeout=0.05)
                except (Empty, OSError):
                    msg = None
                while msg is not None:
                    self._handle_message(msg, ready, completed, on_result)
                    try:
                        msg = self._result_q.get_nowait()
                    except (Empty, OSError):
                        msg = None

                now = time.monotonic()
                # 2. Police the crew: deaths, deadlines, silent workers.
                for wid in list(self._workers):
                    handle = self._workers[wid]
                    state = handle.current
                    if not handle.proc.is_alive():
                        self._kill_worker(wid)
                        if state is not None:
                            self._requeue_or_fail(
                                state, "worker-lost",
                                f"worker pid {handle.proc.pid} died while "
                                f"running {state.task.label!r}",
                                0.0, handle.proc.pid,
                                ready, completed, on_result,
                            )
                        continue
                    if state is None:
                        continue
                    if handle.deadline is not None and now > handle.deadline:
                        self._kill_worker(wid)
                        self._requeue_or_fail(
                            state, "timeout",
                            f"task exceeded the per-task timeout of "
                            f"{cfg.timeout_s:g}s",
                            float(cfg.timeout_s or 0.0), handle.proc.pid,
                            ready, completed, on_result,
                        )
                        continue
                    if now - handle.last_hb > hb_stale:
                        self._kill_worker(wid)
                        self._requeue_or_fail(
                            state, "worker-lost",
                            f"worker pid {handle.proc.pid} stopped "
                            f"heartbeating for {hb_stale:g}s",
                            0.0, handle.proc.pid,
                            ready, completed, on_result,
                        )

                # 3. Keep the crew at strength while work remains.
                outstanding = len(tasks) - len(completed)
                busy = sum(
                    1 for h in self._workers.values() if h.current is not None
                )
                want = min(cfg.workers, max(busy + len(ready), busy), outstanding)
                while len(self._workers) < want:
                    self._spawn_worker()

                # 4. Dispatch ready tasks to idle workers.
                if ready:
                    ready.sort(key=lambda s: (s.not_before, s.task.task_id))
                    for wid, handle in self._workers.items():
                        if not ready:
                            break
                        if handle.current is not None:
                            continue
                        if ready[0].not_before > now:
                            break  # earliest task still cooling down
                        state = ready.pop(0)
                        state.attempts += 1
                        handle.current = state
                        handle.deadline = (
                            None if cfg.timeout_s is None
                            else now + cfg.timeout_s
                        )
                        try:
                            handle.task_q.put((
                                state.task.task_id, state.task.kind,
                                state.task.payload, state.task.label,
                            ))
                        except Exception:
                            # unpicklable payload or dead queue: charge the
                            # attempt and let the police pass clean up.
                            handle.current = None
                            state.attempts -= 1
                            self._requeue_or_fail(
                                state, "error",
                                ("RuntimeError", "could not dispatch task", ""),
                                0.0, None, ready, completed, on_result,
                            )
                self._snapshot_workers()
            return completed
        finally:
            self._shutdown()
            if self._result_q is not None:
                self._result_q.close()
                self._result_q = None

    def _requeue_cancelled(
        self,
        state: _TaskState,
        completed: Dict[int, TaskOutcome],
        on_result: Optional[Callable[[TaskOutcome], None]],
    ) -> None:
        if state.task.task_id in completed:
            return
        outcome = TaskOutcome(
            task_id=state.task.task_id,
            status="cancelled",
            payload="campaign cancelled before this task settled",
            attempts=state.attempts,
        )
        completed[state.task.task_id] = outcome
        if on_result is not None:
            on_result(outcome)

    def _handle_message(
        self,
        msg: object,
        ready: List[_TaskState],
        completed: Dict[int, TaskOutcome],
        on_result: Optional[Callable[[TaskOutcome], None]],
    ) -> None:
        if not isinstance(msg, tuple) or not msg:
            return
        if msg[0] == "hb":
            _, wid, _ts = msg
            handle = self._workers.get(wid)
            if handle is not None:
                handle.last_hb = time.monotonic()
            return
        if msg[0] != "done":
            return
        _, wid, task_id, status, payload, seconds, pid = msg
        handle = self._workers.get(wid)
        if handle is None or handle.current is None:
            return  # late result from a worker we already killed
        state = handle.current
        if state.task.task_id != task_id or task_id in completed:
            return
        handle.current = None
        handle.deadline = None
        handle.last_hb = time.monotonic()
        self._requeue_or_fail(
            state, status, payload, seconds, pid, ready, completed, on_result
        )
