"""Crash-safe campaign coordinator: journal replay + supervised workers.

The coordinator turns a :class:`~repro.service.jobs.CampaignSpec` into a
finished artefact (``repro.sweep/1`` or ``repro.soak/1``) while keeping
every step redoable.  The protocol per settled work unit is strictly
write-ahead: the worker's result is journaled (fsync'd) *first*, then
folded into in-memory state and the shared content-addressed cache.  A
``kill -9`` of the coordinator therefore loses at most in-flight work —
never completed work — and re-running the same campaign directory
replays the journal and continues where the previous life stopped:

* indices present in the journal are **re-read, never re-executed**
  (exactly-once accounting; duplicates fold first-wins);
* indices that were resolved from the memo/cache in a previous life but
  not journaled are simply resolved again — the cache is idempotent and
  the simulator deterministic, so the artefact cannot diverge;
* because all result documents are deterministic in ``deterministic``
  mode, an interrupted-and-resumed campaign's artefact is byte-identical
  to an uninterrupted run's.

Worker crashes are the supervisor's problem (respawn + retry budget);
exhausted budgets degrade to typed failures inside the artefact rather
than a lost campaign.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.chaos.soak import (
    SoakCase,
    SoakResult,
    design_pool_for,
    shard_seed_ranges,
)
from repro.harness.cachedir import CellCache
from repro.harness.sweep import (
    CellFailure,
    CellPlan,
    CellResult,
    SweepResult,
    plan_cells,
    settle_outcome,
)
from repro.obs.export import (
    machine_stats_from_doc,
    machine_stats_to_doc,
    sweep_to_json,
)
from repro.service.jobs import CampaignSpec
from repro.service.journal import (
    JOURNAL_NAME,
    CampaignJournal,
    ReplayedCampaign,
    replay_journal,
)
from repro.service.supervisor import (
    SupervisorConfig,
    Task,
    TaskOutcome,
    WorkerSupervisor,
)

#: artefact file name inside a campaign directory.
RESULT_NAME = "result.json"
#: spec file name inside a campaign directory (informational copy; the
#: journal's ``created`` record is the authoritative one).
SPEC_NAME = "spec.json"

#: soak ranges per worker: small enough to load-balance, large enough to
#: amortise each worker's per-design baseline runs.
SOAK_RANGES_PER_WORKER = 4


@dataclass
class CampaignOutcome:
    """What one coordinator life produced."""

    status: str  #: ``finished`` | ``cancelled``
    total: int
    done: int
    errors: int
    result_path: Optional[str] = None
    result_doc: Optional[Dict[str, object]] = None
    replayed: int = 0  #: indices recovered from the journal, not re-run


@dataclass
class _Progress:
    total: int = 0
    done: int = 0
    errors: int = 0


def write_json_atomic(path: str, doc: Dict[str, object]) -> None:
    """Write ``doc`` with the cachedir discipline: tmp, fsync, rename."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True, allow_nan=False)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class Coordinator:
    """Drive one campaign directory to completion, resumably."""

    def __init__(
        self,
        campaign_dir: str,
        campaign_id: str,
        spec: CampaignSpec,
        cache: Optional[CellCache] = None,
        cancel: Optional[threading.Event] = None,
        on_progress: Optional[Callable[[int, int, int], None]] = None,
        supervisor_config: Optional[SupervisorConfig] = None,
    ) -> None:
        self.dir = campaign_dir
        self.campaign_id = campaign_id
        self.spec = spec
        self.cache = cache
        self.cancel = cancel or threading.Event()
        self.on_progress = on_progress
        base = supervisor_config or SupervisorConfig(
            workers=spec.workers,
            timeout_s=spec.timeout_s,
            retries=spec.retries,
        )
        if base.scratch_dir is None:
            base.scratch_dir = campaign_dir
        self.supervisor_config = base
        self.supervisor: Optional[WorkerSupervisor] = None
        self._progress = _Progress(total=spec.total)

    # -- shared plumbing ---------------------------------------------------

    @property
    def journal_path(self) -> str:
        return os.path.join(self.dir, JOURNAL_NAME)

    @property
    def result_path(self) -> str:
        return os.path.join(self.dir, RESULT_NAME)

    def _notify(self) -> None:
        if self.on_progress is not None:
            p = self._progress
            self.on_progress(p.done, p.total, p.errors)

    def run(self) -> CampaignOutcome:
        """Execute (or resume) the campaign; always returns an outcome."""
        replayed = replay_journal(self.journal_path)
        journal = CampaignJournal(self.journal_path, self.campaign_id)
        try:
            if replayed.spec_doc is None:
                journal.append("created", spec=self.spec.to_json())
            journal.append(
                "coordinator-start",
                attempt=replayed.coordinator_starts + 1,
                pid=os.getpid(),
            )
            if replayed.coordinator_starts == 0:
                self._lint_preflight(journal)
            if self.spec.kind == "sweep":
                return self._run_sweep(journal, replayed)
            return self._run_soak(journal, replayed)
        finally:
            journal.close()

    def _lint_preflight(self, journal: CampaignJournal) -> None:
        """Journal a static lint verdict per distinct campaign cell.

        Mirrors the chaos harness's pre-flight: before any cycle is
        simulated, every (workload, design, model) the campaign will run
        is analyzed and its verdict written to the WAL — a correct
        design must lint without ERRORs, NON-ATOMIC must lint *with*
        them.  Only the first coordinator life journals (the replay path
        ignores unknown event types, so old journals stay readable); a
        lint crash must not take the campaign down, so failures are
        journaled as such rather than raised.
        """
        from repro.analysis import analyze
        from repro.chaos.harness import CHAOS_CFG
        from repro.workloads import WORKLOADS, generate_for_design

        if self.spec.kind == "sweep":
            combos = sorted(
                {
                    (c.benchmark, c.design, c.model)
                    for c in self.spec.sweep_cells()
                }
            )
            cfg_of = {
                (c.benchmark, c.design, c.model): c.workload_cfg()
                for c in self.spec.sweep_cells()
            }
        else:
            pool = design_pool_for(self.spec.soak_design_pool())
            combos = sorted(
                (self.spec.workload, design, "txn") for design in pool
            )
            cfg_of = {combo: CHAOS_CFG for combo in combos}
        for benchmark, design, model in combos:
            try:
                run = generate_for_design(
                    WORKLOADS[benchmark], cfg_of[(benchmark, design, model)],
                    design, model,
                )
                report = analyze(run.program, design=design)
            except Exception as exc:  # pragma: no cover - defensive
                journal.append(
                    "lint",
                    cell=f"{benchmark}/{design}/{model}",
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            journal.append(
                "lint",
                cell=f"{benchmark}/{design}/{model}",
                design=design,
                errors=len(report.errors),
                warnings=len(report.warnings),
                advisories=len(report.advisories),
                consistent=(len(report.errors) > 0) == (design == "non-atomic"),
            )

    # -- sweep campaigns ---------------------------------------------------

    def _replayed_cell_results(
        self, replayed: ReplayedCampaign, cells: List
    ) -> Dict[int, CellResult]:
        """Rebuild settled :class:`CellResult`\\ s from journal records."""
        done: Dict[int, CellResult] = {}
        for idx, record in replayed.done.items():
            if not 0 <= idx < len(cells):
                continue  # spec drifted? never trust a foreign index
            cell = cells[idx]
            status = record.get("status")
            payload = record.get("payload")
            if status == "ok" and isinstance(payload, dict):
                try:
                    stats = machine_stats_from_doc(payload)
                except (KeyError, TypeError, ValueError):
                    continue  # corrupt payload: re-run the cell
                done[idx] = CellResult(cell, stats, source="journal")
            elif isinstance(payload, dict):
                done[idx] = CellResult(
                    cell,
                    None,
                    failure=CellFailure(
                        kind=str(payload.get("kind", "exception")),
                        exception=str(payload.get("exception", "")),
                        message=str(payload.get("message", "")),
                        traceback=str(payload.get("traceback", "")),
                        attempts=int(payload.get("attempts", 1)),
                    ),
                    source="journal",
                )
        return done

    def _journal_resolved(
        self, journal: CampaignJournal, plan: CellPlan, known: Dict[int, CellResult]
    ) -> None:
        """Journal memo/cache hits so the WAL alone reconstructs progress."""
        for idx, res in enumerate(plan.results):
            if res is None or idx in known:
                continue
            payload = (
                machine_stats_to_doc(res.stats)
                if res.stats is not None
                else (res.failure.to_json() if res.failure else None)
            )
            journal.append(
                "cell-done",
                indices=[idx],
                cell=res.cell.label(),
                status="ok" if res.ok else "failed",
                source=res.source,
                payload=payload,
            )

    def _run_sweep(
        self, journal: CampaignJournal, replayed: ReplayedCampaign
    ) -> CampaignOutcome:
        cells = self.spec.sweep_cells()
        done = self._replayed_cell_results(replayed, cells)
        plan = plan_cells(cells, cache=self.cache, use_memo=True, done=done)
        self._journal_resolved(journal, plan, done)
        self._progress = _Progress(
            total=len(cells),
            done=sum(1 for r in plan.results if r is not None),
            errors=sum(1 for r in plan.results if r is not None and not r.ok),
        )
        self._notify()

        outstanding = plan.outstanding()
        tasks = [
            Task(task_id=i, kind="sweep-cell", payload=cell, label=cell.label())
            for i, cell in enumerate(outstanding)
        ]
        lock = threading.Lock()

        def _settle(outcome: TaskOutcome) -> None:
            if outcome.status == "cancelled":
                return  # never journaled: a resumed campaign re-runs it
            cell = outstanding[outcome.task_id]
            with lock:
                res = settle_outcome(
                    plan, cell, outcome.status, outcome.payload,
                    outcome.seconds, outcome.attempts,
                    cache=self.cache, use_memo=True,
                )
                payload = (
                    machine_stats_to_doc(res.stats)
                    if res.stats is not None
                    else (res.failure.to_json() if res.failure else None)
                )
                journal.append(
                    "cell-done",
                    indices=list(plan.pending[cell]),
                    cell=cell.label(),
                    status="ok" if res.ok else "failed",
                    source="run",
                    worker=outcome.worker,
                    payload=payload,
                )
                n = len(plan.pending[cell])
                self._progress.done += n
                if not res.ok:
                    self._progress.errors += n
            self._notify()

        if tasks:
            self.supervisor = WorkerSupervisor(self.supervisor_config)
            try:
                self.supervisor.run(tasks, on_result=_settle, cancel=self.cancel)
            finally:
                self.supervisor = None

        if self.cancel.is_set() and not plan.complete:
            journal.append(
                "cancelled",
                done=self._progress.done,
                total=self._progress.total,
            )
            return CampaignOutcome(
                status="cancelled",
                total=self._progress.total,
                done=self._progress.done,
                errors=self._progress.errors,
                replayed=len(done),
            )

        result = SweepResult(
            cells=plan.finish(),
            jobs=self.spec.workers,
            cache_hits=plan.cache_hits,
            memo_hits=plan.memo_hits,
            cache_misses=len(outstanding) if self.cache is not None else 0,
        )
        doc = sweep_to_json(result, deterministic=self.spec.deterministic)
        write_json_atomic(self.result_path, doc)
        journal.append(
            "finished",
            done=self._progress.total,
            errors=result.errors,
            result=RESULT_NAME,
        )
        return CampaignOutcome(
            status="finished",
            total=self._progress.total,
            done=self._progress.total,
            errors=result.errors,
            result_path=self.result_path,
            result_doc=doc,
            replayed=len(done),
        )

    # -- soak campaigns ----------------------------------------------------

    def _run_soak(
        self, journal: CampaignJournal, replayed: ReplayedCampaign
    ) -> CampaignOutcome:
        spec = self.spec
        design_pool = design_pool_for(spec.soak_design_pool())
        cases: Dict[int, SoakCase] = {}
        for idx, record in replayed.done.items():
            payload = record.get("payload")
            if not isinstance(payload, list):
                continue
            for case_doc in payload:
                if isinstance(case_doc, dict) and int(case_doc.get("index", -1)) == idx:
                    try:
                        cases[idx] = SoakCase.from_json(case_doc)
                    except (KeyError, TypeError, ValueError):
                        pass
                    break
        self._progress = _Progress(
            total=spec.seeds,
            done=len(cases),
            errors=sum(1 for c in cases.values() if not c.ok),
        )
        self._notify()

        missing = [i for i in range(spec.seeds) if i not in cases]
        ranges = self._soak_ranges(missing)
        tasks = [
            Task(
                task_id=t,
                kind="soak-range",
                payload={
                    "workload": spec.workload,
                    "seed": spec.seed,
                    "indices": indices,
                    "design_pool": design_pool,
                    "media": spec.media,
                    "shrink": spec.shrink,
                },
                label=f"{spec.workload}/seeds[{indices[0]}..{indices[-1]}]",
            )
            for t, indices in enumerate(ranges)
        ]
        lock = threading.Lock()
        failures: List[TaskOutcome] = []

        def _settle(outcome: TaskOutcome) -> None:
            if outcome.status == "cancelled":
                return  # never journaled: a resumed campaign re-runs it
            with lock:
                if outcome.status == "ok" and isinstance(outcome.payload, list):
                    settled: List[SoakCase] = []
                    for case_doc in outcome.payload:
                        try:
                            settled.append(SoakCase.from_json(case_doc))
                        except (KeyError, TypeError, ValueError):
                            continue
                    for case in settled:
                        cases[case.index] = case
                    journal.append(
                        "cell-done",
                        indices=[case.index for case in settled],
                        cell=ranges_label(settled),
                        status="ok",
                        source="run",
                        worker=outcome.worker,
                        payload=[case.to_json() for case in settled],
                    )
                    self._progress.done += len(settled)
                    self._progress.errors += sum(
                        1 for case in settled if not case.ok
                    )
                else:
                    failures.append(outcome)
                    journal.append(
                        "range-failed",
                        task=outcome.task_id,
                        status=outcome.status,
                        detail=str(outcome.payload)[:2000],
                        attempts=outcome.attempts,
                    )
            self._notify()

        if tasks:
            self.supervisor = WorkerSupervisor(self.supervisor_config)
            try:
                self.supervisor.run(tasks, on_result=_settle, cancel=self.cancel)
            finally:
                self.supervisor = None

        if self.cancel.is_set() and len(cases) < spec.seeds:
            journal.append("cancelled", done=len(cases), total=spec.seeds)
            return CampaignOutcome(
                status="cancelled",
                total=spec.seeds,
                done=len(cases),
                errors=self._progress.errors,
                replayed=len(replayed.done),
            )

        result = SoakResult(
            workload=spec.workload,
            seed=spec.seed,
            n_seeds=spec.seeds,
            media=spec.media,
            designs=design_pool,
            shrink=spec.shrink,
            cases=[cases[i] for i in sorted(cases)],
        )
        doc = result.summary()
        if failures:
            # Graceful degradation: the artefact still ships, flagged as
            # partial with the missing index count on record.
            doc["partial"] = True
            doc["missing_cases"] = spec.seeds - len(cases)
            doc["ok"] = False
        write_json_atomic(self.result_path, doc)
        journal.append(
            "finished",
            done=len(cases),
            errors=len(result.failures) + len(failures),
            result=RESULT_NAME,
        )
        return CampaignOutcome(
            status="finished",
            total=spec.seeds,
            done=len(cases),
            errors=len(result.failures) + len(failures),
            result_path=self.result_path,
            result_doc=doc,
            replayed=len(replayed.done),
        )

    def _soak_ranges(self, missing: List[int]) -> List[List[int]]:
        """Contiguous runs of missing indices, chunked for the crew."""
        if not missing:
            return []
        runs: List[List[int]] = [[missing[0]]]
        for idx in missing[1:]:
            if idx == runs[-1][-1] + 1:
                runs[-1].append(idx)
            else:
                runs.append([idx])
        target = max(1, self.spec.workers * SOAK_RANGES_PER_WORKER)
        chunk = max(1, (len(missing) + target - 1) // target)
        out: List[List[int]] = []
        for run in runs:
            for first, count in shard_seed_ranges(
                len(run), (len(run) + chunk - 1) // chunk
            ):
                out.append(run[first:first + count])
        return out


def ranges_label(cases: List[SoakCase]) -> str:
    if not cases:
        return "seeds[]"
    return f"seeds[{cases[0].index}..{cases[-1].index}]"
