"""Campaign write-ahead journal: the ``repro.campaign/1`` JSONL WAL.

The coordinator's only durable state.  Every record is appended with
``flush`` + ``fsync`` *before* the in-memory campaign state advances —
redo-style write-ahead logging, the same discipline the source paper's
durability-frontier model (and the PM transaction runtimes it evaluates)
impose on persistent-memory logs.  A ``kill -9`` at any instant
therefore leaves one of exactly three tails: a complete last record, a
torn partial line, or nothing — never a record that the coordinator
acted on but did not write.

``read`` reuses the torn-tail-tolerant reader shape of
:func:`repro.prof.runlog.parse_jsonl_tolerant`: a partial final line is
dropped (the crash interrupted that append, so nothing downstream
depended on it), while garbage *before* the tail is real corruption and
raises.  :func:`CampaignJournal.replay` folds the surviving records into
a :class:`ReplayedCampaign` with **exactly-once accounting**: a work
index recorded twice (possible when a crash lands between the append
and the cache store, and the cell is re-journaled from cache on resume)
keeps its first record and ignores the rest — both carry identical
deterministic payloads, so first-wins is a dedup, not a choice.

Record vocabulary (all carry ``schema``, ``campaign``, ``seq``, ``ts``):

* ``created``       — the validated campaign spec, written at submit;
* ``coordinator-start`` — one per coordinator life (attempt counter);
* ``cell-done``     — indices settled + status + payload (stats document,
  typed failure, or a list of soak case documents) + result source;
* ``cancelled`` / ``finished`` — terminal records; their absence is what
  marks a campaign as resumable.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO

from repro.obs.export import CAMPAIGN_SCHEMA
from repro.prof.runlog import parse_jsonl_tolerant

#: journal file name inside a campaign directory.
JOURNAL_NAME = "journal.jsonl"

#: events that end a campaign; a journal without one is resumable.
TERMINAL_EVENTS = ("finished", "cancelled")


class CampaignJournal:
    """Append-only, fsync'd JSONL writer for one campaign."""

    def __init__(self, path: str, campaign_id: str) -> None:
        self.path = path
        self.campaign_id = campaign_id
        self._fh: Optional[TextIO] = None
        self._seq = 0

    def _handle(self) -> TextIO:
        if self._fh is None:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            # Seed the sequence counter past any durable prefix so a
            # resumed campaign's records keep a monotonic seq.
            if os.path.exists(self.path):
                self._truncate_torn_tail()
                try:
                    records = read_journal(self.path)
                    if records:
                        self._seq = int(records[-1].get("seq", len(records))) + 1
                except (OSError, ValueError):
                    self._seq = 0
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def _truncate_torn_tail(self) -> None:
        """Discard a torn final line before appending.

        A torn record was never acknowledged (the crash interrupted its
        fsync), so dropping it is safe — while appending *after* it
        would fuse two records into interior garbage that replay would
        rightly refuse as corruption.
        """
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
            if not data or data.endswith(b"\n"):
                return
            cut = data.rfind(b"\n") + 1
            with open(self.path, "r+b") as fh:
                fh.truncate(cut)
                fh.flush()
                os.fsync(fh.fileno())
        except OSError:
            pass

    def append(self, event: str, **fields: object) -> Dict[str, object]:
        """Durably append one record (flush + fsync before returning)."""
        fh = self._handle()
        record: Dict[str, object] = {
            "schema": CAMPAIGN_SCHEMA,
            "campaign": self.campaign_id,
            "event": event,
            "seq": self._seq,
            "ts": round(time.time(), 6),
        }
        record.update(fields)
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
        self._seq += 1
        return record

    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_journal(path: str) -> List[Dict[str, object]]:
    """Parse a campaign journal, tolerating a torn tail line."""
    return parse_jsonl_tolerant(path, CAMPAIGN_SCHEMA, what="campaign journal")


@dataclass
class ReplayedCampaign:
    """The durable state a journal folds into on replay."""

    spec_doc: Optional[Dict[str, object]] = None
    #: first-wins map of settled work index -> its ``cell-done`` record.
    done: Dict[int, Dict[str, object]] = field(default_factory=dict)
    #: duplicate ``cell-done`` appends ignored by exactly-once folding.
    duplicates: int = 0
    coordinator_starts: int = 0
    finished: bool = False
    cancelled: bool = False

    @property
    def terminal(self) -> bool:
        return self.finished or self.cancelled

    @property
    def resumable(self) -> bool:
        return self.spec_doc is not None and not self.terminal


def replay_journal(path: str) -> ReplayedCampaign:
    """Fold a journal into campaign state with exactly-once accounting."""
    state = ReplayedCampaign()
    if not os.path.exists(path):
        return state
    for record in read_journal(path):
        event = record.get("event")
        if event == "created":
            spec = record.get("spec")
            if isinstance(spec, dict):
                state.spec_doc = spec
        elif event == "coordinator-start":
            state.coordinator_starts += 1
        elif event == "cell-done":
            indices = record.get("indices")
            if not isinstance(indices, list):
                continue
            for raw in indices:
                idx = int(raw)
                if idx in state.done:
                    state.duplicates += 1
                else:
                    state.done[idx] = record
        elif event == "finished":
            state.finished = True
        elif event == "cancelled":
            state.cancelled = True
    return state
