"""Crash-safe campaign service: journal, supervisor, coordinator, API.

The service turns the repo's two batch engines — the figure-7 sweep
matrix and the randomized crash/fault soak — into resumable *campaigns*:
every settled work unit is journaled write-ahead (``repro.campaign/1``),
workers run under a self-healing supervisor, and a stdlib HTTP job API
fronts submission, status, event streaming and cancellation.  See
``python -m repro serve`` / ``repro submit``.
"""

from repro.service.coordinator import CampaignOutcome, Coordinator
from repro.service.jobs import CampaignSpec, SpecError
from repro.service.journal import (
    CampaignJournal,
    ReplayedCampaign,
    read_journal,
    replay_journal,
)
from repro.service.ratelimit import ClientRateLimiter, ResourceTracker, TokenBucket
from repro.service.supervisor import (
    SupervisorConfig,
    Task,
    TaskOutcome,
    WorkerSupervisor,
)

__all__ = [
    "CampaignJournal",
    "CampaignOutcome",
    "CampaignSpec",
    "ClientRateLimiter",
    "Coordinator",
    "ReplayedCampaign",
    "ResourceTracker",
    "SpecError",
    "SupervisorConfig",
    "Task",
    "TaskOutcome",
    "TokenBucket",
    "WorkerSupervisor",
    "read_journal",
    "replay_journal",
]
