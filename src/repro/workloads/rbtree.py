"""Persistent red-black tree benchmark (Table II: "RB-Tree") [26, 18].

A full CLRS red-black tree living in PM, with insert and delete
(including both rebalancing fix-ups) executed under a global tree lock —
the conventional locking discipline for persistent search trees.

PM layout::

    meta line: root(u64) count(u64) nil(u64)
    node line: key(0) value(8) left(16) right(24) parent(32) color(40) check(48)

``color``: 0 = black, 1 = red.  ``check = mix(key, value)`` detects torn
node initialisation.  The post-crash checker verifies the binary-search
property, no red-red edges, uniform black height, parent-pointer
consistency and ``count == reachable nodes``.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Set, Tuple

from repro.lang.runtime import Accessor, DirectAccessor, PmRuntime, RuntimeAccessor
from repro.pmem.alloc import PmAllocator
from repro.workloads.base import CheckFailure, Workload, WorkloadConfig

TREE_LOCK = 300
BLACK = 0
RED = 1

_MIX = 0x9E3779B97F4A7C15

K, V, L, R, P, C, CHK = 0, 8, 16, 24, 32, 40, 48


def _mix(key: int, value: int) -> int:
    return (key * _MIX ^ value ^ 0x42) & 0xFFFFFFFFFFFFFFFF


class RBTreeWorkload(Workload):
    """Insert/delete on a persistent red-black tree."""

    name = "rbtree"
    compute_per_op = 6000

    def __init__(self, cfg: WorkloadConfig) -> None:
        super().__init__(cfg)
        self.meta = 0
        self.nil = 0
        self.pool: List[List[int]] = []
        self._next_node = [0] * cfg.n_threads
        self._shadow: Set[int] = set()
        self._next_key = 1

    # -- field helpers ----------------------------------------------------------

    def _get(self, acc: Accessor, node: int, off: int) -> int:
        return acc.read_u64(node + off)

    def _set(self, acc: Accessor, node: int, off: int, val: int) -> None:
        acc.write_u64(node + off, val)

    def _root(self, acc: Accessor) -> int:
        return acc.read_u64(self.meta)

    def _set_root(self, acc: Accessor, node: int) -> None:
        acc.write_u64(self.meta, node)

    # -- setup -------------------------------------------------------------------

    def setup(self, acc: DirectAccessor, alloc: PmAllocator) -> None:
        self.meta = alloc.alloc_lines(1)
        self.nil = alloc.alloc_lines(1)
        acc.write(self.nil, struct.pack("<QQQQQQQ", 0, 0, 0, 0, 0, BLACK, _mix(0, 0)))
        acc.write(self.meta, struct.pack("<QQQ", self.nil, 0, self.nil))
        self.pool = [
            [alloc.alloc_lines(1) for _ in range(self.cfg.ops_per_thread)]
            for _ in range(self.cfg.n_threads)
        ]

    def locks_for(self, tid: int, op_indices: Sequence[int]) -> List[int]:
        return [TREE_LOCK]

    # -- body ----------------------------------------------------------------------

    def body(self, rt: PmRuntime, tid: int, op_index: int) -> None:
        acc = RuntimeAccessor(rt, tid)
        delete = self._shadow and self.rng.random() < 0.45
        if delete:
            key = self.rng.choice(sorted(self._shadow))
            self._delete(acc, key)
            self._shadow.discard(key)
        else:
            key = self._next_key
            self._next_key += 1
            node = self.pool[tid][self._next_node[tid]]
            self._next_node[tid] += 1
            self._insert(acc, node, key, key * 3 + 1)
            self._shadow.add(key)

    # -- rotations -----------------------------------------------------------------

    def _rotate_left(self, acc: Accessor, x: int) -> None:
        y = self._get(acc, x, R)
        yl = self._get(acc, y, L)
        self._set(acc, x, R, yl)
        if yl != self.nil:
            self._set(acc, yl, P, x)
        xp = self._get(acc, x, P)
        self._set(acc, y, P, xp)
        if xp == self.nil:
            self._set_root(acc, y)
        elif x == self._get(acc, xp, L):
            self._set(acc, xp, L, y)
        else:
            self._set(acc, xp, R, y)
        self._set(acc, y, L, x)
        self._set(acc, x, P, y)

    def _rotate_right(self, acc: Accessor, x: int) -> None:
        y = self._get(acc, x, L)
        yr = self._get(acc, y, R)
        self._set(acc, x, L, yr)
        if yr != self.nil:
            self._set(acc, yr, P, x)
        xp = self._get(acc, x, P)
        self._set(acc, y, P, xp)
        if xp == self.nil:
            self._set_root(acc, y)
        elif x == self._get(acc, xp, R):
            self._set(acc, xp, R, y)
        else:
            self._set(acc, xp, L, y)
        self._set(acc, y, R, x)
        self._set(acc, x, P, y)

    # -- insert -----------------------------------------------------------------------

    def _insert(self, acc: Accessor, z: int, key: int, value: int) -> None:
        y = self.nil
        x = self._root(acc)
        while x != self.nil:
            y = x
            x = self._get(acc, x, L) if key < self._get(acc, x, K) else self._get(acc, x, R)
        # Initialise the node: two stores (undo-log value field is 40 B).
        acc.write(z, struct.pack("<QQQQ", key, value, self.nil, self.nil))
        acc.write(z + P, struct.pack("<QQQ", y, RED, _mix(key, value)))
        if y == self.nil:
            self._set_root(acc, z)
        elif key < self._get(acc, y, K):
            self._set(acc, y, L, z)
        else:
            self._set(acc, y, R, z)
        self._insert_fixup(acc, z)
        acc.write_u64(self.meta + 8, acc.read_u64(self.meta + 8) + 1)

    def _insert_fixup(self, acc: Accessor, z: int) -> None:
        while self._get(acc, self._get(acc, z, P), C) == RED:
            zp = self._get(acc, z, P)
            zpp = self._get(acc, zp, P)
            if zp == self._get(acc, zpp, L):
                y = self._get(acc, zpp, R)
                if self._get(acc, y, C) == RED:
                    self._set(acc, zp, C, BLACK)
                    self._set(acc, y, C, BLACK)
                    self._set(acc, zpp, C, RED)
                    z = zpp
                else:
                    if z == self._get(acc, zp, R):
                        z = zp
                        self._rotate_left(acc, z)
                        zp = self._get(acc, z, P)
                        zpp = self._get(acc, zp, P)
                    self._set(acc, zp, C, BLACK)
                    self._set(acc, zpp, C, RED)
                    self._rotate_right(acc, zpp)
            else:
                y = self._get(acc, zpp, L)
                if self._get(acc, y, C) == RED:
                    self._set(acc, zp, C, BLACK)
                    self._set(acc, y, C, BLACK)
                    self._set(acc, zpp, C, RED)
                    z = zpp
                else:
                    if z == self._get(acc, zp, L):
                        z = zp
                        self._rotate_right(acc, z)
                        zp = self._get(acc, z, P)
                        zpp = self._get(acc, zp, P)
                    self._set(acc, zp, C, BLACK)
                    self._set(acc, zpp, C, RED)
                    self._rotate_left(acc, zpp)
        root = self._root(acc)
        if self._get(acc, root, C) != BLACK:
            self._set(acc, root, C, BLACK)

    # -- delete ------------------------------------------------------------------------

    def _find(self, acc: Accessor, key: int) -> int:
        node = self._root(acc)
        while node != self.nil:
            k = self._get(acc, node, K)
            if key == k:
                return node
            node = self._get(acc, node, L) if key < k else self._get(acc, node, R)
        return self.nil

    def _minimum(self, acc: Accessor, node: int) -> int:
        while self._get(acc, node, L) != self.nil:
            node = self._get(acc, node, L)
        return node

    def _transplant(self, acc: Accessor, u: int, v: int) -> None:
        up = self._get(acc, u, P)
        if up == self.nil:
            self._set_root(acc, v)
        elif u == self._get(acc, up, L):
            self._set(acc, up, L, v)
        else:
            self._set(acc, up, R, v)
        self._set(acc, v, P, up)

    def _delete(self, acc: Accessor, key: int) -> None:
        z = self._find(acc, key)
        if z == self.nil:
            raise CheckFailure(f"planned delete of missing key {key}")
        y = z
        y_color = self._get(acc, y, C)
        if self._get(acc, z, L) == self.nil:
            x = self._get(acc, z, R)
            self._transplant(acc, z, x)
        elif self._get(acc, z, R) == self.nil:
            x = self._get(acc, z, L)
            self._transplant(acc, z, x)
        else:
            y = self._minimum(acc, self._get(acc, z, R))
            y_color = self._get(acc, y, C)
            x = self._get(acc, y, R)
            if self._get(acc, y, P) == z:
                self._set(acc, x, P, y)
            else:
                self._transplant(acc, y, x)
                zr = self._get(acc, z, R)
                self._set(acc, y, R, zr)
                self._set(acc, zr, P, y)
            self._transplant(acc, z, y)
            zl = self._get(acc, z, L)
            self._set(acc, y, L, zl)
            self._set(acc, zl, P, y)
            self._set(acc, y, C, self._get(acc, z, C))
        if y_color == BLACK:
            self._delete_fixup(acc, x)
        acc.write_u64(self.meta + 8, acc.read_u64(self.meta + 8) - 1)

    def _delete_fixup(self, acc: Accessor, x: int) -> None:
        while x != self._root(acc) and self._get(acc, x, C) == BLACK:
            xp = self._get(acc, x, P)
            if x == self._get(acc, xp, L):
                w = self._get(acc, xp, R)
                if self._get(acc, w, C) == RED:
                    self._set(acc, w, C, BLACK)
                    self._set(acc, xp, C, RED)
                    self._rotate_left(acc, xp)
                    w = self._get(acc, xp, R)
                if (
                    self._get(acc, self._get(acc, w, L), C) == BLACK
                    and self._get(acc, self._get(acc, w, R), C) == BLACK
                ):
                    self._set(acc, w, C, RED)
                    x = xp
                else:
                    if self._get(acc, self._get(acc, w, R), C) == BLACK:
                        self._set(acc, self._get(acc, w, L), C, BLACK)
                        self._set(acc, w, C, RED)
                        self._rotate_right(acc, w)
                        w = self._get(acc, xp, R)
                    self._set(acc, w, C, self._get(acc, xp, C))
                    self._set(acc, xp, C, BLACK)
                    self._set(acc, self._get(acc, w, R), C, BLACK)
                    self._rotate_left(acc, xp)
                    x = self._root(acc)
            else:
                w = self._get(acc, xp, L)
                if self._get(acc, w, C) == RED:
                    self._set(acc, w, C, BLACK)
                    self._set(acc, xp, C, RED)
                    self._rotate_right(acc, xp)
                    w = self._get(acc, xp, L)
                if (
                    self._get(acc, self._get(acc, w, R), C) == BLACK
                    and self._get(acc, self._get(acc, w, L), C) == BLACK
                ):
                    self._set(acc, w, C, RED)
                    x = xp
                else:
                    if self._get(acc, self._get(acc, w, L), C) == BLACK:
                        self._set(acc, self._get(acc, w, R), C, BLACK)
                        self._set(acc, w, C, RED)
                        self._rotate_left(acc, w)
                        w = self._get(acc, xp, L)
                    self._set(acc, w, C, self._get(acc, xp, C))
                    self._set(acc, xp, C, BLACK)
                    self._set(acc, self._get(acc, w, L), C, BLACK)
                    self._rotate_right(acc, xp)
                    x = self._root(acc)
        if self._get(acc, x, C) != BLACK:
            self._set(acc, x, C, BLACK)

    # -- invariants -----------------------------------------------------------------------

    def check(self, acc: DirectAccessor) -> None:
        root = self._root(acc)
        count = acc.read_u64(self.meta + 8)
        if root == self.nil:
            if count != 0:
                raise CheckFailure(f"empty tree but count={count}")
            return
        if self._get(acc, root, C) != BLACK:
            raise CheckFailure("root is not black")
        if self._get(acc, self.nil, C) != BLACK:
            raise CheckFailure("sentinel turned red")
        seen: Set[int] = set()
        n_nodes, _bh = self._check_subtree(acc, root, 0, 2**64 - 1, seen)
        if n_nodes != count:
            raise CheckFailure(
                f"count {count} != reachable nodes {n_nodes}: torn insert/delete region"
            )

    def _check_subtree(
        self, acc: DirectAccessor, node: int, lo: int, hi: int, seen: Set[int]
    ) -> Tuple[int, int]:
        if node == self.nil:
            return 0, 1
        if node in seen:
            raise CheckFailure(f"node {node:#x} reachable twice")
        seen.add(node)
        key = self._get(acc, node, K)
        value = self._get(acc, node, V)
        if not lo <= key <= hi:
            raise CheckFailure(f"BST violation: key {key} outside ({lo}, {hi})")
        if self._get(acc, node, CHK) != _mix(key, value):
            raise CheckFailure(f"torn node init at key {key}")
        color = self._get(acc, node, C)
        left = self._get(acc, node, L)
        right = self._get(acc, node, R)
        if color == RED:
            for child in (left, right):
                if child != self.nil and self._get(acc, child, C) == RED:
                    raise CheckFailure(f"red-red edge at key {key}")
        for child in (left, right):
            if child != self.nil and self._get(acc, child, P) != node:
                raise CheckFailure(f"broken parent pointer under key {key}")
        nl, bhl = self._check_subtree(acc, left, lo, key, seen)
        nr, bhr = self._check_subtree(acc, right, key, hi, seen)
        if bhl != bhr:
            raise CheckFailure(f"black-height mismatch at key {key}: {bhl} vs {bhr}")
        return nl + nr + 1, bhl + (1 if color == BLACK else 0)
