"""TPC-C new-order benchmark kernel (Table II: "TPCC") [61, 17].

Models the persistent heart of a TPC-C new-order transaction: advance the
district's order counter, decrement stock for each line item, record the
order lines and the order itself.  Each transaction acquires the district
lock plus one stock-stripe lock per distinct item — the paper notes the
"high lock acquisition overhead per failure-atomic region" is what limits
TPCC's speedup.

PM layout::

    district rec (64 B): next_o_id(u64) ytd(u64)
    stock rec   (64 B): quantity(u64) ytd(u64)
    order rec   (64 B): o_id(u64) ol_cnt(u64) total(u64) check(u64)
    order line  (32 B): item(u64) qty(u64) amount(u64) check(u64)

Invariants checked on (recovered) images: sequential order ids per
district, per-order totals equal the sum of their lines, and global stock
conservation — initial stock == current stock + quantity on order lines.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from repro.lang.runtime import DirectAccessor, PmRuntime, RuntimeAccessor
from repro.pmem.alloc import PmAllocator
from repro.workloads.base import CheckFailure, Workload, WorkloadConfig

DISTRICT_LOCK = 400
STOCK_LOCK = 500
N_DISTRICTS = 8
N_ITEMS = 128
N_STOCK_STRIPES = 8
INIT_QUANTITY = 1_000_000
MAGIC = 0x7C9C_1F2B_93A5_D705


def _mix(*vals: int) -> int:
    h = MAGIC
    for v in vals:
        h = (h * 31 ^ v) & 0xFFFFFFFFFFFFFFFF
    return h


class TpccWorkload(Workload):
    """New-order transactions over persistent TPC-C tables."""

    name = "tpcc"
    compute_per_op = 9000

    def __init__(self, cfg: WorkloadConfig) -> None:
        super().__init__(cfg)
        # plan[tid][op] = (district, [(item, qty), ...])
        self.plan: List[List[Tuple[int, List[Tuple[int, int]]]]] = []
        for _tid in range(cfg.n_threads):
            ops = []
            for _ in range(cfg.ops_per_thread):
                district = self.rng.randrange(N_DISTRICTS)
                n_lines = self.rng.randint(3, 6)
                items = sorted(self.rng.sample(range(N_ITEMS), n_lines))
                lines = [(item, self.rng.randint(1, 10)) for item in items]
                ops.append((district, lines))
            self.plan.append(ops)
        self.district_base = 0
        self.stock_base = 0
        self.order_base = 0
        self.line_base = 0
        self.max_orders = cfg.n_threads * cfg.ops_per_thread + 8
        self.max_lines_per_order = 6

    # -- addresses ---------------------------------------------------------------

    def _district(self, d: int) -> int:
        return self.district_base + 64 * d

    def _stock(self, item: int) -> int:
        return self.stock_base + 64 * item

    def _order(self, d: int, o_id: int) -> int:
        return self.order_base + 64 * (d * self.max_orders + o_id)

    def _line(self, d: int, o_id: int, idx: int) -> int:
        slot = (d * self.max_orders + o_id) * self.max_lines_per_order + idx
        return self.line_base + 32 * slot

    # -- setup --------------------------------------------------------------------

    def setup(self, acc: DirectAccessor, alloc: PmAllocator) -> None:
        self.district_base = alloc.alloc(64 * N_DISTRICTS, align=64)
        self.stock_base = alloc.alloc(64 * N_ITEMS, align=64)
        self.order_base = alloc.alloc(64 * N_DISTRICTS * self.max_orders, align=64)
        self.line_base = alloc.alloc(
            32 * N_DISTRICTS * self.max_orders * self.max_lines_per_order, align=64
        )
        for d in range(N_DISTRICTS):
            acc.write(self._district(d), b"\x00" * 16)
        for item in range(N_ITEMS):
            acc.write(self._stock(item), struct.pack("<QQ", INIT_QUANTITY, 0))

    # -- plan -----------------------------------------------------------------------

    def locks_for(self, tid: int, op_indices: Sequence[int]) -> List[int]:
        locks = set()
        for op_index in op_indices:
            district, lines = self.plan[tid][op_index]
            locks.add(DISTRICT_LOCK + district)
            for item, _qty in lines:
                locks.add(STOCK_LOCK + item % N_STOCK_STRIPES)
        return sorted(locks)

    # -- body --------------------------------------------------------------------------

    def body(self, rt: PmRuntime, tid: int, op_index: int) -> None:
        acc = RuntimeAccessor(rt, tid)
        district, lines = self.plan[tid][op_index]
        d_addr = self._district(district)
        o_id = acc.read_u64(d_addr)
        acc.write_u64(d_addr, o_id + 1)

        total = 0
        for idx, (item, qty) in enumerate(lines):
            s_addr = self._stock(item)
            quantity = acc.read_u64(s_addr)
            ytd = acc.read_u64(s_addr + 8)
            acc.write(s_addr, struct.pack("<QQ", quantity - qty, ytd + qty))
            amount = qty * (item + 7)
            total += amount
            acc.write(
                self._line(district, o_id, idx),
                struct.pack("<QQQQ", item, qty, amount, _mix(item, qty, amount)),
            )
        acc.write(
            self._order(district, o_id),
            struct.pack("<QQQQ", o_id + 1, len(lines), total, _mix(o_id + 1, len(lines), total)),
        )
        acc.write_u64(d_addr + 8, acc.read_u64(d_addr + 8) + total)

    # -- invariants -----------------------------------------------------------------------

    def check(self, acc: DirectAccessor) -> None:
        lines_total_qty = 0
        for d in range(N_DISTRICTS):
            next_o_id = acc.read_u64(self._district(d))
            ytd = acc.read_u64(self._district(d) + 8)
            ytd_sum = 0
            for o_id in range(next_o_id):
                stored_oid, ol_cnt, total, check = struct.unpack(
                    "<QQQQ", acc.read(self._order(d, o_id), 32)
                )
                if stored_oid != o_id + 1:
                    raise CheckFailure(
                        f"district {d}: order {o_id} missing or torn "
                        f"(stored id {stored_oid})"
                    )
                if check != _mix(stored_oid, ol_cnt, total):
                    raise CheckFailure(f"district {d}: order {o_id} record torn")
                line_sum = 0
                for idx in range(ol_cnt):
                    item, qty, amount, lcheck = struct.unpack(
                        "<QQQQ", acc.read(self._line(d, o_id, idx), 32)
                    )
                    if lcheck != _mix(item, qty, amount):
                        raise CheckFailure(
                            f"district {d} order {o_id} line {idx} torn"
                        )
                    line_sum += amount
                    lines_total_qty += qty
                if line_sum != total:
                    raise CheckFailure(
                        f"district {d} order {o_id}: total {total} != lines {line_sum}"
                    )
                ytd_sum += total
            if ytd != ytd_sum:
                raise CheckFailure(f"district {d}: ytd {ytd} != sum of orders {ytd_sum}")
        stock_qty = 0
        stock_ytd = 0
        for item in range(N_ITEMS):
            quantity, ytd = struct.unpack("<QQ", acc.read(self._stock(item), 16))
            stock_qty += quantity
            stock_ytd += ytd
        if stock_qty + lines_total_qty != N_ITEMS * INIT_QUANTITY:
            raise CheckFailure(
                "stock conservation violated: "
                f"{stock_qty} on hand + {lines_total_qty} ordered != "
                f"{N_ITEMS * INIT_QUANTITY} initial"
            )
        if stock_ytd != lines_total_qty:
            raise CheckFailure(
                f"stock ytd {stock_ytd} != quantity on order lines {lines_total_qty}"
            )
