"""Persistent FIFO queue benchmark (Table II: "Queue").

A singly linked queue in PM.  All threads contend on a single lock, so
push/pop operations serialise — the paper notes this is why queue gains
1.64x despite the lowest write intensity: CLWB latency sits on the
critical path of every thread.

PM layout::

    root line:   head(u64) tail(u64) pushes(u64) pops(u64)
    node line:   value(u64) next(u64) check(u64)    [64-byte aligned]

``check = value XOR MAGIC`` detects torn node initialisation after a
crash; ``len(list) == pushes - pops`` detects broken region atomicity.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

from repro.lang.runtime import DirectAccessor, PmRuntime, RuntimeAccessor
from repro.pmem.alloc import PmAllocator
from repro.workloads.base import CheckFailure, Workload, WorkloadConfig

MAGIC = 0x5117AB1E5117AB1E
QUEUE_LOCK = 0


class QueueWorkload(Workload):
    """Insert/delete on a persistent queue [16, 18]."""

    name = "queue"
    compute_per_op = 3000

    def __init__(self, cfg: WorkloadConfig) -> None:
        super().__init__(cfg)
        # plan[tid][op] is "push" or "pop"; generated up front so lock
        # requirements are known before the body runs.
        self.plan: List[List[str]] = [
            ["push" if self.rng.random() < 0.6 else "pop" for _ in range(cfg.ops_per_thread)]
            for _ in range(cfg.n_threads)
        ]
        self.root = 0
        self.pool: List[List[int]] = []
        self._next_node: List[int] = [0] * cfg.n_threads
        self._next_value = 1

    # -- setup ---------------------------------------------------------------

    def setup(self, acc: DirectAccessor, alloc: PmAllocator) -> None:
        self.root = alloc.alloc_lines(1)
        acc.write(self.root, b"\x00" * 32)
        self.pool = []
        for tid in range(self.cfg.n_threads):
            pushes = sum(1 for kind in self.plan[tid] if kind == "push")
            self.pool.append([alloc.alloc_lines(1) for _ in range(pushes)])

    # -- plan ------------------------------------------------------------------

    def locks_for(self, tid: int, op_indices: Sequence[int]) -> List[int]:
        return [QUEUE_LOCK]

    # -- body --------------------------------------------------------------------

    def body(self, rt: PmRuntime, tid: int, op_index: int) -> None:
        acc = RuntimeAccessor(rt, tid)
        if self.plan[tid][op_index] == "push":
            self._push(acc, tid)
        else:
            self._pop(acc, tid)

    def _push(self, acc: RuntimeAccessor, tid: int) -> None:
        node = self.pool[tid][self._next_node[tid]]
        self._next_node[tid] += 1
        value = self._next_value
        self._next_value += 1
        # Initialise the node with its torn-write check in one store.
        acc.write(node, struct.pack("<QQQ", value, 0, value ^ MAGIC))
        tail = acc.read_u64(self.root + 8)
        if tail == 0:
            acc.write_u64(self.root, node)  # head
        else:
            acc.write_u64(tail + 8, node)  # tail->next
        acc.write_u64(self.root + 8, node)  # tail
        acc.write_u64(self.root + 16, acc.read_u64(self.root + 16) + 1)  # pushes

    def _pop(self, acc: RuntimeAccessor, tid: int) -> None:
        head = acc.read_u64(self.root)
        if head == 0:
            return  # empty queue: a no-op region
        nxt = acc.read_u64(head + 8)
        acc.write_u64(self.root, nxt)  # head
        if nxt == 0:
            acc.write_u64(self.root + 8, 0)  # tail
        acc.write_u64(self.root + 24, acc.read_u64(self.root + 24) + 1)  # pops

    # -- invariants -----------------------------------------------------------------

    def check(self, acc: DirectAccessor) -> None:
        head = acc.read_u64(self.root)
        tail = acc.read_u64(self.root + 8)
        pushes = acc.read_u64(self.root + 16)
        pops = acc.read_u64(self.root + 24)

        seen = set()
        length = 0
        node = head
        last = 0
        while node != 0:
            if node in seen:
                raise CheckFailure(f"queue has a cycle at node {node:#x}")
            seen.add(node)
            value, nxt, check = struct.unpack("<QQQ", acc.read(node, 24))
            if check != value ^ MAGIC:
                raise CheckFailure(
                    f"torn node at {node:#x}: value={value:#x} check={check:#x}"
                )
            length += 1
            last = node
            node = nxt
            if length > pushes + 1:
                raise CheckFailure("queue longer than total pushes — corrupt links")
        if head == 0 and tail != 0:
            raise CheckFailure("empty head with non-zero tail")
        if head != 0 and tail != last:
            raise CheckFailure(f"tail {tail:#x} is not the last node {last:#x}")
        if length != pushes - pops:
            raise CheckFailure(
                f"length {length} != pushes({pushes}) - pops({pops}): "
                "a failure-atomic region was torn"
            )
