"""Benchmarks of Table II and their shared harness."""

from typing import Dict, Type

from repro.workloads.arrayswap import ArraySwapWorkload
from repro.workloads.base import (
    CheckFailure,
    GeneratedRun,
    Workload,
    WorkloadConfig,
    generate,
    generate_for_design,
    make_model,
)
from repro.workloads.hashmap import HashmapWorkload
from repro.workloads.nstore import (
    NStoreBalanced,
    NStoreReadHeavy,
    NStoreWorkload,
    NStoreWriteHeavy,
)
from repro.workloads.queue import QueueWorkload
from repro.workloads.rbtree import RBTreeWorkload
from repro.workloads.tpcc import TpccWorkload

#: Table II benchmark registry, in the paper's row order.
WORKLOADS: Dict[str, Type[Workload]] = {
    "queue": QueueWorkload,
    "hashmap": HashmapWorkload,
    "arrayswap": ArraySwapWorkload,
    "rbtree": RBTreeWorkload,
    "tpcc": TpccWorkload,
    "nstore-rd": NStoreReadHeavy,
    "nstore-bal": NStoreBalanced,
    "nstore-wr": NStoreWriteHeavy,
}

#: The five microbenchmarks (Figure 10 sweeps these).
MICROBENCHMARKS = ("queue", "hashmap", "arrayswap", "rbtree", "tpcc")

__all__ = [
    "ArraySwapWorkload",
    "CheckFailure",
    "GeneratedRun",
    "HashmapWorkload",
    "MICROBENCHMARKS",
    "NStoreBalanced",
    "NStoreReadHeavy",
    "NStoreWorkload",
    "NStoreWriteHeavy",
    "QueueWorkload",
    "RBTreeWorkload",
    "TpccWorkload",
    "WORKLOADS",
    "Workload",
    "WorkloadConfig",
    "generate",
    "generate_for_design",
    "make_model",
]
