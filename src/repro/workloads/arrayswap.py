"""Array-swap benchmark (Table II: "Array Swap") [26, 17].

Swaps two random elements of a persistent array of u64s.  Element locks
are striped; a swap acquires both stripes in ascending order.  The sum of
all elements is invariant under swaps, so any torn region (one element
written, the other lost) is detected immediately.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.lang.runtime import DirectAccessor, PmRuntime, RuntimeAccessor
from repro.pmem.alloc import PmAllocator
from repro.workloads.base import CheckFailure, Workload, WorkloadConfig

LOCK_BASE = 200
N_STRIPES = 16


class ArraySwapWorkload(Workload):
    """Swap two elements of a persistent array under striped locks."""

    name = "arrayswap"
    compute_per_op = 2600
    n_elements = 1024

    def __init__(self, cfg: WorkloadConfig) -> None:
        super().__init__(cfg)
        self.plan: List[List[Tuple[int, int]]] = []
        for _tid in range(cfg.n_threads):
            ops = []
            for _ in range(cfg.ops_per_thread):
                i = self.rng.randrange(self.n_elements)
                j = self.rng.randrange(self.n_elements - 1)
                if j >= i:
                    j += 1
                ops.append((i, j))
            self.plan.append(ops)
        self.base = 0

    def _stripe(self, index: int) -> int:
        return LOCK_BASE + index * N_STRIPES // self.n_elements

    def setup(self, acc: DirectAccessor, alloc: PmAllocator) -> None:
        self.base = alloc.alloc(self.n_elements * 8, align=64)
        for i in range(self.n_elements):
            acc.write_u64(self.base + 8 * i, i + 1)

    def locks_for(self, tid: int, op_indices: Sequence[int]) -> List[int]:
        locks = set()
        for op_index in op_indices:
            i, j = self.plan[tid][op_index]
            locks.add(self._stripe(i))
            locks.add(self._stripe(j))
        return sorted(locks)

    def body(self, rt: PmRuntime, tid: int, op_index: int) -> None:
        acc = RuntimeAccessor(rt, tid)
        i, j = self.plan[tid][op_index]
        addr_i = self.base + 8 * i
        addr_j = self.base + 8 * j
        vi = acc.read_u64(addr_i)
        vj = acc.read_u64(addr_j)
        acc.write_u64(addr_i, vj)
        acc.write_u64(addr_j, vi)

    def check(self, acc: DirectAccessor) -> None:
        expected = self.n_elements * (self.n_elements + 1) // 2
        total = sum(acc.read_u64(self.base + 8 * i) for i in range(self.n_elements))
        if total != expected:
            raise CheckFailure(
                f"array sum {total} != {expected}: a swap was torn by a crash"
            )
        values = sorted(acc.read_u64(self.base + 8 * i) for i in range(self.n_elements))
        if values != list(range(1, self.n_elements + 1)):
            raise CheckFailure("array is no longer a permutation of its initial values")
