"""Workload harness: turns a benchmark into traced multi-threaded runs.

A :class:`Workload` owns a persistent data structure and a deterministic
per-thread operation plan.  :func:`generate` executes the plan under a
cooperative round-robin scheduler, producing

* the final functional PM image (data structures really live in PM),
* the per-thread micro-op traces consumed by the timing simulator, and
* the log layout needed by recovery.

One generated run is replayed on *every* hardware design whose dialect
produced it, so Figure 7 comparisons replay semantically identical work.
"""

from __future__ import annotations

import random
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import List, Sequence, Type

from repro.core.ops import Program
from repro.lang.dialect import IsaDialect, dialect_for_design
from repro.lang.logbuf import LogLayout
from repro.lang.runtime import DirectAccessor, PersistencyModel, PmRuntime
from repro.lang.atlas import AtlasModel
from repro.lang.redo import RedoTxnModel
from repro.lang.sfr import SfrModel
from repro.lang.txn import TxnModel
from repro.pmem.alloc import PmAllocator
from repro.pmem.space import PersistentMemory


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs shared by every benchmark."""

    n_threads: int = 8
    ops_per_thread: int = 64
    seed: int = 42
    pm_size: int = 1 << 22
    log_entries: int = 8192  #: per-thread undo-log capacity
    ops_per_region: int = 1  #: data-structure ops per failure-atomic region (Fig. 10)

    def scaled(self, ops_per_thread: int) -> "WorkloadConfig":
        return replace(self, ops_per_thread=ops_per_thread)


class CheckFailure(AssertionError):
    """A data-structure invariant does not hold."""


class Workload(ABC):
    """One benchmark of Table II."""

    #: registry key and Table II row name.
    name = "abstract"
    #: per-op application compute (cycles), calibrated per benchmark so
    #: that relative CKC matches Table II's write-intensity ordering.
    compute_per_op = 200

    def __init__(self, cfg: WorkloadConfig) -> None:
        self.cfg = cfg
        self.rng = random.Random(cfg.seed ^ zlib.crc32(self.name.encode()))

    # -- to implement -------------------------------------------------------

    @abstractmethod
    def setup(self, acc: DirectAccessor, alloc: PmAllocator) -> None:
        """Build the initial persistent state (untraced, pre-baseline)."""

    @abstractmethod
    def locks_for(self, tid: int, op_indices: Sequence[int]) -> List[int]:
        """Locks (in acquisition order) covering the given plan ops."""

    @abstractmethod
    def body(self, rt: PmRuntime, tid: int, op_index: int) -> None:
        """Execute one planned data-structure operation, traced."""

    @abstractmethod
    def check(self, acc: DirectAccessor) -> None:
        """Raise :class:`CheckFailure` unless all invariants hold."""


@dataclass
class GeneratedRun:
    """Everything produced by one workload execution."""

    workload: Workload
    config: WorkloadConfig
    dialect: IsaDialect
    model: PersistencyModel
    space: PersistentMemory
    layout: LogLayout
    runtime: PmRuntime
    program: Program

    def check_image(self, image: PersistentMemory) -> None:
        """Run the workload's invariants against ``image`` (normally a
        recovered crash image); raises :class:`CheckFailure` on violation."""
        self.workload.check(DirectAccessor(image))


def make_model(name: str, **kwargs) -> PersistencyModel:
    """Instantiate a language-level persistency model by name."""
    if name == "txn":
        return TxnModel(**kwargs)
    if name == "atlas":
        return AtlasModel(**kwargs)
    if name == "sfr":
        return SfrModel(**kwargs)
    if name == "redo-txn":
        return RedoTxnModel(**kwargs)
    raise ValueError(f"unknown persistency model {name!r}")


def generate(
    workload_cls: Type[Workload],
    cfg: WorkloadConfig,
    dialect: IsaDialect,
    model: PersistencyModel,
) -> GeneratedRun:
    """Run the workload functionally, emitting traces for one dialect."""
    space = PersistentMemory(cfg.pm_size)
    layout = LogLayout(base=64, capacity=cfg.log_entries, n_threads=cfg.n_threads)
    heap_base = (layout.end + 63) & ~63
    alloc = PmAllocator(space, heap_base, cfg.pm_size - heap_base)

    workload = workload_cls(cfg)
    rt = PmRuntime(space, layout, dialect, model, cfg.n_threads)
    workload.setup(DirectAccessor(space), alloc)
    space.mark_clean()

    regions_per_thread = max(1, cfg.ops_per_thread // cfg.ops_per_region)
    for round_idx in range(regions_per_thread):
        for tid in range(cfg.n_threads):
            base_op = round_idx * cfg.ops_per_region
            op_indices = [
                base_op + j
                for j in range(cfg.ops_per_region)
                if base_op + j < cfg.ops_per_thread
            ]
            if not op_indices:
                continue
            locks = workload.locks_for(tid, op_indices)
            for lock_id in locks:
                rt.lock(tid, lock_id)
            rt.txn_begin(tid)
            for op_index in op_indices:
                workload.body(rt, tid, op_index)
                rt.compute(tid, workload.compute_per_op)
            rt.txn_end(tid)
            for lock_id in reversed(locks):
                rt.unlock(tid, lock_id)
    for tid in range(cfg.n_threads):
        rt.finish(tid)

    workload.check(DirectAccessor(space))
    return GeneratedRun(
        workload=workload,
        config=cfg,
        dialect=dialect,
        model=model,
        space=space,
        layout=layout,
        runtime=rt,
        program=rt.program,
    )


def generate_for_design(
    workload_cls: Type[Workload],
    cfg: WorkloadConfig,
    design: str,
    model_name: str = "txn",
    **model_kwargs,
) -> GeneratedRun:
    """Convenience wrapper: pick the dialect matching a hardware design."""
    dialect = dialect_for_design(design)
    model = make_model(model_name, **model_kwargs)
    return generate(workload_cls, cfg, dialect, model)


def generate_canonical(
    workload_cls: Type[Workload],
    cfg: WorkloadConfig,
    model_name: str = "txn",
    **model_kwargs,
) -> GeneratedRun:
    """Run the workload once under the marker dialect.

    The result is dialect-neutral: its program carries tagged placeholder
    fences at every ordering point and can be rewritten for any concrete
    dialect with :func:`specialize_run` — the functional image, lock
    order, and every addressed op are identical for all dialects, so the
    (expensive) functional execution happens once instead of once per
    design.  See :mod:`repro.lang.specialize`.
    """
    from repro.lang.specialize import MarkerDialect

    model = make_model(model_name, **model_kwargs)
    return generate(workload_cls, cfg, MarkerDialect(), model)


def specialize_run(canonical: GeneratedRun, design: str) -> GeneratedRun:
    """Derive the run a direct ``generate_for_design`` call would produce.

    The specialized program is op-for-op identical to direct generation
    (pinned by ``tests/sim/test_fastcore_identity.py``); the functional
    artefacts (workload, space, layout, runtime) are *shared* with the
    canonical run — they are read-only after generation and identical
    across dialects.
    """
    from repro.lang.specialize import specialize

    dialect = dialect_for_design(design)
    return GeneratedRun(
        workload=canonical.workload,
        config=canonical.config,
        dialect=dialect,
        model=canonical.model,
        space=canonical.space,
        layout=canonical.layout,
        runtime=canonical.runtime,
        program=specialize(canonical.program, dialect.name),
    )
