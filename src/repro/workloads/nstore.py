"""N-Store key-value benchmark (Table II: "N-Store") [60].

A partitioned persistent key-value store driven by a YCSB-style engine
with a scrambled-Zipfian key distribution, at the paper's three mixes:
read-heavy (90/10), balanced (50/50) and write-heavy (10/90).  Updates go
through the undo-log engine exactly like the paper's modified N-Store.

PM layout (one 64-byte record per key)::

    key(u64) version(u64) check(u64) value(24 B payload)

An update rewrites version+check+value in one failure-atomic store; the
checker recomputes ``check = mix(key, version)`` and the derived payload
for every record, so any torn update or lost log ordering is caught.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from repro.lang.runtime import DirectAccessor, PmRuntime, RuntimeAccessor
from repro.pmem.alloc import PmAllocator
from repro.workloads.base import CheckFailure, Workload, WorkloadConfig
from repro.workloads.ycsb import ScrambledZipfianGenerator

LOCK_BASE = 600
N_PARTITIONS = 16
MAGIC = 0xA5A5_5A5A_F00D_BEEF


def _mix(key: int, version: int) -> int:
    return (key * 0x9E3779B97F4A7C15 ^ version * 31 ^ MAGIC) & 0xFFFFFFFFFFFFFFFF


def _payload(key: int, version: int) -> bytes:
    return struct.pack("<QQQ", key ^ version, key + version, _mix(version, key))


class NStoreWorkload(Workload):
    """Base N-Store workload; subclasses fix the read/write mix."""

    name = "nstore"
    compute_per_op = 1200
    write_ratio = 0.5
    n_keys = 1024

    def __init__(self, cfg: WorkloadConfig) -> None:
        super().__init__(cfg)
        keygen = ScrambledZipfianGenerator(self.n_keys, self.rng)
        self.plan: List[List[Tuple[str, int]]] = []
        for _tid in range(cfg.n_threads):
            ops = []
            for _ in range(cfg.ops_per_thread):
                kind = "write" if self.rng.random() < self.write_ratio else "read"
                ops.append((kind, keygen.next()))
            self.plan.append(ops)
        self.base = 0
        self._version = 0

    def _partition(self, key: int) -> int:
        return key % N_PARTITIONS

    def _record(self, key: int) -> int:
        return self.base + 64 * key

    def setup(self, acc: DirectAccessor, alloc: PmAllocator) -> None:
        self.base = alloc.alloc(64 * self.n_keys, align=64)
        for key in range(self.n_keys):
            acc.write(
                self._record(key),
                struct.pack("<QQQ", key, 0, _mix(key, 0)) + _payload(key, 0),
            )

    def locks_for(self, tid: int, op_indices: Sequence[int]) -> List[int]:
        parts = {self._partition(self.plan[tid][i][1]) for i in op_indices}
        return sorted(LOCK_BASE + p for p in parts)

    def body(self, rt: PmRuntime, tid: int, op_index: int) -> None:
        acc = RuntimeAccessor(rt, tid)
        kind, key = self.plan[tid][op_index]
        rec = self._record(key)
        if kind == "read":
            acc.read(rec, 64)
            return
        version = acc.read_u64(rec + 8) + 1
        acc.write(
            rec + 8,
            struct.pack("<QQ", version, _mix(key, version)) + _payload(key, version),
        )

    def check(self, acc: DirectAccessor) -> None:
        for key in range(self.n_keys):
            stored_key, version, check = struct.unpack("<QQQ", acc.read(self._record(key), 24))
            if stored_key != key:
                raise CheckFailure(f"record {key} has wrong key {stored_key}")
            if check != _mix(key, version):
                raise CheckFailure(f"record {key} torn: version={version}")
            payload = acc.read(self._record(key) + 24, 24)
            if payload != _payload(key, version):
                raise CheckFailure(f"record {key} payload inconsistent with version")


class NStoreReadHeavy(NStoreWorkload):
    """90% read / 10% write (Table II: "N-Store (rd-heavy)")."""

    name = "nstore-rd"
    write_ratio = 0.1


class NStoreBalanced(NStoreWorkload):
    """50% read / 50% write (Table II: "N-Store (balanced)")."""

    name = "nstore-bal"
    write_ratio = 0.5


class NStoreWriteHeavy(NStoreWorkload):
    """10% read / 90% write (Table II: "N-Store (wr-heavy)")."""

    name = "nstore-wr"
    write_ratio = 0.9
