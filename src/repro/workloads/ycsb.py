"""YCSB-style key generators (used by the N-Store benchmark, Table II).

Implements the standard Zipfian generator of Gray et al. (as used by the
YCSB core workloads) plus a scrambled variant that spreads the hot keys
across the key space, and a uniform generator for comparison.
"""

from __future__ import annotations

import random

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """64-bit FNV-1a hash of an integer (YCSB's key scrambler)."""
    h = FNV_OFFSET
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


class UniformGenerator:
    """Uniform key selection over ``[0, n)``."""

    def __init__(self, n: int, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError("need a positive key-space size")
        self.n = n
        self.rng = rng

    def next(self) -> int:
        return self.rng.randrange(self.n)


class ZipfianGenerator:
    """Zipfian distribution over ``[0, n)`` with YCSB's default skew."""

    def __init__(self, n: int, rng: random.Random, theta: float = 0.99) -> None:
        if n <= 0:
            raise ValueError("need a positive key-space size")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.rng = rng
        self.theta = theta
        self.zetan = self._zeta(n, theta)
        self.zeta2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - self.zeta2 / self.zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * ((self.eta * u - self.eta + 1) ** self.alpha))


class ScrambledZipfianGenerator:
    """Zipfian popularity ranks scattered uniformly over the key space."""

    def __init__(self, n: int, rng: random.Random, theta: float = 0.99) -> None:
        self.n = n
        self._zipf = ZipfianGenerator(n, rng, theta)

    def next(self) -> int:
        return fnv1a_64(self._zipf.next()) % self.n
