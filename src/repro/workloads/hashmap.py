"""Persistent hashmap benchmark (Table II: "Hashmap") [26, 17].

Open-chaining hashmap in PM with striped bucket locks.  Operations are a
50/50 mix of lookups and upserts.  Every node carries a torn-write check
word, and per-stripe element counters (protected by the stripe lock)
must equal the number of reachable nodes — a torn failure-atomic region
breaks one of the two.

PM layout::

    bucket array:  n_buckets x u64 (chain heads)
    stripe counts: n_stripes x u64 (one per lock stripe, 64B apart)
    node:          key(u64) value(u64) check(u64) next(u64)
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from repro.lang.runtime import DirectAccessor, PmRuntime, RuntimeAccessor
from repro.pmem.alloc import PmAllocator
from repro.workloads.base import CheckFailure, Workload, WorkloadConfig

LOCK_BASE = 100
MAGIC = 0x9E3779B97F4A7C15


def _mix(key: int, value: int) -> int:
    return (key * MAGIC ^ value) & 0xFFFFFFFFFFFFFFFF


class HashmapWorkload(Workload):
    """Read/update mix on a persistent open-chaining hashmap."""

    name = "hashmap"
    compute_per_op = 2800
    n_buckets = 256
    n_stripes = 16
    key_space = 512

    def __init__(self, cfg: WorkloadConfig) -> None:
        super().__init__(cfg)
        self.plan: List[List[Tuple[str, int]]] = []
        for _tid in range(cfg.n_threads):
            ops = []
            for _ in range(cfg.ops_per_thread):
                kind = "upsert" if self.rng.random() < 0.5 else "read"
                ops.append((kind, self.rng.randrange(self.key_space)))
            self.plan.append(ops)
        self.bucket_base = 0
        self.count_base = 0
        self.pool: List[List[int]] = []
        self._next_node = [0] * cfg.n_threads
        self._version = 0

    def _bucket(self, key: int) -> int:
        return (key * 2654435761) % self.n_buckets

    def _stripe(self, key: int) -> int:
        return self._bucket(key) % self.n_stripes

    # -- setup ----------------------------------------------------------------

    def setup(self, acc: DirectAccessor, alloc: PmAllocator) -> None:
        self.bucket_base = alloc.alloc(self.n_buckets * 8, align=64)
        acc.write(self.bucket_base, b"\x00" * self.n_buckets * 8)
        self.count_base = alloc.alloc(self.n_stripes * 64, align=64)
        acc.write(self.count_base, b"\x00" * self.n_stripes * 64)
        self.pool = []
        for tid in range(self.cfg.n_threads):
            upserts = sum(1 for kind, _ in self.plan[tid] if kind == "upsert")
            self.pool.append([alloc.alloc_lines(1) for _ in range(upserts)])

    # -- plan --------------------------------------------------------------------

    def locks_for(self, tid: int, op_indices: Sequence[int]) -> List[int]:
        stripes = {self._stripe(self.plan[tid][i][1]) for i in op_indices}
        return sorted(LOCK_BASE + s for s in stripes)

    # -- body ----------------------------------------------------------------------

    def body(self, rt: PmRuntime, tid: int, op_index: int) -> None:
        acc = RuntimeAccessor(rt, tid)
        kind, key = self.plan[tid][op_index]
        bucket_addr = self.bucket_base + 8 * self._bucket(key)
        node = acc.read_u64(bucket_addr)
        while node != 0:
            if acc.read_u64(node) == key:
                break
            node = acc.read_u64(node + 24)

        if kind == "read":
            if node != 0:
                acc.read(node + 8, 16)
            return

        self._version += 1
        value = self._version
        if node != 0:
            # Update value and check word in a single failure-atomic store.
            acc.write(node + 8, struct.pack("<QQ", value, _mix(key, value)))
            return
        new = self.pool[tid][self._next_node[tid]]
        self._next_node[tid] += 1
        head = acc.read_u64(bucket_addr)
        acc.write(new, struct.pack("<QQQQ", key, value, _mix(key, value), head))
        acc.write_u64(bucket_addr, new)
        count_addr = self.count_base + 64 * self._stripe(key)
        acc.write_u64(count_addr, acc.read_u64(count_addr) + 1)

    # -- invariants ----------------------------------------------------------------

    def check(self, acc: DirectAccessor) -> None:
        per_stripe = [0] * self.n_stripes
        for bucket in range(self.n_buckets):
            node = acc.read_u64(self.bucket_base + 8 * bucket)
            seen = set()
            while node != 0:
                if node in seen:
                    raise CheckFailure(f"cycle in bucket {bucket}")
                seen.add(node)
                key, value, check, nxt = struct.unpack("<QQQQ", acc.read(node, 32))
                if self._bucket(key) != bucket:
                    raise CheckFailure(f"key {key} chained in wrong bucket {bucket}")
                if check != _mix(key, value):
                    raise CheckFailure(f"torn update on key {key}: value={value}")
                per_stripe[bucket % self.n_stripes] += 1
                node = nxt
        for stripe in range(self.n_stripes):
            counted = acc.read_u64(self.count_base + 64 * stripe)
            if counted != per_stripe[stripe]:
                raise CheckFailure(
                    f"stripe {stripe} count {counted} != reachable {per_stripe[stripe]}: "
                    "an insert region was torn"
                )
        keys = set()
        for bucket in range(self.n_buckets):
            node = acc.read_u64(self.bucket_base + 8 * bucket)
            while node != 0:
                key = acc.read_u64(node)
                if key in keys:
                    raise CheckFailure(f"duplicate key {key}")
                keys.add(key)
                node = acc.read_u64(node + 24)
