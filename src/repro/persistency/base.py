"""Interface between the core model and an ISA-level persistency design.

Each hardware design in the evaluation (Intel x86, HOPS, StrandWeaver,
NO-PERSIST-QUEUE, NON-ATOMIC) supplies one :class:`PersistDomain` per
core.  The core's issue engine (:mod:`repro.sim.cpu`) delegates the
persist-relevant micro-ops to the domain, which decides

* when the op lets dispatch proceed (fences may stall),
* how a CLWB travels to the PM controller and when it acknowledges, and
* which stall bucket the wait is charged to (Figure 8's taxonomy).

Time flows forward only: every method takes the core's current local time
``t`` and returns the time dispatch may continue.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.core.ops import Op
from repro.obs.tracer import NULL_TRACER, Tracer, core_track
from repro.prof.phases import NULL_PROF, STALL_PHASE
from repro.sim.cache import CacheHierarchy
from repro.sim.config import MachineConfig
from repro.sim.durability import NULL_DURABILITY, StoreRecord
from repro.sim.engine import InOrderQueue
from repro.sim.memory import PMController
from repro.sim.stats import CoreStats


class PersistDomain(ABC):
    """Per-core persist-ordering hardware of one design."""

    #: human-readable design name (used in reports).
    name = "abstract"

    def __init__(
        self,
        tid: int,
        cfg: MachineConfig,
        hierarchy: CacheHierarchy,
        pm: PMController,
        stats: CoreStats,
        store_queue: InOrderQueue,
        tracer: Tracer = NULL_TRACER,
        durability=NULL_DURABILITY,
        profiler=NULL_PROF,
    ) -> None:
        self.tid = tid
        self.cfg = cfg
        self.hierarchy = hierarchy
        self.pm = pm
        self.stats = stats
        self.store_queue = store_queue
        self.tracer = tracer
        #: simulated-cycle phase accumulator (see :mod:`repro.prof.phases`);
        #: the no-op :data:`~repro.prof.phases.NULL_PROF` unless the
        #: machine runs under ``repro profile`` or REPRO_PROF_PHASES.
        self.profiler = profiler
        #: durability tracker fed by this core's persist hardware; the
        #: no-op :data:`~repro.sim.durability.NULL_DURABILITY` unless the
        #: machine runs under a fault plan (see repro.chaos).
        self.durability = durability
        self.track = core_track(tid)
        #: CLWB lifetime spans overlap (many in flight), so they get a
        #: sub-track of the core's group rather than the dispatch row.
        self.clwb_track = self.track + "/clwb"

    # -- hooks the issue engine calls -------------------------------------

    def store_gate(self, t: float) -> float:
        """Earliest time a PM store may issue (persist-order constraint)."""
        return t

    @abstractmethod
    def clwb(self, t: float, line: int):
        """Handle a CLWB dispatched at ``t``.

        Returns ``(next_dispatch_time, rob_completion_time)``.  The second
        component is when the CLWB leaves the reorder buffer: immediately
        for designs that track it elsewhere (Intel's fill buffers, HOPS's
        persist buffer, StrandWeaver's persist queue) but only at its
        *completion* for NO-PERSIST-QUEUE, whose CLWBs occupy store-queue
        slots until acknowledged — the head-of-line blocking of Fig. 7.
        """

    @abstractmethod
    def fence(self, op: Op, t: float) -> float:
        """Handle a fence-kind op; returns next dispatch time."""

    def drain_all(self, t: float) -> float:
        """Time when every persist issued so far has completed."""
        return t

    def snoop_drain(self, owner_tid: int, line: int, t: float) -> float:
        """Read-exclusive stall before surrendering a dirty line."""
        return t

    # -- crash injection (repro.chaos) -------------------------------------

    def durable_frontier(self, t: float) -> List[StoreRecord]:
        """This core's stores that are durable at cycle ``t``.

        Derived from the live durability tracker this domain's persist
        hardware (fill buffers, persist buffer, strand buffers, persist
        queue) has been feeding: a store is durable once every line it
        touches was accepted by the ADR-protected PM controller.
        """
        return [
            rec for rec in self.durability.frontier(t) if rec.op.tid == self.tid
        ]

    def occupancy(self, t: float) -> dict:
        """Occupancy of this design's persist structures at cycle ``t``
        (reported in crash states for failure diagnosis)."""
        return {}

    # -- shared helpers ----------------------------------------------------

    def _flush_line(self, t: float, line: int) -> float:
        """Clean the line out of the caches; returns controller-bound time."""
        return self.hierarchy.flush(self.tid, line, t)

    def _charge(self, bucket: str, amount: float, start: Optional[float] = None) -> None:
        """Charge ``amount`` stall cycles to ``bucket``; when a tracer is
        live and the caller supplied the stall's ``start`` time, the wait
        also becomes a ``stall:<cause>`` span on this core's track."""
        if amount <= 0:
            return
        setattr(self.stats, bucket, getattr(self.stats, bucket) + int(round(amount)))
        if self.profiler.enabled:
            self.profiler.charge(self.tid, STALL_PHASE[bucket], amount)
        if self.tracer.enabled and start is not None:
            self.tracer.stall(bucket, self.track, start, amount, design=self.name)


class OutstandingSet:
    """Bounded set of in-flight CLWB completion times (per core)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._times: List[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def prune(self, t: float) -> None:
        self._times = [x for x in self._times if x > t]

    def outstanding_at(self, t: float) -> int:
        """Entries still in flight at ``t`` (crash-state reporting)."""
        return sum(1 for x in self._times if x > t)

    def earliest(self) -> float:
        return min(self._times) if self._times else 0.0

    def latest(self) -> float:
        return max(self._times) if self._times else 0.0

    def wait_for_slot(self, t: float) -> float:
        """Time when a new entry fits (completions free slots)."""
        self.prune(t)
        if len(self._times) < self.capacity:
            return t
        times = sorted(self._times)
        return times[len(times) - self.capacity]

    def add(self, completion: float) -> None:
        self._times.append(completion)

    def clear(self) -> None:
        self._times.clear()
