"""Intel x86 persistency design: CLWB + SFENCE epoch persistency.

Section II-B: SFENCE orders subsequent CLWBs *and stores* after all prior
CLWBs **complete** (acknowledged by the ADR controller).  The fence is a
bidirectional dispatch stall — this is the strict baseline of Figure 7.
"""

from __future__ import annotations

from repro.core.ops import Op, OpKind
from repro.persistency.base import OutstandingSet, PersistDomain


class IntelX86Domain(PersistDomain):
    """CLWB/SFENCE semantics of Intel's ISA persistency model."""

    name = "intel-x86"

    #: CLWBs in flight are bounded by write-combining/fill-buffer slots.
    CLWB_WINDOW = 16

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._outstanding = OutstandingSet(self.CLWB_WINDOW)

    def clwb(self, t: float, line: int) -> float:
        slot = self._outstanding.wait_for_slot(t)
        self._charge("stall_queue_full", slot - t, start=t)
        depart = self._flush_line(slot, line)
        ticket = self.pm.write(depart, line)
        self._outstanding.add(ticket.acked)
        self.durability.line_persisted(line, slot, ticket.accepted)
        self.stats.pm_writes += 1
        if self.tracer.enabled:
            self.tracer.span("clwb", self.clwb_track, slot, ticket.acked - slot, line=line)
            self.tracer.metrics.histogram(f"{self.track}/clwb_ack").observe(
                ticket.acked - slot
            )
        # CLWB retires into a fill buffer; it does not hold its ROB slot.
        return slot + 1, slot + 1

    def fence(self, op: Op, t: float) -> float:
        if op.kind is not OpKind.SFENCE:
            raise ValueError(f"intel-x86 traces only contain SFENCE, got {op!r}")
        # SFENCE: dispatch blocks until every prior CLWB has completed and
        # the store queue has drained (stores may not become visible, and
        # hence may not write back, before prior CLWBs persist).
        done = max(t, self._outstanding.latest(), self.store_queue.drain_time(t))
        self._charge("stall_fence", done - t, start=t)
        self._outstanding.clear()
        return done

    def drain_all(self, t: float) -> float:
        done = max(t, self._outstanding.latest())
        self._charge("stall_drain", done - t, start=t)
        self._outstanding.clear()
        return done

    def occupancy(self, t: float) -> dict:
        return {"fill_buffers": self._outstanding.outstanding_at(t)}
