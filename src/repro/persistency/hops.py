"""HOPS design: delegated epoch persistency with ofence/dfence ([19]).

HOPS decouples ordering from durability.  A lightweight **ofence** closes
the current epoch without stalling the core: ordering is delegated to a
per-core persist buffer that drains epochs to PM strictly in order.  A
**dfence** provides durability — it stalls the core until the persist
buffer is empty.  The language runtimes emit one ofence per log→update
pair and one dfence per failure-atomic region commit.

The core therefore stalls only on (a) a full persist buffer and
(b) dfences — far less often than under Intel x86 — but epoch-ordered
draining still serialises independent log→update pairs, which is exactly
the concurrency StrandWeaver recovers (Section VI-B).
"""

from __future__ import annotations

from typing import List

from repro.core.ops import Op, OpKind
from repro.persistency.base import PersistDomain


class HopsDomain(PersistDomain):
    """ofence/dfence semantics over a per-core persist buffer."""

    name = "hops"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._capacity = self.cfg.hops.persist_buffer_entries
        #: completion times of buffered CLWBs, oldest first.
        self._buffered: List[float] = []
        #: completion horizon of the previous epoch: CLWBs of the current
        #: epoch may not issue to PM before this time.
        self._epoch_ready = 0.0
        #: completions within the currently open epoch.
        self._open_epoch: List[float] = []

    def _free_slot_time(self, t: float) -> float:
        self._buffered = [x for x in self._buffered if x > t]
        if len(self._buffered) < self._capacity:
            return t
        ordered = sorted(self._buffered)
        return ordered[len(ordered) - self._capacity]

    def clwb(self, t: float, line: int) -> float:
        slot = self._free_slot_time(t)
        self._charge("stall_queue_full", slot - t, start=t)
        depart = self._flush_line(slot, line)
        # Delegated ordering: the flush may not reach the controller until
        # the previous epoch has fully persisted.
        ticket = self.pm.write(max(depart, self._epoch_ready), line)
        self._buffered.append(ticket.acked)
        self._open_epoch.append(ticket.acked)
        self.durability.line_persisted(line, slot, ticket.accepted)
        self.stats.pm_writes += 1
        if self.tracer.enabled:
            self.tracer.span("clwb", self.clwb_track, slot, ticket.acked - slot, line=line)
            self.tracer.metrics.histogram(f"{self.track}/clwb_ack").observe(
                ticket.acked - slot
            )
        # Ordering is delegated to the persist buffer; the CLWB retires.
        return slot + 1, slot + 1

    def fence(self, op: Op, t: float) -> float:
        if op.kind is OpKind.OFENCE:
            # Close the epoch inside the persist buffer; no core stall.
            if self._open_epoch:
                self._epoch_ready = max(self._epoch_ready, max(self._open_epoch))
                self._open_epoch = []
            if self.tracer.enabled:
                self.tracer.instant("ofence", self.track, t)
            return t + 1
        if op.kind is OpKind.DFENCE:
            return self.drain_all(t)
        raise ValueError(f"hops traces only contain OFENCE/DFENCE, got {op!r}")

    def drain_all(self, t: float) -> float:
        done = max([t] + self._buffered)
        self._charge("stall_drain", done - t, start=t)
        self._buffered = []
        self._open_epoch = []
        self._epoch_ready = max(self._epoch_ready, done)
        return done

    def occupancy(self, t: float) -> dict:
        return {"persist_buffer": sum(1 for x in self._buffered if x > t)}
