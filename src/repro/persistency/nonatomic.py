"""NON-ATOMIC design: the unordered upper bound of Figure 7.

The runtime emits the same stores and CLWBs but no ordering primitives
between logs and updates, so this design shows the best performance
relaxed persist ordering could possibly unlock.  It does **not** provide
correct recovery — the crash-consistency property tests in
``tests/lang/test_crash_consistency.py`` demonstrate that its traces admit
crash states that break failure atomicity.
"""

from __future__ import annotations

from repro.core.ops import Op
from repro.persistency.base import OutstandingSet, PersistDomain


class NonAtomicDomain(PersistDomain):
    """CLWBs drain fully concurrently; fences are no-ops or final drains."""

    name = "non-atomic"

    CLWB_WINDOW = 16

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._outstanding = OutstandingSet(self.CLWB_WINDOW)

    def clwb(self, t: float, line: int) -> float:
        slot = self._outstanding.wait_for_slot(t)
        self._charge("stall_queue_full", slot - t, start=t)
        depart = self._flush_line(slot, line)
        ticket = self.pm.write(depart, line)
        self._outstanding.add(ticket.acked)
        self.durability.line_persisted(line, slot, ticket.accepted)
        self.stats.pm_writes += 1
        if self.tracer.enabled:
            self.tracer.span("clwb", self.clwb_track, slot, ticket.acked - slot, line=line)
            self.tracer.metrics.histogram(f"{self.track}/clwb_ack").observe(
                ticket.acked - slot
            )
        return slot + 1, slot + 1

    def fence(self, op: Op, t: float) -> float:
        # The non-atomic runtime emits no fences; tolerate stray ones as
        # no-ops so shared traces can be replayed for comparison.
        return t

    def drain_all(self, t: float) -> float:
        done = max(t, self._outstanding.latest())
        self._charge("stall_drain", done - t, start=t)
        self._outstanding.clear()
        return done

    def occupancy(self, t: float) -> dict:
        return {"fill_buffers": self._outstanding.outstanding_at(t)}
