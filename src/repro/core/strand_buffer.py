"""Strand buffer unit — the drain engine of StrandWeaver (Section IV).

The unit holds an array of strand buffers beside the L1.  Each buffer
manages persist order *within* one strand: persist barriers create
dependencies so that younger CLWBs wait for the completion of all older
CLWBs in the same buffer, while CLWBs in different buffers drain to the
PM controller fully concurrently.  ``NewStrand`` rotates the ongoing
buffer index round-robin; entries retire from each buffer in order.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.durability import NULL_DURABILITY
from repro.sim.memory import PMController

#: signature of the cache-flush front half: (time, line) -> departure time.
FlushFn = Callable[[float, int], float]


class StrandBuffer:
    """One strand buffer: bounded, in-order-retiring CLWB chain."""

    def __init__(
        self,
        capacity: int,
        pm: PMController,
        flush: FlushFn,
        tracer: Tracer = NULL_TRACER,
        track: str = "sbu",
        durability=NULL_DURABILITY,
    ) -> None:
        if capacity <= 0:
            raise ValueError("strand buffer needs at least one entry")
        self.capacity = capacity
        self._pm = pm
        self._flush = flush
        self._tracer = tracer
        self._track = track
        self._durability = durability
        #: retire times of live entries, oldest first (monotone).
        self._retire_times: List[float] = []
        self._last_retire = 0.0
        #: dependency horizon installed by the last persist barrier: CLWBs
        #: appended after the barrier may not issue to PM before this time.
        self._dep_ready = 0.0
        #: line -> retire time of its youngest buffered CLWB (for the
        #: snoop-buffer tail-index stall of Section IV).
        self._line_retire = {}
        self.clwbs = 0

    def _slot_time(self, t: float) -> float:
        """When a new entry can be appended (full buffer waits on retire)."""
        self._retire_times = [x for x in self._retire_times if x > t]
        if len(self._retire_times) < self.capacity:
            return t
        return self._retire_times[len(self._retire_times) - self.capacity]

    def insert_clwb(self, t: float, line: int) -> Tuple[float, float]:
        """Append a CLWB arriving at ``t``.

        Returns ``(issue_time, retire_time)``: when the entry entered the
        buffer (the point a persist barrier's store gate cares about) and
        when it completed and retired in order.
        """
        issue = self._slot_time(t)
        depart = self._flush(issue, line)
        ticket = self._pm.write(max(depart, self._dep_ready), line)
        self._durability.line_persisted(line, issue, ticket.accepted)
        retire = max(ticket.acked, self._last_retire)
        self._retire_times.append(retire)
        self._last_retire = retire
        self._line_retire[line] = max(self._line_retire.get(line, 0.0), retire)
        self.clwbs += 1
        tracer = self._tracer
        if tracer.enabled:
            if issue > t:
                tracer.span("sbu.alloc-wait", self._track, t, issue - t, line=line)
            tracer.span("sbu.entry", self._track, issue, retire - issue, line=line)
            tracer.metrics.histogram(f"{self._track}/persist_latency").observe(
                retire - issue
            )
        return issue, retire

    def insert_barrier(self, t: float) -> float:
        """Append a persist barrier; returns its completion time.

        The barrier completes once every older CLWB in this buffer has
        retired, and from then on gates younger CLWBs' PM issue.
        """
        done = max(t, self._last_retire)
        self._dep_ready = max(self._dep_ready, done)
        return done

    def drain_time(self, t: float) -> float:
        """Time when everything currently buffered has persisted."""
        return max(t, self._last_retire)

    def occupancy_at(self, t: float) -> int:
        """Entries not yet retired at ``t`` (crash-state reporting)."""
        return sum(1 for x in self._retire_times if x > t)

    def line_drain_time(self, line: int, t: float) -> float:
        """Time when this line's pending CLWBs (if any) have persisted."""
        retire = self._line_retire.get(line)
        if retire is None:
            return t
        if retire <= t:
            del self._line_retire[line]
            return t
        return retire


class StrandBufferUnit:
    """Round-robin array of strand buffers (one unit per core)."""

    def __init__(
        self,
        n_buffers: int,
        entries_per_buffer: int,
        pm: PMController,
        flush: FlushFn,
        tracer: Tracer = NULL_TRACER,
        track: str = "sbu",
        durability=NULL_DURABILITY,
    ) -> None:
        if n_buffers <= 0:
            raise ValueError("need at least one strand buffer")
        self._tracer = tracer
        self._track = track
        self.buffers = [
            StrandBuffer(entries_per_buffer, pm, flush, tracer, f"{track}/sbu{i}",
                         durability=durability)
            for i in range(n_buffers)
        ]
        self.ongoing = 0

    def clwb(self, t: float, line: int) -> Tuple[float, float]:
        """Route a CLWB to the ongoing buffer; returns (issue, retire)."""
        return self.buffers[self.ongoing].insert_clwb(t, line)

    def persist_barrier(self, t: float) -> float:
        """Apply a persist barrier to the ongoing buffer."""
        done = self.buffers[self.ongoing].insert_barrier(t)
        if self._tracer.enabled:
            self._tracer.instant(
                "sbu.barrier", f"{self._track}/sbu{self.ongoing}", t, strand=self.ongoing
            )
        return done

    def new_strand(self, t: float) -> float:
        """Rotate the ongoing buffer index (round-robin assignment)."""
        self.ongoing = (self.ongoing + 1) % len(self.buffers)
        if self._tracer.enabled:
            self._tracer.instant(
                "sbu.rotate", f"{self._track}/sbu{self.ongoing}", t, strand=self.ongoing
            )
        return t + 1

    def drain_time(self, t: float) -> float:
        """Time when all buffers have fully drained to the controller."""
        return max(buf.drain_time(t) for buf in self.buffers)

    def occupancy_at(self, t: float) -> List[int]:
        """Per-buffer live-entry counts at ``t`` (crash-state reporting)."""
        return [buf.occupancy_at(t) for buf in self.buffers]

    def line_drain_time(self, line: int, t: float) -> float:
        """Snoop stall: wait only for pending CLWBs of ``line`` — the
        per-strand-buffer tail recorded in the snoop buffer (Section IV)."""
        return max(buf.line_drain_time(line, t) for buf in self.buffers)

    @property
    def total_clwbs(self) -> int:
        return sum(buf.clwbs for buf in self.buffers)
