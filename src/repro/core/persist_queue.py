"""Persist queue — StrandWeaver's CPU-side tracking structure (Section IV).

The persist queue sits beside the store queue and records in-flight
CLWBs, persist barriers, NewStrand and JoinStrand operations.  Entries
retire in order once completed; a full queue back-pressures dispatch.
Its key effect relative to NO-PERSIST-QUEUE is that long-latency CLWBs no
longer occupy store-queue slots, so younger stores are not blocked behind
them (Section VI-B, "Persist concurrency due to strand buffers").
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.tracer import Tracer
from repro.prof.phases import PhaseProfiler


class PersistQueue:
    """Bounded queue of persist operations with completion-based reclaim.

    Unlike the store queue, entries free their slot as soon as their
    ``Completed`` field is set (the queue supports associative lookup, so
    reclamation need not be FIFO) — CLWBs on fast strands do not hold
    slots hostage for slow strands.
    """

    #: instrumentation is opt-in (see :meth:`instrument`).
    _tracer: Optional[Tracer] = None
    #: phase profiling is likewise opt-in (see :meth:`profile`).
    _profiler: Optional[PhaseProfiler] = None

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("persist queue needs at least one entry")
        self.capacity = capacity
        self._completions: List[float] = []
        self._latest = 0.0
        self.inserted = 0

    def instrument(self, tracer: Tracer, track: str) -> None:
        """Attach a tracer: each push emits a ``pq.push`` marker, a
        ``pq.entry`` span until retirement, and occupancy samples."""
        self._tracer = tracer
        self._track = track

    def profile(self, profiler: PhaseProfiler, name: str) -> None:
        """Attach a phase profiler: each push charges the entry's lifetime
        to the ``<name>/residency_cycles`` resource."""
        self._profiler = profiler
        self._prof_name = name

    def earliest_slot(self, t: float) -> float:
        """When a new entry can be allocated (full queue waits on a
        completion)."""
        self._completions = [x for x in self._completions if x > t]
        if len(self._completions) < self.capacity:
            return t
        ordered = sorted(self._completions)
        return ordered[len(ordered) - self.capacity]

    def push(self, t: float, completion: float) -> float:
        """Record an entry allocated at ``t`` completing at ``completion``."""
        completion = max(completion, t)
        self._completions.append(completion)
        self._latest = max(self._latest, completion)
        self.inserted += 1
        profiler = self._profiler
        if profiler is not None and profiler.enabled:
            profiler.charge_resource(
                self._prof_name + "/residency_cycles", completion - t
            )
            profiler.charge_resource(self._prof_name + "/admissions")
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            occ = len(self._completions)
            tracer.instant("pq.push", self._track, t)
            tracer.span("pq.entry", self._track, t, completion - t)
            tracer.counter("pq.occupancy", self._track, t, occ)
            tracer.metrics.histogram(f"{self._track}/occupancy").observe(occ)
            tracer.metrics.histogram(f"{self._track}/residency").observe(completion - t)
        return completion

    def occupancy_at(self, t: float) -> int:
        """Entries still live at ``t`` (crash-state reporting)."""
        return sum(1 for x in self._completions if x > t)

    def drain_time(self, t: float) -> float:
        """Time when everything ever queued has completed."""
        return max(t, self._latest)
