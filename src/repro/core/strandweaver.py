"""StrandWeaver persist domains: the paper's proposal and its ablation.

:class:`StrandWeaverDomain` implements the full design of Section IV —
persist queue + strand buffer unit.  :class:`NoPersistQueueDomain` is the
intermediate design evaluated in Figure 7: the strand buffer unit is kept
but CLWBs travel through the *store queue*, so younger stores suffer
head-of-line blocking behind long-latency CLWBs.

Semantics of the three primitives as dispatch-time rules:

* ``PERSIST_BARRIER`` — records a dependency in the ongoing strand buffer
  and gates younger *stores* until all older CLWBs have **issued** to the
  strand buffer unit (not completed — the crucial relaxation over SFENCE).
* ``NEW_STRAND`` — rotates the ongoing strand buffer (round-robin), so
  subsequent CLWBs drain concurrently with prior strands.
* ``JOIN_STRAND`` — stalls dispatch until every prior CLWB completed and
  the store queue drained.
"""

from __future__ import annotations

from repro.core.ops import Op, OpKind
from repro.core.persist_queue import PersistQueue
from repro.core.strand_buffer import StrandBufferUnit
from repro.persistency.base import PersistDomain


class StrandWeaverDomain(PersistDomain):
    """Full StrandWeaver: persist queue + strand buffer unit."""

    name = "strandweaver"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        strand_cfg = self.cfg.strand
        self.sbu = StrandBufferUnit(
            strand_cfg.n_strand_buffers,
            strand_cfg.strand_buffer_entries,
            self.pm,
            self._flush_line,
            tracer=self.tracer,
            track=self.track,
            durability=self.durability,
        )
        self.pq = PersistQueue(strand_cfg.persist_queue_entries)
        self.pq.instrument(self.tracer, self.track + "/pq")
        if self.profiler.enabled:
            self.pq.profile(self.profiler, f"core{self.tid}/persist-queue")
        #: latest issue-to-SBU time of any CLWB dispatched so far; persist
        #: barriers snapshot this into the store gate.
        self._max_issue = 0.0
        #: stores may not issue before this time (set by persist barriers).
        self._store_gate = 0.0
        # Register the snoop-drain hook (inter-thread SPA, Section IV).
        self.hierarchy.drain_hooks[self.tid] = self._snoop_drain_hook

    # -- dispatch hooks ----------------------------------------------------

    def store_gate(self, t: float) -> float:
        gated = max(t, self._store_gate)
        self._charge("stall_fence", gated - t, start=t)
        return gated

    def clwb(self, t: float, line: int) -> float:
        slot = self.pq.earliest_slot(t)
        self._charge("stall_queue_full", slot - t, start=t)
        issue, retire = self.sbu.clwb(slot, line)
        self.pq.push(slot, retire)
        self._max_issue = max(self._max_issue, issue)
        self.stats.pm_writes += 1
        if self.tracer.enabled:
            self.tracer.span("clwb", self.clwb_track, slot, retire - slot, line=line)
            self.tracer.metrics.histogram(f"{self.track}/clwb_ack").observe(
                retire - slot
            )
        # The persist queue tracks the CLWB; its ROB slot frees at once.
        return slot + 1, slot + 1

    def fence(self, op: Op, t: float) -> float:
        if op.kind is OpKind.PERSIST_BARRIER:
            self.sbu.persist_barrier(t)
            self.pq.push(t, t + 1)
            # Younger stores wait until older CLWBs *issued* (not completed).
            self._store_gate = max(self._store_gate, self._max_issue)
            return t + 1
        if op.kind is OpKind.NEW_STRAND:
            done = self.sbu.new_strand(t)
            self.pq.push(t, done)
            # A new strand carries no ordering from previous strands.
            return done
        if op.kind is OpKind.JOIN_STRAND:
            return self.drain_all(t)
        raise ValueError(f"strandweaver traces use PB/NS/JS, got {op!r}")

    def drain_all(self, t: float) -> float:
        done = max(t, self.pq.drain_time(t), self.store_queue.drain_time(t))
        self._charge("stall_drain", done - t, start=t)
        self._store_gate = 0.0
        return done

    def occupancy(self, t: float) -> dict:
        return {
            "persist_queue": self.pq.occupancy_at(t),
            "strand_buffers": self.sbu.occupancy_at(t),
        }

    # -- coherence ----------------------------------------------------------

    def _snoop_drain_hook(self, owner_tid: int, line: int, t: float) -> float:
        """Stall a read-exclusive reply until the owner's strand buffers
        drain past the tail index recorded for this line's pending CLWBs
        (Section IV, "Enabling inter-thread persist order")."""
        return self.sbu.line_drain_time(line, t)


class NoPersistQueueDomain(StrandWeaverDomain):
    """Ablation: strand buffers present, CLWBs live in the store queue."""

    name = "no-persist-queue"

    def clwb(self, t: float, line: int):
        slot = self.store_queue.earliest_slot(t)
        self._charge("stall_queue_full", slot - t, start=t)
        issue, retire = self.sbu.clwb(slot, line)
        # The CLWB occupies a store-queue slot until it *issues* into a
        # strand buffer; a full strand buffer delays the issue, and every
        # younger store in the queue retires behind it — the head-of-line
        # blocking the persist queue eliminates (Section VI-B).
        sq_retire = self.store_queue.push(slot, issue)
        self._max_issue = max(self._max_issue, issue)
        self.stats.pm_writes += 1
        if self.tracer.enabled:
            self.tracer.span("clwb", self.clwb_track, slot, retire - slot, line=line)
            self.tracer.metrics.histogram(f"{self.track}/clwb_ack").observe(
                retire - slot
            )
        return slot + 1, sq_retire

    def fence(self, op: Op, t: float) -> float:
        if op.kind is OpKind.PERSIST_BARRIER:
            self.sbu.persist_barrier(t)
            self._store_gate = max(self._store_gate, self._max_issue)
            return t + 1
        if op.kind is OpKind.NEW_STRAND:
            return self.sbu.new_strand(t)
        if op.kind is OpKind.JOIN_STRAND:
            return self.drain_all(t)
        raise ValueError(f"no-persist-queue traces use PB/NS/JS, got {op!r}")

    def drain_all(self, t: float) -> float:
        done = max(t, self.sbu.drain_time(t), self.store_queue.drain_time(t))
        self._charge("stall_drain", done - t, start=t)
        self._store_gate = 0.0
        return done

    def occupancy(self, t: float) -> dict:
        return {"strand_buffers": self.sbu.occupancy_at(t)}
