"""Formal strand persistency model (Section III, Equations 1-4).

This module turns an executed :class:`~repro.core.ops.Program` into a
**persist DAG**: a partial order over its persistent stores such that the
possible post-crash PM images are exactly the *consistent cuts*
(down-closed subsets) of the DAG applied over the durable baseline.

The ordering rules implemented:

* **Eq. 1 (intra-strand persist barriers)** — two PM operations on the
  same thread are ordered when a persist barrier lies between them in
  volatile memory order *and* no ``NewStrand`` intervenes.  Every store is
  labelled with a ``(strand instance, sub-epoch)`` pair: ``NewStrand``
  begins a new strand instance, a persist barrier increments the
  sub-epoch within the instance.  Earlier sub-epochs of the same instance
  are ordered before later ones.
* **Eq. 2 (JoinStrand)** — orders every prior PM operation of the thread
  before every subsequent one (``js_epoch`` labels).
* **Eq. 3 (strong persist atomicity)** — byte-conflicting stores anywhere
  in the program are ordered by visibility order.
* **Eq. 4 (transitivity)** — automatic: consistent cuts are closed under
  the *direct-predecessor* relation, whose transitive closure is the
  full PMO.

**Durability transfer across synchronization.**  ``JoinStrand``,
``SFENCE`` and ``DFENCE`` are *synchronous*: the issuing core does not
proceed until prior persists are durable.  If a thread then releases a
lock and another thread acquires it, every persist drained before the
release is durable before any instruction of the acquirer's critical
section executes — so no crash can expose the acquirer's persists without
them.  The DAG encodes this with virtual **drain** nodes (all of the
thread's stores so far precede the drain) and **acquire** nodes (the
releasing thread's last drain precedes the acquire, and the acquirer's
subsequent stores succeed it).  Without this rule, undo-log recovery
would be wrongly declared broken on cross-thread hand-offs that real
hardware makes safe.

Intel SFENCE and HOPS ofence/dfence map onto the same formalism: SFENCE
and ofence act as persist barriers on a single implicit strand, SFENCE
and dfence are additionally synchronous drains.  One checker therefore
validates every design in the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.ops import Op, OpKind, Program

#: op kinds that synchronously drain all prior persists of the thread.
SYNC_DRAIN_KINDS = frozenset({OpKind.JOIN_STRAND, OpKind.SFENCE, OpKind.DFENCE})


@dataclass
class PersistNode:
    """One node of the persist DAG.

    ``kind`` is ``"store"`` for real persists, or ``"drain"``/``"acquire"``
    for the virtual synchronization nodes described in the module docs.
    Virtual nodes participate in cut closure but write nothing to PM.
    """

    idx: int
    kind: str
    op: Optional[Op]
    tid: int
    strand: int = 0
    sub_epoch: int = 0
    js_epoch: int = 0
    preds: List[int] = field(default_factory=list)

    @property
    def is_store(self) -> bool:
        return self.kind == "store"


@dataclass(frozen=True)
class StrandLabel:
    """Strand coordinates of one op (exposed for tests/teaching)."""

    strand: int
    sub_epoch: int
    js_epoch: int


def annotate_thread(ops: Sequence[Op]) -> List[Optional[StrandLabel]]:
    """Label each op of a thread with its strand coordinates.

    ``NewStrand`` starts a fresh strand instance (resetting the
    sub-epoch), a persist barrier (or SFENCE/ofence) bumps the sub-epoch,
    and ``JoinStrand`` (or SFENCE/dfence) bumps the join epoch.  Non-PM
    ops yield ``None``.
    """
    labels: List[Optional[StrandLabel]] = []
    strand = 0
    sub_epoch = 0
    js_epoch = 0
    next_strand = 1
    for op in ops:
        if op.kind is OpKind.NEW_STRAND:
            strand = next_strand
            next_strand += 1
            sub_epoch = 0
            labels.append(None)
        elif op.kind in (OpKind.PERSIST_BARRIER, OpKind.OFENCE):
            sub_epoch += 1
            labels.append(None)
        elif op.kind in SYNC_DRAIN_KINDS:
            js_epoch += 1
            sub_epoch += 1
            labels.append(None)
        elif op.kind in (OpKind.STORE, OpKind.LOAD):
            labels.append(StrandLabel(strand, sub_epoch, js_epoch))
        else:
            labels.append(None)
    return labels


class _ThreadTracker:
    """Per-thread state while building the DAG in visibility order."""

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.strand = 0
        self.next_strand = 1
        self.sub_epoch = 0
        self.js_epoch = 0
        # (strand) -> (previous non-empty sub-epoch nodes, current epoch id,
        #              current epoch nodes)
        self.strand_groups: Dict[int, Tuple[List[int], int, List[int]]] = {}
        self.prev_js_nodes: List[int] = []
        self.cur_js_id = 0
        self.cur_js_nodes: List[int] = []
        self.stores_since_drain: List[int] = []
        self.last_drain: Optional[int] = None
        self.last_sync: Optional[int] = None


class PersistDag:
    """Persist DAG of a program: stores + virtual sync nodes, edges = PMO."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.nodes: List[PersistNode] = []
        #: ``(tid, seq)`` of each store op -> its node index, so consumers
        #: holding an :class:`~repro.core.ops.Op` (e.g. the static
        #: analyzer) can locate its DAG node without a linear scan.
        self.node_of: Dict[Tuple[int, int], int] = {}
        self._build()

    # -- construction ------------------------------------------------------

    def _new_node(self, kind: str, op: Optional[Op], tid: int, **labels) -> PersistNode:
        node = PersistNode(len(self.nodes), kind, op, tid, **labels)
        self.nodes.append(node)
        if kind == "store" and op is not None:
            self.node_of[(op.tid, op.seq)] = node.idx
        return node

    def _build(self) -> None:
        trackers = [_ThreadTracker(t) for t in range(self.program.n_threads)]
        byte_owner: Dict[int, int] = {}
        #: lock id -> durable-drain node of the last releasing thread.
        lock_durable: Dict[int, Optional[int]] = {}

        for op in self.program.all_ops():
            tr = trackers[op.tid]
            kind = op.kind

            if kind is OpKind.NEW_STRAND:
                tr.strand = tr.next_strand
                tr.next_strand += 1
                tr.sub_epoch = 0
            elif kind is OpKind.PERSIST_BARRIER or kind is OpKind.OFENCE:
                tr.sub_epoch += 1
            elif kind in SYNC_DRAIN_KINDS:
                tr.sub_epoch += 1
                tr.js_epoch += 1
                drain = self._new_node("drain", op, op.tid)
                drain.preds.extend(tr.stores_since_drain)
                if tr.last_drain is not None:
                    drain.preds.append(tr.last_drain)
                if tr.last_sync is not None:
                    drain.preds.append(tr.last_sync)
                tr.stores_since_drain = []
                tr.last_drain = drain.idx
            elif kind is OpKind.LOCK_REL:
                lock_durable[op.lock_id] = tr.last_drain
            elif kind is OpKind.LOCK_ACQ:
                durable = lock_durable.get(op.lock_id)
                if durable is not None:
                    acq = self._new_node("acquire", op, op.tid)
                    acq.preds.append(durable)
                    if tr.last_sync is not None:
                        acq.preds.append(tr.last_sync)
                    tr.last_sync = acq.idx
            elif kind is OpKind.STORE:
                node = self._new_node(
                    "store",
                    op,
                    op.tid,
                    strand=tr.strand,
                    sub_epoch=tr.sub_epoch,
                    js_epoch=tr.js_epoch,
                )
                self._link_strand(tr, node)
                self._link_js(tr, node)
                self._link_spa(byte_owner, node)
                if tr.last_sync is not None:
                    node.preds.append(tr.last_sync)
                tr.stores_since_drain.append(node.idx)

        for node in self.nodes:
            node.preds = sorted(set(node.preds))

    def _link_strand(self, tr: _ThreadTracker, node: PersistNode) -> None:
        """Eq. 1: nearest non-empty earlier sub-epoch of the same strand."""
        prev_nodes, epoch_id, cur_nodes = tr.strand_groups.get(
            node.strand, ([], node.sub_epoch, [])
        )
        if node.sub_epoch != epoch_id:
            if cur_nodes:
                prev_nodes = cur_nodes
            cur_nodes = []
            epoch_id = node.sub_epoch
        node.preds.extend(prev_nodes)
        cur_nodes.append(node.idx)
        tr.strand_groups[node.strand] = (prev_nodes, epoch_id, cur_nodes)

    def _link_js(self, tr: _ThreadTracker, node: PersistNode) -> None:
        """Eq. 2: nearest non-empty earlier join epoch of the thread."""
        if node.js_epoch != tr.cur_js_id:
            if tr.cur_js_nodes:
                tr.prev_js_nodes = tr.cur_js_nodes
            tr.cur_js_nodes = []
            tr.cur_js_id = node.js_epoch
        node.preds.extend(tr.prev_js_nodes)
        tr.cur_js_nodes.append(node.idx)

    def _link_spa(self, byte_owner: Dict[int, int], node: PersistNode) -> None:
        """Eq. 3: previous writer of every byte this store touches."""
        op = node.op
        assert op is not None
        hit: Set[int] = set()
        for byte in range(op.addr, op.addr + op.size):
            prev = byte_owner.get(byte)
            if prev is not None:
                hit.add(prev)
            byte_owner[byte] = node.idx
        node.preds.extend(hit)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def store_nodes(self) -> List[PersistNode]:
        return [n for n in self.nodes if n.is_store]

    def predecessors(self, idx: int) -> List[int]:
        return self.nodes[idx].preds

    def edges(self) -> List[Tuple[int, int]]:
        """All direct-predecessor edges as ``(pred, succ)`` pairs."""
        return [(p, n.idx) for n in self.nodes for p in n.preds]

    def node_for_op(self, op: Op) -> Optional[PersistNode]:
        """The store node of ``op``, or ``None`` for non-store ops."""
        idx = self.node_of.get((op.tid, op.seq))
        return None if idx is None else self.nodes[idx]

    def ordered_before_ops(self, a: Op, b: Op) -> bool:
        """True when store ``a`` is PMO-before store ``b`` (Eqs. 1-4)."""
        na, nb = self.node_of.get((a.tid, a.seq)), self.node_of.get((b.tid, b.seq))
        if na is None or nb is None:
            return False
        return self.ordered_before(na, nb)

    def ordered_before(self, a: int, b: int) -> bool:
        """True when node ``a`` is (transitively) PMO-before node ``b``."""
        if a == b:
            return False
        seen: Set[int] = set()
        frontier = [b]
        while frontier:
            cur = frontier.pop()
            for pred in self.nodes[cur].preds:
                if pred == a:
                    return True
                if pred not in seen:
                    seen.add(pred)
                    frontier.append(pred)
        return False

    def is_consistent_cut(self, cut) -> bool:
        """True when ``cut`` (node indices) is down-closed under PMO."""
        included = set(cut)
        for idx in included:
            if any(pred not in included for pred in self.nodes[idx].preds):
                return False
        return True

    def downward_close(self, seed) -> Set[int]:
        """Smallest consistent cut containing ``seed``."""
        closed: Set[int] = set()
        frontier = list(seed)
        while frontier:
            idx = frontier.pop()
            if idx in closed:
                continue
            closed.add(idx)
            frontier.extend(self.nodes[idx].preds)
        return closed

    def find(self, label: str) -> PersistNode:
        """Locate the unique store node labelled ``label`` (for tests)."""
        matches = [n for n in self.nodes if n.op is not None and n.op.label == label]
        if len(matches) != 1:
            raise KeyError(f"label {label!r} matched {len(matches)} nodes")
        return matches[0]
