"""Exhaustive crash-consistency verification for small programs.

For programs whose persist DAG is small enough, :func:`verify_exhaustive`
enumerates **every** consistent cut, materialises each crash image, runs
recovery, and applies a caller-supplied invariant — a model checker for
logging protocols.  The runtime's undo and redo protocols are verified
this way in the test suite; litmus-sized programs finish in milliseconds.

For larger programs, :func:`verify_sampled` performs the same check over
randomized and frontier-biased cut samples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.crash import enumerate_cuts, frontier_cut, materialise, prefix_cut, random_cut
from repro.core.model import PersistDag
from repro.core.ops import Program
from repro.lang.logbuf import LogLayout
from repro.lang.recovery import recover
from repro.pmem.space import PersistentMemory

#: invariant signature: receives the recovered image; raises on violation.
Invariant = Callable[[PersistentMemory], None]


@dataclass
class VerificationResult:
    """Outcome of a crash-consistency verification run."""

    checked: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_on_failure(self) -> None:
        if self.failures:
            raise AssertionError(
                f"{len(self.failures)}/{self.checked} crash states violated "
                f"the invariant; first: {self.failures[0]}"
            )


def _check_cut(
    dag: PersistDag,
    cut,
    space: PersistentMemory,
    layout: Optional[LogLayout],
    invariant: Invariant,
    result: VerificationResult,
    context: str = "",
) -> None:
    image = materialise(dag, cut, space)
    if layout is not None:
        recover(image, layout)
    result.checked += 1
    try:
        invariant(image)
    except AssertionError as exc:
        prefix = f"[{context}] " if context else ""
        result.failures.append(f"{prefix}{exc}")


def verify_exhaustive(
    program: Program,
    space: PersistentMemory,
    invariant: Invariant,
    layout: Optional[LogLayout] = None,
    limit: int = 100_000,
) -> VerificationResult:
    """Check the invariant on *every* reachable crash state.

    Args:
        program: the executed program (defines the persist DAG).
        space: the functional PM holding the durable baseline.
        invariant: raises ``AssertionError`` when a recovered image is bad.
        layout: when given, undo/redo recovery runs before the invariant.
        limit: safety bound on the number of cuts to enumerate.
    """
    dag = PersistDag(program)
    result = VerificationResult()
    for cut in enumerate_cuts(dag, limit=limit):
        _check_cut(dag, cut, space, layout, invariant, result)
    return result


def verify_sampled(
    program: Program,
    space: PersistentMemory,
    invariant: Invariant,
    layout: Optional[LogLayout] = None,
    samples: int = 50,
    seed: int = 0,
) -> VerificationResult:
    """Check the invariant on sampled crash states (large programs).

    Failure messages carry the RNG seed, the sample index and the
    cut-generation strategy, so ``verify_sampled(..., seed=S)`` replays
    the exact failing crash state verbatim.
    """
    dag = PersistDag(program)
    rng = random.Random(seed)
    result = VerificationResult()
    for i in range(samples):
        if i % 3 == 0:
            strategy = "frontier_cut(drop=0.25)"
            cut = frontier_cut(dag, rng, drop=0.25)
        elif i % 3 == 1:
            strategy = "random_cut(density=0.5)"
            cut = random_cut(dag, rng, density=0.5)
        else:
            n = rng.randrange(len(dag) + 1)
            strategy = f"prefix_cut(n={n})"
            cut = prefix_cut(dag, n)
        context = f"verify_sampled seed={seed} sample={i}/{samples} {strategy}"
        _check_cut(dag, cut, space, layout, invariant, result, context=context)
    return result
