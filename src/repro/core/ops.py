"""Micro-operation IR for StrandWeaver traces.

The language-level runtimes (:mod:`repro.lang`) compile persistent-memory
programs down to a stream of micro-operations per logical thread.  The same
stream feeds two consumers:

* the **formal persistency model** (:mod:`repro.core.model`), which derives
  the persist memory order (PMO) prescribed by Equations 1-4 of the paper,
  and
* the **timing simulator** (:mod:`repro.sim`), which replays the stream
  through one of the ISA-level hardware designs (Intel x86, HOPS,
  StrandWeaver, ...) and reports cycles and stall breakdowns.

Micro-op vocabulary (paper section the op comes from in parentheses):

=================  =============================================================
``STORE``          store to persistent memory (a *persist* once drained)
``LOAD``           load from persistent memory
``CLWB``           non-invalidating cache-line write-back (II-B)
``SFENCE``         Intel persist barrier: orders CLWBs *and* stalls stores (II-B)
``PERSIST_BARRIER``strand-local persist barrier, Eq. 1 (III)
``NEW_STRAND``     begin a new strand, clears prior ordering, Eq. 1 (III)
``JOIN_STRAND``    merge prior strands, Eq. 2 (III)
``OFENCE``         HOPS lightweight ordering fence (VI-A)
``DFENCE``         HOPS durability fence (VI-A)
``LOCK_ACQ``       acquire a named lock (synchronises threads)
``LOCK_REL``       release a named lock
``COMPUTE``        opaque CPU work measured in cycles
``VSTORE``         store to *volatile* (DRAM) memory — never persists
``VLOAD``          load from volatile memory
=================  =============================================================

Stores carry the written bytes so that crash images can be materialised by
replaying an arbitrary consistent cut of the persist DAG
(:mod:`repro.core.crash`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Iterator, List, Tuple

CACHE_LINE = 64


class LineCrossError(ValueError):
    """A STORE payload silently straddles a cache-line boundary.

    PM media persists at cache-line granularity, so a straddling store is
    two independent persists: a crash between them tears the write.  The
    high-level emission API (:meth:`TraceCursor.store`) refuses to create
    one silently — callers either let it split the payload at line
    boundaries or opt in explicitly (``on_line_cross="allow"``) to model
    a torn-write hazard on purpose.
    """


class OpKind(IntEnum):
    """Discriminator for micro-operations."""

    STORE = 0
    LOAD = 1
    CLWB = 2
    SFENCE = 3
    PERSIST_BARRIER = 4
    NEW_STRAND = 5
    JOIN_STRAND = 6
    OFENCE = 7
    DFENCE = 8
    LOCK_ACQ = 9
    LOCK_REL = 10
    COMPUTE = 11
    VSTORE = 12
    VLOAD = 13


#: Kinds that reference a persistent-memory address.
ADDRESSED_KINDS = frozenset(
    {OpKind.STORE, OpKind.LOAD, OpKind.CLWB, OpKind.VSTORE, OpKind.VLOAD}
)

#: Ordering primitives of the strand persistency model.
STRAND_PRIMITIVES = frozenset(
    {OpKind.PERSIST_BARRIER, OpKind.NEW_STRAND, OpKind.JOIN_STRAND}
)

#: Every fence-like op across all ISA designs.
FENCE_KINDS = frozenset(
    {
        OpKind.SFENCE,
        OpKind.PERSIST_BARRIER,
        OpKind.NEW_STRAND,
        OpKind.JOIN_STRAND,
        OpKind.OFENCE,
        OpKind.DFENCE,
    }
)


def line_of(addr: int) -> int:
    """Return the cache-line index containing byte address ``addr``."""
    return addr // CACHE_LINE


def lines_of(addr: int, size: int) -> Tuple[int, ...]:
    """Return all cache-line indices touched by ``[addr, addr+size)``."""
    if size <= 0:
        return ()
    first = addr // CACHE_LINE
    last = (addr + size - 1) // CACHE_LINE
    if first == last:
        return (first,)
    return tuple(range(first, last + 1))


def split_at_lines(addr: int, data: bytes) -> List[Tuple[int, bytes]]:
    """Split ``(addr, data)`` into per-cache-line ``(addr, chunk)`` pieces."""
    if addr % CACHE_LINE + len(data) <= CACHE_LINE:
        return [(addr, data)]
    pieces: List[Tuple[int, bytes]] = []
    offset = 0
    while offset < len(data):
        cur = addr + offset
        room = CACHE_LINE - (cur % CACHE_LINE)
        pieces.append((cur, data[offset : offset + room]))
        offset += room
    return pieces


@dataclass(slots=True)
class Op:
    """One micro-operation in a thread's instruction stream.

    Attributes:
        kind: operation discriminator.
        addr: byte address for addressed ops (PM or volatile), else 0.
        size: access size in bytes for addressed ops.
        data: bytes written by a ``STORE``; empty otherwise.
        lock_id: lock identity for ``LOCK_ACQ``/``LOCK_REL``.
        cycles: CPU work for ``COMPUTE`` ops.
        tid: owning logical thread id (assigned when appended to a trace).
        seq: index within the owning thread's stream.
        gseq: position in the global visibility order (volatile memory
            order); assigned by the trace builder as ops are emitted, so a
            smaller ``gseq`` means "became visible earlier" under TSO.
        region: id of the enclosing failure-atomic region, or -1.
        label: free-form tag used by tests and examples (e.g. ``"log:A"``).
    """

    kind: OpKind
    addr: int = 0
    size: int = 0
    data: bytes = b""
    lock_id: int = -1
    cycles: int = 0
    tid: int = -1
    seq: int = -1
    gseq: int = -1
    region: int = -1
    label: str = ""

    def is_pm_store(self) -> bool:
        return self.kind is OpKind.STORE

    def is_clwb(self) -> bool:
        return self.kind is OpKind.CLWB

    def touches(self, other: "Op") -> bool:
        """True when both ops address overlapping bytes."""
        if self.kind not in ADDRESSED_KINDS or other.kind not in ADDRESSED_KINDS:
            return False
        return self.addr < other.addr + other.size and other.addr < self.addr + self.size

    def line(self) -> int:
        return line_of(self.addr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        base = f"{self.kind.name}"
        if self.kind in ADDRESSED_KINDS:
            base += f"(0x{self.addr:x},{self.size})"
        elif self.kind in (OpKind.LOCK_ACQ, OpKind.LOCK_REL):
            base += f"(lock={self.lock_id})"
        elif self.kind is OpKind.COMPUTE:
            base += f"({self.cycles}cy)"
        if self.label:
            base += f"[{self.label}]"
        return base


class ThreadTrace:
    """Ordered micro-op stream of one logical thread."""

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.ops: List[Op] = []

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def __getitem__(self, idx: int) -> Op:
        return self.ops[idx]

    def append(self, op: Op, gseq: int) -> Op:
        op.tid = self.tid
        op.seq = len(self.ops)
        op.gseq = gseq
        self.ops.append(op)
        return op


class Program:
    """A multi-threaded micro-op program with a fixed visibility order.

    The functional front end executes workloads under a deterministic
    cooperative scheduler, which serialises all memory operations into a
    single global order.  That order *is* the volatile memory order (VMO)
    used by the formal model: it is a legal TSO execution because each
    thread's ops appear in program order and conflicting accesses are
    serialised.
    """

    def __init__(self, n_threads: int) -> None:
        self.threads: List[ThreadTrace] = [ThreadTrace(t) for t in range(n_threads)]
        self._next_gseq = 0
        #: FIFO acquisition order per lock, fixed at generation time and
        #: replayed by the timing simulator.
        self.lock_order: Dict[int, List[int]] = {}

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    def emit(self, tid: int, op: Op) -> Op:
        """Append ``op`` to thread ``tid`` at the next visibility slot."""
        if op.kind is OpKind.LOCK_ACQ:
            self.lock_order.setdefault(op.lock_id, []).append(tid)
        out = self.threads[tid].append(op, self._next_gseq)
        self._next_gseq += 1
        return out

    def all_ops(self) -> List[Op]:
        """Every op of every thread in global visibility (gseq) order."""
        merged = [op for trace in self.threads for op in trace.ops]
        merged.sort(key=lambda op: op.gseq)
        return merged

    def pm_stores(self) -> List[Op]:
        """All persistent stores in visibility order."""
        return [op for op in self.all_ops() if op.kind is OpKind.STORE]

    def counts(self) -> Dict[str, int]:
        """Histogram of op kinds across all threads (for reporting)."""
        out: Dict[str, int] = {}
        for trace in self.threads:
            for op in trace.ops:
                out[op.kind.name] = out.get(op.kind.name, 0) + 1
        return out


@dataclass
class TraceCursor:
    """Mutable emission helper bound to one thread of a :class:`Program`."""

    program: Program
    tid: int
    region: int = -1

    def _emit(self, op: Op) -> Op:
        # Inlined Program.emit + ThreadTrace.append: this is the hottest
        # call in trace generation (one call per micro-op), so the two
        # delegation layers are flattened.  Semantics are identical.
        program = self.program
        tid = self.tid
        if op.kind is OpKind.LOCK_ACQ:
            program.lock_order.setdefault(op.lock_id, []).append(tid)
        op.region = self.region
        op.tid = tid
        ops = program.threads[tid].ops
        op.seq = len(ops)
        op.gseq = program._next_gseq
        program._next_gseq += 1
        ops.append(op)
        return op

    def store(
        self, addr: int, data: bytes, label: str = "", on_line_cross: str = "split"
    ) -> Op:
        """Emit a PM store, validating cache-line atomicity.

        A payload crossing a cache-line boundary is not a single persist.
        ``on_line_cross`` selects what to do when that happens:

        * ``"split"`` (default) — emit one STORE per touched line, so every
          emitted op is persist-atomic; returns the first piece.
        * ``"raise"`` — raise :class:`LineCrossError`.
        * ``"allow"`` — emit the straddling store as-is (used to seed
          torn-write hazards for the static analyzer and chaos tests).
        """
        pieces = split_at_lines(addr, data)
        if len(pieces) > 1:
            if on_line_cross == "raise":
                raise LineCrossError(
                    f"store of {len(data)} bytes at 0x{addr:x} spans "
                    f"{len(pieces)} cache lines"
                )
            if on_line_cross == "split":
                ops = [
                    self._emit(Op(OpKind.STORE, addr=a, size=len(d), data=d, label=label))
                    for a, d in pieces
                ]
                return ops[0]
            if on_line_cross != "allow":
                raise ValueError(
                    f"on_line_cross must be 'split', 'raise' or 'allow', "
                    f"not {on_line_cross!r}"
                )
        return self._emit(Op(OpKind.STORE, addr=addr, size=len(data), data=data, label=label))

    def load(self, addr: int, size: int, label: str = "") -> Op:
        return self._emit(Op(OpKind.LOAD, addr=addr, size=size, label=label))

    def vstore(self, addr: int, size: int, label: str = "") -> Op:
        return self._emit(Op(OpKind.VSTORE, addr=addr, size=size, label=label))

    def vload(self, addr: int, size: int, label: str = "") -> Op:
        return self._emit(Op(OpKind.VLOAD, addr=addr, size=size, label=label))

    def clwb(self, addr: int, size: int = CACHE_LINE, label: str = "") -> Op:
        return self._emit(Op(OpKind.CLWB, addr=addr, size=size, label=label))

    def sfence(self) -> Op:
        return self._emit(Op(OpKind.SFENCE))

    def persist_barrier(self) -> Op:
        return self._emit(Op(OpKind.PERSIST_BARRIER))

    def new_strand(self) -> Op:
        return self._emit(Op(OpKind.NEW_STRAND))

    def join_strand(self) -> Op:
        return self._emit(Op(OpKind.JOIN_STRAND))

    def ofence(self) -> Op:
        return self._emit(Op(OpKind.OFENCE))

    def dfence(self) -> Op:
        return self._emit(Op(OpKind.DFENCE))

    def lock(self, lock_id: int) -> Op:
        return self._emit(Op(OpKind.LOCK_ACQ, lock_id=lock_id))

    def unlock(self, lock_id: int) -> Op:
        return self._emit(Op(OpKind.LOCK_REL, lock_id=lock_id))

    def compute(self, cycles: int) -> Op:
        return self._emit(Op(OpKind.COMPUTE, cycles=cycles))
