"""Crash-state generation from the persist DAG.

A crash may expose any PM image formed by a **consistent cut** of the
persist DAG: a down-closed set of persists applied over the durable
baseline.  This module provides

* exhaustive enumeration of cuts for small litmus programs (used to check
  the allowed/forbidden outcomes of Figure 2),
* randomized cut sampling for property-based crash-recovery testing of
  the language-level runtimes, and
* helpers that materialise a cut into a :class:`PersistentMemory` image.

Unflushed stores *may* appear in a cut (a cache write-back can persist
them at any time) and flushed-but-unordered stores may be missing — both
exactly as the hardware model allows.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Iterator, List, Set, Tuple

from repro.core.model import PersistDag
from repro.pmem.space import PersistentMemory


def enumerate_cuts(dag: PersistDag, limit: int = 200_000) -> Iterator[Set[int]]:
    """Yield every consistent cut of ``dag`` (small programs only).

    Cuts are enumerated by processing nodes in visibility order and
    branching on include/exclude; a node can be included only when all of
    its predecessors are.  Raises ``ValueError`` if more than ``limit``
    cuts would be produced, to catch accidental use on big programs.
    """
    n = len(dag)
    produced = 0

    def rec(idx: int, included: Set[int]) -> Iterator[Set[int]]:
        nonlocal produced
        if idx == n:
            produced += 1
            if produced > limit:
                raise ValueError(f"more than {limit} cuts; program too large to enumerate")
            yield set(included)
            return
        # Exclude idx.
        yield from rec(idx + 1, included)
        # Include idx when legal.
        if all(p in included for p in dag.nodes[idx].preds):
            included.add(idx)
            yield from rec(idx + 1, included)
            included.remove(idx)

    yield from rec(0, set())


def random_cut(dag: PersistDag, rng: random.Random, density: float = 0.5) -> Set[int]:
    """Sample a consistent cut by downward-closing a random seed set."""
    seed = [i for i in range(len(dag)) if rng.random() < density]
    return dag.downward_close(seed)


def prefix_cut(dag: PersistDag, k: int) -> Set[int]:
    """The cut consisting of the first ``k`` persists in visibility order.

    Every visibility-order prefix is consistent because all PMO edges
    point from earlier to later ``gseq``.
    """
    return set(range(min(k, len(dag))))


def frontier_cut(dag: PersistDag, rng: random.Random, drop: float = 0.3) -> Set[int]:
    """Sample a cut biased towards "almost everything persisted".

    Walk nodes in reverse visibility order, dropping each with
    probability ``drop``; a dropped node forces all its successors out.
    This produces the adversarial near-crash-at-the-end states where
    recovery bugs hide.
    """
    n = len(dag)
    excluded: Set[int] = set()
    succs: Dict[int, List[int]] = {i: [] for i in range(n)}
    for node in dag.nodes:
        for pred in node.preds:
            succs[pred].append(node.idx)
    for idx in range(n - 1, -1, -1):
        if idx in excluded:
            continue
        if rng.random() < drop:
            stack = [idx]
            while stack:
                cur = stack.pop()
                if cur in excluded:
                    continue
                excluded.add(cur)
                stack.extend(succs[cur])
    return set(range(n)) - excluded


def materialise(
    dag: PersistDag, cut: Iterable[int], space: PersistentMemory
) -> PersistentMemory:
    """Apply a cut's persists over ``space``'s durable baseline.

    Virtual drain/acquire nodes in the cut carry no data and are skipped.
    """
    ops = [dag.nodes[idx].op for idx in cut if dag.nodes[idx].is_store]
    return space.crash_image(ops)


def reachable_values(
    dag: PersistDag,
    space: PersistentMemory,
    extract: Callable[[PersistentMemory], Tuple],
    limit: int = 200_000,
) -> Set[Tuple]:
    """All distinct ``extract`` results over every consistent cut.

    The litmus tests of Figure 2 use this to check that forbidden PM
    states are unreachable and allowed states are reachable.
    """
    out: Set[Tuple] = set()
    for cut in enumerate_cuts(dag, limit=limit):
        out.add(extract(materialise(dag, cut, space)))
    return out
