"""Crash injection and recovery validation (the chaos harness).

Crashes the timing simulator mid-run at seeded fault points, lifts the
machine's durable frontier into a PM image, runs recovery, and checks
the workload's invariants — differentially across all hardware designs
(see :mod:`repro.chaos.harness` for the full story).
"""

from repro.chaos.harness import (
    CHAOS_CFG,
    CrashHarness,
    CrashSample,
    CrashTestResult,
    DifferentialResult,
    run_crashtest,
    run_differential,
)
from repro.chaos.image import ImageInfo, build_crash_image, durable_cut
from repro.chaos.plan import (
    DEFAULT_DROP_PROB,
    DEFAULT_WRITEBACK_PROB,
    CrashSchedule,
    FaultPlan,
    RecoveryCrash,
    sample_schedules,
)
from repro.chaos.shrink import ShrinkResult, not_reproducible, shrink_crash_point
from repro.chaos.soak import SOAK_SCHEMA, SoakCase, SoakResult, run_soak
from repro.faults.model import MediaFaultConfig
from repro.sim.durability import CrashState, CrashTrigger, DurabilityTracker

__all__ = [
    "CHAOS_CFG",
    "DEFAULT_DROP_PROB",
    "DEFAULT_WRITEBACK_PROB",
    "SOAK_SCHEMA",
    "CrashHarness",
    "CrashSample",
    "CrashSchedule",
    "CrashState",
    "CrashTestResult",
    "CrashTrigger",
    "DifferentialResult",
    "DurabilityTracker",
    "FaultPlan",
    "ImageInfo",
    "MediaFaultConfig",
    "RecoveryCrash",
    "ShrinkResult",
    "SoakCase",
    "SoakResult",
    "build_crash_image",
    "durable_cut",
    "not_reproducible",
    "run_crashtest",
    "run_differential",
    "run_soak",
    "sample_schedules",
    "shrink_crash_point",
]
