"""Shrink a failing crash point to a minimal reproducer.

A random crash at cycle 1.2M that breaks recovery is hard to stare at;
the same failure at cycle 9.3K — just after the guilty persist became
durable — is debuggable.  ``shrink_crash_point`` binary-searches the
trigger threshold downwards, re-running the full crash-recover-check
loop with the *same* fault seed at every probe, and returns the smallest
threshold that still fails together with its failure message.

Failure is not perfectly monotone in the crash point (later crashes give
the hardware time to finish persists), so the result is a local minimum:
the earliest failing point on the binary-search path.  That is exactly
what property-testing shrinkers deliver, and in practice it lands right
after the inconsistency is first exposed.

Two degenerate inputs are handled explicitly rather than looping or
silently echoing the input plan:

* a plan that does not fail on re-execution (lost determinism, or a
  flaky report) yields the canonical **not-reproducible** result —
  ``reproducible=False``, no probes wasted on a search that cannot
  anchor;
* a plan whose *earliest* possible fault point already fails is
  returned immediately as the minimum — binary search has nothing to
  bisect when the failing window starts at the origin.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from repro.chaos.plan import FaultPlan
from repro.sim.durability import CrashTrigger

if TYPE_CHECKING:
    from repro.chaos.harness import CrashHarness

#: stop once the failing window is this tight (cycles / ops).
CYCLE_TOLERANCE = 1.0
OPS_TOLERANCE = 1


@dataclass
class ShrinkResult:
    """Outcome of the shrink search.

    ``reproducible`` is False when the plan did not fail on re-execution:
    ``minimal_at`` then echoes the original trigger and ``violation``
    explains the non-reproduction — the canonical "not reproducible"
    result, so callers never have to distinguish a None from a search.
    """

    kind: str
    original_at: float
    minimal_at: float
    probes: int
    violation: str
    reproducible: bool = True

    def describe(self) -> str:
        unit = "cycle" if self.kind == "cycle" else "op"
        if not self.reproducible:
            return (
                f"not reproducible: crash at {unit}={self.original_at:g} "
                f"passed on re-execution ({self.probes} probe(s)) — "
                f"{self.violation}"
            )
        return (
            f"minimal failing crash point {unit}={self.minimal_at:g} "
            f"(from {self.original_at:g}, {self.probes} probes): "
            f"{self.violation}"
        )


def not_reproducible(plan: FaultPlan, probes: int = 1) -> ShrinkResult:
    """Canonical result for a plan that passes on re-execution."""
    return ShrinkResult(
        kind=plan.trigger.kind,
        original_at=plan.trigger.at,
        minimal_at=plan.trigger.at,
        probes=probes,
        violation=(
            "the same plan recovered cleanly when replayed; determinism "
            "was lost or the original report was flaky "
            f"[{plan.describe()}]"
        ),
        reproducible=False,
    )


def shrink_crash_point(
    harness: "CrashHarness", plan: FaultPlan, max_probes: int = 24
) -> Optional[ShrinkResult]:
    """Binary-search the smallest trigger threshold that still fails.

    Keeps every other knob of ``plan`` (fault seed, write-back
    probability, torn mode, media faults, recovery crashes) fixed so the
    shrunk crash is the same experiment, only earlier.  Always returns a
    :class:`ShrinkResult`; check ``reproducible`` before trusting
    ``minimal_at``.
    """
    kind = plan.trigger.kind
    tolerance = CYCLE_TOLERANCE if kind == "cycle" else OPS_TOLERANCE

    def probe(at: float) -> Optional[str]:
        probed = replace(plan, trigger=CrashTrigger(kind, at))
        return harness.crash_once(probed, index=-1).violation

    hi = plan.trigger.at
    violation = probe(hi)
    probes = 1
    if violation is None:
        return not_reproducible(plan, probes)
    # Guard: if the earliest possible fault point already fails there is
    # nothing to bisect — return it as the minimum instead of looping on
    # a window that can never tighten.
    earliest = tolerance if kind == "cycle" else 1
    if hi > earliest:
        first_msg = probe(earliest)
        probes += 1
        if first_msg is not None:
            return ShrinkResult(
                kind=kind,
                original_at=plan.trigger.at,
                minimal_at=float(earliest),
                probes=probes,
                violation=first_msg,
            )
    lo = 0.0
    while hi - lo > tolerance and probes < max_probes:
        mid = (lo + hi) / 2 if kind == "cycle" else (int(lo) + int(hi)) // 2
        if mid <= lo or mid >= hi:
            break
        msg = probe(mid)
        probes += 1
        if msg is not None:
            hi, violation = mid, msg
        else:
            lo = mid
    return ShrinkResult(
        kind=kind,
        original_at=plan.trigger.at,
        minimal_at=hi,
        probes=probes,
        violation=violation,
    )
