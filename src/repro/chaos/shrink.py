"""Shrink a failing crash point to a minimal reproducer.

A random crash at cycle 1.2M that breaks recovery is hard to stare at;
the same failure at cycle 9.3K — just after the guilty persist became
durable — is debuggable.  ``shrink_crash_point`` binary-searches the
trigger threshold downwards, re-running the full crash-recover-check
loop with the *same* fault seed at every probe, and returns the smallest
threshold that still fails together with its failure message.

Failure is not perfectly monotone in the crash point (later crashes give
the hardware time to finish persists), so the result is a local minimum:
the earliest failing point on the binary-search path.  That is exactly
what property-testing shrinkers deliver, and in practice it lands right
after the inconsistency is first exposed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from repro.chaos.plan import FaultPlan
from repro.sim.durability import CrashTrigger

if TYPE_CHECKING:
    from repro.chaos.harness import CrashHarness

#: stop once the failing window is this tight (cycles / ops).
CYCLE_TOLERANCE = 1.0
OPS_TOLERANCE = 1


@dataclass
class ShrinkResult:
    """Minimal failing crash point found by binary search."""

    kind: str
    original_at: float
    minimal_at: float
    probes: int
    violation: str

    def describe(self) -> str:
        unit = "cycle" if self.kind == "cycle" else "op"
        return (
            f"minimal failing crash point {unit}={self.minimal_at:g} "
            f"(from {self.original_at:g}, {self.probes} probes): "
            f"{self.violation}"
        )


def shrink_crash_point(
    harness: "CrashHarness", plan: FaultPlan, max_probes: int = 24
) -> Optional[ShrinkResult]:
    """Binary-search the smallest trigger threshold that still fails.

    Keeps every other knob of ``plan`` (fault seed, write-back
    probability, torn mode) fixed so the shrunk crash is the same
    experiment, only earlier.  Returns None if ``plan`` does not fail on
    re-execution (a flaky report would indicate lost determinism).
    """
    kind = plan.trigger.kind
    tolerance = CYCLE_TOLERANCE if kind == "cycle" else OPS_TOLERANCE

    def probe(at: float) -> Optional[str]:
        probed = replace(plan, trigger=CrashTrigger(kind, at))
        return harness.crash_once(probed, index=-1).violation

    hi = plan.trigger.at
    violation = probe(hi)
    probes = 1
    if violation is None:
        return None
    lo = 0.0
    while hi - lo > tolerance and probes < max_probes:
        mid = (lo + hi) / 2 if kind == "cycle" else (int(lo) + int(hi)) // 2
        if mid <= lo or mid >= hi:
            break
        msg = probe(mid)
        probes += 1
        if msg is not None:
            hi, violation = mid, msg
        else:
            lo = mid
    return ShrinkResult(
        kind=kind,
        original_at=plan.trigger.at,
        minimal_at=hi,
        probes=probes,
        violation=violation,
    )
