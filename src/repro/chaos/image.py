"""Materialise a machine-state crash into a PM image.

The machine's :class:`~repro.sim.durability.CrashState` says which stores
the hardware made durable by the crash cycle.  This module turns that
frontier — plus the plan's injected faults — into the set of stores
applied over the durable baseline:

* **CLWB-sourced** durable stores are applied unconditionally: the
  design's persist hardware carried them to the ADR domain, and whether
  that respected the persist DAG is exactly what the harness is testing
  (NON-ATOMIC is allowed to produce inconsistent frontiers here).
* **Drop faults** re-time seeded durable stores to *after* the crash,
  together with every persist-DAG successor.  Nothing short of an
  ordering primitive bounds how long hardware may sit on a CLWB, so a
  persist the simulator's in-order pipeline happened to accept by the
  crash may, on real silicon, still be in a fill buffer.  Removing an
  up-closed set from a consistent cut leaves a consistent cut, so for
  correct designs this is just an earlier durable frontier (their fences
  turn the dropped store's delay into delays of everything after it);
  NON-ATOMIC's near-edgeless DAG drops a log entry while keeping its
  in-place update — the exact state its missing ordering admits.
* **Write-back-sourced** durability — natural dirty evictions observed
  during the run, and the plan's injected delayed write-backs of
  in-flight stores — is admitted only when the store's persist-DAG
  predecessors are already in the image (a guarded fixpoint).  The
  tag-only cache model lacks the eviction interlocks the real designs
  have (StrandWeaver's snoop-buffer drain, x86's ordering of write-backs
  behind fences), so an unguarded eviction would break even correct
  designs; NON-ATOMIC's near-edgeless DAG means the guard admits its
  evictions freely — which is precisely its recovery bug.
* **Torn writes** (opt-in) truncate the latest-accepted durable store to
  an 8-byte-aligned prefix, modelling an ADR failure mid-line.  This
  violates strong persist atomicity by construction, so correct designs
  are *expected* to fail under it — it exists to prove the workload
  checkers can see sub-store corruption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.chaos.plan import FaultPlan
from repro.core.model import PersistDag
from repro.core.ops import Op
from repro.pmem.space import PersistentMemory
from repro.sim.durability import SOURCE_WRITEBACK, CrashState
from repro.workloads.base import GeneratedRun

#: seed perturbations decoupling the three fault RNG streams.
_TORN_SALT = 0x70528EED
_DROP_SALT = 0xD20958A1


@dataclass
class ImageInfo:
    """Accounting of how the crash image was assembled."""

    n_durable: int = 0  #: hardware-durable stores reported by the machine
    n_in_flight: int = 0  #: retired-but-volatile stores at the crash
    n_writeback: int = 0  #: natural evictions admitted by the DAG guard
    n_injected: int = 0  #: injected delayed write-backs admitted
    n_guard_blocked: int = 0  #: write-back candidates the guard rejected
    n_dropped: int = 0  #: durable stores re-timed past the crash (+ successors)
    n_applied: int = 0  #: stores actually written into the image
    torn: Optional[str] = None  #: description of the torn store, if any


def _satisfaction(dag: PersistDag, included: Set[int]) -> List[bool]:
    """Per-node satisfaction: store nodes must be in ``included``; virtual
    drain/acquire nodes carry no data and are satisfied when all their
    predecessors are.  One linear pass suffices because predecessor
    indices are always smaller (nodes are created in visibility order)."""
    sat = [False] * len(dag)
    for node in dag.nodes:
        if node.is_store:
            sat[node.idx] = node.idx in included
        else:
            sat[node.idx] = all(sat[p] for p in node.preds)
    return sat


def durable_cut(
    crash: CrashState, plan: FaultPlan, dag: PersistDag
) -> Tuple[List[Op], ImageInfo]:
    """Compute the stores a crash under ``plan`` exposes, plus accounting."""
    info = ImageInfo(
        n_durable=len(crash.durable), n_in_flight=len(crash.in_flight)
    )
    node_of: Dict[int, int] = {n.op.gseq: n.idx for n in dag.store_nodes}

    included: Set[int] = set()
    candidates: List[Tuple[int, str]] = []  # (node idx, "writeback"|"injected")
    for rec in crash.durable:
        idx = node_of.get(rec.op.gseq)
        if idx is None:
            continue
        if rec.source == SOURCE_WRITEBACK:
            candidates.append((idx, "writeback"))
        else:
            included.add(idx)

    if plan.drop_faults and included:
        _apply_drops(dag, included, plan, info)

    if plan.writeback_faults:
        rng = random.Random(plan.seed)
        for rec in crash.in_flight:
            idx = node_of.get(rec.op.gseq)
            if idx is not None and rng.random() < plan.writeback_prob:
                candidates.append((idx, "injected"))

    # Guarded fixpoint: admit a write-back candidate only once all its
    # persist-DAG predecessors are in the image.  Iterate until no
    # candidate makes progress — admitting one can unblock another.
    pending = candidates
    progress = True
    while progress and pending:
        progress = False
        sat = _satisfaction(dag, included)
        still: List[Tuple[int, str]] = []
        for idx, source in pending:
            if idx in included:
                continue
            if all(sat[p] for p in dag.nodes[idx].preds):
                included.add(idx)
                if source == "injected":
                    info.n_injected += 1
                else:
                    info.n_writeback += 1
                progress = True
            else:
                still.append((idx, source))
        pending = still
    info.n_guard_blocked = len(pending)

    ops = [dag.nodes[i].op for i in sorted(included)]
    if plan.torn:
        ops = _apply_torn(ops, crash, plan, info)
    info.n_applied = len(ops)
    return ops, info


def _apply_drops(
    dag: PersistDag, included: Set[int], plan: FaultPlan, info: ImageInfo
) -> None:
    """Re-time seeded durable stores (and their DAG successors) past the
    crash, mutating ``included`` in place."""
    rng = random.Random(plan.seed ^ _DROP_SALT)
    seeds = [idx for idx in sorted(included) if rng.random() < plan.drop_prob]
    if not seeds:
        return
    succs: Dict[int, List[int]] = {}
    for node in dag.nodes:
        for pred in node.preds:
            succs.setdefault(pred, []).append(node.idx)
    dropped: Set[int] = set()
    frontier = list(seeds)
    while frontier:
        idx = frontier.pop()
        if idx in dropped:
            continue
        dropped.add(idx)
        frontier.extend(succs.get(idx, ()))
    info.n_dropped = len(dropped & included)
    included -= dropped


def _apply_torn(
    ops: List[Op], crash: CrashState, plan: FaultPlan, info: ImageInfo
) -> List[Op]:
    """Tear the latest-accepted durable multi-word store to a prefix."""
    applied_gseqs = {op.gseq for op in ops}
    victims = [
        rec
        for rec in crash.durable
        if rec.op.gseq in applied_gseqs and rec.op.size > 8
    ]
    if not victims:
        return ops
    victim = max(victims, key=lambda rec: (rec.durable, rec.op.gseq))
    rng = random.Random(plan.seed ^ _TORN_SALT)
    keep = 8 * rng.randrange(victim.op.size // 8)  # 0 .. size-8, aligned
    out: List[Op] = []
    for op in ops:
        if op.gseq != victim.op.gseq:
            out.append(op)
        elif keep > 0:
            out.append(replace(op, size=keep, data=op.data[:keep]))
    info.torn = (
        f"store@{victim.op.addr:#x} torn to {keep}/{victim.op.size} bytes"
    )
    return out


def build_crash_image(
    run: GeneratedRun, crash: CrashState, plan: FaultPlan, dag: PersistDag
) -> Tuple[PersistentMemory, ImageInfo]:
    """Materialise the PM image a crash under ``plan`` exposes."""
    ops, info = durable_cut(crash, plan, dag)
    return run.space.crash_image(ops), info
