"""Fault plans: where a run crashes and which write-back faults fire.

A :class:`FaultPlan` is the concrete, machine-facing object threaded into
``Machine.run``: a :class:`~repro.sim.durability.CrashTrigger` (absolute
crash cycle or micro-op count) plus the fault knobs the image builder
consumes after the crash (seeded delayed-write-back injection, optional
torn writes).

A :class:`CrashSchedule` is the *design-independent* form used by the
differential oracle: crash points are fractions of the run, because the
five designs finish the same program at very different cycle horizons.
``concretise`` turns a schedule into a plan once a design's horizon and
op count are known, so all designs crash "at the same place" in their
own executions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.faults.model import MediaFaultConfig
from repro.sim.durability import CrashTrigger

#: default probability that an in-flight dirty line is force-evicted.
DEFAULT_WRITEBACK_PROB = 0.6

#: default probability that a durable store's persist is re-timed past
#: the crash (unbounded CLWB delay absent an ordering fence).
DEFAULT_DROP_PROB = 0.25


@dataclass(frozen=True)
class RecoveryCrash:
    """One power failure scheduled *inside* a recovery pass.

    ``after_writes`` is the number of recovery persists the pass gets to
    issue before power fails (a budget past the pass's total write count
    simply lets it complete).  ``drop_prob`` is the chance each unfenced
    write is still in flight at the failure — fenced epochs always
    survive (see :class:`repro.faults.CrashingRecoveryWriter`).
    """

    after_writes: int
    drop_prob: float = 0.5

    def describe(self) -> str:
        return f"recovery-crash@{self.after_writes}(drop={self.drop_prob:g})"


@dataclass(frozen=True)
class FaultPlan:
    """One crash experiment: trigger + post-crash fault injection.

    ``Machine.run`` reads only ``trigger``; the chaos image builder reads
    the rest.  ``seed`` makes the injected faults deterministic — it is
    echoed in every failure message so a run can be replayed verbatim.
    """

    trigger: CrashTrigger
    seed: int = 0
    #: inject delayed write-backs: in-flight (retired but not persisted)
    #: stores may reach PM via a cache eviction racing the power failure.
    writeback_faults: bool = True
    writeback_prob: float = DEFAULT_WRITEBACK_PROB
    #: inject delayed persists: a durable store — together with all of
    #: its persist-DAG successors — may be re-timed to *after* the crash,
    #: because nothing short of an ordering primitive bounds how long the
    #: hardware may sit on a CLWB.  For correct designs this is provably
    #: an earlier durable frontier; for NON-ATOMIC it exposes the states
    #: its missing ordering admits (see repro.chaos.image).
    drop_faults: bool = True
    drop_prob: float = DEFAULT_DROP_PROB
    #: tear the latest-accepted durable store to an 8-byte-aligned prefix
    #: (ADR-failure stress; breaks store atomicity, so even correct
    #: designs are expected to fail — used to prove checker sensitivity).
    torn: bool = False
    #: device-level media faults (seeded write failures, ECC errors) the
    #: PM controller must absorb during the run; None = perfect media.
    media: Optional[MediaFaultConfig] = None
    #: power failures scheduled inside recovery: crash the Nth recovery
    #: pass at its ``after_writes``-th persist, re-recover, repeat; the
    #: pass after the last scheduled crash runs to completion.
    recovery_crashes: Tuple[RecoveryCrash, ...] = ()

    def describe(self) -> str:
        parts = [self.trigger.describe(), f"seed={self.seed}"]
        if self.writeback_faults:
            parts.append(f"writeback-faults(p={self.writeback_prob:g})")
        if self.drop_faults:
            parts.append(f"drop-faults(p={self.drop_prob:g})")
        if self.torn:
            parts.append("torn-writes")
        if self.media is not None and self.media.enabled:
            parts.append(self.media.describe())
        parts.extend(rc.describe() for rc in self.recovery_crashes)
        return " ".join(parts)


@dataclass(frozen=True)
class CrashSchedule:
    """Design-independent crash point: a fraction of the run.

    ``kind`` is ``"cycle"`` (fraction of the design's cycle horizon) or
    ``"ops"`` (fraction of the program's total micro-op count); ``frac``
    is in (0, 1].  ``seed`` is this schedule's private fault-injection
    seed, derived deterministically from the master seed.
    """

    kind: str
    frac: float
    seed: int
    writeback_faults: bool = True
    writeback_prob: float = DEFAULT_WRITEBACK_PROB
    drop_faults: bool = True
    drop_prob: float = DEFAULT_DROP_PROB
    torn: bool = False
    media: Optional[MediaFaultConfig] = None
    recovery_crashes: Tuple[RecoveryCrash, ...] = ()

    def concretise(self, horizon: float, total_ops: int) -> FaultPlan:
        """Pin this schedule to one design's measured run length."""
        if self.kind == "cycle":
            at = max(1.0, round(horizon * self.frac, 3))
        else:
            at = max(1, int(total_ops * self.frac))
        return FaultPlan(
            trigger=CrashTrigger(self.kind, at),
            seed=self.seed,
            writeback_faults=self.writeback_faults,
            writeback_prob=self.writeback_prob,
            drop_faults=self.drop_faults,
            drop_prob=self.drop_prob,
            torn=self.torn,
            media=self.media,
            recovery_crashes=self.recovery_crashes,
        )

    def describe(self) -> str:
        desc = f"{self.kind}@{self.frac:.3f} seed={self.seed}"
        if self.media is not None and self.media.enabled:
            desc += " " + self.media.describe()
        if self.recovery_crashes:
            desc += " " + " ".join(rc.describe() for rc in self.recovery_crashes)
        return desc


def sample_schedules(
    n: int,
    seed: int,
    writeback_faults: bool = True,
    writeback_prob: float = DEFAULT_WRITEBACK_PROB,
    drop_faults: bool = True,
    drop_prob: float = DEFAULT_DROP_PROB,
    torn: bool = False,
) -> List[CrashSchedule]:
    """Sample ``n`` deterministic crash schedules from a master ``seed``.

    Alternates cycle- and op-count-triggered crashes so both trigger
    paths are exercised; fractions span the whole run, biased nowhere —
    the frontier bias lives in the write-back faults, which resurrect
    in-flight persists near the crash point.
    """
    rng = random.Random(seed)
    out: List[CrashSchedule] = []
    for i in range(n):
        kind = "cycle" if i % 2 == 0 else "ops"
        frac = rng.uniform(0.05, 0.95)
        out.append(
            CrashSchedule(
                kind=kind,
                frac=frac,
                seed=rng.getrandbits(32),
                writeback_faults=writeback_faults,
                writeback_prob=writeback_prob,
                drop_faults=drop_faults,
                drop_prob=drop_prob,
                torn=torn,
            )
        )
    return out
