"""Randomized soak campaign: fuzz crash points x media faults x re-crash.

``run_soak`` is the long-haul companion to :func:`repro.chaos.harness.
run_crashtest`.  Where crashtest replays a fixed grid of schedules, soak
draws every knob at random per case — crash trigger, write-back and
drop probabilities, a device-level :class:`~repro.faults.MediaFaultConfig`
(so the PM controller's retry/remap machinery runs under fire), and up to
three power failures scheduled *inside* recovery itself — then recovers
and checks invariants.  Any unexpected violation is handed to the
shrinker for a minimal reproducer.

Everything derives from one master seed: case ``i`` uses ``seed + i`` as
its private case seed, so

* the whole campaign is bit-reproducible run-to-run (the ``repro.soak/1``
  summary is byte-identical for the same arguments), and
* a single failing case replays in isolation via the emitted command
  (``--seeds 1 --seed <case-seed> --design <d>``), because case
  generation depends only on the case seed and the media flag — not on
  how many cases ran before it or which designs were in rotation.

Violations on the deliberately unsafe NON-ATOMIC design are recorded as
*expected* (the checker catching it is the point); a clean NON-ATOMIC
case is not a failure either, since no single random crash is guaranteed
to land in its unordered window — checker sensitivity is crashtest's
job, where many samples amortise.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.harness import CrashHarness
from repro.chaos.plan import CrashSchedule, RecoveryCrash
from repro.chaos.shrink import ShrinkResult, shrink_crash_point
from repro.faults.model import MediaFaultConfig
from repro.sim.config import TABLE_I, MachineConfig
from repro.sim.machine import DESIGNS
from repro.workloads import WorkloadConfig

SOAK_SCHEMA = "repro.soak/1"

#: probability a soak case attaches a media fault model at all.
MEDIA_CASE_PROB = 0.5
#: cap on power failures scheduled inside one case's recovery.
MAX_RECOVERY_CRASHES = 3
#: upper bound on a recovery crash's write budget.  A chaos-scale
#: recovery pass issues ~12-16 persists, so budgets drawn in [0, 24]
#: mix mid-repair kills, mid-sweep kills and passes that complete.
MAX_RECOVERY_BUDGET = 24


def sample_case_schedule(
    case_seed: int, media: bool = True
) -> CrashSchedule:
    """Draw one soak case's full fault plan from its private seed.

    Pure function of ``(case_seed, media)`` — the replay contract.  The
    design rotation is drawn from a *separate* stream (see
    :func:`pick_design`) so replaying with ``--design`` pinned does not
    shift these draws.
    """
    rng = random.Random(case_seed)
    kind = "cycle" if rng.random() < 0.5 else "ops"
    frac = rng.uniform(0.05, 0.95)
    writeback_prob = rng.uniform(0.3, 0.9)
    drop_prob = rng.uniform(0.1, 0.5)
    fault_seed = rng.getrandbits(32)
    media_cfg: Optional[MediaFaultConfig] = None
    if media and rng.random() < MEDIA_CASE_PROB:
        media_cfg = MediaFaultConfig(
            seed=rng.getrandbits(32),
            write_fail_prob=rng.uniform(0.0, 0.05),
            ecc_correctable_prob=rng.uniform(0.0, 0.02),
            ecc_uncorrectable_prob=(
                rng.uniform(0.0, 0.002) if rng.random() < 0.3 else 0.0
            ),
        )
    n_recovery = rng.randint(0, MAX_RECOVERY_CRASHES)
    recovery = tuple(
        RecoveryCrash(
            after_writes=rng.randint(0, MAX_RECOVERY_BUDGET),
            drop_prob=rng.uniform(0.2, 0.8),
        )
        for _ in range(n_recovery)
    )
    return CrashSchedule(
        kind=kind,
        frac=frac,
        seed=fault_seed,
        writeback_prob=writeback_prob,
        drop_prob=drop_prob,
        media=media_cfg,
        recovery_crashes=recovery,
    )


def pick_design(case_seed: int, designs: Sequence[str]) -> str:
    """Rotate designs from a stream independent of the plan draws.

    Replaying one case with ``--design d`` makes ``designs == [d]`` and
    this returns ``d`` without perturbing :func:`sample_case_schedule`.
    """
    return designs[random.Random(case_seed ^ 0xD151B).randrange(len(designs))]


@dataclass
class SoakCase:
    """One soak case: the drawn plan and what happened under it."""

    index: int
    seed: int  #: this case's private seed (replayable in isolation)
    design: str
    plan_desc: str
    violation: Optional[str] = None
    #: True when the violation is the expected NON-ATOMIC outcome.
    expected: bool = False
    recovery_passes: int = 1
    media_faults: Optional[Dict[str, object]] = None
    shrunk: Optional[ShrinkResult] = None

    @property
    def ok(self) -> bool:
        return self.violation is None or self.expected

    def to_json(self) -> Dict[str, object]:
        """Lossless wire form (campaign workers ship cases as JSON)."""
        doc: Dict[str, object] = {
            "index": self.index,
            "seed": self.seed,
            "design": self.design,
            "plan": self.plan_desc,
            "violation": self.violation,
            "expected": self.expected,
            "recovery_passes": self.recovery_passes,
            "media_faults": self.media_faults,
            "shrunk": None if self.shrunk is None else asdict(self.shrunk),
        }
        return doc

    @staticmethod
    def from_json(doc: Dict[str, object]) -> "SoakCase":
        shrunk_doc = doc.get("shrunk")
        shrunk = None
        if isinstance(shrunk_doc, dict):
            shrunk = ShrinkResult(
                kind=str(shrunk_doc["kind"]),
                original_at=float(shrunk_doc["original_at"]),
                minimal_at=float(shrunk_doc["minimal_at"]),
                probes=int(shrunk_doc["probes"]),
                violation=str(shrunk_doc["violation"]),
                reproducible=bool(shrunk_doc.get("reproducible", True)),
            )
        media = doc.get("media_faults")
        return SoakCase(
            index=int(doc["index"]),
            seed=int(doc["seed"]),
            design=str(doc["design"]),
            plan_desc=str(doc["plan"]),
            violation=None if doc.get("violation") is None else str(doc["violation"]),
            expected=bool(doc.get("expected", False)),
            recovery_passes=int(doc.get("recovery_passes", 1)),
            media_faults=media if isinstance(media, dict) else None,
            shrunk=shrunk,
        )


@dataclass
class SoakResult:
    """Campaign outcome: every case, plus failure accounting."""

    workload: str
    seed: int
    n_seeds: int
    media: bool
    designs: List[str]
    #: whether the campaign shrank failures — echoed into replay
    #: commands, deliberately absent from ``summary()`` (schema-stable).
    shrink: bool = True
    cases: List[SoakCase] = field(default_factory=list)

    @property
    def failures(self) -> List[SoakCase]:
        return [c for c in self.cases if not c.ok]

    @property
    def expected_violations(self) -> int:
        return sum(1 for c in self.cases if c.violation and c.expected)

    @property
    def ok(self) -> bool:
        return not self.failures

    def replay_command(self, case: SoakCase) -> str:
        """The one-liner that reproduces ``case`` in isolation.

        Must echo every campaign flag that feeds case *generation* or
        reporting: a campaign run with ``--no-media`` draws a different
        plan for the same seed, and one run with ``--no-shrink`` never
        searched for a minimum — replaying without the same flags used
        to chase a different failure than the one reported.
        """
        cmd = (
            f"python -m repro soak {self.workload} --design {case.design} "
            f"--seeds 1 --seed {case.seed}"
        )
        if not self.media:
            cmd += " --no-media"
        if not self.shrink:
            cmd += " --no-shrink"
        return cmd

    def summary(self) -> Dict[str, object]:
        """The ``repro.soak/1`` document — deterministic, no wall-clock."""
        return {
            "schema": SOAK_SCHEMA,
            "workload": self.workload,
            "seed": self.seed,
            "seeds": self.n_seeds,
            "media": self.media,
            "designs": list(self.designs),
            "cases": len(self.cases),
            "failures": len(self.failures),
            "expected_violations": self.expected_violations,
            "recovery_passes": sum(c.recovery_passes for c in self.cases),
            "media_cases": sum(1 for c in self.cases if c.media_faults),
            "media_retries": sum(
                int(c.media_faults.get("retries", 0))
                for c in self.cases
                if c.media_faults
            ),
            "ok": self.ok,
            "failing": [
                {
                    "index": c.index,
                    "seed": c.seed,
                    "design": c.design,
                    "plan": c.plan_desc,
                    "violation": c.violation,
                    "shrunk": None if c.shrunk is None else c.shrunk.describe(),
                    "replay": self.replay_command(c),
                }
                for c in self.failures
            ],
        }

    def render(self) -> str:
        lines = [
            f"soak {self.workload}: {len(self.cases)} cases "
            f"(seed {self.seed}), {len(self.failures)} failure(s), "
            f"{self.expected_violations} expected NON-ATOMIC violation(s)"
        ]
        passes = sum(c.recovery_passes for c in self.cases)
        media_cases = sum(1 for c in self.cases if c.media_faults)
        lines.append(
            f"  {'PASS' if self.ok else 'FAIL'}: {passes} recovery pass(es), "
            f"{media_cases} case(s) under media faults"
        )
        for case in self.failures[:5]:
            lines.append(f"  - case {case.index} [{case.plan_desc}]")
            lines.append(f"    {case.violation}")
            if case.shrunk is not None:
                lines.append(f"    shrunk: {case.shrunk.describe()}")
            lines.append(f"    replay: {self.replay_command(case)}")
        if len(self.failures) > 5:
            lines.append(f"  ... {len(self.failures) - 5} more")
        return "\n".join(lines)


def design_pool_for(designs: Optional[Sequence[str]]) -> List[str]:
    """Canonical rotation pool: pinned list, or every design sorted."""
    return list(designs) if designs else sorted(DESIGNS)


def run_soak_case(
    workload: str,
    case_seed: int,
    index: int,
    design_pool: Sequence[str],
    media: bool = True,
    shrink: bool = True,
    cfg: Optional[WorkloadConfig] = None,
    machine_cfg: MachineConfig = TABLE_I,
    harnesses: Optional[Dict[str, CrashHarness]] = None,
) -> SoakCase:
    """Run exactly one soak case — the unit the campaign service shards.

    A pure function of ``(workload, case_seed, index, design_pool,
    media, machine knobs)``: which process runs it, and which cases ran
    before it, cannot change the outcome.  ``harnesses`` is an optional
    per-process cache of baseline runs (one per design) so a worker
    executing a seed range pays for each design's baseline once.
    """
    design = pick_design(case_seed, design_pool)
    schedule = sample_case_schedule(case_seed, media=media)
    harness = None if harnesses is None else harnesses.get(design)
    if harness is None:
        harness = CrashHarness(workload, design, cfg=cfg, machine_cfg=machine_cfg)
        if harnesses is not None:
            harnesses[design] = harness
    sample = harness.crash_schedule(schedule, index=index)
    case = SoakCase(
        index=index,
        seed=case_seed,
        design=design,
        plan_desc=sample.plan.describe(),
        violation=sample.violation,
        expected=bool(sample.violation) and design == "non-atomic",
        recovery_passes=sample.recovery_passes,
        media_faults=sample.media_faults,
    )
    if not case.ok and shrink:
        case.shrunk = shrink_crash_point(harness, sample.plan)
    return case


def shard_seed_ranges(
    n_cases: int, n_shards: int, start: int = 0
) -> List[Tuple[int, int]]:
    """Split case indices ``[start, start + n_cases)`` into contiguous
    ``(first_index, count)`` ranges, at most ``n_shards`` of them, sizes
    differing by at most one.  The campaign service hands each range to
    a worker; because :func:`run_soak_case` is index-pure, any sharding
    reassembles (sorted by index) into the serial campaign exactly.
    """
    if n_cases <= 0:
        return []
    n_shards = max(1, min(n_shards, n_cases))
    base, extra = divmod(n_cases, n_shards)
    ranges: List[Tuple[int, int]] = []
    first = start
    for shard in range(n_shards):
        count = base + (1 if shard < extra else 0)
        ranges.append((first, count))
        first += count
    return ranges


def run_soak(
    workload: str,
    seeds: int = 50,
    seed: int = 7,
    designs: Optional[Sequence[str]] = None,
    media: bool = True,
    shrink: bool = True,
    cfg: Optional[WorkloadConfig] = None,
    machine_cfg: MachineConfig = TABLE_I,
    runlog=None,
    progress=None,
) -> SoakResult:
    """Run ``seeds`` randomized crash-recover-check cases and shrink failures.

    Each case draws its own crash point, fault probabilities, optional
    media fault model and crash-during-recovery schedule from
    ``seed + index``; the per-design :class:`CrashHarness` (one baseline
    run each) is built lazily and reused across cases.  ``runlog``
    streams ``repro.runlog/1`` campaign telemetry per case; ``progress``
    drives a live status line (see :mod:`repro.prof.runlog`) — both are
    observation-only.
    """
    design_pool = design_pool_for(designs)
    result = SoakResult(
        workload=workload,
        seed=seed,
        n_seeds=seeds,
        media=media,
        designs=design_pool,
        shrink=shrink,
    )
    harnesses: Dict[str, CrashHarness] = {}
    busy = 0.0
    for i in range(seeds):
        case_seed = seed + i
        design = pick_design(case_seed, design_pool)
        label = f"{workload}/{design}/seed{case_seed}"
        t_case = time.perf_counter()
        if runlog is not None:
            runlog.cell_start(label, i)
        case = run_soak_case(
            workload, case_seed, i, design_pool,
            media=media, shrink=shrink, cfg=cfg, machine_cfg=machine_cfg,
            harnesses=harnesses,
        )
        result.cases.append(case)
        case_wall = time.perf_counter() - t_case
        busy += case_wall
        if runlog is not None:
            runlog.cell_finish(label, i, case.ok, case_wall, source="run")
            runlog.maybe_heartbeat(i + 1)
        if progress is not None:
            progress.update(i + 1)
    if runlog is not None:
        runlog.finish(
            done=len(result.cases),
            errors=sum(1 for case in result.cases if not case.ok),
            busy_time_s=busy,
        )
    if progress is not None:
        progress.close()
    return result
